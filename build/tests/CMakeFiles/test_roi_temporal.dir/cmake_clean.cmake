file(REMOVE_RECURSE
  "CMakeFiles/test_roi_temporal.dir/test_roi_temporal.cpp.o"
  "CMakeFiles/test_roi_temporal.dir/test_roi_temporal.cpp.o.d"
  "test_roi_temporal"
  "test_roi_temporal.pdb"
  "test_roi_temporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roi_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
