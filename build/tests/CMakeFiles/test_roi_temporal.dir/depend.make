# Empty dependencies file for test_roi_temporal.
# This may be replaced when dependencies are built.
