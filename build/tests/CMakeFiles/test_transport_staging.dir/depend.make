# Empty dependencies file for test_transport_staging.
# This may be replaced when dependencies are built.
