file(REMOVE_RECURSE
  "CMakeFiles/test_transport_staging.dir/test_transport_staging.cpp.o"
  "CMakeFiles/test_transport_staging.dir/test_transport_staging.cpp.o.d"
  "test_transport_staging"
  "test_transport_staging.pdb"
  "test_transport_staging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
