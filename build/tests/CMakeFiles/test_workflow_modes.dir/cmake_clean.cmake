file(REMOVE_RECURSE
  "CMakeFiles/test_workflow_modes.dir/test_workflow_modes.cpp.o"
  "CMakeFiles/test_workflow_modes.dir/test_workflow_modes.cpp.o.d"
  "test_workflow_modes"
  "test_workflow_modes.pdb"
  "test_workflow_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
