# Empty dependencies file for test_workflow_modes.
# This may be replaced when dependencies are built.
