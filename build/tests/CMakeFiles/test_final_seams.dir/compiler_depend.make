# Empty compiler generated dependencies file for test_final_seams.
# This may be replaced when dependencies are built.
