file(REMOVE_RECURSE
  "CMakeFiles/test_workflow_ext.dir/test_workflow_ext.cpp.o"
  "CMakeFiles/test_workflow_ext.dir/test_workflow_ext.cpp.o.d"
  "test_workflow_ext"
  "test_workflow_ext.pdb"
  "test_workflow_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
