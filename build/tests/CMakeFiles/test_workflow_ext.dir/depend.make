# Empty dependencies file for test_workflow_ext.
# This may be replaced when dependencies are built.
