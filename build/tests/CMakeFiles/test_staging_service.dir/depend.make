# Empty dependencies file for test_staging_service.
# This may be replaced when dependencies are built.
