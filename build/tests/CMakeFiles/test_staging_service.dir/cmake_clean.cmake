file(REMOVE_RECURSE
  "CMakeFiles/test_staging_service.dir/test_staging_service.cpp.o"
  "CMakeFiles/test_staging_service.dir/test_staging_service.cpp.o.d"
  "test_staging_service"
  "test_staging_service.pdb"
  "test_staging_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_staging_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
