# Empty dependencies file for test_fab_leveldata.
# This may be replaced when dependencies are built.
