file(REMOVE_RECURSE
  "CMakeFiles/test_fab_leveldata.dir/test_fab_leveldata.cpp.o"
  "CMakeFiles/test_fab_leveldata.dir/test_fab_leveldata.cpp.o.d"
  "test_fab_leveldata"
  "test_fab_leveldata.pdb"
  "test_fab_leveldata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fab_leveldata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
