# Empty dependencies file for test_crosslayer.
# This may be replaced when dependencies are built.
