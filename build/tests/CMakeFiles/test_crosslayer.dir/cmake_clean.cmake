file(REMOVE_RECURSE
  "CMakeFiles/test_crosslayer.dir/test_crosslayer.cpp.o"
  "CMakeFiles/test_crosslayer.dir/test_crosslayer.cpp.o.d"
  "test_crosslayer"
  "test_crosslayer.pdb"
  "test_crosslayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crosslayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
