file(REMOVE_RECURSE
  "CMakeFiles/test_locks_kinds.dir/test_locks_kinds.cpp.o"
  "CMakeFiles/test_locks_kinds.dir/test_locks_kinds.cpp.o.d"
  "test_locks_kinds"
  "test_locks_kinds.pdb"
  "test_locks_kinds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locks_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
