# Empty compiler generated dependencies file for test_locks_kinds.
# This may be replaced when dependencies are built.
