file(REMOVE_RECURSE
  "CMakeFiles/test_plotfile.dir/test_plotfile.cpp.o"
  "CMakeFiles/test_plotfile.dir/test_plotfile.cpp.o.d"
  "test_plotfile"
  "test_plotfile.pdb"
  "test_plotfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plotfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
