# Empty dependencies file for test_plotfile.
# This may be replaced when dependencies are built.
