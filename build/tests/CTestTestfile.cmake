# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_box[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_fab_leveldata[1]_include.cmake")
include("/root/repo/build/tests/test_amr[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_transport_staging[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_policies[1]_include.cmake")
include("/root/repo/build/tests/test_crosslayer[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_plotfile[1]_include.cmake")
include("/root/repo/build/tests/test_render[1]_include.cmake")
include("/root/repo/build/tests/test_workflow_ext[1]_include.cmake")
include("/root/repo/build/tests/test_policy_properties[1]_include.cmake")
include("/root/repo/build/tests/test_workflow_modes[1]_include.cmake")
include("/root/repo/build/tests/test_staging_service[1]_include.cmake")
include("/root/repo/build/tests/test_roi_temporal[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_extra[1]_include.cmake")
include("/root/repo/build/tests/test_locks_kinds[1]_include.cmake")
include("/root/repo/build/tests/test_config_file[1]_include.cmake")
include("/root/repo/build/tests/test_final_seams[1]_include.cmake")
