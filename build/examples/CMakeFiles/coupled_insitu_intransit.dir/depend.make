# Empty dependencies file for coupled_insitu_intransit.
# This may be replaced when dependencies are built.
