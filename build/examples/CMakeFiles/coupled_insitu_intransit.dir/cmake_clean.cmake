file(REMOVE_RECURSE
  "CMakeFiles/coupled_insitu_intransit.dir/coupled_insitu_intransit.cpp.o"
  "CMakeFiles/coupled_insitu_intransit.dir/coupled_insitu_intransit.cpp.o.d"
  "coupled_insitu_intransit"
  "coupled_insitu_intransit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_insitu_intransit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
