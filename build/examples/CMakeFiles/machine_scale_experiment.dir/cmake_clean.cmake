file(REMOVE_RECURSE
  "CMakeFiles/machine_scale_experiment.dir/machine_scale_experiment.cpp.o"
  "CMakeFiles/machine_scale_experiment.dir/machine_scale_experiment.cpp.o.d"
  "machine_scale_experiment"
  "machine_scale_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_scale_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
