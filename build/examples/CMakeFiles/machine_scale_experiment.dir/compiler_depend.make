# Empty compiler generated dependencies file for machine_scale_experiment.
# This may be replaced when dependencies are built.
