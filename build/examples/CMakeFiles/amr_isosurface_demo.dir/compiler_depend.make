# Empty compiler generated dependencies file for amr_isosurface_demo.
# This may be replaced when dependencies are built.
