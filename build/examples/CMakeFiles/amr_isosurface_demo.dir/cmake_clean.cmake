file(REMOVE_RECURSE
  "CMakeFiles/amr_isosurface_demo.dir/amr_isosurface_demo.cpp.o"
  "CMakeFiles/amr_isosurface_demo.dir/amr_isosurface_demo.cpp.o.d"
  "amr_isosurface_demo"
  "amr_isosurface_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_isosurface_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
