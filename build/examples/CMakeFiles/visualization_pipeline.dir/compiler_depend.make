# Empty compiler generated dependencies file for visualization_pipeline.
# This may be replaced when dependencies are built.
