
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/visualization_pipeline.cpp" "examples/CMakeFiles/visualization_pipeline.dir/visualization_pipeline.cpp.o" "gcc" "examples/CMakeFiles/visualization_pipeline.dir/visualization_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/xl_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/xl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/staging/CMakeFiles/xl_staging.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/xl_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/xl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/xl_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/xl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/xl_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/xl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
