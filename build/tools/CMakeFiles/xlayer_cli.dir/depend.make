# Empty dependencies file for xlayer_cli.
# This may be replaced when dependencies are built.
