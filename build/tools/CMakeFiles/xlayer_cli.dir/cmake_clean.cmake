file(REMOVE_RECURSE
  "CMakeFiles/xlayer_cli.dir/xlayer_cli.cpp.o"
  "CMakeFiles/xlayer_cli.dir/xlayer_cli.cpp.o.d"
  "xlayer_cli"
  "xlayer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlayer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
