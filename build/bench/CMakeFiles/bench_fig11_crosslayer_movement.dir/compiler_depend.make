# Empty compiler generated dependencies file for bench_fig11_crosslayer_movement.
# This may be replaced when dependencies are built.
