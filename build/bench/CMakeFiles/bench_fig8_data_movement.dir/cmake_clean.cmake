file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_data_movement.dir/bench_fig8_data_movement.cpp.o"
  "CMakeFiles/bench_fig8_data_movement.dir/bench_fig8_data_movement.cpp.o.d"
  "bench_fig8_data_movement"
  "bench_fig8_data_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_data_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
