# Empty compiler generated dependencies file for bench_fig8_data_movement.
# This may be replaced when dependencies are built.
