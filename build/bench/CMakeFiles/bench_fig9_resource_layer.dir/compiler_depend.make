# Empty compiler generated dependencies file for bench_fig9_resource_layer.
# This may be replaced when dependencies are built.
