# Empty dependencies file for bench_fig10_crosslayer_e2e.
# This may be replaced when dependencies are built.
