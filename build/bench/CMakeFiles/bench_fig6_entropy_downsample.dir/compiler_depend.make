# Empty compiler generated dependencies file for bench_fig6_entropy_downsample.
# This may be replaced when dependencies are built.
