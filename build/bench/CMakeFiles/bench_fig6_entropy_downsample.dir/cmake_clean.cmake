file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_entropy_downsample.dir/bench_fig6_entropy_downsample.cpp.o"
  "CMakeFiles/bench_fig6_entropy_downsample.dir/bench_fig6_entropy_downsample.cpp.o.d"
  "bench_fig6_entropy_downsample"
  "bench_fig6_entropy_downsample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_entropy_downsample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
