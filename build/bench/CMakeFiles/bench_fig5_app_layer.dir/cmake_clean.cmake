file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_app_layer.dir/bench_fig5_app_layer.cpp.o"
  "CMakeFiles/bench_fig5_app_layer.dir/bench_fig5_app_layer.cpp.o.d"
  "bench_fig5_app_layer"
  "bench_fig5_app_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_app_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
