# Empty dependencies file for bench_ablation_rootleaf.
# This may be replaced when dependencies are built.
