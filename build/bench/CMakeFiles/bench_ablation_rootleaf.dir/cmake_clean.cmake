file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rootleaf.dir/bench_ablation_rootleaf.cpp.o"
  "CMakeFiles/bench_ablation_rootleaf.dir/bench_ablation_rootleaf.cpp.o.d"
  "bench_ablation_rootleaf"
  "bench_ablation_rootleaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rootleaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
