# Empty dependencies file for bench_calibration_kernels.
# This may be replaced when dependencies are built.
