file(REMOVE_RECURSE
  "CMakeFiles/bench_calibration_kernels.dir/bench_calibration_kernels.cpp.o"
  "CMakeFiles/bench_calibration_kernels.dir/bench_calibration_kernels.cpp.o.d"
  "bench_calibration_kernels"
  "bench_calibration_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calibration_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
