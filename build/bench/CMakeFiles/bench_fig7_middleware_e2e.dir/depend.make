# Empty dependencies file for bench_fig7_middleware_e2e.
# This may be replaced when dependencies are built.
