
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/staging/lock.cpp" "src/staging/CMakeFiles/xl_staging.dir/lock.cpp.o" "gcc" "src/staging/CMakeFiles/xl_staging.dir/lock.cpp.o.d"
  "/root/repo/src/staging/service.cpp" "src/staging/CMakeFiles/xl_staging.dir/service.cpp.o" "gcc" "src/staging/CMakeFiles/xl_staging.dir/service.cpp.o.d"
  "/root/repo/src/staging/space.cpp" "src/staging/CMakeFiles/xl_staging.dir/space.cpp.o" "gcc" "src/staging/CMakeFiles/xl_staging.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/xl_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/xl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/xl_amr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
