file(REMOVE_RECURSE
  "CMakeFiles/xl_staging.dir/lock.cpp.o"
  "CMakeFiles/xl_staging.dir/lock.cpp.o.d"
  "CMakeFiles/xl_staging.dir/service.cpp.o"
  "CMakeFiles/xl_staging.dir/service.cpp.o.d"
  "CMakeFiles/xl_staging.dir/space.cpp.o"
  "CMakeFiles/xl_staging.dir/space.cpp.o.d"
  "libxl_staging.a"
  "libxl_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
