file(REMOVE_RECURSE
  "libxl_staging.a"
)
