# Empty dependencies file for xl_staging.
# This may be replaced when dependencies are built.
