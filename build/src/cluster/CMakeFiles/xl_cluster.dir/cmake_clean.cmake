file(REMOVE_RECURSE
  "CMakeFiles/xl_cluster.dir/cost_model.cpp.o"
  "CMakeFiles/xl_cluster.dir/cost_model.cpp.o.d"
  "CMakeFiles/xl_cluster.dir/machine.cpp.o"
  "CMakeFiles/xl_cluster.dir/machine.cpp.o.d"
  "CMakeFiles/xl_cluster.dir/network.cpp.o"
  "CMakeFiles/xl_cluster.dir/network.cpp.o.d"
  "libxl_cluster.a"
  "libxl_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
