# Empty compiler generated dependencies file for xl_cluster.
# This may be replaced when dependencies are built.
