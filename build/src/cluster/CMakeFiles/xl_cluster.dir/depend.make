# Empty dependencies file for xl_cluster.
# This may be replaced when dependencies are built.
