file(REMOVE_RECURSE
  "libxl_cluster.a"
)
