file(REMOVE_RECURSE
  "CMakeFiles/xl_runtime.dir/adaptation_engine.cpp.o"
  "CMakeFiles/xl_runtime.dir/adaptation_engine.cpp.o.d"
  "CMakeFiles/xl_runtime.dir/app_policy.cpp.o"
  "CMakeFiles/xl_runtime.dir/app_policy.cpp.o.d"
  "CMakeFiles/xl_runtime.dir/crosslayer.cpp.o"
  "CMakeFiles/xl_runtime.dir/crosslayer.cpp.o.d"
  "CMakeFiles/xl_runtime.dir/middleware_policy.cpp.o"
  "CMakeFiles/xl_runtime.dir/middleware_policy.cpp.o.d"
  "CMakeFiles/xl_runtime.dir/monitor.cpp.o"
  "CMakeFiles/xl_runtime.dir/monitor.cpp.o.d"
  "CMakeFiles/xl_runtime.dir/resource_policy.cpp.o"
  "CMakeFiles/xl_runtime.dir/resource_policy.cpp.o.d"
  "libxl_runtime.a"
  "libxl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
