# Empty dependencies file for xl_runtime.
# This may be replaced when dependencies are built.
