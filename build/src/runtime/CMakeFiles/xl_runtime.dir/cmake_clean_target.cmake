file(REMOVE_RECURSE
  "libxl_runtime.a"
)
