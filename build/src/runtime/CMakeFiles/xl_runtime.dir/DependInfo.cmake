
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/adaptation_engine.cpp" "src/runtime/CMakeFiles/xl_runtime.dir/adaptation_engine.cpp.o" "gcc" "src/runtime/CMakeFiles/xl_runtime.dir/adaptation_engine.cpp.o.d"
  "/root/repo/src/runtime/app_policy.cpp" "src/runtime/CMakeFiles/xl_runtime.dir/app_policy.cpp.o" "gcc" "src/runtime/CMakeFiles/xl_runtime.dir/app_policy.cpp.o.d"
  "/root/repo/src/runtime/crosslayer.cpp" "src/runtime/CMakeFiles/xl_runtime.dir/crosslayer.cpp.o" "gcc" "src/runtime/CMakeFiles/xl_runtime.dir/crosslayer.cpp.o.d"
  "/root/repo/src/runtime/middleware_policy.cpp" "src/runtime/CMakeFiles/xl_runtime.dir/middleware_policy.cpp.o" "gcc" "src/runtime/CMakeFiles/xl_runtime.dir/middleware_policy.cpp.o.d"
  "/root/repo/src/runtime/monitor.cpp" "src/runtime/CMakeFiles/xl_runtime.dir/monitor.cpp.o" "gcc" "src/runtime/CMakeFiles/xl_runtime.dir/monitor.cpp.o.d"
  "/root/repo/src/runtime/resource_policy.cpp" "src/runtime/CMakeFiles/xl_runtime.dir/resource_policy.cpp.o" "gcc" "src/runtime/CMakeFiles/xl_runtime.dir/resource_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/xl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/xl_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
