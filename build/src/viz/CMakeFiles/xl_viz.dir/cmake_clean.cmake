file(REMOVE_RECURSE
  "CMakeFiles/xl_viz.dir/amr_isosurface.cpp.o"
  "CMakeFiles/xl_viz.dir/amr_isosurface.cpp.o.d"
  "CMakeFiles/xl_viz.dir/marching_cubes.cpp.o"
  "CMakeFiles/xl_viz.dir/marching_cubes.cpp.o.d"
  "CMakeFiles/xl_viz.dir/mc_tables.cpp.o"
  "CMakeFiles/xl_viz.dir/mc_tables.cpp.o.d"
  "CMakeFiles/xl_viz.dir/mesh_io.cpp.o"
  "CMakeFiles/xl_viz.dir/mesh_io.cpp.o.d"
  "CMakeFiles/xl_viz.dir/render.cpp.o"
  "CMakeFiles/xl_viz.dir/render.cpp.o.d"
  "libxl_viz.a"
  "libxl_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
