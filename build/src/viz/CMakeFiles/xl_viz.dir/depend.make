# Empty dependencies file for xl_viz.
# This may be replaced when dependencies are built.
