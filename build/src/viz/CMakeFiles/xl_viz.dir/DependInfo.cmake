
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/amr_isosurface.cpp" "src/viz/CMakeFiles/xl_viz.dir/amr_isosurface.cpp.o" "gcc" "src/viz/CMakeFiles/xl_viz.dir/amr_isosurface.cpp.o.d"
  "/root/repo/src/viz/marching_cubes.cpp" "src/viz/CMakeFiles/xl_viz.dir/marching_cubes.cpp.o" "gcc" "src/viz/CMakeFiles/xl_viz.dir/marching_cubes.cpp.o.d"
  "/root/repo/src/viz/mc_tables.cpp" "src/viz/CMakeFiles/xl_viz.dir/mc_tables.cpp.o" "gcc" "src/viz/CMakeFiles/xl_viz.dir/mc_tables.cpp.o.d"
  "/root/repo/src/viz/mesh_io.cpp" "src/viz/CMakeFiles/xl_viz.dir/mesh_io.cpp.o" "gcc" "src/viz/CMakeFiles/xl_viz.dir/mesh_io.cpp.o.d"
  "/root/repo/src/viz/render.cpp" "src/viz/CMakeFiles/xl_viz.dir/render.cpp.o" "gcc" "src/viz/CMakeFiles/xl_viz.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/xl_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/xl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
