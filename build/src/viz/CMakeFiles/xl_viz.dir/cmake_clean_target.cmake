file(REMOVE_RECURSE
  "libxl_viz.a"
)
