# Empty dependencies file for xl_workflow.
# This may be replaced when dependencies are built.
