file(REMOVE_RECURSE
  "CMakeFiles/xl_workflow.dir/config_file.cpp.o"
  "CMakeFiles/xl_workflow.dir/config_file.cpp.o.d"
  "CMakeFiles/xl_workflow.dir/coupled_workflow.cpp.o"
  "CMakeFiles/xl_workflow.dir/coupled_workflow.cpp.o.d"
  "CMakeFiles/xl_workflow.dir/energy.cpp.o"
  "CMakeFiles/xl_workflow.dir/energy.cpp.o.d"
  "CMakeFiles/xl_workflow.dir/experiment.cpp.o"
  "CMakeFiles/xl_workflow.dir/experiment.cpp.o.d"
  "CMakeFiles/xl_workflow.dir/trace_io.cpp.o"
  "CMakeFiles/xl_workflow.dir/trace_io.cpp.o.d"
  "libxl_workflow.a"
  "libxl_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
