file(REMOVE_RECURSE
  "libxl_workflow.a"
)
