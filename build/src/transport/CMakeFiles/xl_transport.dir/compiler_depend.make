# Empty compiler generated dependencies file for xl_transport.
# This may be replaced when dependencies are built.
