# Empty dependencies file for xl_transport.
# This may be replaced when dependencies are built.
