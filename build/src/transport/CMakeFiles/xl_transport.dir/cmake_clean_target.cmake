file(REMOVE_RECURSE
  "libxl_transport.a"
)
