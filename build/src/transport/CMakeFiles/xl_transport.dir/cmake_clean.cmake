file(REMOVE_RECURSE
  "CMakeFiles/xl_transport.dir/fabric.cpp.o"
  "CMakeFiles/xl_transport.dir/fabric.cpp.o.d"
  "libxl_transport.a"
  "libxl_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
