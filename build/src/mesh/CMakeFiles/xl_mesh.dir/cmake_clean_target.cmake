file(REMOVE_RECURSE
  "libxl_mesh.a"
)
