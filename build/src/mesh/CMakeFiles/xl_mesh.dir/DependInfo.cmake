
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/box.cpp" "src/mesh/CMakeFiles/xl_mesh.dir/box.cpp.o" "gcc" "src/mesh/CMakeFiles/xl_mesh.dir/box.cpp.o.d"
  "/root/repo/src/mesh/fab.cpp" "src/mesh/CMakeFiles/xl_mesh.dir/fab.cpp.o" "gcc" "src/mesh/CMakeFiles/xl_mesh.dir/fab.cpp.o.d"
  "/root/repo/src/mesh/layout.cpp" "src/mesh/CMakeFiles/xl_mesh.dir/layout.cpp.o" "gcc" "src/mesh/CMakeFiles/xl_mesh.dir/layout.cpp.o.d"
  "/root/repo/src/mesh/level_data.cpp" "src/mesh/CMakeFiles/xl_mesh.dir/level_data.cpp.o" "gcc" "src/mesh/CMakeFiles/xl_mesh.dir/level_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
