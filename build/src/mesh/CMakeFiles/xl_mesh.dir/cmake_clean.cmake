file(REMOVE_RECURSE
  "CMakeFiles/xl_mesh.dir/box.cpp.o"
  "CMakeFiles/xl_mesh.dir/box.cpp.o.d"
  "CMakeFiles/xl_mesh.dir/fab.cpp.o"
  "CMakeFiles/xl_mesh.dir/fab.cpp.o.d"
  "CMakeFiles/xl_mesh.dir/layout.cpp.o"
  "CMakeFiles/xl_mesh.dir/layout.cpp.o.d"
  "CMakeFiles/xl_mesh.dir/level_data.cpp.o"
  "CMakeFiles/xl_mesh.dir/level_data.cpp.o.d"
  "libxl_mesh.a"
  "libxl_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
