# Empty dependencies file for xl_mesh.
# This may be replaced when dependencies are built.
