file(REMOVE_RECURSE
  "libxl_analysis.a"
)
