
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/compress.cpp" "src/analysis/CMakeFiles/xl_analysis.dir/compress.cpp.o" "gcc" "src/analysis/CMakeFiles/xl_analysis.dir/compress.cpp.o.d"
  "/root/repo/src/analysis/downsample.cpp" "src/analysis/CMakeFiles/xl_analysis.dir/downsample.cpp.o" "gcc" "src/analysis/CMakeFiles/xl_analysis.dir/downsample.cpp.o.d"
  "/root/repo/src/analysis/entropy.cpp" "src/analysis/CMakeFiles/xl_analysis.dir/entropy.cpp.o" "gcc" "src/analysis/CMakeFiles/xl_analysis.dir/entropy.cpp.o.d"
  "/root/repo/src/analysis/statistics.cpp" "src/analysis/CMakeFiles/xl_analysis.dir/statistics.cpp.o" "gcc" "src/analysis/CMakeFiles/xl_analysis.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/xl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
