file(REMOVE_RECURSE
  "CMakeFiles/xl_analysis.dir/compress.cpp.o"
  "CMakeFiles/xl_analysis.dir/compress.cpp.o.d"
  "CMakeFiles/xl_analysis.dir/downsample.cpp.o"
  "CMakeFiles/xl_analysis.dir/downsample.cpp.o.d"
  "CMakeFiles/xl_analysis.dir/entropy.cpp.o"
  "CMakeFiles/xl_analysis.dir/entropy.cpp.o.d"
  "CMakeFiles/xl_analysis.dir/statistics.cpp.o"
  "CMakeFiles/xl_analysis.dir/statistics.cpp.o.d"
  "libxl_analysis.a"
  "libxl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
