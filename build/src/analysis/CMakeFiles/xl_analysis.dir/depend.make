# Empty dependencies file for xl_analysis.
# This may be replaced when dependencies are built.
