file(REMOVE_RECURSE
  "libxl_amr.a"
)
