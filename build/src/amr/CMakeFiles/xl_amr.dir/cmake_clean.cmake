file(REMOVE_RECURSE
  "CMakeFiles/xl_amr.dir/advection_diffusion.cpp.o"
  "CMakeFiles/xl_amr.dir/advection_diffusion.cpp.o.d"
  "CMakeFiles/xl_amr.dir/amr_simulation.cpp.o"
  "CMakeFiles/xl_amr.dir/amr_simulation.cpp.o.d"
  "CMakeFiles/xl_amr.dir/berger_rigoutsos.cpp.o"
  "CMakeFiles/xl_amr.dir/berger_rigoutsos.cpp.o.d"
  "CMakeFiles/xl_amr.dir/hierarchy.cpp.o"
  "CMakeFiles/xl_amr.dir/hierarchy.cpp.o.d"
  "CMakeFiles/xl_amr.dir/interp.cpp.o"
  "CMakeFiles/xl_amr.dir/interp.cpp.o.d"
  "CMakeFiles/xl_amr.dir/memory_model.cpp.o"
  "CMakeFiles/xl_amr.dir/memory_model.cpp.o.d"
  "CMakeFiles/xl_amr.dir/physics.cpp.o"
  "CMakeFiles/xl_amr.dir/physics.cpp.o.d"
  "CMakeFiles/xl_amr.dir/plotfile.cpp.o"
  "CMakeFiles/xl_amr.dir/plotfile.cpp.o.d"
  "CMakeFiles/xl_amr.dir/polytropic_gas.cpp.o"
  "CMakeFiles/xl_amr.dir/polytropic_gas.cpp.o.d"
  "CMakeFiles/xl_amr.dir/synthetic.cpp.o"
  "CMakeFiles/xl_amr.dir/synthetic.cpp.o.d"
  "CMakeFiles/xl_amr.dir/tagging.cpp.o"
  "CMakeFiles/xl_amr.dir/tagging.cpp.o.d"
  "libxl_amr.a"
  "libxl_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
