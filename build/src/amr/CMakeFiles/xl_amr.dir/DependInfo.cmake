
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/advection_diffusion.cpp" "src/amr/CMakeFiles/xl_amr.dir/advection_diffusion.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/advection_diffusion.cpp.o.d"
  "/root/repo/src/amr/amr_simulation.cpp" "src/amr/CMakeFiles/xl_amr.dir/amr_simulation.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/amr_simulation.cpp.o.d"
  "/root/repo/src/amr/berger_rigoutsos.cpp" "src/amr/CMakeFiles/xl_amr.dir/berger_rigoutsos.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/berger_rigoutsos.cpp.o.d"
  "/root/repo/src/amr/hierarchy.cpp" "src/amr/CMakeFiles/xl_amr.dir/hierarchy.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/hierarchy.cpp.o.d"
  "/root/repo/src/amr/interp.cpp" "src/amr/CMakeFiles/xl_amr.dir/interp.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/interp.cpp.o.d"
  "/root/repo/src/amr/memory_model.cpp" "src/amr/CMakeFiles/xl_amr.dir/memory_model.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/memory_model.cpp.o.d"
  "/root/repo/src/amr/physics.cpp" "src/amr/CMakeFiles/xl_amr.dir/physics.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/physics.cpp.o.d"
  "/root/repo/src/amr/plotfile.cpp" "src/amr/CMakeFiles/xl_amr.dir/plotfile.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/plotfile.cpp.o.d"
  "/root/repo/src/amr/polytropic_gas.cpp" "src/amr/CMakeFiles/xl_amr.dir/polytropic_gas.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/polytropic_gas.cpp.o.d"
  "/root/repo/src/amr/synthetic.cpp" "src/amr/CMakeFiles/xl_amr.dir/synthetic.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/synthetic.cpp.o.d"
  "/root/repo/src/amr/tagging.cpp" "src/amr/CMakeFiles/xl_amr.dir/tagging.cpp.o" "gcc" "src/amr/CMakeFiles/xl_amr.dir/tagging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/xl_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
