# Empty compiler generated dependencies file for xl_amr.
# This may be replaced when dependencies are built.
