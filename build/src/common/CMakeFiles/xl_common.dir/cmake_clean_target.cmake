file(REMOVE_RECURSE
  "libxl_common.a"
)
