# Empty compiler generated dependencies file for xl_common.
# This may be replaced when dependencies are built.
