file(REMOVE_RECURSE
  "CMakeFiles/xl_common.dir/log.cpp.o"
  "CMakeFiles/xl_common.dir/log.cpp.o.d"
  "CMakeFiles/xl_common.dir/stats.cpp.o"
  "CMakeFiles/xl_common.dir/stats.cpp.o.d"
  "CMakeFiles/xl_common.dir/table.cpp.o"
  "CMakeFiles/xl_common.dir/table.cpp.o.d"
  "CMakeFiles/xl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/xl_common.dir/thread_pool.cpp.o.d"
  "libxl_common.a"
  "libxl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
