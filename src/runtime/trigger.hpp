// Trigger-driven adaptation (Bennett et al., arXiv 1506.08258; Salloum et
// al., arXiv 1508.04731): instead of sampling operational state every fixed k
// steps, the Monitor computes cheap per-step indicator functions (refinement
// structure entropy delta, tagged-cell growth rate, staged-bytes slope) and
// fires adaptations only when the *data* changes. The threshold is a trailing
// quantile of the indicator maintained by a percentile-sampling estimator:
// each step's indicator enters the trailing window with probability
// `sample_rate`, drawn from a counter-keyed seeded stream (FaultPlan-style:
// the draw depends only on (seed, step), never on query order), so
// sub-sampled triggers are bit-identical across reruns and across the
// analytic and discrete-event substrates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace xl::runtime {

/// How the Monitor decides which steps are sampling steps.
enum class TriggerPolicy {
  FixedPeriod,  ///< every k-th step (the paper's Fig. 3 cadence; default).
  Percentile,   ///< indicator above the trailing-quantile threshold.
  Hybrid,       ///< Percentile OR a max-interval cap (never starve the engine).
};

const char* trigger_policy_name(TriggerPolicy policy) noexcept;

struct TriggerConfig {
  TriggerPolicy policy = TriggerPolicy::FixedPeriod;
  /// Trailing quantile of the sampled indicator window the current indicator
  /// must exceed to fire (strictly greater: a quiescent all-equal window
  /// never fires itself).
  double quantile = 0.9;
  /// Trailing window: the newest `window` SAMPLED indicator values.
  int window = 16;
  /// Probability a step's indicator enters the window (the percentile-
  /// sampling estimator's sub-sampling rate; 1.0 = keep every step).
  double sample_rate = 1.0;
  /// Hybrid only: force a fire once this many steps passed without one
  /// (bounds how stale the carried decisions can get on quiescent phases).
  int max_interval = 8;
  /// Seed of the counter-keyed sampling draws.
  std::uint64_t seed = 0x7219A4E5u;
};

/// Cheap per-step statistics the indicator functions consume. All three are
/// already available in the Monitor phase without touching field data.
struct TriggerInputs {
  std::int64_t tagged_cells = 0;   ///< cells the analysis would consume.
  std::size_t staged_bytes = 0;    ///< S_data this step would stage.
  double structure_entropy = 0.0;  ///< entropy of the level-occupancy distribution.
};

/// Outcome of one step's trigger evaluation.
struct TriggerDecision {
  bool fire = false;       ///< this is a sampling step.
  double indicator = 0.0;  ///< max of the normalized per-signal indicators.
  double threshold = 0.0;  ///< trailing-quantile threshold compared against.
  bool sampled = false;    ///< indicator entered the trailing window.
  bool capped = false;     ///< Hybrid: fire forced by the max-interval cap.
};

/// Percentile-sampling trigger detector. observe() must be called once per
/// step in step order; all state transitions are deterministic in
/// (config, input sequence).
class TriggerDetector {
 public:
  TriggerDetector() = default;
  explicit TriggerDetector(const TriggerConfig& config);

  const TriggerConfig& config() const noexcept { return config_; }

  /// Evaluate step `step`: compute the indicator from the delta against the
  /// previous step's inputs, test it against the trailing quantile, update
  /// the sampled window, and return the decision. The first observed step
  /// always fires (there is no history to justify suppressing it), as does
  /// every step while the sampled window is still empty.
  TriggerDecision observe(int step, const TriggerInputs& inputs);

  int triggers_fired() const noexcept { return triggers_fired_; }
  int steps_suppressed() const noexcept { return steps_suppressed_; }
  /// Steps since the last fired trigger (0 right after a fire).
  int steps_since_fire() const noexcept { return steps_since_fire_; }

 private:
  /// Does step `step`'s indicator enter the window? Counter-keyed stateless
  /// draw (same idiom as FaultPlan::transfer_attempt_fault).
  bool sampling_draw(int step) const;
  double indicator_of(const TriggerInputs& inputs) const;

  TriggerConfig config_;
  bool has_prev_ = false;
  TriggerInputs prev_;
  /// Newest `config_.window` sampled indicators, oldest first.
  std::deque<double> window_;
  int triggers_fired_ = 0;
  int steps_suppressed_ = 0;
  int steps_since_fire_ = 0;
};

}  // namespace xl::runtime
