// Middleware-layer adaptation policy (paper §4.2, eqs. 4-8): place each
// step's analysis in-situ or in-transit to minimize the overall
// time-to-solution, i.e. minimize max(T_sum_insitu, T_sum_intransit).
//
// The three trigger cases from the paper:
//  (1) only one location has the memory for the analysis -> place it there;
//  (2) both feasible and the in-transit cores are idle -> in-transit (it
//      overlaps with the next simulation step);
//  (3) both feasible but staging is busy with earlier steps -> compare the
//      estimated in-transit completion (backlog + processing, eq. 7) with the
//      estimated in-situ time and pick the faster.
#pragma once

#include <cstddef>

#include "runtime/state.hpp"

namespace xl::runtime {

struct PlacementInputs {
  /// S_i_data after any application-layer reduction.
  std::size_t data_bytes = 0;

  /// In-situ feasibility: memory the analysis kernel needs on the simulation
  /// nodes vs. what is free there (eq. 8's Mem_insitu <= Mem_available).
  std::size_t insitu_mem_needed = 0;
  std::size_t insitu_mem_available = 0;

  /// In-transit feasibility: staging must be able to cache the data
  /// (eq. 8/10's Mem_intransit >= S_data).
  std::size_t intransit_mem_free = 0;

  /// Seconds until the staging cores finish the backlog of earlier steps
  /// (eq. 7's T_j_intransit_remaining); 0 means idle.
  double intransit_backlog_seconds = 0.0;

  /// Estimated execution times from the Monitor.
  double est_insitu_seconds = 0.0;     ///< T_insitu(N, S_i).
  double est_intransit_seconds = 0.0;  ///< T_intransit(M, S_i).

  /// Fault-layer signals (defaults preserve the paper's always-up staging).
  bool staging_available = true;   ///< false while every staging server is down.
  bool staging_degraded = false;   ///< some servers down or stragglers active.
  bool staging_recovered = false;  ///< first sample after full recovery.
  /// Anti-entropy re-replication traffic is queued on the staging cores. The
  /// repair bytes already sit in intransit_backlog_seconds (they compete in
  /// eq. 7 like any other staged work); this flag only labels a case-3
  /// in-situ win as repair backpressure instead of a generic backlog loss.
  bool staging_repairing = false;
};

/// Which trigger case fired. A value type (unlike the previous string
/// literal) so decisions embed into records and observer events without
/// lifetime hazards and serialize stably.
enum class DecisionReason {
  None,                      ///< no middleware decision this step (static modes).
  InfeasibleBoth,            ///< neither location has the memory (degenerate).
  MemoryForced,              ///< case 1: memory admits exactly one location.
  StagingIdle,               ///< case 2: staging idle, in-transit hides fully.
  BacklogShorterThanInsitu,  ///< case 3: staging frees up before in-situ would finish.
  InsituFasterThanBacklog,   ///< case 3: in-situ beats the staging backlog.
  StagingUnavailable,        ///< fault: every staging server down -> in-situ.
  DegradedInSitu,            ///< fault: staging degraded enough that in-situ wins.
  RecoveredInTransit,        ///< fault: staging back up -> re-admit in-transit.
  RepairBackpressure,        ///< case 3 in-situ win while re-replication runs.
};

const char* reason_name(DecisionReason reason) noexcept;

struct MiddlewareDecision {
  Placement placement = Placement::InSitu;
  bool feasible = true;       ///< false when NEITHER location has memory.
  DecisionReason reason = DecisionReason::None;  ///< trigger case that fired.
};

MiddlewareDecision decide_placement(const PlacementInputs& in);

}  // namespace xl::runtime
