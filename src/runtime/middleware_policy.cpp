#include "runtime/middleware_policy.hpp"

namespace xl::runtime {

const char* reason_name(DecisionReason reason) noexcept {
  switch (reason) {
    case DecisionReason::None: return "";
    case DecisionReason::InfeasibleBoth: return "infeasible-both";
    case DecisionReason::MemoryForced: return "memory-forced";
    case DecisionReason::StagingIdle: return "staging-idle";
    case DecisionReason::BacklogShorterThanInsitu: return "backlog-shorter-than-insitu";
    case DecisionReason::InsituFasterThanBacklog: return "insitu-faster-than-backlog";
    case DecisionReason::StagingUnavailable: return "staging-unavailable";
    case DecisionReason::DegradedInSitu: return "degraded-insitu";
    case DecisionReason::RecoveredInTransit: return "recovered-intransit";
    case DecisionReason::RepairBackpressure: return "repair-backpressure";
  }
  return "?";
}

MiddlewareDecision decide_placement(const PlacementInputs& in) {
  const bool insitu_ok = in.insitu_mem_needed <= in.insitu_mem_available;
  const bool intransit_ok = in.data_bytes <= in.intransit_mem_free;

  MiddlewareDecision d;
  if (!in.staging_available) {
    // Fault case: the whole staging partition is down. Nothing can be placed
    // in-transit, so run in-situ regardless of memory comfort — the
    // application layer will shrink the data if it must.
    d.placement = Placement::InSitu;
    d.feasible = insitu_ok;
    d.reason = DecisionReason::StagingUnavailable;
    return d;
  }
  if (in.staging_recovered && intransit_ok) {
    // Recovery edge: staging just came back healthy. Re-admit in-transit work
    // immediately to refill the revived servers instead of waiting for the
    // backlog comparison to tip over.
    d.placement = Placement::InTransit;
    d.reason = DecisionReason::RecoveredInTransit;
    return d;
  }
  if (in.staging_degraded && insitu_ok) {
    // Partial degradation (dead servers or stragglers): surviving staging
    // capacity is unreliable, so prefer the placement that cannot lose data.
    d.placement = Placement::InSitu;
    d.reason = DecisionReason::DegradedInSitu;
    return d;
  }
  if (!insitu_ok && !intransit_ok) {
    // Neither side can take the analysis at full size; the caller must shrink
    // the data first (the cross-layer policy routes this to the application
    // layer). We fall back to in-situ, which degrades gracefully.
    d.placement = Placement::InSitu;
    d.feasible = false;
    d.reason = DecisionReason::InfeasibleBoth;
    return d;
  }
  if (insitu_ok != intransit_ok) {
    // Case 1: memory admits exactly one location.
    d.placement = insitu_ok ? Placement::InSitu : Placement::InTransit;
    d.reason = DecisionReason::MemoryForced;
    return d;
  }
  if (in.intransit_backlog_seconds <= 0.0) {
    // Case 2: staging idle -> in-transit runs in parallel with the next
    // simulation step, hiding the analysis entirely.
    d.placement = Placement::InTransit;
    d.reason = DecisionReason::StagingIdle;
    return d;
  }
  // Case 3 (eq. 7): staging busy. In-transit completes at backlog + own
  // processing; in-situ completes in est_insitu_seconds but blocks the
  // simulation for that long. Choose in-transit iff the remaining backlog is
  // shorter than the in-situ execution (the paper compares the *remaining*
  // time against the in-situ estimate: transfers are asynchronous, so the
  // simulation only cares whether staging frees up before it would have
  // finished the analysis itself).
  if (in.intransit_backlog_seconds < in.est_insitu_seconds) {
    d.placement = Placement::InTransit;
    d.reason = DecisionReason::BacklogShorterThanInsitu;
  } else {
    d.placement = Placement::InSitu;
    // Same comparison either way: repair traffic competes inside the backlog,
    // not as a separate override. The distinct reason makes "in-situ because
    // repair is hogging staging" visible in the event stream.
    d.reason = in.staging_repairing ? DecisionReason::RepairBackpressure
                                    : DecisionReason::InsituFasterThanBacklog;
  }
  return d;
}

}  // namespace xl::runtime
