#include "runtime/middleware_policy.hpp"

namespace xl::runtime {

MiddlewareDecision decide_placement(const PlacementInputs& in) {
  const bool insitu_ok = in.insitu_mem_needed <= in.insitu_mem_available;
  const bool intransit_ok = in.data_bytes <= in.intransit_mem_free;

  MiddlewareDecision d;
  if (!insitu_ok && !intransit_ok) {
    // Neither side can take the analysis at full size; the caller must shrink
    // the data first (the cross-layer policy routes this to the application
    // layer). We fall back to in-situ, which degrades gracefully.
    d.placement = Placement::InSitu;
    d.feasible = false;
    d.reason = "infeasible-both";
    return d;
  }
  if (insitu_ok != intransit_ok) {
    // Case 1: memory admits exactly one location.
    d.placement = insitu_ok ? Placement::InSitu : Placement::InTransit;
    d.reason = "memory-forced";
    return d;
  }
  if (in.intransit_backlog_seconds <= 0.0) {
    // Case 2: staging idle -> in-transit runs in parallel with the next
    // simulation step, hiding the analysis entirely.
    d.placement = Placement::InTransit;
    d.reason = "staging-idle";
    return d;
  }
  // Case 3 (eq. 7): staging busy. In-transit completes at backlog + own
  // processing; in-situ completes in est_insitu_seconds but blocks the
  // simulation for that long. Choose in-transit iff the remaining backlog is
  // shorter than the in-situ execution (the paper compares the *remaining*
  // time against the in-situ estimate: transfers are asynchronous, so the
  // simulation only cares whether staging frees up before it would have
  // finished the analysis itself).
  if (in.intransit_backlog_seconds < in.est_insitu_seconds) {
    d.placement = Placement::InTransit;
    d.reason = "backlog-shorter-than-insitu";
  } else {
    d.placement = Placement::InSitu;
    d.reason = "insitu-faster-than-backlog";
  }
  return d;
}

}  // namespace xl::runtime
