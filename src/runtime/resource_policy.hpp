// Resource-layer adaptation policy (paper §4.3, eqs. 9-10): minimize the
// number of in-transit cores M subject to
//   (10) the staging memory across M cores can cache this step's data, and
//   (9)  the in-transit analysis + receive finishes within the next
//        simulation step + send time (so staging never becomes the pipeline
//        bottleneck: "ideal time-to-solution" with minimal idle cores).
#pragma once

#include <cstddef>
#include <functional>

namespace xl::runtime {

struct ResourceInputs {
  std::size_t data_bytes = 0;           ///< S_data to stage this step.
  std::size_t mem_per_core = 0;         ///< staging memory per in-transit core.
  double next_sim_seconds = 0.0;        ///< T_{i+1}_sim estimate.
  double send_seconds = 0.0;            ///< T_sd(S_{i+1}).
  double recv_seconds = 0.0;            ///< T_recv(S_i).
  int min_cores = 1;                    ///< floor (never release below this).
  int max_cores = 1 << 20;              ///< allocation ceiling (preallocated pool).
  /// T_intransit(M, S_data) estimator, monotone non-increasing in M.
  std::function<double(int)> intransit_seconds;

  /// Fault-layer signals: dead staging cores shrink the allocation ceiling;
  /// a straggler multiplier (>= 1) inflates the in-transit time estimate.
  int cores_down = 0;
  double slowdown = 1.0;
};

struct ResourceDecision {
  int cores = 1;                 ///< selected M.
  bool deadline_met = true;      ///< eq. 9 satisfiable within max_cores?
  int memory_floor_cores = 1;    ///< M forced by eq. 10 alone.
};

ResourceDecision select_intransit_cores(const ResourceInputs& in);

}  // namespace xl::runtime
