// Combined cross-layer adaptation (paper §4.4): the heuristic root-leaf
// policy. Mechanisms are described by the objective(s) they serve and the
// quantities they consume/produce; given a user objective the planner
//   1. marks mechanisms sharing the objective as ROOTS,
//   2. marks mechanisms producing the roots' input quantities as LEAVES
//      (transitively),
//   3. orders leaves by their data dependencies and executes leaves -> roots.
//
// The registry below encodes the paper's three mechanisms, so
//   plan(MinimizeTimeToSolution)        == [Application, Resource, Middleware]
//   plan(MaximizeResourceUtilization)   == [Application, Resource]
// exactly as §4.4 walks through. The machinery is generic: new mechanisms
// register with their objectives and data flow and the same planner orders
// them.
#pragma once

#include <string>
#include <vector>

#include "runtime/state.hpp"

namespace xl::runtime {

enum class Layer { Application, Middleware, Resource };

const char* layer_name(Layer layer) noexcept;

/// Quantities flowing between mechanisms (the S_data and M of §4.4).
/// StagingHealth and RepairBacklog are environment inputs produced by the
/// fault/monitor layer rather than by any mechanism; they gate the middleware
/// and resource policies but never reorder the plan. RepairBacklog is the
/// anti-entropy re-replication traffic queued on the staging cores — part of
/// eq. 7's remaining-time term the placement decision weighs.
enum class Quantity {
  DataSize,
  IntransitCores,
  PlacementDecision,
  StagingHealth,
  RepairBacklog,
};

struct MechanismInfo {
  Layer layer = Layer::Application;
  std::string name;
  std::vector<Objective> objectives;  ///< objectives this mechanism serves.
  std::vector<Quantity> inputs;
  std::vector<Quantity> outputs;
};

/// Execution-order variants for the ablation bench (DESIGN.md §5.4).
enum class PlanOrder { LeavesThenRoots, RootsThenLeaves, Unordered };

class CrossLayerPlanner {
 public:
  /// Planner over the paper's three mechanisms.
  static CrossLayerPlanner standard();

  /// Planner over a custom mechanism set.
  explicit CrossLayerPlanner(std::vector<MechanismInfo> mechanisms);

  /// Ordered layers to execute for `objective`. Mechanisms not reachable
  /// from the roots are excluded (paper: middleware is excluded from the
  /// utilization objective).
  std::vector<Layer> plan(Objective objective,
                          PlanOrder order = PlanOrder::LeavesThenRoots) const;

  const std::vector<MechanismInfo>& mechanisms() const noexcept { return mechanisms_; }

 private:
  std::vector<MechanismInfo> mechanisms_;
};

}  // namespace xl::runtime
