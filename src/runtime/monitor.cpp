#include "runtime/monitor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace xl::runtime {

const char* objective_name(Objective objective) noexcept {
  switch (objective) {
    case Objective::MinimizeTimeToSolution: return "minimize-time-to-solution";
    case Objective::MinimizeDataMovement: return "minimize-data-movement";
    case Objective::MaximizeResourceUtilization: return "maximize-resource-utilization";
  }
  return "?";
}

const char* placement_name(Placement placement) noexcept {
  switch (placement) {
    case Placement::InSitu: return "in-situ";
    case Placement::InTransit: return "in-transit";
  }
  return "?";
}

Monitor::Monitor(const MonitorConfig& config)
    : config_(config),
      insitu_cost_(config.ewma_alpha),
      intransit_cost_(config.ewma_alpha),
      trigger_(config.trigger) {
  XL_REQUIRE(config.sampling_period >= 1, "sampling period must be positive");
  XL_REQUIRE(config.prior_cost > 0.0, "prior cost must be positive");
}

TriggerDecision Monitor::observe_step(int step, const TriggerInputs& inputs) {
  if (config_.trigger.policy == TriggerPolicy::FixedPeriod) {
    // The fixed cadence never consults the detector: the default path stays
    // byte-identical (and cost-identical) to the pre-trigger Monitor.
    TriggerDecision decision;
    decision.fire = should_sample(step);
    return decision;
  }
  const TriggerDecision decision = trigger_.observe(step, inputs);
  armed_step_ = step;
  armed_fire_ = decision.fire;
  return decision;
}

void Monitor::record_analysis(const AnalysisSample& sample) {
  XL_REQUIRE(sample.cells > 0, "analysis sample needs cells");
  XL_REQUIRE(sample.cores >= 1, "analysis sample needs cores");
  XL_REQUIRE(sample.seconds >= 0.0, "negative analysis time");
  const double eff_cores =
      std::pow(static_cast<double>(sample.cores), config_.parallel_efficiency);
  const double cost = sample.seconds * eff_cores / static_cast<double>(sample.cells);
  if (sample.placement == Placement::InSitu) {
    insitu_cost_.add(cost);
    last_insitu_cost_ = cost;
    has_insitu_ = true;
  } else {
    intransit_cost_.add(cost);
    last_intransit_cost_ = cost;
    has_intransit_ = true;
  }
  ++analysis_count_;
}

void Monitor::record_sim_step(int /*step*/, double seconds, std::size_t cells) {
  last_sim_seconds_ = seconds;
  last_sim_cells_ = cells;
}

void Monitor::record_heartbeats(int step, int beating, int total, int lease_steps) {
  XL_REQUIRE(total >= 0 && beating >= 0 && beating <= total,
             "heartbeat sample: 0 <= beating <= total");
  XL_REQUIRE(lease_steps >= 0, "heartbeat sample: lease_steps >= 0");
  XL_REQUIRE(heartbeat_samples_.empty() || step >= heartbeat_samples_.back().first,
             "heartbeat samples must arrive in step order");
  heartbeat_samples_.emplace_back(step, beating);
  // Prune to the lease window, then declare dead only the servers silent for
  // the WHOLE window: total minus the best beat count seen inside it. A
  // window that does not yet span lease_steps (run just started) declares
  // nothing beyond what every sample agrees on — same closed form as
  // FaultPlan::detected_down_at, so the two detection paths agree.
  const int window_start = step - lease_steps;
  std::size_t first = 0;
  while (first < heartbeat_samples_.size() &&
         heartbeat_samples_[first].first < window_start) {
    ++first;
  }
  heartbeat_samples_.erase(heartbeat_samples_.begin(),
                           heartbeat_samples_.begin() +
                               static_cast<std::ptrdiff_t>(first));
  int best_beating = beating;
  for (const auto& [s, b] : heartbeat_samples_) {
    if (b > best_beating) best_beating = b;
  }
  // A window reaching before step 0 covers the all-healthy prelude.
  if (window_start < 0) best_beating = total;
  declared_down_ = total - best_beating;
  suspected_down_ = (total - beating) - declared_down_;
}

void Monitor::set_oracle(double insitu_seconds, double intransit_seconds) {
  oracle_insitu_ = insitu_seconds;
  oracle_intransit_ = intransit_seconds;
}

double Monitor::normalized_cost(Placement placement) const {
  const bool insitu = placement == Placement::InSitu;
  switch (config_.estimator) {
    case EstimatorKind::Ewma: {
      const Ewma& e = insitu ? insitu_cost_ : intransit_cost_;
      return e.empty() ? config_.prior_cost : e.value();
    }
    case EstimatorKind::LastValue: {
      const bool has = insitu ? has_insitu_ : has_intransit_;
      return has ? (insitu ? last_insitu_cost_ : last_intransit_cost_)
                 : config_.prior_cost;
    }
    case EstimatorKind::Oracle:
      // Oracle values are absolute seconds; handled in the caller. Fall back
      // to EWMA when no oracle value was injected this step.
      return (insitu ? insitu_cost_ : intransit_cost_).empty()
                 ? config_.prior_cost
                 : (insitu ? insitu_cost_ : intransit_cost_).value();
  }
  XL_UNREACHABLE("unknown estimator kind");
}

double Monitor::estimate_analysis_seconds(Placement placement, std::size_t cells,
                                          int cores) const {
  XL_REQUIRE(cores >= 1, "need at least one core");
  if (config_.estimator == EstimatorKind::Oracle) {
    if (placement == Placement::InSitu && oracle_insitu_) return *oracle_insitu_;
    if (placement == Placement::InTransit && oracle_intransit_) return *oracle_intransit_;
  }
  const double eff_cores = std::pow(static_cast<double>(cores), config_.parallel_efficiency);
  return normalized_cost(placement) * static_cast<double>(cells) / eff_cores;
}

double Monitor::estimate_sim_seconds(std::size_t cells) const {
  if (last_sim_cells_ == 0 || last_sim_seconds_ <= 0.0) {
    // No usable observation yet: a prior_cost-scaled estimate, mirroring
    // estimate_analysis_seconds' cold start, so the resource policy's eq. 9
    // balance never sees a zero next-step time on the first sampling step.
    return config_.prior_cost * static_cast<double>(cells);
  }
  return last_sim_seconds_ * static_cast<double>(cells) /
         static_cast<double>(last_sim_cells_);
}

}  // namespace xl::runtime
