#include "runtime/fault.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"

namespace xl::runtime {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "";
    case FaultKind::ServerCrash: return "server-crash";
    case FaultKind::TransferDrop: return "transfer-drop";
    case FaultKind::TransferCorrupt: return "transfer-corrupt";
    case FaultKind::Straggler: return "straggler";
  }
  return "?";
}

std::optional<FaultKind> FaultPlan::transfer_attempt_fault(std::uint64_t transfer,
                                                           int attempt) const {
  const double drop = config_.transfer_drop_rate;
  const double corrupt = config_.transfer_corrupt_rate;
  if (drop + corrupt <= 0.0) return std::nullopt;
  // Counter-keyed stream: one fresh Rng per (transfer, attempt) pair, so the
  // draw is independent of how many other transfers were queried before it.
  Rng rng(config_.seed ^ (transfer * 0xD1342543DE82EF95ull) ^
          ((static_cast<std::uint64_t>(attempt) + 1) * 0x9E3779B97F4A7C15ull));
  const double u = rng.next_double();
  if (u < drop) return FaultKind::TransferDrop;
  if (u < drop + corrupt) return FaultKind::TransferCorrupt;
  return std::nullopt;
}

double FaultPlan::backoff_seconds(int attempt) const noexcept {
  double backoff = config_.retry_backoff_seconds;
  for (int i = 0; i < attempt; ++i) backoff *= config_.backoff_multiplier;
  return backoff;
}

namespace {

bool window_active(const FaultSpec& spec, int step) noexcept {
  if (step < spec.step) return false;
  return spec.duration_steps == 0 || step < spec.step + spec.duration_steps;
}

}  // namespace

int FaultPlan::servers_down_at(int step) const noexcept {
  int down = 0;
  for (const FaultSpec& spec : config_.events) {
    if (spec.kind == FaultKind::ServerCrash && window_active(spec, step)) {
      down += spec.servers;
    }
  }
  return down;
}

int FaultPlan::detected_down_at(int step) const noexcept {
  if (config_.lease_steps <= 0) return servers_down_at(step);
  // A server is declared dead only after missing every heartbeat in the
  // trailing lease window: the min over the window. Steps before 0 have no
  // crashes (window_active is false for step < spec.step), so the min over a
  // window reaching below 0 is 0 — a fresh run starts with nothing declared.
  int declared = servers_down_at(step);
  for (int u = step - config_.lease_steps; u < step; ++u) {
    if (u < 0) return 0;
    const int down = servers_down_at(u);
    if (down < declared) declared = down;
    if (declared == 0) return 0;
  }
  return declared;
}

int FaultPlan::suspected_at(int step) const noexcept {
  return servers_down_at(step) - detected_down_at(step);
}

double FaultPlan::slowdown_at(int step) const noexcept {
  double slowdown = 1.0;
  for (const FaultSpec& spec : config_.events) {
    if (spec.kind == FaultKind::Straggler && window_active(spec, step) &&
        spec.slowdown > slowdown) {
      slowdown = spec.slowdown;
    }
  }
  return slowdown;
}

namespace {

// std::sto* throw exactly std::invalid_argument (no conversion) and
// std::out_of_range (unrepresentable); catch those two specifically — a
// bare catch (...) here once swallowed contract aborts and bad_alloc too.
double spec_to_double(const std::string& v, const std::string& clause) {
  try {
    return std::stod(v);
  } catch (const std::invalid_argument&) {
    throw ContractError("fault spec: bad number in '" + clause + "'");
  } catch (const std::out_of_range& e) {
    throw ContractError("fault spec: number out of range in '" + clause +
                        "': " + e.what());
  }
}

int spec_to_int(const std::string& v, const std::string& clause) {
  try {
    return std::stoi(v);
  } catch (const std::invalid_argument&) {
    throw ContractError("fault spec: bad integer in '" + clause + "'");
  } catch (const std::out_of_range& e) {
    throw ContractError("fault spec: integer out of range in '" + clause +
                        "': " + e.what());
  }
}

/// Split "a:b:c" into up to three fields (later ones optional).
std::vector<std::string> split_fields(const std::string& value) {
  std::vector<std::string> fields;
  std::istringstream ss(value);
  std::string field;
  while (std::getline(ss, field, ':')) fields.push_back(field);
  return fields;
}

}  // namespace

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  std::istringstream ss(spec);
  std::string clause;
  while (std::getline(ss, clause, ';')) {
    if (clause.empty()) continue;
    const auto eq = clause.find('=');
    XL_REQUIRE(eq != std::string::npos,
               "fault spec: expected key=value in '" + clause + "'");
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    XL_REQUIRE(!value.empty(), "fault spec: empty value in '" + clause + "'");

    if (key == "seed") {
      try {
        config.seed = std::stoull(value);
      } catch (const std::invalid_argument&) {
        throw ContractError("fault spec: bad seed in '" + clause + "'");
      } catch (const std::out_of_range& e) {
        throw ContractError("fault spec: seed out of range in '" + clause +
                            "': " + e.what());
      }
    } else if (key == "drop") {
      config.transfer_drop_rate = spec_to_double(value, clause);
    } else if (key == "corrupt") {
      config.transfer_corrupt_rate = spec_to_double(value, clause);
    } else if (key == "retries") {
      config.max_transfer_retries = spec_to_int(value, clause);
    } else if (key == "backoff") {
      config.retry_backoff_seconds = spec_to_double(value, clause);
    } else if (key == "backoff_mult") {
      config.backoff_multiplier = spec_to_double(value, clause);
    } else if (key == "timeout") {
      config.transfer_timeout_seconds = spec_to_double(value, clause);
    } else if (key == "lease") {
      config.lease_steps = spec_to_int(value, clause);
    } else if (key == "crash" || key == "straggler") {
      const auto fields = split_fields(value);
      XL_REQUIRE(!fields.empty() && fields.size() <= 3,
                 "fault spec: '" + key + "' takes STEP[:ARG[:DURATION]]");
      FaultSpec fault;
      fault.step = spec_to_int(fields[0], clause);
      if (key == "crash") {
        fault.kind = FaultKind::ServerCrash;
        if (fields.size() > 1) fault.servers = spec_to_int(fields[1], clause);
        XL_REQUIRE(fault.servers >= 1, "fault spec: crash needs >= 1 server");
      } else {
        fault.kind = FaultKind::Straggler;
        if (fields.size() > 1) fault.slowdown = spec_to_double(fields[1], clause);
        XL_REQUIRE(fault.slowdown >= 1.0, "fault spec: straggler slowdown >= 1");
      }
      if (fields.size() > 2) fault.duration_steps = spec_to_int(fields[2], clause);
      XL_REQUIRE(fault.step >= 0 && fault.duration_steps >= 0,
                 "fault spec: step/duration must be non-negative");
      config.events.push_back(fault);
    } else {
      throw ContractError("fault spec: unknown key '" + key + "'");
    }
  }
  XL_REQUIRE(config.transfer_drop_rate >= 0.0 && config.transfer_drop_rate <= 1.0,
             "fault spec: drop rate in [0,1]");
  XL_REQUIRE(config.transfer_corrupt_rate >= 0.0 &&
                 config.transfer_corrupt_rate <= 1.0,
             "fault spec: corrupt rate in [0,1]");
  XL_REQUIRE(config.max_transfer_retries >= 0, "fault spec: retries >= 0");
  XL_REQUIRE(config.lease_steps >= 0, "fault spec: lease >= 0");
  XL_REQUIRE(config.retry_backoff_seconds >= 0.0, "fault spec: backoff >= 0");
  XL_REQUIRE(config.backoff_multiplier >= 1.0, "fault spec: backoff_mult >= 1");
  return config;
}

}  // namespace xl::runtime
