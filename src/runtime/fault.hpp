// Deterministic fault injection for the staging/transport layers. A FaultPlan
// is a seeded oracle over (transfer, attempt) pairs and per-step staging
// health: the same plan always produces the same crashes, drops, and
// stragglers regardless of the order callers query it, so the analytic and
// discrete-event substrates (and repeated runs) see byte-identical failure
// timelines. The paper's runtime assumes the staging partition never fails;
// this module supplies the missing failure model the recovery paths in the
// middleware/resource policies and the step pipeline react to.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace xl::runtime {

/// Taxonomy of injectable faults.
enum class FaultKind {
  None,             ///< no fault (event records default to this).
  ServerCrash,      ///< staging server(s) die at a step, losing their objects.
  TransferDrop,     ///< a transfer attempt vanishes on the wire (timeout).
  TransferCorrupt,  ///< a transfer attempt arrives corrupt (checksum reject).
  Straggler,        ///< staging cores slowed by a multiplier for a window.
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// One scheduled fault (crash or straggler window).
struct FaultSpec {
  FaultKind kind = FaultKind::ServerCrash;
  int step = 0;            ///< step at which the fault fires.
  int duration_steps = 0;  ///< steps until recovery; 0 = permanent.
  int servers = 1;         ///< ServerCrash: staging cores/servers lost.
  double slowdown = 2.0;   ///< Straggler: multiplier on in-transit time.
};

struct FaultConfig {
  std::uint64_t seed = 0x5EEDFA17u;
  /// Per-attempt probability a transfer is dropped on the wire.
  double transfer_drop_rate = 0.0;
  /// Per-attempt probability a transfer arrives corrupt (and is rejected).
  double transfer_corrupt_rate = 0.0;
  /// Retries after the first attempt before a transfer is declared Failed.
  int max_transfer_retries = 3;
  /// Backoff before retry r is base * multiplier^r (exponential backoff).
  double retry_backoff_seconds = 1.0e-3;
  double backoff_multiplier = 2.0;
  /// Detection deadline for a lost attempt; 0 = detected at the modeled wire
  /// time (corrupt data is always detected on arrival).
  double transfer_timeout_seconds = 0.0;
  /// Heartbeat/lease failure detection: steps a server's heartbeat must be
  /// missing before the Monitor declares it dead. 0 = oracle-instant
  /// detection (a crash is acted on at the step it fires, the pre-lease
  /// behavior). While a crashed server is inside its lease window it is only
  /// *suspected*: no shed, no repair, but in-flight transfers retry against
  /// it once (the put-racing-a-dying-server path).
  int lease_steps = 0;
  std::vector<FaultSpec> events;

  bool enabled() const noexcept {
    return transfer_drop_rate > 0.0 || transfer_corrupt_rate > 0.0 ||
           !events.empty();
  }
};

/// Parse a compact fault spec: semicolon-separated clauses of
///   seed=N  drop=P  corrupt=P  retries=N  backoff=S  backoff_mult=X
///   timeout=S  lease=N  crash=STEP[:SERVERS[:DURATION]]
///   straggler=STEP[:SLOW[:DURATION]]
/// e.g. "seed=7;drop=0.1;lease=2;crash=10:2:5". Throws ContractError on bad
/// input.
FaultConfig parse_fault_spec(const std::string& spec);

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config) : config_(config) {}

  bool enabled() const noexcept { return config_.enabled(); }
  const FaultConfig& config() const noexcept { return config_; }

  /// Stateless draw: does attempt `attempt` of transfer `transfer` fail, and
  /// how? The verdict depends only on (seed, transfer, attempt), never on
  /// query order, so every substrate replays the same failures.
  std::optional<FaultKind> transfer_attempt_fault(std::uint64_t transfer,
                                                  int attempt) const;
  bool transfer_attempt_fails(std::uint64_t transfer, int attempt) const {
    return transfer_attempt_fault(transfer, attempt).has_value();
  }

  /// Exponential backoff before retry `attempt` (base * multiplier^attempt).
  double backoff_seconds(int attempt) const noexcept;

  /// Staging servers down at `step` (sum of the active ServerCrash windows).
  /// This is the GROUND TRUTH the chaos schedule defines; the runtime only
  /// learns of a crash once the lease expires (detected_down_at).
  int servers_down_at(int step) const noexcept;

  /// Servers the heartbeat monitor has DECLARED dead by `step`: the minimum
  /// of servers_down_at over the trailing lease window [step - lease_steps,
  /// step] — a server counts only once its heartbeat has been missing for
  /// the full window. Equals servers_down_at when lease_steps == 0. A
  /// closed-form min (not a stateful sampler), so both substrates and every
  /// rerun see the identical detection timeline.
  int detected_down_at(int step) const noexcept;

  /// Servers crashed but still inside their lease window at `step`
  /// (servers_down_at - detected_down_at); always 0 when lease_steps == 0.
  int suspected_at(int step) const noexcept;

  /// Straggler multiplier on in-transit execution at `step` (>= 1; max of the
  /// active Straggler windows).
  double slowdown_at(int step) const noexcept;

 private:
  FaultConfig config_;
};

}  // namespace xl::runtime
