#include "runtime/resource_policy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xl::runtime {

ResourceDecision select_intransit_cores(const ResourceInputs& in) {
  XL_REQUIRE(in.mem_per_core > 0, "staging cores need memory");
  XL_REQUIRE(in.min_cores >= 1, "need at least one staging core");
  XL_REQUIRE(in.max_cores >= in.min_cores, "max cores below min cores");
  XL_REQUIRE(static_cast<bool>(in.intransit_seconds), "need an in-transit time estimator");
  XL_REQUIRE(in.cores_down >= 0, "cores_down must be non-negative");
  XL_REQUIRE(in.slowdown >= 1.0, "slowdown multiplier must be >= 1");

  // Dead staging cores shrink the pool the policy may allocate from.
  const int max_cores = std::max(in.min_cores, in.max_cores - in.cores_down);

  ResourceDecision d;
  // Eq. 10: enough aggregate staging memory to cache S_data.
  const auto mem_cores = static_cast<int>(
      (in.data_bytes + in.mem_per_core - 1) / in.mem_per_core);
  d.memory_floor_cores = std::clamp(std::max(mem_cores, in.min_cores), in.min_cores,
                                    max_cores);

  // Eq. 9: grow M until T_intransit(M) + T_recv <= T_{i+1}_sim + T_sd.
  const double budget = in.next_sim_seconds + in.send_seconds;
  int m = d.memory_floor_cores;
  // Doubling then binary search keeps this O(log max_cores) even for the
  // 16K-core experiments. (slowdown == 1.0 multiplies exactly, so the
  // fault-free path is bit-identical to the unfaulted policy.)
  auto meets = [&](int cores) {
    return in.intransit_seconds(cores) * in.slowdown + in.recv_seconds <= budget;
  };
  if (!meets(m)) {
    int lo = m, hi = m;
    while (hi < max_cores && !meets(hi)) {
      lo = hi;
      hi = std::min(max_cores, hi * 2);
    }
    if (!meets(hi)) {
      d.cores = max_cores;
      d.deadline_met = false;
      return d;
    }
    // Smallest M in (lo, hi] meeting the deadline.
    while (lo + 1 < hi) {
      const int mid = lo + (hi - lo) / 2;
      (meets(mid) ? hi : lo) = mid;
    }
    m = hi;
  }
  d.cores = m;
  return d;
}

}  // namespace xl::runtime
