// The Adaptation Engine (paper §3, Fig. 2/3): on each monitoring sample it
// asks the cross-layer planner which mechanisms serve the user objective,
// executes them leaves-to-roots, and returns the combined decisions. The
// engine is purely functional over an OperationalState snapshot plus
// estimator hooks, so the same engine drives the in-process workflow, the
// machine-scale DES workflow, and the unit tests.
#pragma once

#include <functional>
#include <optional>

#include "runtime/app_policy.hpp"
#include "runtime/crosslayer.hpp"
#include "runtime/middleware_policy.hpp"
#include "runtime/monitor.hpp"
#include "runtime/resource_policy.hpp"
#include "runtime/state.hpp"

namespace xl::runtime {

struct EngineDecisions;

/// Estimator callbacks the engine needs; typically bound to the Monitor and
/// the transport's transfer model.
struct EngineHooks {
  /// T_analysis(placement, cells, cores) — usually Monitor::estimate_analysis_seconds.
  std::function<double(Placement, std::size_t, int)> analysis_seconds;
  /// T_sd(bytes): send latency from simulation to staging.
  std::function<double(std::size_t)> send_seconds;
  /// T_recv(bytes, staging_cores): receive latency on the staging side; it
  /// scales with M because M staging cores span M/cores_per_node NICs.
  std::function<double(std::size_t, int)> recv_seconds;
  /// T_{i+1}_sim(cells): next simulation step estimate.
  std::function<double(std::size_t)> next_sim_seconds;
  /// Scratch memory an in-situ analysis of `bytes` of data needs.
  std::function<std::size_t(std::size_t)> insitu_analysis_mem;
  /// Optional observer fired after every adapt() with the state it saw and
  /// the decisions it produced — the engine's tap into the workflow's
  /// structured event stream (unset hooks are simply skipped).
  std::function<void(const OperationalState&, const EngineDecisions&)> on_decisions;
};

/// Which single-layer mechanisms are enabled. The §5.2.2 "local middleware
/// adaptation" run enables only the middleware layer; the §5.2.4 "global"
/// run enables all three through the planner.
struct EngineConfig {
  UserPreferences preferences;
  UserHints hints;
  bool enable_application = true;
  bool enable_middleware = true;
  bool enable_resource = true;
  /// Root-leaf execution order (ablation knob; the paper uses LeavesThenRoots).
  PlanOrder plan_order = PlanOrder::LeavesThenRoots;
  AppPolicyConfig app_policy;
  /// Resource-layer bounds on M.
  int min_intransit_cores = 1;
  int max_intransit_cores = 1 << 20;
};

struct EngineDecisions {
  std::vector<Layer> executed;            ///< layers run, in execution order.
  std::optional<AppDecision> app;         ///< set when the application layer ran.
  std::optional<ResourceDecision> resource;
  std::optional<MiddlewareDecision> middleware;

  /// Data size/cells after the application layer (raw values when it didn't run).
  std::size_t effective_bytes = 0;
  std::size_t effective_cells = 0;
  /// In-transit cores after the resource layer (state's M when it didn't run).
  int intransit_cores = 0;
};

class AdaptationEngine {
 public:
  AdaptationEngine(const EngineConfig& config, EngineHooks hooks);

  /// Run the adaptation for one monitoring sample.
  EngineDecisions adapt(const OperationalState& state) const;

  const EngineConfig& config() const noexcept { return config_; }

 private:
  void run_application(const OperationalState& state, EngineDecisions& out) const;
  void run_resource(const OperationalState& state, EngineDecisions& out) const;
  void run_middleware(const OperationalState& state, EngineDecisions& out) const;

  EngineConfig config_;
  EngineHooks hooks_;
  CrossLayerPlanner planner_;
};

}  // namespace xl::runtime
