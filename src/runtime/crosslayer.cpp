#include "runtime/crosslayer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xl::runtime {

const char* layer_name(Layer layer) noexcept {
  switch (layer) {
    case Layer::Application: return "application";
    case Layer::Middleware: return "middleware";
    case Layer::Resource: return "resource";
  }
  return "?";
}

CrossLayerPlanner CrossLayerPlanner::standard() {
  std::vector<MechanismInfo> mechanisms;
  mechanisms.push_back(MechanismInfo{
      Layer::Application,
      "data-resolution",
      {Objective::MinimizeDataMovement},
      {},
      {Quantity::DataSize}});
  mechanisms.push_back(MechanismInfo{
      Layer::Middleware,
      "analysis-placement",
      {Objective::MinimizeTimeToSolution},
      {Quantity::DataSize, Quantity::IntransitCores, Quantity::StagingHealth,
       Quantity::RepairBacklog},
      {Quantity::PlacementDecision}});
  mechanisms.push_back(MechanismInfo{
      Layer::Resource,
      "intransit-allocation",
      {Objective::MaximizeResourceUtilization},
      {Quantity::DataSize, Quantity::StagingHealth},
      {Quantity::IntransitCores}});
  return CrossLayerPlanner(std::move(mechanisms));
}

CrossLayerPlanner::CrossLayerPlanner(std::vector<MechanismInfo> mechanisms)
    : mechanisms_(std::move(mechanisms)) {
  XL_REQUIRE(!mechanisms_.empty(), "planner needs at least one mechanism");
}

std::vector<Layer> CrossLayerPlanner::plan(Objective objective, PlanOrder order) const {
  const std::size_t n = mechanisms_.size();

  // Step 1: roots share the cross-layer objective.
  std::vector<bool> selected(n, false);
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& objs = mechanisms_[i].objectives;
    if (std::find(objs.begin(), objs.end(), objective) != objs.end()) {
      selected[i] = true;
      roots.push_back(i);
    }
  }

  // Step 2: walk the roots' inputs transitively; producers become leaves.
  std::vector<std::size_t> frontier = roots;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.back();
    frontier.pop_back();
    for (Quantity needed : mechanisms_[cur].inputs) {
      for (std::size_t j = 0; j < n; ++j) {
        if (selected[j]) continue;
        const auto& outs = mechanisms_[j].outputs;
        if (std::find(outs.begin(), outs.end(), needed) != outs.end()) {
          selected[j] = true;
          frontier.push_back(j);
        }
      }
    }
  }

  // Step 3: topological order by data dependency (producer before consumer)
  // among the selected mechanisms. Kahn's algorithm; ties resolve in registry
  // order, which keeps plans deterministic.
  std::vector<std::size_t> indegree(n, 0);
  auto depends_on = [&](std::size_t consumer, std::size_t producer) {
    for (Quantity q : mechanisms_[consumer].inputs) {
      const auto& outs = mechanisms_[producer].outputs;
      if (std::find(outs.begin(), outs.end(), q) != outs.end()) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!selected[i]) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || !selected[j]) continue;
      if (depends_on(i, j)) ++indegree[i];
    }
  }
  std::vector<Layer> plan_order;
  std::vector<bool> done(n, false);
  for (std::size_t emitted = 0;;) {
    bool progressed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!selected[i] || done[i] || indegree[i] != 0) continue;
      plan_order.push_back(mechanisms_[i].layer);
      done[i] = true;
      ++emitted;
      for (std::size_t k = 0; k < n; ++k) {
        if (selected[k] && !done[k] && depends_on(k, i)) --indegree[k];
      }
      progressed = true;
    }
    if (!progressed) {
      // Either everything is emitted or a dependency cycle remains.
      std::size_t selected_count = 0;
      for (std::size_t i = 0; i < n; ++i) selected_count += selected[i] ? 1 : 0;
      XL_CHECK(emitted == selected_count, "mechanism dependency cycle");
      break;
    }
  }

  switch (order) {
    case PlanOrder::LeavesThenRoots:
      return plan_order;  // topological order IS leaves -> roots.
    case PlanOrder::RootsThenLeaves:
      std::reverse(plan_order.begin(), plan_order.end());
      return plan_order;
    case PlanOrder::Unordered: {
      // Registry order, ignoring dependencies (the uncoordinated ablation).
      std::vector<Layer> unordered;
      for (std::size_t i = 0; i < n; ++i) {
        if (selected[i]) unordered.push_back(mechanisms_[i].layer);
      }
      return unordered;
    }
  }
  XL_UNREACHABLE("unknown plan order");
}

}  // namespace xl::runtime
