// The Monitor (paper §3): samples runtime status at the three layers every k
// simulation steps and provides the execution-time estimators the middleware
// policy's eq. 7 needs. Estimation is history-based: per-cell kernel costs
// are tracked with an EWMA (or last-value / injected-oracle for the ablation
// bench) and scaled by the current data size and core count.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "runtime/state.hpp"
#include "runtime/trigger.hpp"

namespace xl::runtime {

/// One completed analysis observation.
struct AnalysisSample {
  int step = 0;
  Placement placement = Placement::InSitu;
  std::size_t cells = 0;
  int cores = 1;
  double seconds = 0.0;
};

enum class EstimatorKind { Ewma, LastValue, Oracle };

struct MonitorConfig {
  int sampling_period = 1;   ///< monitor every k steps (Fig. 3's cadence).
  EstimatorKind estimator = EstimatorKind::Ewma;
  double ewma_alpha = 0.5;
  /// Parallel-efficiency exponent used to normalize observations taken at
  /// different core counts: seconds ~ cells / cores^eff.
  double parallel_efficiency = 0.95;
  /// Seed estimate used before any observation exists (seconds per cell per
  /// effective core).
  double prior_cost = 1.0e-7;
  /// Sampling-step selection: fixed k-step cadence (default, byte-identical
  /// to the paper's Fig. 3 monitor) or the indicator/percentile trigger.
  TriggerConfig trigger;
};

class Monitor {
 public:
  explicit Monitor(const MonitorConfig& config = {});

  const MonitorConfig& config() const noexcept { return config_; }

  /// Arm the sampling gate for `step` from this step's cheap field
  /// statistics. FixedPeriod policy ignores the inputs and keeps the k-step
  /// cadence; Percentile/Hybrid run the TriggerDetector. Must be called in
  /// step order, once per step, before should_sample(step) is consulted.
  TriggerDecision observe_step(int step, const TriggerInputs& inputs);

  /// Is `step` a sampling step (adaptations only trigger on these)? Under
  /// the trigger policies this reads the decision observe_step armed for
  /// `step`; a step that was never observed is not a sampling step.
  bool should_sample(int step) const noexcept {
    if (config_.trigger.policy == TriggerPolicy::FixedPeriod) {
      return step % config_.sampling_period == 0;
    }
    return armed_step_ == step && armed_fire_;
  }

  const TriggerDetector& trigger() const noexcept { return trigger_; }

  /// Record a finished analysis execution.
  void record_analysis(const AnalysisSample& sample);

  /// Record a simulation step duration together with the cell count it
  /// advanced (the estimator scales by the cell ratio).
  void record_sim_step(int step, double seconds, std::size_t cells);

  /// Inject the true upcoming cost (Oracle estimator ablation only). The
  /// injected values hold until clear_oracle(): callers must clear once the
  /// step's decisions consumed them, or a one-step oracle would silently
  /// override the EWMA estimate on every later (possibly off-cadence) call.
  void set_oracle(double insitu_seconds, double intransit_seconds);

  /// Drop any injected oracle values; estimates fall back to the history-
  /// based estimator. No-op when nothing is injected.
  void clear_oracle() noexcept {
    oracle_insitu_.reset();
    oracle_intransit_.reset();
  }

  /// Record the staging partition's liveness for this sampling period (fed by
  /// the fault layer; defaults to all-healthy when never called).
  void record_staging_health(const StagingHealth& health) { staging_health_ = health; }
  const StagingHealth& staging_health() const noexcept { return staging_health_; }

  /// Record one heartbeat sample: `beating` of `total` servers answered at
  /// `step`. A server is DECLARED dead only once it has missed every beat in
  /// the trailing `lease_steps` window (lease_steps = 0: declared the moment
  /// it misses one — oracle-instant detection). Samples must arrive in
  /// non-decreasing step order; out-of-window history is discarded.
  void record_heartbeats(int step, int beating, int total, int lease_steps);

  /// Servers declared dead by the latest heartbeat sample (total - max
  /// beating over the lease window). 0 before any sample.
  int declared_down() const noexcept { return declared_down_; }
  /// Servers missing beats but still inside their lease window.
  int suspected_down() const noexcept { return suspected_down_; }

  /// Estimated in-situ analysis time for `cells` on `cores` (eq. 7's
  /// T_insitu(N, S_data)).
  double estimate_analysis_seconds(Placement placement, std::size_t cells,
                                   int cores) const;

  /// Estimated next simulation step duration (resource policy eq. 9 needs
  /// T_{i+1}_sim); last observation, scaled by the cell ratio. Before the
  /// first record_sim_step observation this falls back to a prior_cost-scaled
  /// estimate (the way estimate_analysis_seconds does) instead of returning
  /// 0.0 — a zero next-step time would unbalance eq. 9 on the first sample.
  double estimate_sim_seconds(std::size_t cells) const;

  std::size_t analysis_observations() const noexcept { return analysis_count_; }

 private:
  double normalized_cost(Placement placement) const;

  MonitorConfig config_;
  Ewma insitu_cost_;     ///< seconds per cell per effective core.
  Ewma intransit_cost_;
  double last_insitu_cost_ = 0.0;
  double last_intransit_cost_ = 0.0;
  bool has_insitu_ = false;
  bool has_intransit_ = false;
  std::optional<double> oracle_insitu_;
  std::optional<double> oracle_intransit_;
  double last_sim_seconds_ = 0.0;
  std::size_t last_sim_cells_ = 0;
  std::size_t analysis_count_ = 0;
  StagingHealth staging_health_;
  /// Trailing heartbeat samples (step, beating), oldest first, pruned to the
  /// lease window of the latest sample.
  std::vector<std::pair<int, int>> heartbeat_samples_;
  int declared_down_ = 0;
  int suspected_down_ = 0;
  TriggerDetector trigger_;
  int armed_step_ = -1;      ///< step the latest observe_step evaluated.
  bool armed_fire_ = false;  ///< its decision (trigger policies only).
};

}  // namespace xl::runtime
