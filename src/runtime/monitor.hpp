// The Monitor (paper §3): samples runtime status at the three layers every k
// simulation steps and provides the execution-time estimators the middleware
// policy's eq. 7 needs. Estimation is history-based: per-cell kernel costs
// are tracked with an EWMA (or last-value / injected-oracle for the ablation
// bench) and scaled by the current data size and core count.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "runtime/state.hpp"

namespace xl::runtime {

/// One completed analysis observation.
struct AnalysisSample {
  int step = 0;
  Placement placement = Placement::InSitu;
  std::size_t cells = 0;
  int cores = 1;
  double seconds = 0.0;
};

enum class EstimatorKind { Ewma, LastValue, Oracle };

struct MonitorConfig {
  int sampling_period = 1;   ///< monitor every k steps (Fig. 3's cadence).
  EstimatorKind estimator = EstimatorKind::Ewma;
  double ewma_alpha = 0.5;
  /// Parallel-efficiency exponent used to normalize observations taken at
  /// different core counts: seconds ~ cells / cores^eff.
  double parallel_efficiency = 0.95;
  /// Seed estimate used before any observation exists (seconds per cell per
  /// effective core).
  double prior_cost = 1.0e-7;
};

class Monitor {
 public:
  explicit Monitor(const MonitorConfig& config = {});

  const MonitorConfig& config() const noexcept { return config_; }

  /// Is `step` a sampling step (adaptations only trigger on these)?
  bool should_sample(int step) const noexcept {
    return step % config_.sampling_period == 0;
  }

  /// Record a finished analysis execution.
  void record_analysis(const AnalysisSample& sample);

  /// Record a simulation step duration together with the cell count it
  /// advanced (the estimator scales by the cell ratio).
  void record_sim_step(int step, double seconds, std::size_t cells);

  /// Inject the true upcoming cost (Oracle estimator ablation only).
  void set_oracle(double insitu_seconds, double intransit_seconds);

  /// Record the staging partition's liveness for this sampling period (fed by
  /// the fault layer; defaults to all-healthy when never called).
  void record_staging_health(const StagingHealth& health) { staging_health_ = health; }
  const StagingHealth& staging_health() const noexcept { return staging_health_; }

  /// Record one heartbeat sample: `beating` of `total` servers answered at
  /// `step`. A server is DECLARED dead only once it has missed every beat in
  /// the trailing `lease_steps` window (lease_steps = 0: declared the moment
  /// it misses one — oracle-instant detection). Samples must arrive in
  /// non-decreasing step order; out-of-window history is discarded.
  void record_heartbeats(int step, int beating, int total, int lease_steps);

  /// Servers declared dead by the latest heartbeat sample (total - max
  /// beating over the lease window). 0 before any sample.
  int declared_down() const noexcept { return declared_down_; }
  /// Servers missing beats but still inside their lease window.
  int suspected_down() const noexcept { return suspected_down_; }

  /// Estimated in-situ analysis time for `cells` on `cores` (eq. 7's
  /// T_insitu(N, S_data)).
  double estimate_analysis_seconds(Placement placement, std::size_t cells,
                                   int cores) const;

  /// Estimated next simulation step duration (resource policy eq. 9 needs
  /// T_{i+1}_sim); last observation, scaled by the cell ratio.
  double estimate_sim_seconds(std::size_t cells) const;

  std::size_t analysis_observations() const noexcept { return analysis_count_; }

 private:
  double normalized_cost(Placement placement) const;

  MonitorConfig config_;
  Ewma insitu_cost_;     ///< seconds per cell per effective core.
  Ewma intransit_cost_;
  double last_insitu_cost_ = 0.0;
  double last_intransit_cost_ = 0.0;
  bool has_insitu_ = false;
  bool has_intransit_ = false;
  std::optional<double> oracle_insitu_;
  std::optional<double> oracle_intransit_;
  double last_sim_seconds_ = 0.0;
  std::size_t last_sim_cells_ = 0;
  std::size_t analysis_count_ = 0;
  StagingHealth staging_health_;
  /// Trailing heartbeat samples (step, beating), oldest first, pruned to the
  /// lease window of the latest sample.
  std::vector<std::pair<int, int>> heartbeat_samples_;
  int declared_down_ = 0;
  int suspected_down_ = 0;
};

}  // namespace xl::runtime
