#include "runtime/trigger.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace xl::runtime {

const char* trigger_policy_name(TriggerPolicy policy) noexcept {
  switch (policy) {
    case TriggerPolicy::FixedPeriod: return "fixed";
    case TriggerPolicy::Percentile: return "percentile";
    case TriggerPolicy::Hybrid: return "hybrid";
  }
  return "?";
}

TriggerDetector::TriggerDetector(const TriggerConfig& config) : config_(config) {
  XL_REQUIRE(config.quantile > 0.0 && config.quantile < 1.0,
             "trigger quantile must be in (0, 1)");
  XL_REQUIRE(config.window >= 2, "trigger window must hold at least 2 samples");
  XL_REQUIRE(config.sample_rate > 0.0 && config.sample_rate <= 1.0,
             "trigger sample rate must be in (0, 1]");
  XL_REQUIRE(config.max_interval >= 1, "trigger max interval must be >= 1");
}

bool TriggerDetector::sampling_draw(int step) const {
  if (config_.sample_rate >= 1.0) return true;
  // Counter-keyed stream: one fresh Rng per step, so the draw depends only on
  // (seed, step) — reruns and both substrates replay the identical window.
  Rng rng(config_.seed ^ (static_cast<std::uint64_t>(step) * 0xD1342543DE82EF95ull) ^
          0x9E3779B97F4A7C15ull);
  return rng.next_double() < config_.sample_rate;
}

double TriggerDetector::indicator_of(const TriggerInputs& inputs) const {
  // Three normalized relative-change signals; the indicator is their max so a
  // shock visible in ANY of them arms the trigger. Each is |delta| / previous
  // magnitude (clamped away from zero), so the indicator is scale-free and a
  // quiescent phase pins it at exactly 0.
  const double prev_cells =
      std::max(1.0, static_cast<double>(std::llabs(prev_.tagged_cells)));
  const double cell_growth =
      std::abs(static_cast<double>(inputs.tagged_cells - prev_.tagged_cells)) /
      prev_cells;
  const double prev_bytes = std::max(
      1.0, static_cast<double>(prev_.staged_bytes));
  const double delta_bytes =
      inputs.staged_bytes >= prev_.staged_bytes
          ? static_cast<double>(inputs.staged_bytes - prev_.staged_bytes)
          : static_cast<double>(prev_.staged_bytes - inputs.staged_bytes);
  const double bytes_slope = delta_bytes / prev_bytes;
  const double entropy_delta =
      std::abs(inputs.structure_entropy - prev_.structure_entropy);
  return std::max({cell_growth, bytes_slope, entropy_delta});
}

TriggerDecision TriggerDetector::observe(int step, const TriggerInputs& inputs) {
  TriggerDecision decision;
  decision.indicator = has_prev_ ? indicator_of(inputs) : 0.0;

  bool armed;
  if (!has_prev_ || window_.empty()) {
    // No history to justify suppression: the first step (and every step until
    // the percentile estimator holds at least one sample) fires.
    armed = true;
  } else {
    // Trailing quantile of the sampled window; strict > so an all-equal
    // quiescent window never triggers on its own noise floor.
    SampleSet trailing;
    for (double v : window_) trailing.add(v);
    decision.threshold = trailing.quantile(config_.quantile);
    armed = decision.indicator > decision.threshold;
  }
  decision.capped = config_.policy == TriggerPolicy::Hybrid && !armed &&
                    steps_since_fire_ + 1 >= config_.max_interval;
  decision.fire = armed || decision.capped;

  // The window is updated AFTER the threshold test (the current indicator
  // never competes against itself).
  decision.sampled = sampling_draw(step);
  if (decision.sampled) {
    window_.push_back(decision.indicator);
    while (window_.size() > static_cast<std::size_t>(config_.window)) {
      window_.pop_front();
    }
  }

  has_prev_ = true;
  prev_ = inputs;
  if (decision.fire) {
    ++triggers_fired_;
    steps_since_fire_ = 0;
  } else {
    ++steps_suppressed_;
    ++steps_since_fire_;
  }
  return decision;
}

}  // namespace xl::runtime
