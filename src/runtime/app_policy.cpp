#include "runtime/app_policy.hpp"

#include <algorithm>

#include "analysis/entropy.hpp"
#include "common/contract.hpp"
#include "common/error.hpp"

namespace xl::runtime {

namespace {

AppDecision decision_for(int factor, std::size_t raw_cells, int ncomp,
                         const AppPolicyConfig& config) {
  AppDecision d;
  d.factor = factor;
  d.reduced_bytes = analysis::reduced_bytes(raw_cells, ncomp, factor);
  d.scratch_bytes =
      analysis::reduction_scratch_bytes(raw_cells, ncomp, factor, config.method);
  return d;
}

}  // namespace

AppDecision select_downsample_factor(const std::vector<int>& acceptable,
                                     std::size_t raw_cells, int ncomp,
                                     std::size_t mem_available_bytes,
                                     const AppPolicyConfig& config) {
  XL_REQUIRE(!acceptable.empty(), "acceptable factor set must be non-empty");
  XL_REQUIRE(std::is_sorted(acceptable.begin(), acceptable.end()),
             "acceptable factors must be sorted ascending");
  XL_REQUIRE(acceptable.front() >= 1, "factors must be >= 1");
  const auto budget = f2s(config.memory_headroom *
                          static_cast<double>(mem_available_bytes));
  // Eq. 1-3: the smallest X (highest retained resolution) whose reduction
  // fits the memory constraint (eq. 2).
  for (int factor : acceptable) {
    AppDecision d = decision_for(factor, raw_cells, ncomp, config);
    if (d.scratch_bytes <= budget) return d;
  }
  AppDecision d = decision_for(acceptable.back(), raw_cells, ncomp, config);
  d.memory_constrained = true;
  return d;
}

AppDecision select_factor_by_entropy(double block_entropy,
                                     const std::vector<double>& thresholds,
                                     const std::vector<int>& acceptable,
                                     std::size_t raw_cells, int ncomp,
                                     std::size_t mem_available_bytes,
                                     const AppPolicyConfig& config) {
  // Bucket by thresholds (ascending): entropy above the top threshold keeps
  // the smallest factor; each threshold crossed downward moves one rung up
  // the acceptable ladder, clamped to its length. Unlike
  // analysis::factor_for_entropy this tolerates ladders of any length
  // relative to the threshold list (user hints are free-form) — but the rung
  // walk still assumes ascending thresholds, so an unsorted hint would
  // silently mis-bucket.
  XL_REQUIRE(!acceptable.empty(), "acceptable factor set must be non-empty");
  XL_REQUIRE(std::is_sorted(thresholds.begin(), thresholds.end()),
             "entropy thresholds must be sorted ascending");
  std::size_t rung = 0;
  for (std::size_t t = thresholds.size(); t-- > 0;) {
    if (block_entropy >= thresholds[t]) break;
    ++rung;
  }
  const int wanted = acceptable[std::min(rung, acceptable.size() - 1)];
  // Memory can only push the factor further up the ladder, never down.
  std::vector<int> allowed;
  for (int f : acceptable) {
    if (f >= wanted) allowed.push_back(f);
  }
  XL_CHECK(!allowed.empty(), "factor ladder lost its own member");
  return select_downsample_factor(allowed, raw_cells, ncomp, mem_available_bytes,
                                  config);
}

}  // namespace xl::runtime
