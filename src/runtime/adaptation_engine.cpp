#include "runtime/adaptation_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace xl::runtime {

AdaptationEngine::AdaptationEngine(const EngineConfig& config, EngineHooks hooks)
    : config_(config), hooks_(std::move(hooks)), planner_(CrossLayerPlanner::standard()) {
  XL_REQUIRE(static_cast<bool>(hooks_.analysis_seconds), "engine needs analysis estimator");
  XL_REQUIRE(static_cast<bool>(hooks_.send_seconds), "engine needs send estimator");
  XL_REQUIRE(static_cast<bool>(hooks_.recv_seconds), "engine needs recv estimator");
  XL_REQUIRE(static_cast<bool>(hooks_.next_sim_seconds), "engine needs sim estimator");
  XL_REQUIRE(static_cast<bool>(hooks_.insitu_analysis_mem),
             "engine needs in-situ analysis memory model");
}

EngineDecisions AdaptationEngine::adapt(const OperationalState& state) const {
  EngineDecisions out;
  out.effective_bytes = state.raw_bytes;
  out.effective_cells = state.raw_cells;
  out.intransit_cores = state.intransit_cores;

  std::vector<Layer> plan = planner_.plan(config_.preferences.objective,
                                          config_.plan_order);
  for (Layer layer : plan) {
    const bool enabled = (layer == Layer::Application && config_.enable_application) ||
                         (layer == Layer::Middleware && config_.enable_middleware) ||
                         (layer == Layer::Resource && config_.enable_resource);
    if (!enabled) continue;
    switch (layer) {
      case Layer::Application: run_application(state, out); break;
      case Layer::Resource: run_resource(state, out); break;
      case Layer::Middleware: run_middleware(state, out); break;
    }
    out.executed.push_back(layer);
  }
  if (hooks_.on_decisions) hooks_.on_decisions(state, out);
  return out;
}

void AdaptationEngine::run_application(const OperationalState& state,
                                       EngineDecisions& out) const {
  std::vector<int> factors = config_.hints.factors_at(state.step);
  if (config_.preferences.max_acceptable_factor > 0) {
    std::erase_if(factors, [&](int f) {
      return f > config_.preferences.max_acceptable_factor;
    });
    if (factors.empty()) factors = {config_.preferences.max_acceptable_factor};
  }
  const AppDecision d = select_downsample_factor(
      factors, state.raw_cells, state.ncomp, state.insitu_mem_available,
      config_.app_policy);
  out.app = d;
  out.effective_bytes = d.reduced_bytes;
  const std::size_t f3 =
      static_cast<std::size_t>(d.factor) * d.factor * d.factor;
  out.effective_cells = (state.raw_cells + f3 - 1) / f3;
  XL_LOG_DEBUG("app layer: factor " << d.factor << " reduces "
                                    << state.raw_bytes << "B -> "
                                    << d.reduced_bytes << "B");
}

void AdaptationEngine::run_resource(const OperationalState& state,
                                    EngineDecisions& out) const {
  ResourceInputs in;
  in.data_bytes = out.effective_bytes;
  in.mem_per_core = std::max<std::size_t>(1, state.intransit_mem_per_core);
  in.next_sim_seconds = hooks_.next_sim_seconds(
      state.sim_cells > 0 ? state.sim_cells : state.raw_cells);
  in.send_seconds = hooks_.send_seconds(out.effective_bytes);
  // T_recv depends on M, so it is folded into the per-M estimator below and
  // the flat term zeroed (eq. 9: T_intransit(M) + T_recv <= T_sim + T_sd).
  in.recv_seconds = 0.0;
  in.min_cores = config_.min_intransit_cores;
  in.max_cores = config_.max_intransit_cores;
  in.cores_down = std::min(state.staging_health.servers_down,
                           config_.max_intransit_cores - config_.min_intransit_cores);
  in.slowdown = state.staging_health.slowdown;
  in.intransit_seconds = [this, &out](int cores) {
    return hooks_.analysis_seconds(Placement::InTransit, out.effective_cells, cores) +
           hooks_.recv_seconds(out.effective_bytes, cores);
  };
  const ResourceDecision d = select_intransit_cores(in);
  out.resource = d;
  out.intransit_cores = d.cores;
  XL_LOG_DEBUG("resource layer: M = " << d.cores
                                      << (d.deadline_met ? "" : " (deadline unmet)"));
}

void AdaptationEngine::run_middleware(const OperationalState& state,
                                      EngineDecisions& out) const {
  PlacementInputs in;
  in.data_bytes = out.effective_bytes;
  in.insitu_mem_needed = hooks_.insitu_analysis_mem(out.effective_bytes);
  in.insitu_mem_available = state.insitu_mem_available;
  in.intransit_mem_free = state.intransit_mem_free;
  in.intransit_backlog_seconds = state.intransit_backlog_seconds;
  in.staging_available = !state.staging_health.all_down();
  in.staging_degraded = state.staging_health.degraded();
  in.staging_recovered = state.staging_health.just_recovered;
  in.staging_repairing = state.staging_health.repairing;
  in.est_insitu_seconds =
      hooks_.analysis_seconds(Placement::InSitu, out.effective_cells, state.sim_cores);
  // A fully-down staging partition reports 0 cores; the estimate is moot then
  // (decide_placement returns StagingUnavailable first) but must not trip the
  // estimator's cores >= 1 contract.
  in.est_intransit_seconds = hooks_.analysis_seconds(
      Placement::InTransit, out.effective_cells, std::max(1, out.intransit_cores));
  const MiddlewareDecision d = decide_placement(in);
  out.middleware = d;
  XL_LOG_DEBUG("middleware layer: " << placement_name(d.placement) << " ("
                                    << reason_name(d.reason) << ")");
}

}  // namespace xl::runtime
