// Application-layer adaptation policy (paper §4.1, eqs. 1-3): choose the
// down-sampling factor X for this step's output.
//
// Intent per the paper's §5.2.1 narrative: keep the *highest* spatial
// resolution (smallest X) whose reduction can be performed within the
// available memory; under memory pressure walk up the acceptable-factor
// ladder. Two selectors: the user-defined range-based one (memory-driven)
// and the entropy-based one (information-driven, eq. 11) which picks a factor
// per data block.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/downsample.hpp"
#include "runtime/state.hpp"

namespace xl::runtime {

struct AppPolicyConfig {
  analysis::DownsampleMethod method = analysis::DownsampleMethod::Stride;
  /// Fraction of the reported available memory the reduction may use (leave
  /// headroom for the solver's own transients).
  double memory_headroom = 0.9;
};

struct AppDecision {
  int factor = 1;
  std::size_t reduced_bytes = 0;      ///< f_data_reduce(S_data, X).
  std::size_t scratch_bytes = 0;      ///< Mem_data_reduce(S_data, X).
  bool memory_constrained = false;    ///< true when a larger X was forced.
};

/// Range-based selector. `acceptable` must be sorted ascending (the paper's
/// user hint, e.g. {2,4} or {2,4,8,16}).
/// Picks the smallest X with Mem_data_reduce(S, X) <= headroom * available;
/// if none fits, returns the largest acceptable X (flagged constrained).
AppDecision select_downsample_factor(const std::vector<int>& acceptable,
                                     std::size_t raw_cells, int ncomp,
                                     std::size_t mem_available_bytes,
                                     const AppPolicyConfig& config = {});

/// Entropy-based selector: maps a measured block entropy to a factor using
/// the hint thresholds (ascending) and the acceptable factor ladder.
/// Equivalent to analysis::factor_for_entropy but clamped by memory exactly
/// like the range-based selector.
AppDecision select_factor_by_entropy(double block_entropy,
                                     const std::vector<double>& thresholds,
                                     const std::vector<int>& acceptable,
                                     std::size_t raw_cells, int ncomp,
                                     std::size_t mem_available_bytes,
                                     const AppPolicyConfig& config = {});

}  // namespace xl::runtime
