// Operational state and user inputs of the adaptive runtime (paper §3).
// The Monitor produces OperationalState snapshots; the user supplies
// UserPreferences (objectives) and UserHints (acceptable down-sampling
// factors per phase, entropy thresholds) — the two input kinds Fig. 2 shows.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace xl::runtime {

/// What the user asks the cross-layer adaptation to optimize.
enum class Objective {
  MinimizeTimeToSolution,
  MinimizeDataMovement,
  MaximizeResourceUtilization,
};

const char* objective_name(Objective objective) noexcept;

/// Where an analysis kernel executes (the middleware decision D_i: the paper
/// encodes in-situ as D_i = 1, in-transit as D_i = 0).
enum class Placement { InSitu, InTransit };

const char* placement_name(Placement placement) noexcept;

/// Liveness of the staging partition, fed by the fault layer. All-healthy is
/// the default, so code that never injects faults sees the paper's
/// always-up staging partition.
struct StagingHealth {
  int servers_total = 0;   ///< configured staging cores/servers.
  int servers_down = 0;    ///< declared dead (lease expired; acted on).
  /// Crashed but still inside the heartbeat lease window: the Monitor has
  /// missed beats but not yet declared them. Suspected servers still count as
  /// alive for capacity/shed purposes; transfers racing them retry.
  int servers_suspected = 0;
  double slowdown = 1.0;   ///< straggler multiplier on in-transit time (>= 1).
  /// True on the first sample after servers_down returned to 0 (the
  /// recovery edge the middleware policy re-admits in-transit work on).
  bool just_recovered = false;
  /// True while background anti-entropy re-replication traffic is in flight
  /// (repair competes with workflow traffic for the staging partition).
  bool repairing = false;

  int servers_alive() const noexcept { return servers_total - servers_down; }
  bool degraded() const noexcept { return servers_down > 0 || slowdown > 1.0; }
  bool all_down() const noexcept {
    return servers_total > 0 && servers_down >= servers_total;
  }
};

/// Snapshot of the system the Monitor hands the Adaptation Engine each
/// monitoring period.
struct OperationalState {
  int step = 0;
  double now_seconds = 0.0;  ///< simulated (or wall) time of the sample.

  // Application layer signals.
  std::size_t sim_cells = 0;        ///< total cells the solver advanced (all levels).
  std::size_t raw_cells = 0;        ///< cells the analysis consumes this step.
  std::size_t raw_bytes = 0;        ///< S_data before any reduction.
  int ncomp = 1;

  // Resource layer signals (simulation side).
  int sim_cores = 1;                           ///< N.
  std::size_t insitu_mem_available = 0;        ///< min over ranks of free bytes.

  // Resource layer signals (staging side).
  int intransit_cores = 0;                     ///< current M.
  std::size_t intransit_mem_free = 0;
  std::size_t intransit_mem_per_core = 0;
  double intransit_backlog_seconds = 0.0;  ///< time until staging cores go idle.
  StagingHealth staging_health;            ///< fault-layer liveness signal.

  // Timing signals.
  double last_sim_step_seconds = 0.0;  ///< T_i_sim.
};

/// User preferences: the objective plus hard knobs.
struct UserPreferences {
  Objective objective = Objective::MinimizeTimeToSolution;
  /// Floor on analysis resolution: factors above this are never selected even
  /// under memory pressure (0 = no floor).
  int max_acceptable_factor = 0;
};

/// A phase of acceptable down-sampling factors (paper §5.2.1 uses {2,4} for
/// the first half of the run and {2,4,8,16} for the second).
struct FactorPhase {
  int first_step = 0;                ///< phase applies from this step on.
  std::vector<int> factors;          ///< acceptable X values, sorted ascending.
};

/// User hints: application knowledge the engine cannot infer.
struct UserHints {
  std::vector<FactorPhase> factor_phases{{0, {1}}};
  /// Entropy thresholds (bits, ascending) for the automatic selector; empty
  /// disables entropy-based selection.
  std::vector<double> entropy_thresholds;

  /// The factor set active at `step`.
  const std::vector<int>& factors_at(int step) const {
    XL_REQUIRE(!factor_phases.empty(), "hints must define at least one phase");
    const FactorPhase* active = &factor_phases.front();
    for (const FactorPhase& phase : factor_phases) {
      if (step >= phase.first_step) active = &phase;
    }
    return active->factors;
  }
};

}  // namespace xl::runtime
