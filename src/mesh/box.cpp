#include "mesh/box.hpp"

namespace xl::mesh {

Box Box::chop(int dim, int at) {
  XL_REQUIRE(dim >= 0 && dim < kDim, "chop dimension out of range");
  XL_REQUIRE(at > lo_[dim] && at <= hi_[dim], "chop plane must cut strictly inside");
  IntVect lo_hi = hi_;
  lo_hi[dim] = at - 1;
  const Box lower(lo_, lo_hi);
  lo_[dim] = at;
  return lower;
}

void Box::subtract(const Box& o, std::vector<Box>& out) const {
  const Box overlap = *this & o;
  if (overlap.empty()) {
    if (!empty()) out.push_back(*this);
    return;
  }
  if (overlap == *this) return;  // fully covered
  // Peel one slab per face of the overlap, dimension by dimension. The slabs
  // are pairwise disjoint and together with `overlap` tile *this.
  Box rest = *this;
  for (int d = 0; d < kDim; ++d) {
    if (rest.lo_[d] < overlap.lo()[d]) {
      IntVect hi = rest.hi_;
      hi[d] = overlap.lo()[d] - 1;
      out.emplace_back(rest.lo_, hi);
      rest.lo_[d] = overlap.lo()[d];
    }
    if (rest.hi_[d] > overlap.hi()[d]) {
      IntVect lo = rest.lo_;
      lo[d] = overlap.hi()[d] + 1;
      out.emplace_back(lo, rest.hi_);
      rest.hi_[d] = overlap.hi()[d];
    }
  }
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  if (b.empty()) return os << "[empty]";
  return os << "[" << b.lo() << ".." << b.hi() << "]";
}

}  // namespace xl::mesh
