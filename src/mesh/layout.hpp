// Disjoint box layouts: the set of boxes tiling one AMR level together with
// their rank assignment (Chombo's DisjointBoxLayout + LoadBalance).
//
// Two balancers are provided:
//  * Morton-ordered round-robin (locality-preserving, Chombo's default), and
//  * LPT knapsack on per-box cell counts (better balance, worse locality).
// The choice is an experiment knob because load imbalance is precisely what
// drives the paper's Fig. 1 memory profile.
#pragma once

#include <cstdint>
#include <vector>

#include "common/lookup.hpp"
#include "mesh/box.hpp"

namespace xl::mesh {

enum class BalanceMethod { MortonRoundRobin, KnapsackLpt };

class BoxLayout {
 public:
  /// Layouts at or below this box count get a pairwise disjointness check at
  /// construction; larger ones are trusted (they come from decompose() /
  /// berger_rigoutsos(), disjoint by construction).
  static constexpr std::size_t kVerifyDisjointLimit = 512;

  BoxLayout() = default;

  /// Boxes must be pairwise disjoint (checked up to kVerifyDisjointLimit) and
  /// each is assigned a rank in [0, nranks).
  BoxLayout(std::vector<Box> boxes, std::vector<int> ranks, int nranks);

  std::size_t num_boxes() const noexcept { return boxes_.size(); }
  int num_ranks() const noexcept { return nranks_; }
  const Box& box(std::size_t i) const { return at_index(boxes_, i, "BoxLayout::box"); }
  int rank_of(std::size_t i) const { return at_index(ranks_, i, "BoxLayout::rank_of"); }
  const std::vector<Box>& boxes() const noexcept { return boxes_; }

  /// Total cells across all boxes.
  std::int64_t total_cells() const noexcept;

  /// Cells assigned to each rank (size nranks). Ranks with no boxes get 0.
  std::vector<std::int64_t> cells_per_rank() const;

  /// Max-over-mean cell imbalance; 1.0 is perfect.
  double imbalance() const;

  /// Indices of boxes owned by `rank`.
  std::vector<std::size_t> boxes_of_rank(int rank) const;

  /// Union bounding box.
  Box bounding_box() const noexcept;

 private:
  std::vector<Box> boxes_;
  std::vector<int> ranks_;
  int nranks_ = 0;
};

/// Chop `domain` into boxes no larger than `max_box_size` cells per side.
std::vector<Box> decompose(const Box& domain, int max_box_size);

/// Assign `boxes` to `nranks` ranks.
BoxLayout balance(std::vector<Box> boxes, int nranks,
                  BalanceMethod method = BalanceMethod::MortonRoundRobin);

/// Morton (Z-order) key of a lattice point; 21 bits per dimension.
std::uint64_t morton_key(const IntVect& p);

}  // namespace xl::mesh
