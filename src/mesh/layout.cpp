#include "mesh/layout.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <queue>

#include "common/contract.hpp"

namespace xl::mesh {

BoxLayout::BoxLayout(std::vector<Box> boxes, std::vector<int> ranks, int nranks)
    : boxes_(std::move(boxes)), ranks_(std::move(ranks)), nranks_(nranks) {
  XL_REQUIRE(boxes_.size() == ranks_.size(), "one rank per box");
  XL_REQUIRE(nranks_ > 0, "layout needs at least one rank");
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    XL_REQUIRE(!boxes_[i].empty(), "layout contains an empty box");
    XL_REQUIRE(ranks_[i] >= 0 && ranks_[i] < nranks_, "rank out of range");
  }
  // Disjointness is verified pairwise for small layouts (the ones tests and
  // in-process runs build by hand). Large layouts — the machine-scale
  // synthetic runs with 10^4..10^5 boxes — come from decompose() and
  // berger_rigoutsos(), which produce disjoint boxes by construction, and an
  // O(n^2) check would dominate the experiment wall time.
  if (boxes_.size() <= kVerifyDisjointLimit) {
    for (std::size_t i = 0; i < boxes_.size(); ++i) {
      for (std::size_t j = i + 1; j < boxes_.size(); ++j) {
        XL_REQUIRE(!boxes_[i].intersects(boxes_[j]), "layout boxes overlap");
      }
    }
  }
}

std::int64_t BoxLayout::total_cells() const noexcept {
  std::int64_t total = 0;
  for (const Box& b : boxes_) total += b.num_cells();
  return total;
}

std::vector<std::int64_t> BoxLayout::cells_per_rank() const {
  std::vector<std::int64_t> cells(static_cast<std::size_t>(nranks_), 0);
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    cells[static_cast<std::size_t>(ranks_[i])] += boxes_[i].num_cells();
  }
  return cells;
}

double BoxLayout::imbalance() const {
  const auto cells = cells_per_rank();
  const std::int64_t total = std::accumulate(cells.begin(), cells.end(), std::int64_t{0});
  if (total == 0) return 1.0;
  const std::int64_t peak = *std::max_element(cells.begin(), cells.end());
  const double mean = static_cast<double>(total) / static_cast<double>(nranks_);
  return static_cast<double>(peak) / mean;
}

std::vector<std::size_t> BoxLayout::boxes_of_rank(int rank) const {
  std::vector<std::size_t> mine;
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    if (ranks_[i] == rank) mine.push_back(i);
  }
  return mine;
}

Box BoxLayout::bounding_box() const noexcept {
  Box hull;
  for (const Box& b : boxes_) hull = hull.hull(b);
  return hull;
}

std::vector<Box> decompose(const Box& domain, int max_box_size) {
  XL_REQUIRE(max_box_size > 0, "max box size must be positive");
  std::vector<Box> out;
  if (domain.empty()) return out;
  std::vector<Box> work{domain};
  while (!work.empty()) {
    Box b = work.back();
    work.pop_back();
    const int dim = b.longest_dim();
    if (b.size()[dim] <= max_box_size) {
      out.push_back(b);
      continue;
    }
    // Cut at a multiple of max_box_size from the low side so most boxes end up
    // exactly max_box_size long (regular tiling).
    const int at = b.lo()[dim] + max_box_size;
    const Box lower = b.chop(dim, at);
    work.push_back(lower);
    work.push_back(b);
  }
  return out;
}

std::uint64_t morton_key(const IntVect& p) {
  auto spread = [](std::uint64_t x) {
    // Spread the low 21 bits of x so there are two zero bits between each.
    x &= 0x1FFFFF;
    x = (x | (x << 32)) & 0x1F00000000FFFFull;
    x = (x | (x << 16)) & 0x1F0000FF0000FFull;
    x = (x | (x << 8)) & 0x100F00F00F00F00Full;
    x = (x | (x << 4)) & 0x10C30C30C30C30C3ull;
    x = (x | (x << 2)) & 0x1249249249249249ull;
    return x;
  };
  // Offset so negative coordinates (ghost-adjacent boxes) still order sanely.
  constexpr std::uint64_t bias = 1u << 20;
  const auto ux = spread(static_cast<std::uint64_t>(p[0] + static_cast<int>(bias)));
  const auto uy = spread(static_cast<std::uint64_t>(p[1] + static_cast<int>(bias)));
  const auto uz = spread(static_cast<std::uint64_t>(p[2] + static_cast<int>(bias)));
  return ux | (uy << 1) | (uz << 2);
}

namespace {

BoxLayout balance_morton(std::vector<Box> boxes, int nranks) {
  std::vector<std::size_t> order(boxes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return morton_key(boxes[a].lo()) < morton_key(boxes[b].lo());
  });
  // Walk the Morton order accumulating cells; advance to the next rank once
  // the running share exceeds the ideal per-rank share.
  std::int64_t total = 0;
  for (const Box& b : boxes) total += b.num_cells();
  const double share = static_cast<double>(total) / static_cast<double>(nranks);

  std::vector<Box> ordered;
  std::vector<int> ranks;
  ordered.reserve(boxes.size());
  ranks.reserve(boxes.size());
  std::int64_t acc = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Box& b = boxes[order[k]];
    int rank = std::min(nranks - 1, f2i<int>(static_cast<double>(acc) / share));
    acc += b.num_cells();
    ordered.push_back(b);
    ranks.push_back(rank);
  }
  return BoxLayout(std::move(ordered), std::move(ranks), nranks);
}

BoxLayout balance_knapsack(std::vector<Box> boxes, int nranks) {
  // Longest-processing-time: heaviest box goes to the lightest rank.
  std::vector<std::size_t> order(boxes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return boxes[a].num_cells() > boxes[b].num_cells();
  });
  using Load = std::pair<std::int64_t, int>;  // (cells, rank)
  std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
  for (int r = 0; r < nranks; ++r) heap.emplace(0, r);
  std::vector<int> ranks(boxes.size(), 0);
  for (std::size_t idx : order) {
    auto [cells, rank] = heap.top();
    heap.pop();
    ranks[idx] = rank;
    heap.emplace(cells + boxes[idx].num_cells(), rank);
  }
  return BoxLayout(std::move(boxes), std::move(ranks), nranks);
}

}  // namespace

BoxLayout balance(std::vector<Box> boxes, int nranks, BalanceMethod method) {
  XL_REQUIRE(nranks > 0, "need at least one rank");
  switch (method) {
    case BalanceMethod::MortonRoundRobin:
      return balance_morton(std::move(boxes), nranks);
    case BalanceMethod::KnapsackLpt:
      return balance_knapsack(std::move(boxes), nranks);
  }
  XL_UNREACHABLE("unknown balance method");
}

}  // namespace xl::mesh
