// FArrayBox-style dense field storage: `ncomp` double components over the
// cells of a Box, Fortran-ordered (x fastest, component slowest). This is the
// in-memory representation every kernel (Godunov sweeps, marching cubes,
// downsampling, entropy) operates on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mesh/box.hpp"

namespace xl::mesh {

class Fab {
 public:
  Fab() = default;

  Fab(const Box& box, int ncomp, double fill = 0.0)
      : box_(box), ncomp_(ncomp),
        data_(static_cast<std::size_t>(box.num_cells()) * static_cast<std::size_t>(ncomp), fill) {
    XL_REQUIRE(ncomp > 0, "Fab needs at least one component");
    XL_REQUIRE(!box.empty(), "Fab over an empty box");
  }

  const Box& box() const noexcept { return box_; }
  int ncomp() const noexcept { return ncomp_; }
  std::int64_t cells() const noexcept { return box_.num_cells(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool defined() const noexcept { return !data_.empty(); }

  /// Bytes of payload (what staging transfers account).
  std::size_t bytes() const noexcept { return data_.size() * sizeof(double); }

  double& operator()(const IntVect& p, int comp = 0) {
    return data_[offset(p, comp)];
  }
  double operator()(const IntVect& p, int comp = 0) const {
    return data_[offset(p, comp)];
  }

  /// Flat view of one component, Fortran-ordered over the box.
  std::span<double> comp(int c) {
    XL_REQUIRE(c >= 0 && c < ncomp_, "component out of range");
    return {data_.data() + static_cast<std::size_t>(cells()) * static_cast<std::size_t>(c),
            static_cast<std::size_t>(cells())};
  }
  std::span<const double> comp(int c) const {
    XL_REQUIRE(c >= 0 && c < ncomp_, "component out of range");
    return {data_.data() + static_cast<std::size_t>(cells()) * static_cast<std::size_t>(c),
            static_cast<std::size_t>(cells())};
  }

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }

  void set_all(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copy the overlap of `src` (restricted to `region`) into this fab, all
  /// components. Regions outside either box are ignored.
  void copy_from(const Fab& src, const Box& region) {
    XL_REQUIRE(src.ncomp_ == ncomp_, "component count mismatch in copy");
    const Box overlap = box_ & src.box_ & region;
    for (int c = 0; c < ncomp_; ++c) {
      for (BoxIterator it(overlap); it.ok(); ++it) {
        (*this)(*it, c) = src(*it, c);
      }
    }
  }

  /// Copy overlap of src shifted by `shift`: dest(p) = src(p - shift).
  /// Used for periodic ghost exchange where the source box is wrapped.
  void copy_from_shifted(const Fab& src, const Box& dest_region, const IntVect& shift) {
    XL_REQUIRE(src.ncomp_ == ncomp_, "component count mismatch in copy");
    const Box overlap = box_ & dest_region;
    for (int c = 0; c < ncomp_; ++c) {
      for (BoxIterator it(overlap); it.ok(); ++it) {
        const IntVect sp = *it - shift;
        if (src.box_.contains(sp)) (*this)(*it, c) = src(sp, c);
      }
    }
  }

  /// Linearize the overlap of this fab with `region` (all components) into a
  /// contiguous buffer — the wire format the transport layer ships.
  std::vector<double> pack(const Box& region) const;

  /// Inverse of pack(): scatter `buffer` into the overlap with `region`.
  void unpack(const Box& region, std::span<const double> buffer);

 private:
  std::size_t offset(const IntVect& p, int comp) const {
    XL_REQUIRE(comp >= 0 && comp < ncomp_, "component out of range");
    return static_cast<std::size_t>(box_.index_of(p)) +
           static_cast<std::size_t>(cells()) * static_cast<std::size_t>(comp);
  }

  Box box_;
  int ncomp_ = 0;
  std::vector<double> data_;
};

}  // namespace xl::mesh
