// FArrayBox-style dense field storage: `ncomp` double components over the
// cells of a Box, Fortran-ordered (x fastest, component slowest). This is the
// in-memory representation every kernel (Godunov sweeps, marching cubes,
// downsampling, entropy) operates on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "mesh/box.hpp"

namespace xl::mesh {

class Fab {
 public:
  Fab() = default;

  /// The backing store comes from the global BufferPool: in steady state a
  /// per-step Fab recycles the previous step's buffer instead of touching the
  /// heap. The fill fully overwrites the recycled contents, so values are
  /// independent of pool state.
  Fab(const Box& box, int ncomp, double fill = 0.0)
      : box_(box), ncomp_(ncomp),
        data_(BufferPool::global().acquire<double>(
            static_cast<std::size_t>(box.num_cells()) * static_cast<std::size_t>(ncomp))) {
    XL_REQUIRE(ncomp > 0, "Fab needs at least one component");
    XL_REQUIRE(!box.empty(), "Fab over an empty box");
    std::fill(data_.begin(), data_.end(), fill);
  }

  ~Fab() { release_storage(); }

  Fab(const Fab& other)
      : box_(other.box_), ncomp_(other.ncomp_),
        data_(BufferPool::global().acquire<double>(other.data_.size())) {
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
    BufferPool::global().add_copied_bytes(other.bytes());
  }

  Fab& operator=(const Fab& other) {
    if (this != &other) {
      // Acquire before releasing so self-sized assigns can recycle in place
      // and the pool high-water mark reflects the true overlap.
      PoolVec<double> fresh = BufferPool::global().acquire<double>(other.data_.size());
      std::copy(other.data_.begin(), other.data_.end(), fresh.begin());
      BufferPool::global().add_copied_bytes(other.bytes());
      release_storage();
      box_ = other.box_;
      ncomp_ = other.ncomp_;
      data_ = std::move(fresh);
    }
    return *this;
  }

  // Exchange with an empty vector rather than defaulting: the standard only
  // promises a moved-from vector is valid-but-unspecified, and the pool
  // invariant (the source destructor must release nothing) needs it empty.
  Fab(Fab&& other) noexcept
      : box_(other.box_), ncomp_(other.ncomp_),
        data_(std::exchange(other.data_, {})) {}

  Fab& operator=(Fab&& other) noexcept {
    if (this != &other) {
      release_storage();  // a defaulted move-assign would heap-free, bypassing the pool.
      box_ = other.box_;
      ncomp_ = other.ncomp_;
      data_ = std::move(other.data_);
    }
    return *this;
  }

  const Box& box() const noexcept { return box_; }
  int ncomp() const noexcept { return ncomp_; }
  std::int64_t cells() const noexcept { return box_.num_cells(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool defined() const noexcept { return !data_.empty(); }

  /// Bytes of payload (what staging transfers account).
  std::size_t bytes() const noexcept { return data_.size() * sizeof(double); }

  double& operator()(const IntVect& p, int comp = 0) {
    return data_[offset(p, comp)];
  }
  double operator()(const IntVect& p, int comp = 0) const {
    return data_[offset(p, comp)];
  }

  /// Pointer to the contiguous x-row of component `c` at y = j, z = k:
  /// row(c, j, k)[i] is the cell (box().lo()[0] + i, j, k) for
  /// 0 <= i < row_length(). Storage is Fortran-ordered, so the whole row is
  /// one flat stretch of memory — the hot kernels walk it with a single
  /// bounds check here instead of one per cell. Rows of a ghosted fab span
  /// ghost and valid cells alike; callers clip with an x offset
  /// (`row(...) + (sub.lo()[0] - box().lo()[0])`) to address a sub-box row.
  double* row(int c, int j, int k) {
    return data_.data() + offset(IntVect{box_.lo()[0], j, k}, c);
  }
  const double* row(int c, int j, int k) const {
    return data_.data() + offset(IntVect{box_.lo()[0], j, k}, c);
  }

  /// Cells per x-row (the box x extent).
  std::size_t row_length() const noexcept {
    return static_cast<std::size_t>(box_.size()[0]);
  }

  /// Flat view of one component, Fortran-ordered over the box.
  std::span<double> comp(int c) {
    XL_REQUIRE(c >= 0 && c < ncomp_, "component out of range");
    return {data_.data() + static_cast<std::size_t>(cells()) * static_cast<std::size_t>(c),
            static_cast<std::size_t>(cells())};
  }
  std::span<const double> comp(int c) const {
    XL_REQUIRE(c >= 0 && c < ncomp_, "component out of range");
    return {data_.data() + static_cast<std::size_t>(cells()) * static_cast<std::size_t>(c),
            static_cast<std::size_t>(cells())};
  }

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }

  void set_all(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copy the overlap of `src` (restricted to `region`) into this fab, all
  /// components, one memcpy per x-row. Regions outside either box are ignored.
  void copy_from(const Fab& src, const Box& region) {
    XL_REQUIRE(src.ncomp_ == ncomp_, "component count mismatch in copy");
    const Box overlap = box_ & src.box_ & region;
    if (!overlap.empty()) {
      const int x0 = overlap.lo()[0];
      const std::size_t nx = static_cast<std::size_t>(overlap.size()[0]);
      for (int c = 0; c < ncomp_; ++c) {
        for_each_row(overlap, [&](int j, int k) {
          std::memcpy(data_.data() + offset(IntVect{x0, j, k}, c),
                      src.data_.data() + src.offset(IntVect{x0, j, k}, c),
                      nx * sizeof(double));
        });
      }
    }
    BufferPool::global().add_copied_bytes(
        static_cast<std::size_t>(overlap.num_cells()) *
        static_cast<std::size_t>(ncomp_) * sizeof(double));
  }

  /// Copy overlap of src shifted by `shift`: dest(p) = src(p - shift).
  /// Used for periodic ghost exchange where the source box is wrapped. The
  /// per-cell contains() guard of the seed path is the intersection with the
  /// shifted source box, so the active region is copied row by row.
  void copy_from_shifted(const Fab& src, const Box& dest_region, const IntVect& shift) {
    XL_REQUIRE(src.ncomp_ == ncomp_, "component count mismatch in copy");
    const Box active = box_ & dest_region & src.box_.shift(shift);
    if (active.empty()) return;
    const IntVect slo = active.lo() - shift;
    const std::size_t nx = static_cast<std::size_t>(active.size()[0]);
    for (int c = 0; c < ncomp_; ++c) {
      for_each_row(active, [&](int j, int k) {
        std::memcpy(
            data_.data() + offset(IntVect{active.lo()[0], j, k}, c),
            src.data_.data() + src.offset(IntVect{slo[0], j - shift[1], k - shift[2]}, c),
            nx * sizeof(double));
      });
    }
  }

  /// Linearize the overlap of this fab with `region` (all components) into a
  /// contiguous buffer — the wire format the transport layer ships. The
  /// buffer is pool-acquired; callers that keep it only briefly should
  /// release() it back so the wire scratch recycles (plotfile does).
  PoolVec<double> pack(const Box& region) const;

  /// pack() into caller-owned scratch: `buffer` is resized (reusing its
  /// capacity when large enough) and fully overwritten. Callers looping over
  /// many boxes keep one buffer hot instead of allocating per box.
  void pack_into(const Box& region, PoolVec<double>& buffer) const;

  /// Inverse of pack(): scatter `buffer` into the overlap with `region`.
  void unpack(const Box& region, std::span<const double> buffer);

 private:
  void release_storage() noexcept {
    if (!data_.empty() || data_.capacity() != 0) {
      BufferPool::global().release(std::move(data_));
      data_ = {};
    }
  }

  std::size_t offset(const IntVect& p, int comp) const {
    XL_REQUIRE(comp >= 0 && comp < ncomp_, "component out of range");
    return static_cast<std::size_t>(box_.index_of(p)) +
           static_cast<std::size_t>(cells()) * static_cast<std::size_t>(comp);
  }

  Box box_;
  int ncomp_ = 0;
  PoolVec<double> data_;
};

}  // namespace xl::mesh
