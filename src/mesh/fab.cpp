#include "mesh/fab.hpp"

namespace xl::mesh {

std::vector<double> Fab::pack(const Box& region) const {
  std::vector<double> buffer;
  pack_into(region, buffer);
  return buffer;
}

void Fab::pack_into(const Box& region, std::vector<double>& buffer) const {
  const Box overlap = box_ & region;
  const std::size_t n = static_cast<std::size_t>(overlap.num_cells()) *
                        static_cast<std::size_t>(ncomp_);
  buffer.resize(n);
  std::size_t i = 0;
  for (int c = 0; c < ncomp_; ++c) {
    for (BoxIterator it(overlap); it.ok(); ++it) {
      buffer[i++] = (*this)(*it, c);
    }
  }
  BufferPool::global().add_copied_bytes(n * sizeof(double));
}

void Fab::unpack(const Box& region, std::span<const double> buffer) {
  const Box overlap = box_ & region;
  const std::size_t expected = static_cast<std::size_t>(overlap.num_cells()) *
                               static_cast<std::size_t>(ncomp_);
  XL_REQUIRE(buffer.size() == expected, "unpack buffer size mismatch");
  std::size_t i = 0;
  for (int c = 0; c < ncomp_; ++c) {
    for (BoxIterator it(overlap); it.ok(); ++it) {
      (*this)(*it, c) = buffer[i++];
    }
  }
  BufferPool::global().add_copied_bytes(expected * sizeof(double));
}

}  // namespace xl::mesh
