#include "mesh/fab.hpp"

#include <cstring>

namespace xl::mesh {

PoolVec<double> Fab::pack(const Box& region) const {
  const Box overlap = box_ & region;
  // Acquire at wire size so the buffer comes from (and can recycle back to)
  // the pool instead of a fresh heap vector per call; pack_into's resize then
  // never reallocates.
  PoolVec<double> buffer = BufferPool::global().acquire<double>(
      static_cast<std::size_t>(overlap.num_cells()) *
      static_cast<std::size_t>(ncomp_));
  pack_into(region, buffer);
  return buffer;
}

void Fab::pack_into(const Box& region, PoolVec<double>& buffer) const {
  const Box overlap = box_ & region;
  const std::size_t n = static_cast<std::size_t>(overlap.num_cells()) *
                        static_cast<std::size_t>(ncomp_);
  buffer.resize(n);
  if (!overlap.empty()) {
    const int x0 = overlap.lo()[0];
    const std::size_t nx = static_cast<std::size_t>(overlap.size()[0]);
    double* out = buffer.data();
    for (int c = 0; c < ncomp_; ++c) {
      for_each_row(overlap, [&](int j, int k) {
        std::memcpy(out, data_.data() + offset(IntVect{x0, j, k}, c),
                    nx * sizeof(double));
        out += nx;
      });
    }
  }
  BufferPool::global().add_copied_bytes(n * sizeof(double));
}

void Fab::unpack(const Box& region, std::span<const double> buffer) {
  const Box overlap = box_ & region;
  const std::size_t expected = static_cast<std::size_t>(overlap.num_cells()) *
                               static_cast<std::size_t>(ncomp_);
  XL_REQUIRE(buffer.size() == expected, "unpack buffer size mismatch");
  if (!overlap.empty()) {
    const int x0 = overlap.lo()[0];
    const std::size_t nx = static_cast<std::size_t>(overlap.size()[0]);
    const double* in = buffer.data();
    for (int c = 0; c < ncomp_; ++c) {
      for_each_row(overlap, [&](int j, int k) {
        std::memcpy(data_.data() + offset(IntVect{x0, j, k}, c), in,
                    nx * sizeof(double));
        in += nx;
      });
    }
  }
  BufferPool::global().add_copied_bytes(expected * sizeof(double));
}

}  // namespace xl::mesh
