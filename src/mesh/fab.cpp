#include "mesh/fab.hpp"

namespace xl::mesh {

std::vector<double> Fab::pack(const Box& region) const {
  const Box overlap = box_ & region;
  std::vector<double> buffer;
  buffer.reserve(static_cast<std::size_t>(overlap.num_cells()) *
                 static_cast<std::size_t>(ncomp_));
  for (int c = 0; c < ncomp_; ++c) {
    for (BoxIterator it(overlap); it.ok(); ++it) {
      buffer.push_back((*this)(*it, c));
    }
  }
  return buffer;
}

void Fab::unpack(const Box& region, std::span<const double> buffer) {
  const Box overlap = box_ & region;
  const std::size_t expected = static_cast<std::size_t>(overlap.num_cells()) *
                               static_cast<std::size_t>(ncomp_);
  XL_REQUIRE(buffer.size() == expected, "unpack buffer size mismatch");
  std::size_t i = 0;
  for (int c = 0; c < ncomp_; ++c) {
    for (BoxIterator it(overlap); it.ok(); ++it) {
      (*this)(*it, c) = buffer[i++];
    }
  }
}

}  // namespace xl::mesh
