// Data on one AMR level: one ghosted Fab per layout box plus the exchange
// machinery that fills ghost cells from neighbouring boxes (Chombo's
// LevelData<FArrayBox> + Copier).
#pragma once

#include <vector>

#include "common/lookup.hpp"
#include "mesh/fab.hpp"
#include "mesh/layout.hpp"

namespace xl::mesh {

/// One copy operation of an exchange plan: fill `region` of fab `dst` from
/// fab `src`, where the source data is read at (cell - shift). shift is zero
/// except across periodic boundaries.
struct CopyOp {
  std::size_t src = 0;
  std::size_t dst = 0;
  Box region;
  IntVect shift;
};

/// Precomputed ghost-exchange plan for a (layout, ghost, periodic) triple.
class Copier {
 public:
  Copier() = default;
  Copier(const BoxLayout& layout, int nghost, const Box& domain, bool periodic);

  const std::vector<CopyOp>& ops() const noexcept { return ops_; }

  /// Bytes that would cross rank boundaries executing this plan (the DES cost
  /// model consumes this).
  std::size_t off_rank_bytes(const BoxLayout& layout, int ncomp) const;

 private:
  std::vector<CopyOp> ops_;
};

class LevelData {
 public:
  LevelData() = default;

  /// Allocates one Fab per layout box, each grown by `nghost` cells.
  LevelData(const BoxLayout& layout, int ncomp, int nghost);

  const BoxLayout& layout() const noexcept { return layout_; }
  int ncomp() const noexcept { return ncomp_; }
  int nghost() const noexcept { return nghost_; }
  std::size_t size() const noexcept { return fabs_.size(); }

  Fab& operator[](std::size_t i) { return at_index(fabs_, i, "LevelData fab"); }
  const Fab& operator[](std::size_t i) const { return at_index(fabs_, i, "LevelData fab"); }

  /// The un-ghosted (valid) region of box i.
  const Box& valid_box(std::size_t i) const { return layout_.box(i); }

  /// Fill ghost cells from the valid regions of neighbouring boxes using a
  /// prebuilt plan.
  void exchange(const Copier& copier);

  /// Convenience: build the plan and exchange (non-periodic).
  void exchange(const Box& domain, bool periodic = false);

  /// Total payload bytes across all fabs (ghosts included).
  std::size_t bytes() const noexcept;

  /// Sum over valid cells of component c (diagnostic / conservation checks).
  double sum(int c) const;

  /// Min/max over valid cells of component c.
  std::pair<double, double> min_max(int c) const;

  void set_all(double value);

 private:
  BoxLayout layout_;
  int ncomp_ = 0;
  int nghost_ = 0;
  std::vector<Fab> fabs_;
};

}  // namespace xl::mesh
