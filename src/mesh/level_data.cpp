#include "mesh/level_data.hpp"

#include <algorithm>
#include <limits>

namespace xl::mesh {

Copier::Copier(const BoxLayout& layout, int nghost, const Box& domain, bool periodic) {
  XL_REQUIRE(nghost >= 0, "ghost width must be non-negative");
  if (nghost == 0) return;
  const IntVect dsize = domain.size();
  // Candidate shifts: identity plus, when periodic, the 26 wrap images.
  std::vector<IntVect> shifts{IntVect::zero()};
  if (periodic) {
    for (int sx = -1; sx <= 1; ++sx) {
      for (int sy = -1; sy <= 1; ++sy) {
        for (int sz = -1; sz <= 1; ++sz) {
          if (sx == 0 && sy == 0 && sz == 0) continue;
          shifts.push_back({sx * dsize[0], sy * dsize[1], sz * dsize[2]});
        }
      }
    }
  }
  for (std::size_t dst = 0; dst < layout.num_boxes(); ++dst) {
    const Box ghosted = layout.box(dst).grow(nghost);
    for (std::size_t src = 0; src < layout.num_boxes(); ++src) {
      for (const IntVect& shift : shifts) {
        if (src == dst && shift == IntVect::zero()) continue;
        // Source valid region, imaged by the shift, intersected with the
        // destination's ghosted region gives the cells this op fills.
        const Box imaged = layout.box(src).shift(shift);
        const Box region = ghosted & imaged;
        if (region.empty()) continue;
        // Never overwrite the destination's own valid cells.
        const Box clipped = region & layout.box(dst);
        if (clipped == region) continue;
        ops_.push_back(CopyOp{src, dst, region, shift});
      }
    }
  }
}

std::size_t Copier::off_rank_bytes(const BoxLayout& layout, int ncomp) const {
  std::size_t bytes = 0;
  for (const CopyOp& op : ops_) {
    if (layout.rank_of(op.src) != layout.rank_of(op.dst)) {
      bytes += static_cast<std::size_t>(op.region.num_cells()) *
               static_cast<std::size_t>(ncomp) * sizeof(double);
    }
  }
  return bytes;
}

LevelData::LevelData(const BoxLayout& layout, int ncomp, int nghost)
    : layout_(layout), ncomp_(ncomp), nghost_(nghost) {
  XL_REQUIRE(ncomp > 0, "need at least one component");
  XL_REQUIRE(nghost >= 0, "ghost width must be non-negative");
  fabs_.reserve(layout.num_boxes());
  for (std::size_t i = 0; i < layout.num_boxes(); ++i) {
    fabs_.emplace_back(layout.box(i).grow(nghost), ncomp);
  }
}

void LevelData::exchange(const Copier& copier) {
  for (const CopyOp& op : copier.ops()) {
    if (op.shift == IntVect::zero()) {
      // Restrict the copy to the source's valid cells.
      Fab& dst = fabs_[op.dst];
      const Fab& src = fabs_[op.src];
      const Box region = op.region & layout_.box(op.src);
      dst.copy_from(src, region);
    } else {
      fabs_[op.dst].copy_from_shifted(fabs_[op.src], op.region, op.shift);
    }
  }
}

void LevelData::exchange(const Box& domain, bool periodic) {
  Copier copier(layout_, nghost_, domain, periodic);
  exchange(copier);
}

std::size_t LevelData::bytes() const noexcept {
  std::size_t total = 0;
  for (const Fab& f : fabs_) total += f.bytes();
  return total;
}

double LevelData::sum(int c) const {
  double total = 0.0;
  for (std::size_t i = 0; i < fabs_.size(); ++i) {
    for (BoxIterator it(layout_.box(i)); it.ok(); ++it) total += fabs_[i](*it, c);
  }
  return total;
}

std::pair<double, double> LevelData::min_max(int c) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < fabs_.size(); ++i) {
    for (BoxIterator it(layout_.box(i)); it.ok(); ++it) {
      const double v = fabs_[i](*it, c);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return {lo, hi};
}

void LevelData::set_all(double value) {
  for (Fab& f : fabs_) f.set_all(value);
}

}  // namespace xl::mesh
