// Integer lattice points for 3-D block-structured meshes (Chombo's IntVect).
// The library is fixed at three space dimensions, matching the paper's
// 3-D Polytropic Gas and Advection-Diffusion workloads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace xl::mesh {

inline constexpr int kDim = 3;

/// A point on the integer lattice Z^3.
struct IntVect {
  std::array<int, kDim> v{0, 0, 0};

  constexpr IntVect() = default;
  constexpr IntVect(int x, int y, int z) : v{x, y, z} {}

  static constexpr IntVect zero() { return {0, 0, 0}; }
  static constexpr IntVect unit() { return {1, 1, 1}; }
  static constexpr IntVect uniform(int s) { return {s, s, s}; }

  constexpr int operator[](int d) const { return v[static_cast<std::size_t>(d)]; }
  constexpr int& operator[](int d) { return v[static_cast<std::size_t>(d)]; }

  constexpr bool operator==(const IntVect& o) const { return v == o.v; }
  constexpr bool operator!=(const IntVect& o) const { return v != o.v; }

  /// Componentwise comparisons (partial order on the lattice).
  constexpr bool all_le(const IntVect& o) const {
    return v[0] <= o.v[0] && v[1] <= o.v[1] && v[2] <= o.v[2];
  }
  constexpr bool all_lt(const IntVect& o) const {
    return v[0] < o.v[0] && v[1] < o.v[1] && v[2] < o.v[2];
  }
  constexpr bool all_ge(const IntVect& o) const { return o.all_le(*this); }

  constexpr IntVect operator+(const IntVect& o) const {
    return {v[0] + o.v[0], v[1] + o.v[1], v[2] + o.v[2]};
  }
  constexpr IntVect operator-(const IntVect& o) const {
    return {v[0] - o.v[0], v[1] - o.v[1], v[2] - o.v[2]};
  }
  constexpr IntVect operator*(int s) const { return {v[0] * s, v[1] * s, v[2] * s}; }
  constexpr IntVect operator+(int s) const { return {v[0] + s, v[1] + s, v[2] + s}; }
  constexpr IntVect operator-(int s) const { return {v[0] - s, v[1] - s, v[2] - s}; }

  IntVect& operator+=(const IntVect& o) {
    for (int d = 0; d < kDim; ++d) v[static_cast<std::size_t>(d)] += o[d];
    return *this;
  }

  constexpr IntVect min(const IntVect& o) const {
    return {v[0] < o.v[0] ? v[0] : o.v[0], v[1] < o.v[1] ? v[1] : o.v[1],
            v[2] < o.v[2] ? v[2] : o.v[2]};
  }
  constexpr IntVect max(const IntVect& o) const {
    return {v[0] > o.v[0] ? v[0] : o.v[0], v[1] > o.v[1] ? v[1] : o.v[1],
            v[2] > o.v[2] ? v[2] : o.v[2]};
  }

  /// Floor division by a (positive) refinement ratio; rounds toward -inf so
  /// coarsen/refine round-trips preserve containment.
  IntVect coarsen(const IntVect& ratio) const {
    IntVect r;
    for (int d = 0; d < kDim; ++d) {
      XL_REQUIRE(ratio[d] > 0, "refinement ratio must be positive");
      const int a = v[static_cast<std::size_t>(d)];
      const int b = ratio[d];
      r[d] = (a >= 0) ? a / b : -((-a + b - 1) / b);
    }
    return r;
  }

  IntVect refine(const IntVect& ratio) const {
    IntVect r;
    for (int d = 0; d < kDim; ++d) {
      XL_REQUIRE(ratio[d] > 0, "refinement ratio must be positive");
      const std::int64_t wide =
          static_cast<std::int64_t>(v[static_cast<std::size_t>(d)]) * ratio[d];
      XL_CHECK(wide >= std::numeric_limits<int>::min() &&
                   wide <= std::numeric_limits<int>::max(),
               "refined coordinate overflows the index type");
      r[d] = static_cast<int>(wide);
    }
    return r;
  }

  constexpr std::int64_t product() const {
    return static_cast<std::int64_t>(v[0]) * v[1] * v[2];
  }
};

inline std::ostream& operator<<(std::ostream& os, const IntVect& p) {
  return os << "(" << p[0] << "," << p[1] << "," << p[2] << ")";
}

/// Hash for unordered containers keyed on lattice points.
struct IntVectHash {
  std::size_t operator()(const IntVect& p) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (int d = 0; d < kDim; ++d) {
      h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(p[d]));
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace xl::mesh
