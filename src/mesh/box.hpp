// Axis-aligned index boxes: the unit of domain decomposition in
// block-structured AMR (Chombo's Box). A Box is the cell-centered region
// [lo, hi] inclusive on the integer lattice; an empty box is represented
// canonically with lo > hi in every dimension.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/contract.hpp"
#include "mesh/intvect.hpp"

namespace xl::mesh {

class Box {
 public:
  /// Default-constructed box is empty.
  Box() : lo_(IntVect::unit()), hi_(IntVect::zero()) {}

  /// Inclusive corners; a box with any lo[d] > hi[d] is empty.
  Box(const IntVect& lo, const IntVect& hi) : lo_(lo), hi_(hi) {
    if (empty()) *this = Box();
  }

  /// Cube of side `n` with low corner at `lo`.
  static Box cube(const IntVect& lo, int n) {
    XL_REQUIRE(n > 0, "cube side must be positive");
    return Box(lo, lo + (n - 1));
  }

  /// Box covering [0, size) in each dimension.
  static Box domain(const IntVect& size) {
    XL_REQUIRE(size.all_ge(IntVect::unit()), "domain size must be positive");
    return Box(IntVect::zero(), size - 1);
  }

  const IntVect& lo() const noexcept { return lo_; }
  const IntVect& hi() const noexcept { return hi_; }

  bool empty() const noexcept {
    return lo_[0] > hi_[0] || lo_[1] > hi_[1] || lo_[2] > hi_[2];
  }

  /// Edge lengths in cells (0 if empty).
  IntVect size() const noexcept {
    if (empty()) return IntVect::zero();
    return hi_ - lo_ + 1;
  }

  /// Number of cells.
  std::int64_t num_cells() const noexcept { return empty() ? 0 : size().product(); }

  bool contains(const IntVect& p) const noexcept {
    return !empty() && lo_.all_le(p) && p.all_le(hi_);
  }
  bool contains(const Box& b) const noexcept {
    return b.empty() || (contains(b.lo_) && contains(b.hi_));
  }
  bool intersects(const Box& b) const noexcept { return !(*this & b).empty(); }

  bool operator==(const Box& o) const noexcept {
    return (empty() && o.empty()) || (lo_ == o.lo_ && hi_ == o.hi_);
  }
  bool operator!=(const Box& o) const noexcept { return !(*this == o); }

  /// Intersection (empty if disjoint).
  Box operator&(const Box& o) const noexcept {
    if (empty() || o.empty()) return Box();
    return Box(lo_.max(o.lo_), hi_.min(o.hi_));
  }

  /// Smallest box containing both.
  Box hull(const Box& o) const noexcept {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Box(lo_.min(o.lo_), hi_.max(o.hi_));
  }

  /// Grow by `n` cells on every face (negative shrinks).
  Box grow(int n) const noexcept {
    if (empty()) return Box();
    return Box(lo_ - n, hi_ + n);
  }
  Box grow(const IntVect& n) const noexcept {
    if (empty()) return Box();
    return Box(lo_ - n, hi_ + n);
  }

  Box shift(const IntVect& offset) const noexcept {
    if (empty()) return Box();
    return Box(lo_ + offset, hi_ + offset);
  }

  /// Refine every cell by `ratio` (each coarse cell becomes ratio^3 fine cells).
  Box refine(const IntVect& ratio) const {
    if (empty()) return Box();
    return Box(lo_.refine(ratio), (hi_ + 1).refine(ratio) - 1);
  }
  Box refine(int r) const { return refine(IntVect::uniform(r)); }

  /// Coarsen by `ratio`; covers every coarse cell any fine cell maps into.
  Box coarsen(const IntVect& ratio) const {
    if (empty()) return Box();
    return Box(lo_.coarsen(ratio), hi_.coarsen(ratio));
  }
  Box coarsen(int r) const { return coarsen(IntVect::uniform(r)); }

  /// Split along dimension `dim` at absolute coordinate `at`: returns the part
  /// with coordinates < at; *this keeps the rest. `at` must cut strictly inside.
  Box chop(int dim, int at);

  /// Subtract `o` from this box, appending the (up to 6) disjoint remainder
  /// boxes to `out`.
  void subtract(const Box& o, std::vector<Box>& out) const;

  /// Linear offset of point `p` inside this box (Fortran order: x fastest).
  std::int64_t index_of(const IntVect& p) const {
    XL_REQUIRE(contains(p), "point outside box");
    const IntVect s = size();
    const IntVect r = p - lo_;
    const std::int64_t offset =
        r[0] + static_cast<std::int64_t>(s[0]) * (r[1] + static_cast<std::int64_t>(s[1]) * r[2]);
    XL_ASSERT_DBG(offset >= 0 && offset < num_cells(),
                  "linear offset " << offset << " outside [0, " << num_cells() << ")");
    return offset;
  }

  /// Longest edge dimension (ties broken by lowest dim).
  int longest_dim() const noexcept {
    const IntVect s = size();
    int best = 0;
    for (int d = 1; d < kDim; ++d) {
      if (s[d] > s[best]) best = d;
    }
    return best;
  }

 private:
  IntVect lo_;
  IntVect hi_;
};

std::ostream& operator<<(std::ostream& os, const Box& b);

/// Sub-box of `b` covering rows [zlo, zhi) of its z extent (z is the
/// slowest-varying BoxIterator dimension, so slabs taken in order traverse
/// exactly the serial iteration order — the parallel kernels rely on this to
/// merge per-slab results bit-identically to a serial run).
inline Box z_slab(const Box& b, std::size_t zlo, std::size_t zhi) {
  XL_REQUIRE(zlo < zhi && zhi <= static_cast<std::size_t>(b.size()[2]),
             "z-slab range outside box");
  IntVect lo = b.lo(), hi = b.hi();
  lo[2] = b.lo()[2] + static_cast<int>(zlo);
  hi[2] = b.lo()[2] + static_cast<int>(zhi) - 1;
  return Box(lo, hi);
}

/// Visit every contiguous x-row of `b` in Fortran order: fn(j, k) is called
/// for y = j, z = k with j varying fastest, matching BoxIterator's traversal
/// of the same box row by row. The row-based kernels pair this with
/// Fab::row(c, j, k) so the inner x loop is a flat pointer walk — one bounds
/// check per row instead of per cell — while preserving the serial visit
/// order the determinism contract fixes.
template <typename Fn>
inline void for_each_row(const Box& b, Fn&& fn) {
  for (int k = b.lo()[2]; k <= b.hi()[2]; ++k) {
    for (int j = b.lo()[1]; j <= b.hi()[1]; ++j) {
      fn(j, k);
    }
  }
}

/// Iterate the cells of a box in Fortran order. Usage:
///   for (BoxIterator it(b); it.ok(); ++it) { const IntVect& p = *it; ... }
class BoxIterator {
 public:
  explicit BoxIterator(const Box& b) : box_(b), cur_(b.lo()), ok_(!b.empty()) {}

  bool ok() const noexcept { return ok_; }
  const IntVect& operator*() const noexcept { return cur_; }

  BoxIterator& operator++() {
    for (int d = 0; d < kDim; ++d) {
      if (++cur_[d] <= box_.hi()[d]) return *this;
      cur_[d] = box_.lo()[d];
    }
    ok_ = false;
    return *this;
  }

 private:
  Box box_;
  IntVect cur_;
  bool ok_;
};

}  // namespace xl::mesh
