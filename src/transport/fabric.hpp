// Asynchronous data transport between the simulation partition and the
// staging partition — the role DataSpaces' DART layer plays in the paper.
// Transfers are non-blocking: put() returns immediately and the completion
// callback fires on the event queue when the modeled wire time elapses, which
// is what lets the middleware policy overlap analysis with the next
// simulation step (paper Fig. 4: "data transfer is asynchronous").
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "cluster/cost_model.hpp"
#include "cluster/event_queue.hpp"

namespace xl::transport {

using cluster::SimTime;

struct TransferRecord {
  std::uint64_t id = 0;
  std::size_t bytes = 0;
  SimTime start = 0.0;
  SimTime finish = 0.0;
};

class Fabric {
 public:
  Fabric(cluster::EventQueue& queue, const cluster::CostModel& cost)
      : queue_(&queue), cost_(&cost) {}

  /// Start an asynchronous transfer of `bytes` from `sender_nodes` simulation
  /// nodes to `receiver_nodes` staging nodes. `on_complete(finish_time)` runs
  /// when the data has fully arrived. Returns the transfer id.
  std::uint64_t put(std::size_t bytes, int sender_nodes, int receiver_nodes,
                    std::function<void(SimTime)> on_complete);

  /// Blocking-equivalent estimate without enqueuing (used by policies that
  /// need T_sd / T_recv forecasts, eq. 9).
  double estimate_seconds(std::size_t bytes, int sender_nodes, int receiver_nodes) const {
    return cost_->transfer_seconds(bytes, sender_nodes, receiver_nodes);
  }

  std::size_t total_bytes_moved() const noexcept { return total_bytes_; }
  std::uint64_t transfer_count() const noexcept { return next_id_; }
  const std::unordered_map<std::uint64_t, TransferRecord>& history() const noexcept {
    return history_;
  }

 private:
  cluster::EventQueue* queue_;
  const cluster::CostModel* cost_;
  std::uint64_t next_id_ = 0;
  std::size_t total_bytes_ = 0;
  std::unordered_map<std::uint64_t, TransferRecord> history_;
};

}  // namespace xl::transport
