// Asynchronous data transport between the simulation partition and the
// staging partition — the role DataSpaces' DART layer plays in the paper.
// Transfers are non-blocking: put() returns immediately and the completion
// callback fires on the event queue when the modeled wire time elapses, which
// is what lets the middleware policy overlap analysis with the next
// simulation step (paper Fig. 4: "data transfer is asynchronous").
//
// The fabric also owns transfer reliability: an attempt can be failed by an
// injected fault (see runtime/fault.hpp — supplied here as an opaque
// `fault_hook` so transport stays independent of the runtime layer), in which
// case the transfer waits out an exponential backoff and retries, up to
// `max_retries` times, before being declared Failed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cluster/cost_model.hpp"
#include "cluster/event_queue.hpp"

namespace xl::transport {

using cluster::SimTime;

struct TransferRecord {
  std::uint64_t id = 0;
  std::size_t bytes = 0;
  SimTime start = 0.0;
  SimTime finish = 0.0;
  int attempts = 1;     ///< attempts consumed (1 = clean first try).
  bool failed = false;  ///< true if the transfer exhausted its retries.
};

/// Lifecycle notification for a single transfer attempt.
struct TransferEvent {
  enum class Kind { Started, Completed, Retried, Failed };
  Kind kind = Kind::Started;
  std::uint64_t id = 0;
  int attempt = 0;  ///< 0-based attempt this event refers to.
  std::size_t bytes = 0;
  SimTime time = 0.0;
  double backoff_seconds = 0.0;  ///< Retried only: wait before next attempt.
};

const char* transfer_event_kind_name(TransferEvent::Kind kind) noexcept;

struct FabricConfig {
  /// Bound on history(); oldest records are evicted first. 0 disables history.
  std::size_t history_cap = 1024;
  /// Retries after the first attempt before a transfer is declared Failed.
  int max_retries = 3;
  /// Backoff before retry r is retry_backoff_seconds * backoff_multiplier^r.
  double retry_backoff_seconds = 1.0e-3;
  double backoff_multiplier = 2.0;
  /// Failure-detection deadline for a lost attempt; 0 means the loss is only
  /// detected at the modeled wire time (e.g. a checksum reject on arrival).
  double timeout_seconds = 0.0;
  /// Fault oracle: (transfer id, attempt) -> does this attempt fail? Absent
  /// means no attempt ever fails (the default, faithful-to-paper behavior).
  std::function<bool(std::uint64_t, int)> fault_hook;
  /// Optional tap on every attempt's lifecycle, fired in event-queue order.
  std::function<void(const TransferEvent&)> observer;
};

class Fabric {
 public:
  Fabric(cluster::EventQueue& queue, const cluster::CostModel& cost,
         FabricConfig config = {})
      : queue_(&queue), cost_(&cost), config_(std::move(config)) {}

  /// Start an asynchronous transfer of `bytes` from `sender_nodes` simulation
  /// nodes to `receiver_nodes` staging nodes. `on_complete(finish_time)` runs
  /// when the data has fully arrived (possibly after retries);
  /// `on_failed(fail_time)`, if given, runs instead when retries are
  /// exhausted. Returns the transfer id.
  std::uint64_t put(std::size_t bytes, int sender_nodes, int receiver_nodes,
                    std::function<void(SimTime)> on_complete,
                    std::function<void(SimTime)> on_failed = nullptr);

  /// Blocking-equivalent estimate without enqueuing (used by policies that
  /// need T_sd / T_recv forecasts, eq. 9).
  double estimate_seconds(std::size_t bytes, int sender_nodes, int receiver_nodes) const {
    return cost_->transfer_seconds(bytes, sender_nodes, receiver_nodes);
  }

  /// Bytes delivered by completed transfers (failed attempts don't count).
  std::size_t total_bytes_moved() const noexcept { return total_bytes_; }
  std::uint64_t started_count() const noexcept { return next_id_; }
  std::uint64_t completed_count() const noexcept { return completed_; }
  std::uint64_t failed_count() const noexcept { return failed_; }
  std::uint64_t retry_count() const noexcept { return retries_; }
  const std::deque<TransferRecord>& history() const noexcept { return history_; }
  const FabricConfig& config() const noexcept { return config_; }

 private:
  void attempt(std::uint64_t id, std::size_t bytes, double wire_seconds,
               int attempt_no, std::shared_ptr<std::function<void(SimTime)>> done,
               std::shared_ptr<std::function<void(SimTime)>> fail);
  TransferRecord* record(std::uint64_t id);
  void emit(const TransferEvent& ev) const {
    if (config_.observer) config_.observer(ev);
  }

  cluster::EventQueue* queue_;
  const cluster::CostModel* cost_;
  FabricConfig config_;
  std::uint64_t next_id_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  std::size_t total_bytes_ = 0;
  std::deque<TransferRecord> history_;
};

}  // namespace xl::transport
