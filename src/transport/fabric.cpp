#include "transport/fabric.hpp"

namespace xl::transport {

std::uint64_t Fabric::put(std::size_t bytes, int sender_nodes, int receiver_nodes,
                          std::function<void(SimTime)> on_complete) {
  const std::uint64_t id = next_id_++;
  const double duration = cost_->transfer_seconds(bytes, sender_nodes, receiver_nodes);
  TransferRecord rec;
  rec.id = id;
  rec.bytes = bytes;
  rec.start = queue_->now();
  rec.finish = rec.start + duration;
  history_.emplace(id, rec);
  total_bytes_ += bytes;
  queue_->schedule_in(duration, [cb = std::move(on_complete), finish = rec.finish] {
    cb(finish);
  });
  return id;
}

}  // namespace xl::transport
