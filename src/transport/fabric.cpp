#include "transport/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "common/contract.hpp"

namespace xl::transport {

const char* transfer_event_kind_name(TransferEvent::Kind kind) noexcept {
  switch (kind) {
    case TransferEvent::Kind::Started: return "started";
    case TransferEvent::Kind::Completed: return "completed";
    case TransferEvent::Kind::Retried: return "retried";
    case TransferEvent::Kind::Failed: return "failed";
  }
  return "?";
}

TransferRecord* Fabric::record(std::uint64_t id) {
  // History is append-only and FIFO-evicted, so scan from the back: an active
  // transfer is almost always among the newest records.
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

void Fabric::attempt(std::uint64_t id, std::size_t bytes, double wire_seconds,
                     int attempt_no,
                     std::shared_ptr<std::function<void(SimTime)>> done,
                     std::shared_ptr<std::function<void(SimTime)>> fail) {
  const bool faulted =
      config_.fault_hook && config_.fault_hook(id, attempt_no);
  if (!faulted) {
    queue_->schedule_in(wire_seconds, [this, id, bytes, attempt_no, done] {
      const SimTime now = queue_->now();
      if (TransferRecord* rec = record(id)) {
        XL_ASSERT(now >= rec->start,
                  "transfer " << id << " completes before it started: start="
                              << rec->start << " now=" << now);
        rec->finish = now;
        rec->attempts = attempt_no + 1;
      }
      ++completed_;
      XL_ENSURE(total_bytes_ + bytes >= total_bytes_,
                "transfer byte accounting overflow at " << total_bytes_);
      total_bytes_ += bytes;
      TransferEvent ev;
      ev.kind = TransferEvent::Kind::Completed;
      ev.id = id;
      ev.attempt = attempt_no;
      ev.bytes = bytes;
      ev.time = now;
      emit(ev);
      if (*done) (*done)(now);
    });
    return;
  }

  // The attempt is lost: detection happens either at the configured timeout
  // or, absent one, when the data "should" have arrived (checksum reject).
  const double detect = config_.timeout_seconds > 0.0
                            ? std::min(config_.timeout_seconds, wire_seconds)
                            : wire_seconds;
  const bool out_of_retries = attempt_no >= config_.max_retries;
  queue_->schedule_in(detect, [this, id, bytes, wire_seconds, attempt_no,
                               out_of_retries, done, fail] {
    const SimTime now = queue_->now();
    if (TransferRecord* rec = record(id)) {
      rec->attempts = attempt_no + 1;
      rec->failed = out_of_retries;
      rec->finish = now;
    }
    if (out_of_retries) {
      ++failed_;
      TransferEvent ev;
      ev.kind = TransferEvent::Kind::Failed;
      ev.id = id;
      ev.attempt = attempt_no;
      ev.bytes = bytes;
      ev.time = now;
      emit(ev);
      if (*fail) (*fail)(now);
      return;
    }
    double backoff = config_.retry_backoff_seconds;
    for (int i = 0; i < attempt_no; ++i) backoff *= config_.backoff_multiplier;
    ++retries_;
    TransferEvent ev;
    ev.kind = TransferEvent::Kind::Retried;
    ev.id = id;
    ev.attempt = attempt_no;
    ev.bytes = bytes;
    ev.time = now;
    ev.backoff_seconds = backoff;
    emit(ev);
    queue_->schedule_in(backoff, [this, id, bytes, wire_seconds, attempt_no,
                                  done, fail] {
      attempt(id, bytes, wire_seconds, attempt_no + 1, done, fail);
    });
  });
}

std::uint64_t Fabric::put(std::size_t bytes, int sender_nodes, int receiver_nodes,
                          std::function<void(SimTime)> on_complete,
                          std::function<void(SimTime)> on_failed) {
  const std::uint64_t id = next_id_++;
  const double wire = cost_->transfer_seconds(bytes, sender_nodes, receiver_nodes);
  XL_ENSURE(std::isfinite(wire) && wire >= 0.0,
            "cost model produced wire time " << wire << " for " << bytes << " bytes");
  if (config_.history_cap > 0) {
    while (history_.size() >= config_.history_cap) history_.pop_front();
    TransferRecord rec;
    rec.id = id;
    rec.bytes = bytes;
    rec.start = queue_->now();
    rec.finish = rec.start + wire;
    history_.push_back(rec);
  }
  TransferEvent ev;
  ev.kind = TransferEvent::Kind::Started;
  ev.id = id;
  ev.bytes = bytes;
  ev.time = queue_->now();
  emit(ev);
  attempt(id, bytes, wire, 0,
          std::make_shared<std::function<void(SimTime)>>(std::move(on_complete)),
          std::make_shared<std::function<void(SimTime)>>(std::move(on_failed)));
  return id;
}

}  // namespace xl::transport
