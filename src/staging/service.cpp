#include "staging/service.hpp"

#include <chrono>
#include <cstdint>

#include "common/error.hpp"
#include "common/log.hpp"

namespace xl::staging {

// xl-lint: allow(wallclock): the in-process service reports real elapsed time
// for its own diagnostics; simulated experiments use the substrate clock.
using Clock = std::chrono::steady_clock;

const char* service_event_kind_name(ServiceEvent::Kind kind) noexcept {
  switch (kind) {
    case ServiceEvent::Kind::Put: return "put";
    case ServiceEvent::Kind::Get: return "get";
    case ServiceEvent::Kind::Analysis: return "analysis";
    case ServiceEvent::Kind::Drain: return "drain";
    case ServiceEvent::Kind::ServerLost: return "server-lost";
    case ServiceEvent::Kind::ServerRecovered: return "server-recovered";
    case ServiceEvent::Kind::ReadRepair: return "read-repair";
    case ServiceEvent::Kind::Repair: return "repair";
  }
  return "?";
}

StagingService::StagingService(const ServiceConfig& config)
    : config_(config),
      space_(config.num_servers, config.memory_per_server, config.replication,
             config.servers_per_domain) {
  XL_REQUIRE(config.num_servers >= 1, "service needs at least one server");
  workers_.reserve(static_cast<std::size_t>(config.num_servers));
  for (int s = 0; s < config.num_servers; ++s) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

StagingService::~StagingService() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void StagingService::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    XL_REQUIRE(!stop_, "service is shutting down");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void StagingService::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    const auto start = Clock::now();
    task();  // tasks capture their promise and never throw past it
    const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    {
      MutexLock lock(mutex_);
      busy_seconds_ += elapsed;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

std::future<PutAck> StagingService::put_async(int version, const mesh::Box& box,
                                              std::shared_ptr<const mesh::Fab> payload) {
  // Fail on the caller's thread: a null payload dereferenced on a worker would
  // crash the service with the promise never satisfied. Metadata-only puts
  // (which StagingSpace::put itself supports) go through the space directly.
  XL_REQUIRE(payload != nullptr, "put_async requires a payload");
  auto promise = std::make_shared<std::promise<PutAck>>();
  std::future<PutAck> future = promise->get_future();
  enqueue([this, version, box, payload = std::move(payload), promise] {
    const auto start = Clock::now();
    PutAck ack;
    std::size_t replicas_placed = 0;
    const std::size_t bytes = payload->bytes();
    {
      // Space mutations happen on service threads; the space itself is guarded
      // by the service mutex (requests may run on several workers).
      MutexLock lock(mutex_);
      if (space_.can_accept(box, bytes)) {
        ack.id = space_.put(version, box, payload->ncomp(), bytes, payload);
        ack.accepted = true;
        replicas_placed = space_.object_replicas(ack.id);
      }
    }
    if (!ack.accepted) {
      XL_LOG_WARN("staging put rejected: version " << version << ", " << bytes
                                                   << " bytes (space full)");
    }
    if (config_.observer) {
      ServiceEvent ev;
      ev.kind = ServiceEvent::Kind::Put;
      ev.version = version;
      ev.id = ack.id;
      ev.bytes = bytes;
      ev.replicas = replicas_placed;
      ev.accepted = ack.accepted;
      ev.seconds = std::chrono::duration<double>(Clock::now() - start).count();
      config_.observer(ev);
    }
    promise->set_value(ack);
  });
  return future;
}

std::future<std::vector<std::shared_ptr<const mesh::Fab>>> StagingService::get_async(
    int version, const mesh::Box& region) {
  auto promise =
      std::make_shared<std::promise<std::vector<std::shared_ptr<const mesh::Fab>>>>();
  auto future = promise->get_future();
  enqueue([this, version, region, promise] {
    const auto start = Clock::now();
    std::vector<std::shared_ptr<const mesh::Fab>> out;
    std::size_t bytes = 0;
    ReadReport repair;
    {
      // Readers share the staged buffers: only refcounts move under the lock.
      MutexLock lock(mutex_);
      if (config_.replication > 1) {
        // Quorum read: re-materialize missing replicas of the objects this
        // get touches before handing the payloads out, so a reader leaves
        // the data it saw fully replicated.
        repair = space_.read_repair(version, region);
      }
      for (const StagedObject* obj : space_.query(version, region)) {
        if (!obj->payload) continue;
        bytes += obj->payload->bytes();
        out.push_back(obj->payload);
      }
    }
    if (config_.observer) {
      if (repair.repaired_replicas > 0) {
        ServiceEvent rev;
        rev.kind = ServiceEvent::Kind::ReadRepair;
        rev.version = version;
        rev.objects = repair.below_quorum;
        rev.bytes = repair.repaired_bytes;
        rev.replicas = repair.repaired_replicas;
        config_.observer(rev);
      }
      ServiceEvent ev;
      ev.kind = ServiceEvent::Kind::Get;
      ev.version = version;
      ev.bytes = bytes;
      ev.objects = out.size();
      ev.seconds = std::chrono::duration<double>(Clock::now() - start).count();
      config_.observer(ev);
    }
    promise->set_value(std::move(out));
  });
  return future;
}

std::future<RepairReport> StagingService::repair_async(std::size_t max_bytes) {
  auto promise = std::make_shared<std::promise<RepairReport>>();
  auto future = promise->get_future();
  enqueue([this, max_bytes, promise] {
    const auto start = Clock::now();
    RepairReport report;
    {
      MutexLock lock(mutex_);
      report = space_.anti_entropy_repair(max_bytes);
    }
    if (config_.observer && report.repaired_replicas > 0) {
      ServiceEvent ev;
      ev.kind = ServiceEvent::Kind::Repair;
      ev.objects = report.repaired_objects;
      ev.bytes = report.repaired_bytes;
      ev.replicas = report.repaired_replicas;
      ev.seconds = std::chrono::duration<double>(Clock::now() - start).count();
      config_.observer(ev);
    }
    promise->set_value(report);
  });
  return future;
}

std::future<AnalysisResult> StagingService::analyze_async(int version,
                                                          const mesh::Box& region,
                                                          double isovalue, int comp) {
  auto promise = std::make_shared<std::promise<AnalysisResult>>();
  auto future = promise->get_future();
  enqueue([this, version, region, isovalue, comp, promise] {
    const auto start = Clock::now();
    AnalysisResult result;
    // Reference matching payloads under the lock (refcount bumps, no copies),
    // erase the staged objects, then triangulate outside the lock so other
    // requests are not serialized behind the compute. The shared_ptrs keep
    // the buffers alive after the erase.
    std::vector<std::shared_ptr<const mesh::Fab>> payloads;
    {
      MutexLock lock(mutex_);
      std::vector<std::uint64_t> ids;
      for (const StagedObject* obj : space_.query(version, region)) {
        if (!obj->payload) continue;
        payloads.push_back(obj->payload);
        ids.push_back(obj->id);
      }
      for (std::uint64_t id : ids) space_.erase(id);
    }
    for (const auto& fab : payloads) {
      const mesh::Box cells(fab->box().lo(), fab->box().hi() - 1);
      if (cells.empty()) continue;
      result.triangles +=
          viz::extract_isosurface(*fab, cells, isovalue, comp).triangle_count();
    }
    result.objects = payloads.size();
    result.service_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (config_.observer) {
      ServiceEvent ev;
      ev.kind = ServiceEvent::Kind::Analysis;
      ev.version = version;
      ev.objects = result.objects;
      ev.seconds = result.service_seconds;
      config_.observer(ev);
    }
    promise->set_value(result);
  });
  return future;
}

void StagingService::drain() {
  const auto start = Clock::now();
  {
    MutexLock lock(mutex_);
    while (!queue_.empty() || in_flight_ != 0) idle_cv_.wait(lock);
  }
  if (config_.observer) {
    ServiceEvent ev;
    ev.kind = ServiceEvent::Kind::Drain;
    ev.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    config_.observer(ev);
  }
}

ServerLossReport StagingService::fail_server(int server) {
  return fail_server(server, config_.loss_policy);
}

ServerLossReport StagingService::fail_server(int server, LossPolicy policy) {
  ServerLossReport report;
  {
    MutexLock lock(mutex_);
    report = space_.fail_server(server, policy);
  }
  XL_LOG_WARN("staging server " << server << " lost (" << loss_policy_name(policy)
                                << "): dropped " << report.dropped_objects
                                << " objects (" << report.dropped_bytes
                                << " bytes), relocated " << report.relocated_objects
                                << ", repaired " << report.repaired_objects
                                << ", degraded " << report.degraded_objects);
  if (config_.observer) {
    ServiceEvent ev;
    ev.kind = ServiceEvent::Kind::ServerLost;
    ev.server = server;
    ev.objects = report.dropped_objects;
    ev.bytes = report.dropped_bytes;
    ev.replicas = report.repaired_objects;
    config_.observer(ev);
  }
  return report;
}

void StagingService::recover_server(int server) {
  {
    MutexLock lock(mutex_);
    space_.recover_server(server);
  }
  if (config_.observer) {
    ServiceEvent ev;
    ev.kind = ServiceEvent::Kind::ServerRecovered;
    ev.server = server;
    config_.observer(ev);
  }
}

int StagingService::alive_servers() const {
  MutexLock lock(mutex_);
  return space_.alive_servers();
}

std::size_t StagingService::pending_requests() const {
  MutexLock lock(mutex_);
  return queue_.size() + static_cast<std::size_t>(in_flight_);
}

std::size_t StagingService::used_bytes() const {
  MutexLock lock(mutex_);
  return space_.used_bytes();
}

std::size_t StagingService::free_bytes() const {
  MutexLock lock(mutex_);
  return space_.free_bytes();
}

std::size_t StagingService::replica_count() const {
  MutexLock lock(mutex_);
  return space_.replica_count();
}

std::size_t StagingService::replica_deficit() const {
  MutexLock lock(mutex_);
  return space_.replica_deficit();
}

double StagingService::busy_seconds() const {
  MutexLock lock(mutex_);
  return busy_seconds_;
}

}  // namespace xl::staging
