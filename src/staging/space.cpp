#include "staging/space.hpp"

#include <cstdint>
#include <numeric>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace xl::staging {

int server_for_box(const Box& box, int num_servers) {
  XL_REQUIRE(num_servers >= 1, "need at least one server");
  XL_REQUIRE(!box.empty(), "cannot index an empty box");
  const mesh::IntVect center{(box.lo()[0] + box.hi()[0]) / 2,
                             (box.lo()[1] + box.hi()[1]) / 2,
                             (box.lo()[2] + box.hi()[2]) / 2};
  const std::uint64_t key = mesh::morton_key(center);
  // SplitMix64 finalizer: a plain multiply would leave the low bits (and so
  // the modulus) a function of only the low Morton bits, hashing nearly all
  // boxes to one server.
  std::uint64_t h = key;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<int>(h % static_cast<std::uint64_t>(num_servers));
}

StagingSpace::StagingSpace(int num_servers, std::size_t memory_per_server)
    : memory_per_server_(memory_per_server),
      server_used_(static_cast<std::size_t>(num_servers), 0),
      server_dead_(static_cast<std::size_t>(num_servers), false) {
  XL_REQUIRE(num_servers >= 1, "need at least one staging server");
  XL_REQUIRE(memory_per_server > 0, "staging servers need memory");
}

int StagingSpace::alive_servers() const noexcept {
  int alive = 0;
  for (const bool dead : server_dead_) {
    if (!dead) ++alive;
  }
  return alive;
}

bool StagingSpace::server_alive(int server) const {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  return !server_dead_[static_cast<std::size_t>(server)];
}

std::size_t StagingSpace::used_bytes() const noexcept {
  return std::accumulate(server_used_.begin(), server_used_.end(), std::size_t{0});
}

std::size_t StagingSpace::server_used_bytes(int server) const {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  return server_used_[static_cast<std::size_t>(server)];
}

int StagingSpace::target_server(const Box& box) const {
  const int hashed = server_for_box(box, num_servers());
  // Linear probe from the hash target so the mapping stays deterministic and
  // collapses back to the hash once the server recovers.
  for (int i = 0; i < num_servers(); ++i) {
    const int candidate = (hashed + i) % num_servers();
    if (!server_dead_[static_cast<std::size_t>(candidate)]) return candidate;
  }
  return -1;
}

bool StagingSpace::can_accept(const Box& box, std::size_t bytes) const {
  const int server = target_server(box);
  if (server < 0) return false;
  return server_used_[static_cast<std::size_t>(server)] + bytes <= memory_per_server_;
}

std::uint64_t StagingSpace::put(int version, const Box& box, int ncomp,
                                std::size_t bytes, std::shared_ptr<const Fab> payload) {
  const int server = target_server(box);
  XL_REQUIRE(server >= 0, "no staging server alive");
  auto& used = server_used_[static_cast<std::size_t>(server)];
  XL_REQUIRE(used + bytes <= memory_per_server_,
             "staging server out of memory (caller must check can_accept)");
  if (payload) {
    XL_REQUIRE(payload->ncomp() == ncomp, "payload component count mismatch");
  }
  StagedObject obj;
  obj.id = next_id_++;
  obj.version = version;
  obj.box = box;
  obj.ncomp = ncomp;
  obj.bytes = bytes;
  obj.payload = std::move(payload);
  obj.server = server;
  used += bytes;
  objects_.emplace(obj.id, std::move(obj));
  return next_id_ - 1;
}

std::vector<const StagedObject*> StagingSpace::query(int version, const Box& region) const {
  std::vector<const StagedObject*> hits;
  for (const auto& [id, obj] : objects_) {
    if (obj.version == version && obj.box.intersects(region)) hits.push_back(&obj);
  }
  return hits;
}

void StagingSpace::erase(std::uint64_t id) {
  auto it = objects_.find(id);
  XL_REQUIRE(it != objects_.end(), "erase of unknown staged object");
  auto& used = server_used_[static_cast<std::size_t>(it->second.server)];
  XL_ASSERT(used >= it->second.bytes,
            "server " << it->second.server << " accounts " << used
                      << " bytes but object " << id << " holds " << it->second.bytes);
  used -= it->second.bytes;
  objects_.erase(it);
}

std::size_t StagingSpace::erase_version(int version) {
  std::size_t freed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->second.version == version) {
      freed += it->second.bytes;
      auto& used = server_used_[static_cast<std::size_t>(it->second.server)];
      XL_ASSERT(used >= it->second.bytes, "staging accounting underflow erasing version "
                                              << version << " on server "
                                              << it->second.server);
      used -= it->second.bytes;
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  return freed;
}

ServerLossReport StagingSpace::fail_server(int server, bool requeue) {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  const auto s = static_cast<std::size_t>(server);
  ServerLossReport report;
  report.server = server;
  if (server_dead_[s]) return report;  // already down; nothing new to lose.
  server_dead_[s] = true;

  // Walk the dead server's objects in id order (map order) so relocation is
  // deterministic: first objects get first pick of the survivors' free space.
  for (auto it = objects_.begin(); it != objects_.end();) {
    StagedObject& obj = it->second;
    if (obj.server != server) {
      ++it;
      continue;
    }
    XL_ASSERT(server_used_[s] >= obj.bytes,
              "dead server " << server << " accounts fewer bytes than object "
                             << obj.id << " holds");
    server_used_[s] -= obj.bytes;
    int dest = -1;
    if (requeue) {
      const int hashed = server_for_box(obj.box, num_servers());
      for (int i = 0; i < num_servers(); ++i) {
        const int candidate = (hashed + i) % num_servers();
        const auto c = static_cast<std::size_t>(candidate);
        if (!server_dead_[c] && server_used_[c] + obj.bytes <= memory_per_server_) {
          dest = candidate;
          break;
        }
      }
    }
    if (dest >= 0) {
      obj.server = dest;
      server_used_[static_cast<std::size_t>(dest)] += obj.bytes;
      ++report.relocated_objects;
      report.relocated_bytes += obj.bytes;
      ++it;
    } else {
      ++report.dropped_objects;
      report.dropped_bytes += obj.bytes;
      it = objects_.erase(it);
    }
  }
  XL_CHECK(server_used_[s] == 0, "dead server still accounts bytes");
  return report;
}

void StagingSpace::recover_server(int server) {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  server_dead_[static_cast<std::size_t>(server)] = false;
}

void StagingSpace::resize(int num_servers) {
  XL_REQUIRE(num_servers >= 1, "need at least one staging server");
  const auto target = static_cast<std::size_t>(num_servers);
  if (target < server_used_.size()) {
    for (std::size_t s = target; s < server_used_.size(); ++s) {
      XL_REQUIRE(server_used_[s] == 0, "cannot shrink away a non-empty staging server");
    }
  }
  server_used_.resize(target, 0);
  server_dead_.resize(target, false);
}

}  // namespace xl::staging
