#include "staging/space.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace xl::staging {

const char* loss_policy_name(LossPolicy policy) noexcept {
  switch (policy) {
    case LossPolicy::Relocate: return "relocate";
    case LossPolicy::Drop: return "drop";
    case LossPolicy::Repair: return "repair";
  }
  return "?";
}

int server_for_box(const Box& box, int num_servers) {
  XL_REQUIRE(num_servers >= 1, "need at least one server");
  XL_REQUIRE(!box.empty(), "cannot index an empty box");
  const mesh::IntVect center{(box.lo()[0] + box.hi()[0]) / 2,
                             (box.lo()[1] + box.hi()[1]) / 2,
                             (box.lo()[2] + box.hi()[2]) / 2};
  const std::uint64_t key = mesh::morton_key(center);
  // SplitMix64 finalizer: a plain multiply would leave the low bits (and so
  // the modulus) a function of only the low Morton bits, hashing nearly all
  // boxes to one server.
  std::uint64_t h = key;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<int>(h % static_cast<std::uint64_t>(num_servers));
}

StagingSpace::StagingSpace(int num_servers, std::size_t memory_per_server,
                           int replication, int servers_per_domain)
    : memory_per_server_(memory_per_server),
      replication_(replication),
      servers_per_domain_(servers_per_domain),
      server_used_(static_cast<std::size_t>(num_servers), 0),
      server_dead_(static_cast<std::size_t>(num_servers), false) {
  XL_REQUIRE(num_servers >= 1, "need at least one staging server");
  XL_REQUIRE(memory_per_server > 0, "staging servers need memory");
  XL_REQUIRE(replication >= 1, "replication factor must be >= 1");
  XL_REQUIRE(servers_per_domain >= 1, "failure domains need >= 1 server");
}

int StagingSpace::alive_servers() const noexcept {
  int alive = 0;
  for (const bool dead : server_dead_) {
    if (!dead) ++alive;
  }
  return alive;
}

bool StagingSpace::server_alive(int server) const {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  return !server_dead_[static_cast<std::size_t>(server)];
}

std::size_t StagingSpace::used_bytes() const noexcept {
  return std::accumulate(server_used_.begin(), server_used_.end(), std::size_t{0});
}

std::size_t StagingSpace::server_used_bytes(int server) const {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  return server_used_[static_cast<std::size_t>(server)];
}

int StagingSpace::target_server(const Box& box) const {
  const int hashed = server_for_box(box, num_servers());
  // Linear probe from the hash target so the mapping stays deterministic and
  // collapses back to the hash once the server recovers.
  for (int i = 0; i < num_servers(); ++i) {
    const int candidate = (hashed + i) % num_servers();
    if (!server_dead_[static_cast<std::size_t>(candidate)]) return candidate;
  }
  return -1;
}

std::vector<int> StagingSpace::replica_targets(const Box& box,
                                               std::size_t bytes) const {
  std::vector<int> targets;
  const int primary = target_server(box);
  if (primary < 0) return targets;
  targets.push_back(primary);
  if (replication_ == 1) return targets;

  const int hashed = server_for_box(box, num_servers());
  auto holds = [&](int server) {
    return std::find(targets.begin(), targets.end(), server) != targets.end();
  };
  auto in_used_domain = [&](int server) {
    for (int t : targets) {
      if (domain_of(t) == domain_of(server)) return true;
    }
    return false;
  };
  // Two probe passes from the hash: the first insists on untouched failure
  // domains, the second fills the remainder from any distinct alive server
  // with room. Probe order is identical every call — placement depends only
  // on (box, liveness, ledgers), never on history.
  for (const bool domain_strict : {true, false}) {
    for (int i = 0; i < num_servers() &&
                    targets.size() < static_cast<std::size_t>(replication_);
         ++i) {
      const int candidate = (hashed + i) % num_servers();
      const auto c = static_cast<std::size_t>(candidate);
      if (server_dead_[c] || holds(candidate)) continue;
      if (server_used_[c] + bytes > memory_per_server_) continue;
      if (domain_strict && in_used_domain(candidate)) continue;
      targets.push_back(candidate);
    }
  }
  return targets;
}

bool StagingSpace::can_accept(const Box& box, std::size_t bytes) const {
  const int server = target_server(box);
  if (server < 0) return false;
  return server_used_[static_cast<std::size_t>(server)] + bytes <= memory_per_server_;
}

void StagingSpace::charge(int server, std::size_t bytes) {
  server_used_[static_cast<std::size_t>(server)] += bytes;
}

void StagingSpace::release(int server, std::size_t bytes, std::uint64_t id) {
  auto& used = server_used_[static_cast<std::size_t>(server)];
  XL_ASSERT(used >= bytes, "server " << server << " accounts " << used
                                     << " bytes but object " << id << " holds "
                                     << bytes);
  used -= bytes;
}

std::uint64_t StagingSpace::put(int version, const Box& box, int ncomp,
                                std::size_t bytes, std::shared_ptr<const Fab> payload) {
  const int server = target_server(box);
  XL_REQUIRE(server >= 0, "no staging server alive");
  XL_REQUIRE(server_used_[static_cast<std::size_t>(server)] + bytes <=
                 memory_per_server_,
             "staging server out of memory (caller must check can_accept)");
  if (payload) {
    XL_REQUIRE(payload->ncomp() == ncomp, "payload component count mismatch");
  }
  StagedObject obj;
  obj.id = next_id_++;
  obj.version = version;
  obj.box = box;
  obj.ncomp = ncomp;
  obj.bytes = bytes;
  obj.payload = std::move(payload);
  obj.server = server;
  if (replication_ == 1) {
    obj.replicas.push_back(server);
  } else {
    obj.replicas = replica_targets(box, bytes);
    XL_ASSERT(!obj.replicas.empty() && obj.replicas.front() == server,
              "replica targets must start with the primary");
  }
  for (int r : obj.replicas) charge(r, bytes);
  objects_.emplace(obj.id, std::move(obj));
  return next_id_ - 1;
}

std::vector<const StagedObject*> StagingSpace::query(int version, const Box& region) const {
  std::vector<const StagedObject*> hits;
  for (const auto& [id, obj] : objects_) {
    if (obj.version == version && obj.box.intersects(region)) hits.push_back(&obj);
  }
  return hits;
}

void StagingSpace::erase(std::uint64_t id) {
  auto it = objects_.find(id);
  XL_REQUIRE(it != objects_.end(), "erase of unknown staged object");
  for (int r : it->second.replicas) release(r, it->second.bytes, id);
  objects_.erase(it);
}

std::size_t StagingSpace::erase_version(int version) {
  std::size_t freed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->second.version == version) {
      freed += it->second.bytes;
      for (int r : it->second.replicas) release(r, it->second.bytes, it->second.id);
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  return freed;
}

int StagingSpace::desired_replicas() const noexcept {
  return std::min(replication_, alive_servers());
}

int StagingSpace::probe_replica_dest(const StagedObject& obj) const {
  const int hashed = server_for_box(obj.box, num_servers());
  auto holds = [&](int server) {
    return std::find(obj.replicas.begin(), obj.replicas.end(), server) !=
           obj.replicas.end();
  };
  auto in_used_domain = [&](int server) {
    for (int t : obj.replicas) {
      if (domain_of(t) == domain_of(server)) return true;
    }
    return false;
  };
  for (const bool domain_strict : {true, false}) {
    for (int i = 0; i < num_servers(); ++i) {
      const int candidate = (hashed + i) % num_servers();
      const auto c = static_cast<std::size_t>(candidate);
      if (server_dead_[c] || holds(candidate)) continue;
      if (server_used_[c] + obj.bytes > memory_per_server_) continue;
      if (domain_strict && in_used_domain(candidate)) continue;
      return candidate;
    }
  }
  return -1;
}

ServerLossReport StagingSpace::fail_server(int server, LossPolicy policy) {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  const auto s = static_cast<std::size_t>(server);
  ServerLossReport report;
  report.server = server;
  if (server_dead_[s]) return report;  // already down; nothing new to lose.
  server_dead_[s] = true;

  // Walk the dead server's replicas in id order (map order) so any immediate
  // re-creation is deterministic: first objects get first pick of the
  // survivors' free space.
  for (auto it = objects_.begin(); it != objects_.end();) {
    StagedObject& obj = it->second;
    const auto replica = std::find(obj.replicas.begin(), obj.replicas.end(), server);
    if (replica == obj.replicas.end()) {
      ++it;
      continue;
    }
    release(server, obj.bytes, obj.id);
    obj.replicas.erase(replica);
    const bool survivors = !obj.replicas.empty();
    if (survivors) obj.server = obj.replicas.front();

    int dest = -1;
    if (policy == LossPolicy::Relocate) dest = probe_replica_dest(obj);
    if (dest >= 0) {
      obj.replicas.push_back(dest);
      charge(dest, obj.bytes);
      if (survivors) {
        // Re-created from a surviving copy: a repair, not a move.
        ++report.repaired_objects;
        report.repaired_bytes += obj.bytes;
      } else {
        // The only copy moved whole (the k = 1 relocate path).
        obj.server = dest;
        ++report.relocated_objects;
        report.relocated_bytes += obj.bytes;
      }
      ++it;
    } else if (!survivors) {
      ++report.dropped_objects;
      report.dropped_bytes += obj.bytes;
      it = objects_.erase(it);
    } else {
      ++report.degraded_objects;
      report.degraded_bytes += obj.bytes;
      ++it;
    }
  }
  XL_CHECK(server_used_[s] == 0, "dead server still accounts bytes");
  return report;
}

void StagingSpace::recover_server(int server) {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  server_dead_[static_cast<std::size_t>(server)] = false;
}

std::size_t StagingSpace::replica_deficit() const noexcept {
  const auto desired = static_cast<std::size_t>(desired_replicas());
  std::size_t deficit = 0;
  for (const auto& [id, obj] : objects_) {
    if (obj.replicas.size() < desired) deficit += desired - obj.replicas.size();
  }
  return deficit;
}

RepairReport StagingSpace::anti_entropy_repair(std::size_t max_bytes) {
  RepairReport report;
  const auto desired = static_cast<std::size_t>(desired_replicas());
  for (auto& [id, obj] : objects_) {
    bool repaired_this = false;
    while (obj.replicas.size() < desired) {
      if (max_bytes > 0 && report.repaired_bytes + obj.bytes > max_bytes) {
        report.remaining_deficit += desired - obj.replicas.size();
        break;
      }
      const int dest = probe_replica_dest(obj);
      if (dest < 0) {  // no survivor has room: deficit stays until one does.
        report.remaining_deficit += desired - obj.replicas.size();
        break;
      }
      obj.replicas.push_back(dest);
      charge(dest, obj.bytes);
      ++report.repaired_replicas;
      report.repaired_bytes += obj.bytes;
      repaired_this = true;
    }
    report.repaired_objects += repaired_this ? 1 : 0;
  }
  return report;
}

ReadReport StagingSpace::read_repair(int version, const Box& region) {
  ReadReport report;
  const auto desired = static_cast<std::size_t>(desired_replicas());
  const auto need = static_cast<std::size_t>(quorum());
  for (auto& [id, obj] : objects_) {
    if (obj.version != version || !obj.box.intersects(region)) continue;
    ++report.objects;
    if (obj.replicas.size() < std::min(need, desired)) ++report.below_quorum;
    while (obj.replicas.size() < desired) {
      const int dest = probe_replica_dest(obj);
      if (dest < 0) break;
      obj.replicas.push_back(dest);
      charge(dest, obj.bytes);
      ++report.repaired_replicas;
      report.repaired_bytes += obj.bytes;
    }
  }
  return report;
}

void StagingSpace::resize(int num_servers) {
  XL_REQUIRE(num_servers >= 1, "need at least one staging server");
  const auto target = static_cast<std::size_t>(num_servers);
  if (target < server_used_.size()) {
    for (std::size_t s = target; s < server_used_.size(); ++s) {
      XL_REQUIRE(server_used_[s] == 0, "cannot shrink away a non-empty staging server");
    }
  }
  server_used_.resize(target, 0);
  server_dead_.resize(target, false);
}

std::size_t StagingSpace::replica_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, obj] : objects_) n += obj.replicas.size();
  return n;
}

std::size_t StagingSpace::object_replicas(std::uint64_t id) const noexcept {
  const auto it = objects_.find(id);
  return it == objects_.end() ? 0 : it->second.replicas.size();
}

}  // namespace xl::staging
