#include "staging/space.hpp"

#include <numeric>

#include "common/error.hpp"

namespace xl::staging {

int server_for_box(const Box& box, int num_servers) {
  XL_REQUIRE(num_servers >= 1, "need at least one server");
  XL_REQUIRE(!box.empty(), "cannot index an empty box");
  const mesh::IntVect center{(box.lo()[0] + box.hi()[0]) / 2,
                             (box.lo()[1] + box.hi()[1]) / 2,
                             (box.lo()[2] + box.hi()[2]) / 2};
  const std::uint64_t key = mesh::morton_key(center);
  // SplitMix64 finalizer: a plain multiply would leave the low bits (and so
  // the modulus) a function of only the low Morton bits, hashing nearly all
  // boxes to one server.
  std::uint64_t h = key;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<int>(h % static_cast<std::uint64_t>(num_servers));
}

StagingSpace::StagingSpace(int num_servers, std::size_t memory_per_server)
    : memory_per_server_(memory_per_server),
      server_used_(static_cast<std::size_t>(num_servers), 0) {
  XL_REQUIRE(num_servers >= 1, "need at least one staging server");
  XL_REQUIRE(memory_per_server > 0, "staging servers need memory");
}

std::size_t StagingSpace::used_bytes() const noexcept {
  return std::accumulate(server_used_.begin(), server_used_.end(), std::size_t{0});
}

std::size_t StagingSpace::server_used_bytes(int server) const {
  XL_REQUIRE(server >= 0 && server < num_servers(), "server out of range");
  return server_used_[static_cast<std::size_t>(server)];
}

bool StagingSpace::can_accept(const Box& box, std::size_t bytes) const {
  const int server = server_for_box(box, num_servers());
  return server_used_[static_cast<std::size_t>(server)] + bytes <= memory_per_server_;
}

std::uint64_t StagingSpace::put(int version, const Box& box, int ncomp,
                                std::size_t bytes, std::optional<Fab> payload) {
  const int server = server_for_box(box, num_servers());
  auto& used = server_used_[static_cast<std::size_t>(server)];
  XL_REQUIRE(used + bytes <= memory_per_server_,
             "staging server out of memory (caller must check can_accept)");
  if (payload) {
    XL_REQUIRE(payload->ncomp() == ncomp, "payload component count mismatch");
  }
  StagedObject obj;
  obj.id = next_id_++;
  obj.version = version;
  obj.box = box;
  obj.ncomp = ncomp;
  obj.bytes = bytes;
  obj.payload = std::move(payload);
  obj.server = server;
  used += bytes;
  objects_.emplace(obj.id, std::move(obj));
  return next_id_ - 1;
}

std::vector<const StagedObject*> StagingSpace::query(int version, const Box& region) const {
  std::vector<const StagedObject*> hits;
  for (const auto& [id, obj] : objects_) {
    if (obj.version == version && obj.box.intersects(region)) hits.push_back(&obj);
  }
  return hits;
}

void StagingSpace::erase(std::uint64_t id) {
  auto it = objects_.find(id);
  XL_REQUIRE(it != objects_.end(), "erase of unknown staged object");
  server_used_[static_cast<std::size_t>(it->second.server)] -= it->second.bytes;
  objects_.erase(it);
}

std::size_t StagingSpace::erase_version(int version) {
  std::size_t freed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->second.version == version) {
      freed += it->second.bytes;
      server_used_[static_cast<std::size_t>(it->second.server)] -= it->second.bytes;
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  return freed;
}

void StagingSpace::resize(int num_servers) {
  XL_REQUIRE(num_servers >= 1, "need at least one staging server");
  const auto target = static_cast<std::size_t>(num_servers);
  if (target < server_used_.size()) {
    for (std::size_t s = target; s < server_used_.size(); ++s) {
      XL_REQUIRE(server_used_[s] == 0, "cannot shrink away a non-empty staging server");
    }
  }
  server_used_.resize(target, 0);
}

}  // namespace xl::staging
