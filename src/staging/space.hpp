// The shared-space staging service modeled on DataSpaces: a group of staging
// servers holding versioned, spatially-indexed data objects with per-server
// memory accounting. Small-scale (in-process) runs store real Fab payloads;
// machine-scale runs store metadata-only objects (byte sizes), exercising the
// identical indexing and accounting code.
//
// Durability: objects are staged k-way replicated (replication >= 1). The
// primary replica lands on the Morton-hash target (server_for_box) and the
// k-1 secondaries are placed by the same deterministic linear probe onto
// distinct alive servers, preferring distinct failure domains. EVERY replica
// is charged to its server's memory ledger, so used_bytes() is the physical
// footprint (k x payload at full replication), not the logical one.
//
// Servers can die (fault injection): a dead server's replicas are removed
// from its ledger and, per LossPolicy, re-created immediately (Relocate),
// abandoned (Drop), or left under-replicated for the background
// anti_entropy_repair() pass (Repair). An object is lost only when its LAST
// replica dies — with k-way replication that takes k overlapping failures.
// Reads re-materialize missing replicas on surviving servers (read_repair),
// the quorum being replication/2 + 1.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mesh/fab.hpp"
#include "mesh/layout.hpp"

namespace xl::staging {

using mesh::Box;
using mesh::Fab;

/// One staged object: the data of `box` at time step `version`.
///
/// The payload is held by shared immutable ownership: the producer's put, the
/// staged object, and every analysis reader reference ONE buffer — no copies
/// anywhere on the staging path. Relocation on server loss moves the object
/// (and its shared_ptr) between servers without touching the refcount
/// semantics; the buffer frees (back to the BufferPool) when the last reader
/// drops it.
struct StagedObject {
  std::uint64_t id = 0;
  int version = 0;
  Box box;
  int ncomp = 1;
  std::size_t bytes = 0;
  std::shared_ptr<const Fab> payload;  ///< null in metadata-only mode.
  int server = -1;            ///< primary replica's server (== replicas.front()).
  std::vector<int> replicas;  ///< alive servers holding a copy, primary first.
};

/// What to do with a dead server's replicas.
enum class LossPolicy {
  Relocate,  ///< re-create each lost replica on a surviving server right away.
  Drop,      ///< abandon the lost replicas; objects whose last copy died drop.
  Repair,    ///< leave survivors under-replicated for anti_entropy_repair().
};

const char* loss_policy_name(LossPolicy policy) noexcept;

/// What happened to a dead server's contents.
struct ServerLossReport {
  int server = -1;
  /// Objects whose ONLY copy lived on the dead server and was moved whole to
  /// a survivor (the k = 1 "relocate" path).
  std::size_t relocated_objects = 0;
  std::size_t relocated_bytes = 0;
  /// Objects whose last replica died with nowhere to go: true data loss.
  std::size_t dropped_objects = 0;
  std::size_t dropped_bytes = 0;
  /// Replicas re-created immediately from a surviving copy (Relocate, k > 1).
  std::size_t repaired_objects = 0;
  std::size_t repaired_bytes = 0;
  /// Survivors left under-replicated (Drop/Repair, or Relocate with no room).
  std::size_t degraded_objects = 0;
  std::size_t degraded_bytes = 0;
};

/// Outcome of one anti-entropy pass.
struct RepairReport {
  std::size_t repaired_objects = 0;   ///< objects whose deficit shrank.
  std::size_t repaired_replicas = 0;  ///< replicas re-created.
  std::size_t repaired_bytes = 0;     ///< bytes copied onto new replicas.
  std::size_t remaining_deficit = 0;  ///< replicas still missing after the pass.
};

/// Outcome of a quorum read (query + read-repair).
struct ReadReport {
  std::size_t objects = 0;            ///< objects matching the read.
  std::size_t below_quorum = 0;       ///< objects with < quorum live replicas (pre-repair).
  std::size_t repaired_replicas = 0;  ///< replicas the read re-materialized.
  std::size_t repaired_bytes = 0;
};

/// Deterministic box -> server mapping via the Morton key of the box center:
/// a space-filling-curve hash like DataSpaces' distributed index, preserving
/// spatial locality across servers.
int server_for_box(const Box& box, int num_servers);

class StagingSpace {
 public:
  /// `replication` copies of every object (clamped to num_servers at put
  /// time); `servers_per_domain` groups consecutive server ids into failure
  /// domains (racks) that replica placement spreads across when it can.
  StagingSpace(int num_servers, std::size_t memory_per_server,
               int replication = 1, int servers_per_domain = 1);

  int num_servers() const noexcept { return static_cast<int>(server_used_.size()); }
  /// Servers currently accepting data.
  int alive_servers() const noexcept;
  bool server_alive(int server) const;
  std::size_t memory_per_server() const noexcept { return memory_per_server_; }
  int replication() const noexcept { return replication_; }
  int servers_per_domain() const noexcept { return servers_per_domain_; }
  /// Failure domain of a server (consecutive ids share a domain).
  int domain_of(int server) const noexcept { return server / servers_per_domain_; }
  /// Read quorum: majority of the replication factor.
  int quorum() const noexcept { return replication_ / 2 + 1; }

  /// Capacity of the *alive* servers only.
  std::size_t capacity_bytes() const noexcept {
    return memory_per_server_ * static_cast<std::size_t>(alive_servers());
  }
  /// Physical bytes held: every replica charged to its server's ledger.
  std::size_t used_bytes() const noexcept;
  std::size_t free_bytes() const noexcept {
    const std::size_t cap = capacity_bytes();
    const std::size_t used = used_bytes();
    return cap > used ? cap - used : 0;
  }
  std::size_t server_used_bytes(int server) const;

  /// Server that would hold `box` right now: the hash target if alive, else
  /// the nearest alive server by id (deterministic probing). -1 if none alive.
  int target_server(const Box& box) const;

  /// Alive servers an object of `bytes` at `box` would replicate onto right
  /// now: the primary (target_server) followed by deterministically probed
  /// distinct servers with room, preferring unvisited failure domains. At
  /// most replication() entries; fewer when the group is degraded.
  std::vector<int> replica_targets(const Box& box, std::size_t bytes) const;

  /// Would `put` of an object of `bytes` into the server chosen for `box`
  /// succeed right now? (Checks the primary; secondaries are best-effort.)
  bool can_accept(const Box& box, std::size_t bytes) const;

  /// Insert an object (payload optional, shared not copied), replicated onto
  /// up to replication() distinct servers. Returns the assigned id. Throws
  /// ContractError when no alive server can take the primary.
  std::uint64_t put(int version, const Box& box, int ncomp, std::size_t bytes,
                    std::shared_ptr<const Fab> payload = nullptr);

  /// All objects of `version` intersecting `region`.
  std::vector<const StagedObject*> query(int version, const Box& region) const;

  /// Remove one object (after its analysis has consumed it); frees every
  /// replica's ledger charge.
  void erase(std::uint64_t id);

  /// Remove every object of `version`; returns *payload* bytes freed (one
  /// count per object, not per replica).
  std::size_t erase_version(int version);

  /// Kill a server. Its replicas leave the ledger; surviving copies keep the
  /// object alive. See LossPolicy for what happens to the lost replicas.
  ServerLossReport fail_server(int server, LossPolicy policy = LossPolicy::Relocate);

  /// Bring a dead server back (empty); it resumes accepting new objects.
  void recover_server(int server);

  /// Replicas missing across all objects (how far the space is from full
  /// replication, capped by what the alive group could actually hold).
  std::size_t replica_deficit() const noexcept;

  /// Background anti-entropy: walk under-replicated objects in id order and
  /// re-create missing replicas on probed alive servers with room, spending
  /// at most `max_bytes` of copy traffic (0 = unlimited). Deterministic.
  RepairReport anti_entropy_repair(std::size_t max_bytes = 0);

  /// Quorum read with read-repair: for every object of `version` intersecting
  /// `region`, count live replicas against quorum() and re-materialize
  /// missing replicas on surviving servers (same placement as anti-entropy,
  /// scoped to the read). The DataSpaces get path calls this before handing
  /// payloads out.
  ReadReport read_repair(int version, const Box& region);

  /// Grow or shrink the server group (resource-layer adaptation). Shrinking
  /// requires the vacated servers to be empty; objects are never migrated.
  void resize(int num_servers);

  std::size_t object_count() const noexcept { return objects_.size(); }
  /// Live replicas across all objects (== object_count() when replication=1).
  std::size_t replica_count() const noexcept;
  /// Live replicas of one object (0 when the id is unknown).
  std::size_t object_replicas(std::uint64_t id) const noexcept;

 private:
  /// Probe for a server to host a NEW replica of `obj` (alive, has room, not
  /// already holding one; first pass prefers failure domains the object does
  /// not occupy yet). -1 when nothing fits.
  int probe_replica_dest(const StagedObject& obj) const;
  /// Replicas this object should hold given the current alive group.
  int desired_replicas() const noexcept;
  void charge(int server, std::size_t bytes);
  void release(int server, std::size_t bytes, std::uint64_t id);

  std::size_t memory_per_server_;
  int replication_;
  int servers_per_domain_;
  std::vector<std::size_t> server_used_;
  std::vector<bool> server_dead_;
  std::map<std::uint64_t, StagedObject> objects_;
  std::uint64_t next_id_ = 0;
};

}  // namespace xl::staging
