// The shared-space staging service modeled on DataSpaces: a group of staging
// servers holding versioned, spatially-indexed data objects with per-server
// memory accounting. Small-scale (in-process) runs store real Fab payloads;
// machine-scale runs store metadata-only objects (byte sizes), exercising the
// identical indexing and accounting code.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mesh/fab.hpp"
#include "mesh/layout.hpp"

namespace xl::staging {

using mesh::Box;
using mesh::Fab;

/// One staged object: the data of `box` at time step `version`.
struct StagedObject {
  std::uint64_t id = 0;
  int version = 0;
  Box box;
  int ncomp = 1;
  std::size_t bytes = 0;
  std::optional<Fab> payload;  ///< absent in metadata-only mode.
  int server = -1;
};

/// Deterministic box -> server mapping via the Morton key of the box center:
/// a space-filling-curve hash like DataSpaces' distributed index, preserving
/// spatial locality across servers.
int server_for_box(const Box& box, int num_servers);

class StagingSpace {
 public:
  StagingSpace(int num_servers, std::size_t memory_per_server);

  int num_servers() const noexcept { return static_cast<int>(server_used_.size()); }
  std::size_t memory_per_server() const noexcept { return memory_per_server_; }
  std::size_t capacity_bytes() const noexcept {
    return memory_per_server_ * server_used_.size();
  }
  std::size_t used_bytes() const noexcept;
  std::size_t free_bytes() const noexcept { return capacity_bytes() - used_bytes(); }
  std::size_t server_used_bytes(int server) const;

  /// Would `put` of an object of `bytes` into the server chosen for `box`
  /// succeed right now?
  bool can_accept(const Box& box, std::size_t bytes) const;

  /// Insert an object (payload optional). Returns the assigned id.
  /// Throws ContractError when the target server lacks memory.
  std::uint64_t put(int version, const Box& box, int ncomp, std::size_t bytes,
                    std::optional<Fab> payload = std::nullopt);

  /// All objects of `version` intersecting `region`.
  std::vector<const StagedObject*> query(int version, const Box& region) const;

  /// Remove one object (after its analysis has consumed it).
  void erase(std::uint64_t id);

  /// Remove every object of `version`; returns bytes freed.
  std::size_t erase_version(int version);

  /// Grow or shrink the server group (resource-layer adaptation). Shrinking
  /// requires the vacated servers to be empty; objects are never migrated.
  void resize(int num_servers);

  std::size_t object_count() const noexcept { return objects_.size(); }

 private:
  std::size_t memory_per_server_;
  std::vector<std::size_t> server_used_;
  std::map<std::uint64_t, StagedObject> objects_;
  std::uint64_t next_id_ = 0;
};

}  // namespace xl::staging
