// The shared-space staging service modeled on DataSpaces: a group of staging
// servers holding versioned, spatially-indexed data objects with per-server
// memory accounting. Small-scale (in-process) runs store real Fab payloads;
// machine-scale runs store metadata-only objects (byte sizes), exercising the
// identical indexing and accounting code.
//
// Servers can die (fault injection): a dead server's objects are either
// relocated to surviving servers or dropped, the server stops accepting puts,
// and effective capacity shrinks until recover_server() brings it back.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mesh/fab.hpp"
#include "mesh/layout.hpp"

namespace xl::staging {

using mesh::Box;
using mesh::Fab;

/// One staged object: the data of `box` at time step `version`.
///
/// The payload is held by shared immutable ownership: the producer's put, the
/// staged object, and every analysis reader reference ONE buffer — no copies
/// anywhere on the staging path. Relocation on server loss moves the object
/// (and its shared_ptr) between servers without touching the refcount
/// semantics; the buffer frees (back to the BufferPool) when the last reader
/// drops it.
struct StagedObject {
  std::uint64_t id = 0;
  int version = 0;
  Box box;
  int ncomp = 1;
  std::size_t bytes = 0;
  std::shared_ptr<const Fab> payload;  ///< null in metadata-only mode.
  int server = -1;
};

/// What happened to a dead server's contents.
struct ServerLossReport {
  int server = -1;
  std::size_t relocated_objects = 0;
  std::size_t relocated_bytes = 0;
  std::size_t dropped_objects = 0;
  std::size_t dropped_bytes = 0;
};

/// Deterministic box -> server mapping via the Morton key of the box center:
/// a space-filling-curve hash like DataSpaces' distributed index, preserving
/// spatial locality across servers.
int server_for_box(const Box& box, int num_servers);

class StagingSpace {
 public:
  StagingSpace(int num_servers, std::size_t memory_per_server);

  int num_servers() const noexcept { return static_cast<int>(server_used_.size()); }
  /// Servers currently accepting data.
  int alive_servers() const noexcept;
  bool server_alive(int server) const;
  std::size_t memory_per_server() const noexcept { return memory_per_server_; }
  /// Capacity of the *alive* servers only.
  std::size_t capacity_bytes() const noexcept {
    return memory_per_server_ * static_cast<std::size_t>(alive_servers());
  }
  std::size_t used_bytes() const noexcept;
  std::size_t free_bytes() const noexcept {
    const std::size_t cap = capacity_bytes();
    const std::size_t used = used_bytes();
    return cap > used ? cap - used : 0;
  }
  std::size_t server_used_bytes(int server) const;

  /// Server that would hold `box` right now: the hash target if alive, else
  /// the nearest alive server by id (deterministic probing). -1 if none alive.
  int target_server(const Box& box) const;

  /// Would `put` of an object of `bytes` into the server chosen for `box`
  /// succeed right now?
  bool can_accept(const Box& box, std::size_t bytes) const;

  /// Insert an object (payload optional, shared not copied). Returns the
  /// assigned id. Throws ContractError when no alive server can take it.
  std::uint64_t put(int version, const Box& box, int ncomp, std::size_t bytes,
                    std::shared_ptr<const Fab> payload = nullptr);

  /// All objects of `version` intersecting `region`.
  std::vector<const StagedObject*> query(int version, const Box& region) const;

  /// Remove one object (after its analysis has consumed it).
  void erase(std::uint64_t id);

  /// Remove every object of `version`; returns bytes freed.
  std::size_t erase_version(int version);

  /// Kill a server. Its objects are relocated (in id order) onto surviving
  /// servers with free memory when `requeue` is true; objects that do not fit
  /// anywhere — or all of them when `requeue` is false — are dropped.
  ServerLossReport fail_server(int server, bool requeue = true);

  /// Bring a dead server back (empty); it resumes accepting new objects.
  void recover_server(int server);

  /// Grow or shrink the server group (resource-layer adaptation). Shrinking
  /// requires the vacated servers to be empty; objects are never migrated.
  void resize(int num_servers);

  std::size_t object_count() const noexcept { return objects_.size(); }

 private:
  std::size_t memory_per_server_;
  std::vector<std::size_t> server_used_;
  std::vector<bool> server_dead_;
  std::map<std::uint64_t, StagedObject> objects_;
  std::uint64_t next_id_ = 0;
};

}  // namespace xl::staging
