#include "staging/lock.hpp"

#include "common/error.hpp"

namespace xl::staging {

void VersionLockManager::lock_on_write(int version) {
  MutexLock lock(mutex_);
  VersionState& state = versions_[version];
  XL_REQUIRE(!state.complete, "version already written and sealed");
  while (versions_[version].writer_active) cv_.wait(lock);
  versions_[version].writer_active = true;
}

void VersionLockManager::unlock_on_write(int version) {
  {
    MutexLock lock(mutex_);
    auto it = versions_.find(version);
    XL_REQUIRE(it != versions_.end() && it->second.writer_active,
               "unlock_on_write without a held write lock");
    it->second.writer_active = false;
    it->second.complete = true;
  }
  cv_.notify_all();
}

void VersionLockManager::lock_on_read(int version) {
  MutexLock lock(mutex_);
  for (;;) {
    auto it = versions_.find(version);
    if (it != versions_.end() && it->second.complete) break;
    cv_.wait(lock);
  }
  ++versions_[version].readers;
}

void VersionLockManager::unlock_on_read(int version) {
  MutexLock lock(mutex_);
  auto it = versions_.find(version);
  XL_REQUIRE(it != versions_.end() && it->second.readers > 0,
             "unlock_on_read without a held read lock");
  --it->second.readers;
}

bool VersionLockManager::is_complete(int version) const {
  MutexLock lock(mutex_);
  auto it = versions_.find(version);
  return it != versions_.end() && it->second.complete;
}

int VersionLockManager::active_readers(int version) const {
  MutexLock lock(mutex_);
  auto it = versions_.find(version);
  return it == versions_.end() ? 0 : it->second.readers;
}

}  // namespace xl::staging
