// A live, threaded staging service: the in-process equivalent of a
// DataSpaces server group. Server worker threads own the staging space and
// execute requests (put / get / in-transit analysis) asynchronously, so a
// client-side simulation genuinely overlaps its next step with in-transit
// work — the mechanism the paper's middleware policy exploits, running for
// real rather than as a timeline model.
//
// Clients interact through futures:
//   auto ack = service.put_async(version, box, std::move(fab));
//   auto iso = service.analyze_async(version, region, isovalue, comp);
//   ... keep simulating ...
//   iso.get().triangles;   // completed on the service threads
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "staging/space.hpp"
#include "viz/marching_cubes.hpp"

namespace xl::staging {

/// One completed service request, reported through ServiceConfig::observer —
/// the live-service analogue of the workflow's WorkflowObserver stream.
struct ServiceEvent {
  enum class Kind {
    Put,
    Get,
    Analysis,
    Drain,
    ServerLost,
    ServerRecovered,
    ReadRepair,  ///< a get re-materialized missing replicas.
    Repair,      ///< an anti-entropy pass re-created replicas.
  };
  Kind kind = Kind::Put;
  int version = -1;            ///< request version (-1 for Drain/Repair).
  std::uint64_t id = 0;        ///< staged-object id (Put only).
  std::size_t bytes = 0;       ///< payload bytes (Put) / copied (Get/ReadRepair/Repair) / dropped (ServerLost).
  std::size_t objects = 0;     ///< objects touched (Get/Analysis) / dropped (ServerLost).
  double seconds = 0.0;        ///< service-thread time for this request.
  bool accepted = true;        ///< Put: false when the space was full.
  int server = -1;             ///< ServerLost/ServerRecovered: which server.
  std::size_t replicas = 0;    ///< Put: copies placed; ReadRepair/Repair: copies re-created.
};

const char* service_event_kind_name(ServiceEvent::Kind kind) noexcept;

/// Thread-safe recorder for the ServiceEvent stream — the sanctioned
/// ServiceConfig::observer sink. Service workers append concurrently; tests
/// and benches snapshot after a drain. Connect with `log.observer()`.
class ServiceEventLog {
 public:
  void append(const ServiceEvent& event) {
    MutexLock lock(mutex_);
    events_.push_back(event);
  }

  /// Copy of the stream so far (stable snapshot; workers may keep appending).
  std::vector<ServiceEvent> snapshot() const {
    MutexLock lock(mutex_);
    return events_;
  }

  std::size_t count(ServiceEvent::Kind kind) const {
    MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const ServiceEvent& e : events_) n += e.kind == kind;
    return n;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return events_.size();
  }

  void clear() {
    MutexLock lock(mutex_);
    events_.clear();
  }

  /// Callback bound to this log, suitable for ServiceConfig::observer.
  std::function<void(const ServiceEvent&)> observer() {
    return [this](const ServiceEvent& event) { append(event); };
  }

 private:
  mutable Mutex mutex_;
  std::vector<ServiceEvent> events_ XL_GUARDED_BY(mutex_);
};

struct ServiceConfig {
  int num_servers = 2;                       ///< worker threads (staging "cores").
  std::size_t memory_per_server = std::size_t{64} << 20;
  /// Copies of every staged object (see StagingSpace). 1 = the paper's
  /// unreplicated shared space.
  int replication = 1;
  /// Consecutive server ids per failure domain (replicas spread across
  /// domains when possible).
  int servers_per_domain = 1;
  /// What fail_server does with a dead server's replicas by default.
  LossPolicy loss_policy = LossPolicy::Relocate;
  /// Optional event tap. IMPORTANT: invoked from the service worker threads
  /// (and from the caller's thread for Drain), possibly concurrently — the
  /// callback must be thread-safe. It is called outside the service mutex.
  std::function<void(const ServiceEvent&)> observer;
};

/// Result of an asynchronous put.
struct PutAck {
  bool accepted = false;    ///< false when the target server was out of memory.
  std::uint64_t id = 0;
};

/// Result of an in-transit isosurface analysis.
struct AnalysisResult {
  std::size_t objects = 0;    ///< staged objects consumed.
  std::size_t triangles = 0;
  double service_seconds = 0.0;  ///< wall time spent on the service thread.
};

class StagingService {
 public:
  explicit StagingService(const ServiceConfig& config);
  ~StagingService();

  StagingService(const StagingService&) = delete;
  StagingService& operator=(const StagingService&) = delete;

  /// Stage one object by shared immutable ownership: the caller's buffer IS
  /// the staged buffer (no copy anywhere on the path). Never blocks the
  /// caller beyond enqueueing.
  std::future<PutAck> put_async(int version, const mesh::Box& box,
                                std::shared_ptr<const mesh::Fab> payload);

  /// Convenience: take ownership of an rvalue Fab (one move, zero copies).
  std::future<PutAck> put_async(int version, const mesh::Box& box, mesh::Fab&& payload) {
    return put_async(version, box,
                     std::make_shared<const mesh::Fab>(std::move(payload)));
  }

  /// Shared read-only references to all objects of `version` intersecting
  /// `region` — the staged buffers themselves, not copies. They stay valid
  /// (and keep their server memory pinned only until the object is erased;
  /// the buffer itself lives until the last reader drops it). Under
  /// replication this is a quorum read: the get first re-materializes any
  /// missing replicas of the objects it touches (read-repair, emitting
  /// ServiceEvent::ReadRepair when it re-created copies).
  std::future<std::vector<std::shared_ptr<const mesh::Fab>>> get_async(
      int version, const mesh::Box& region);

  /// Background anti-entropy pass: re-create missing replicas (id order,
  /// at most `max_bytes` of copy traffic per pass, 0 = unlimited). Queued
  /// behind client requests so repair competes with workflow traffic. Emits
  /// ServiceEvent::Repair when it re-created copies.
  std::future<RepairReport> repair_async(std::size_t max_bytes = 0);

  /// In-transit analysis: marching cubes over every staged object of
  /// `version` intersecting `region`; consumed objects are erased (their
  /// memory returns to the space).
  std::future<AnalysisResult> analyze_async(int version, const mesh::Box& region,
                                            double isovalue, int comp);

  /// Block until every enqueued request has completed.
  void drain();

  /// Kill one staging server (fault injection): what happens to its replicas
  /// follows `policy` (defaults to the config's loss_policy); the server
  /// stops accepting puts. Emits ServiceEvent::ServerLost. Safe to call from
  /// any thread; runs inline on the caller (not queued behind requests).
  ServerLossReport fail_server(int server);
  ServerLossReport fail_server(int server, LossPolicy policy);

  /// Bring a dead server back online (empty). Emits ServerRecovered.
  void recover_server(int server);

  /// Servers currently accepting data.
  int alive_servers() const;

  /// Seconds the staging area still needs to clear its current queue,
  /// estimated from queued analysis work (the live analogue of the
  /// monitor's backlog signal). 0 when idle.
  std::size_t pending_requests() const;

  /// Accounting (valid once the relevant requests completed).
  std::size_t used_bytes() const;
  std::size_t free_bytes() const;
  std::size_t replica_count() const;    ///< live replicas across all objects.
  std::size_t replica_deficit() const;  ///< replicas missing vs full replication.
  double busy_seconds() const;  ///< cumulative service-thread busy time.
  int num_servers() const noexcept { return config_.num_servers; }
  int replication() const noexcept { return config_.replication; }

 private:
  void worker_loop();
  void enqueue(std::function<void()> task) XL_EXCLUDES(mutex_);

  XL_UNGUARDED("immutable after construction; observer must be thread-safe")
  ServiceConfig config_;
  mutable Mutex mutex_;
  XL_UNGUARDED("condition variables synchronize internally")
  CondVar work_cv_;
  XL_UNGUARDED("condition variables synchronize internally")
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ XL_GUARDED_BY(mutex_);
  int in_flight_ XL_GUARDED_BY(mutex_) = 0;
  bool stop_ XL_GUARDED_BY(mutex_) = false;
  /// Requests may run on any worker; every space access takes the lock.
  StagingSpace space_ XL_GUARDED_BY(mutex_);
  double busy_seconds_ XL_GUARDED_BY(mutex_) = 0.0;
  XL_UNGUARDED("written once in the constructor before any request can race")
  std::vector<std::thread> workers_;
};

}  // namespace xl::staging
