// DataSpaces-style version locks: the coordination primitive that sequences
// a coupled producer/consumer pair over the shared space ("distributed
// interaction and coordination services", the role DataSpaces plays for the
// paper's workflow). A producer takes the write lock for a version, puts its
// objects, and releases; consumers block on the read lock until the version
// is complete. Locks are per-version, so consumer(version v) overlaps with
// producer(version v+1) — the pipelining the in-transit path relies on.
#pragma once

#include <map>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace xl::staging {

class VersionLockManager {
 public:
  /// Producer side: acquire the exclusive write lock for `version`. Blocks
  /// while another writer holds it.
  void lock_on_write(int version);

  /// Producer side: release the write lock and mark `version` complete;
  /// wakes all readers waiting on it.
  void unlock_on_write(int version);

  /// Consumer side: block until `version` has been written completely.
  void lock_on_read(int version);

  /// Consumer side: release the read lock (bookkeeping only; reads are
  /// shared).
  void unlock_on_read(int version);

  /// Non-blocking probe: has `version` been completely written?
  bool is_complete(int version) const;

  /// Readers currently inside the read lock of `version`.
  int active_readers(int version) const;

 private:
  struct VersionState {
    bool writer_active = false;
    bool complete = false;
    int readers = 0;
  };

  mutable Mutex mutex_;
  XL_UNGUARDED("condition variables synchronize internally")
  CondVar cv_;
  std::map<int, VersionState> versions_ XL_GUARDED_BY(mutex_);
};

}  // namespace xl::staging
