// Machine models for the two systems the paper evaluates on, plus a generic
// model for tests. The DES prices kernels and transfers against these specs;
// absolute numbers differ from the real machines (we cannot calibrate against
// Intrepid), but the *ratios* that drive the adaptation policies — compute
// speed vs. network bandwidth vs. per-core memory — follow the published
// specs, which is what preserves the experiment shapes.
#pragma once

#include <cstddef>
#include <string>

namespace xl::cluster {

struct NetworkSpec {
  double link_bandwidth_Bps = 1.0e9;  ///< per-node injection bandwidth.
  double latency_s = 5.0e-6;          ///< one-way small-message latency.
  /// Effective fraction of peak an application-level staging transfer
  /// achieves (protocol + congestion derating).
  double efficiency = 0.7;
};

struct MachineSpec {
  std::string name;
  int cores_per_node = 4;
  std::size_t mem_per_node_bytes = std::size_t{2} << 30;
  /// Effective per-core application throughput in FLOP/s (not peak: a
  /// realistic sustained fraction for stencil/triangulation kernels).
  double core_flops = 1.0e9;
  NetworkSpec network;

  std::size_t mem_per_core_bytes() const {
    return mem_per_node_bytes / static_cast<std::size_t>(cores_per_node);
  }
};

/// Intrepid IBM Blue Gene/P (ANL): 850 MHz quad-core PPC450, 2 GB/node
/// (500 MB per core), 3-D torus at 425 MB/s per link.
MachineSpec intrepid();

/// Titan Cray XK7 (ORNL): 16-core AMD Opteron 6274, 32 GB/node, Gemini
/// interconnect (several GB/s per NIC).
MachineSpec titan();

/// Small generic machine for unit tests (round numbers).
MachineSpec test_machine();

}  // namespace xl::cluster
