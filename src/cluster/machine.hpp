// Machine models for the two systems the paper evaluates on, plus a generic
// model for tests. The DES prices kernels and transfers against these specs;
// absolute numbers differ from the real machines (we cannot calibrate against
// Intrepid), but the *ratios* that drive the adaptation policies — compute
// speed vs. network bandwidth vs. per-core memory — follow the published
// specs, which is what preserves the experiment shapes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"

namespace xl::cluster {

struct NetworkSpec {
  double link_bandwidth_Bps = 1.0e9;  ///< per-node injection bandwidth.
  double latency_s = 5.0e-6;          ///< one-way small-message latency.
  /// Effective fraction of peak an application-level staging transfer
  /// achieves (protocol + congestion derating).
  double efficiency = 0.7;
};

struct MachineSpec {
  std::string name;
  int cores_per_node = 4;
  std::size_t mem_per_node_bytes = std::size_t{2} << 30;
  /// Effective per-core application throughput in FLOP/s (not peak: a
  /// realistic sustained fraction for stencil/triangulation kernels).
  double core_flops = 1.0e9;
  NetworkSpec network;

  std::size_t mem_per_core_bytes() const {
    return mem_per_node_bytes / static_cast<std::size_t>(cores_per_node);
  }
};

/// Intrepid IBM Blue Gene/P (ANL): 850 MHz quad-core PPC450, 2 GB/node
/// (500 MB per core), 3-D torus at 425 MB/s per link.
MachineSpec intrepid();

/// Titan Cray XK7 (ORNL): 16-core AMD Opteron 6274, 32 GB/node, Gemini
/// interconnect (several GB/s per NIC).
MachineSpec titan();

/// Small generic machine for unit tests (round numbers).
MachineSpec test_machine();

/// Per-virtual-rank simulation state: one flat, trivially copyable record.
/// Everything the DES needs to price a rank's next event lives here, so a
/// million-rank machine is one contiguous 24 MB table — no per-rank map
/// nodes, no pointer chasing on the event hot path.
struct RankRecord {
  double busy_until = 0.0;       ///< simulated time the rank's core frees up.
  std::uint64_t events = 0;      ///< events fired on this rank.
  std::uint64_t bytes_sent = 0;  ///< payload bytes this rank injected.
};

/// Flat arena-backed table of RankRecords, indexed by rank id. Backed by the
/// pooled ArenaVec so repeated construction at the same scale (parameter
/// sweeps, the scaling bench) recycles one buffer instead of reallocating.
class RankTable {
 public:
  RankTable() = default;
  explicit RankTable(std::size_t nranks) { reset(nranks); }

  /// Size the table to `nranks` zero-initialized records.
  void reset(std::size_t nranks) {
    ranks_.clear();
    ranks_.resize(nranks, RankRecord{});
  }

  std::size_t size() const noexcept { return ranks_.size(); }
  bool empty() const noexcept { return ranks_.empty(); }

  RankRecord& operator[](std::size_t rank) noexcept { return ranks_[rank]; }
  const RankRecord& operator[](std::size_t rank) const noexcept {
    return ranks_[rank];
  }

  RankRecord& at(std::size_t rank) {
    XL_REQUIRE(rank < ranks_.size(), "rank out of range");
    return ranks_[rank];
  }

  RankRecord* begin() noexcept { return ranks_.begin(); }
  RankRecord* end() noexcept { return ranks_.end(); }
  const RankRecord* begin() const noexcept { return ranks_.begin(); }
  const RankRecord* end() const noexcept { return ranks_.end(); }

  /// Latest time any rank is busy until (the machine-wide frontier).
  double max_busy_until() const noexcept {
    double latest = 0.0;
    for (const RankRecord& r : ranks_) {
      if (r.busy_until > latest) latest = r.busy_until;
    }
    return latest;
  }

  std::uint64_t total_events() const noexcept {
    std::uint64_t n = 0;
    for (const RankRecord& r : ranks_) n += r.events;
    return n;
  }

  std::uint64_t total_bytes_sent() const noexcept {
    std::uint64_t n = 0;
    for (const RankRecord& r : ranks_) n += r.bytes_sent;
    return n;
  }

 private:
  /// Engine pool: rank bookkeeping stays out of the data-path pool's
  /// telemetry (see BufferPool::engine()).
  ArenaVec<RankRecord> ranks_{BufferPool::engine()};
};

}  // namespace xl::cluster
