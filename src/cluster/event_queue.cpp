// Ladder-queue internals for the deterministic DES engine. Three tiers:
//
//   Top     — unsorted overflow for the far future (everything at or beyond
//             top_floor_). Appending is O(1).
//   Rungs   — a strictly nested stack of bucketed time windows. Rung 0 is
//             spawned from Top; rung k+1 is spawned from an oversized bucket
//             of rung k, subdividing exactly that bucket's window. Thresholds
//             weakly decrease going inward, so an insert lands in the
//             outermost rung that still covers its timestamp.
//   Bottom  — the near future, sorted descending by (time, seq) so pop_back
//             is the minimum. Filled one bucket at a time.
//
// The ordering invariant the tiers maintain: every event in Bottom precedes
// every undrained rung bucket, and every rung event precedes everything in
// Top. Within a tier, (time, seq) sorting happens at most once per event —
// the amortized O(1) of Tang & Perumalla's ladder queue.
#include "cluster/event_queue.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/contract.hpp"

namespace xl::cluster {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr std::size_t kHandlerBytes = sizeof(EventHandler);

/// Bucket count for a rung spawned from `n` events: aim for bucket loads
/// around half the direct-sort threshold, capped at 16384 so the scatter's
/// active bucket-tail cache lines (one per bucket, ~1 MiB at the cap) stay
/// L2-resident. A 1M-event batch then takes ONE scatter level into ~64-event
/// buckets that sort straight into Bottom.
std::size_t rung_buckets_for(std::size_t n) {
  std::size_t nb = 128;
  while (nb < 16384 && n / nb > EventQueue::kBucketThreshold / 2) nb *= 2;
  return nb;
}
}  // namespace

EventQueue::EventQueue()
    : bottom_(BufferPool::engine()),
      top_(BufferPool::engine()),
      top_floor_(kNegInf),
      drain_(BufferPool::engine()),
      free_slots_(BufferPool::engine()) {}

EventQueue::~EventQueue() {
  destroy_all();
  BufferPool& pool = BufferPool::engine();
  for (auto& slab : slabs_) pool.release(std::move(slab));
}

// --- handler slab arena ------------------------------------------------------

EventHandler* EventQueue::slot_ptr(std::uint32_t slot) noexcept {
  return std::launder(reinterpret_cast<EventHandler*>(slot_mem(slot)));
}

std::uint32_t EventQueue::reserve_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (slabs_.empty() || slab_used_ == slots_in_slab(slabs_.size() - 1)) {
    const std::size_t n = slots_in_slab(slabs_.size());
    slabs_.push_back(BufferPool::engine().acquire<std::uint8_t>(n * kHandlerBytes));
    slab_used_ = 0;
    total_slots_ += n;
    // Pre-size the free list to the slot count so release_slot's push_back
    // never grows mid-run — it must be safe in a cleanup path.
    free_slots_.reserve(total_slots_);
  }
  const std::size_t slab = slabs_.size() - 1;
  return static_cast<std::uint32_t>((slab << kSlotIdxBits) | slab_used_++);
}

void* EventQueue::slot_mem(std::uint32_t slot) noexcept {
  std::uint8_t* base = slabs_[slot >> kSlotIdxBits].data();
  return static_cast<void*>(base + (slot & (kMaxSlabSlots - 1)) * kHandlerBytes);
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  slot_ptr(slot)->~EventHandler();
  free_slots_.push_back(slot);
}

// --- scheduling --------------------------------------------------------------

void EventQueue::finish_schedule(SimTime t, std::uint32_t slot, bool heap_backed) {
  if (heap_backed) ++stats_.heap_handlers;
  const EventRef ref{t, seq_++, slot};
  insert_ref(ref);
  ++pending_;
  ++stats_.scheduled;
  if (pending_ > stats_.peak_pending) stats_.peak_pending = pending_;
}

void EventQueue::insert_ref(const EventRef& ref) {
  // Far future: at or beyond the Top floor.
  if (ref.time >= top_floor_) {
    if (top_.empty()) {
      top_min_ = top_max_ = ref.time;
    } else {
      if (ref.time < top_min_) top_min_ = ref.time;
      if (ref.time > top_max_) top_max_ = ref.time;
    }
    top_.push_back(ref);
    return;
  }
  // Rung windows, outermost first: the first rung whose live range still
  // covers ref.time owns it (inner rungs subdivide an outer rung's already-
  // drained bucket, so their thresholds are lower).
  for (std::size_t i = 0; i < nrungs_; ++i) {
    Rung& rung = rungs_[i];
    if (ref.time < rung.threshold()) continue;
    // Multiply by the stored reciprocal instead of dividing: monotone in
    // ref.time, so bucket ordering is preserved; boundary rounding is
    // absorbed by the clamps below.
    std::size_t idx =
        f2s((ref.time - rung.start) * rung.inv_width, "ladder bucket index");
    if (idx < rung.cur) idx = rung.cur;               // fp rounding below the live range
    if (idx >= rung.nbuckets) idx = rung.nbuckets - 1;  // window-end boundary
    rung.buckets[idx].push_back(ref);
    ++rung.count;
    return;
  }
  // Near future: sorted insert into Bottom (descending, so back() is the
  // minimum). Binary search keeps mid-drain same-timestamp scheduling cheap.
  std::size_t lo = 0;
  std::size_t hi = bottom_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (before(ref, bottom_[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  bottom_.insert_at(lo, ref);
}

// --- draining ----------------------------------------------------------------

void EventQueue::sort_into_bottom(ArenaVec<EventRef>& batch) {
  XL_ASSERT(bottom_.empty(), "bottom must be drained before a refill");
  std::sort(batch.begin(), batch.end(),
            [](const EventRef& a, const EventRef& b) { return before(b, a); });
  bottom_.swap(batch);
  batch.clear();
}

void EventQueue::spawn_rung(ArenaVec<EventRef>& source, double start, double width,
                            std::size_t nbuckets) {
  Rung& rung = rungs_[nrungs_++];
  rung.start = start;
  rung.width = width;
  rung.inv_width = 1.0 / width;
  rung.cur = 0;
  rung.nbuckets = nbuckets;
  rung.count = source.size();
  while (rung.buckets.size() < nbuckets) {
    rung.buckets.emplace_back(BufferPool::engine());
  }
  for (const EventRef& ref : source) {
    std::size_t idx =
        f2s((ref.time - start) * rung.inv_width, "ladder bucket index");
    if (idx >= nbuckets) idx = nbuckets - 1;
    rung.buckets[idx].push_back(ref);
  }
  source.clear();
  ++stats_.rung_spawns;
}

bool EventQueue::prepare_bottom() {
  while (bottom_.empty()) {
    if (nrungs_ > 0) {
      Rung& rung = rungs_[nrungs_ - 1];
      if (rung.count == 0) {
        // Retired: every bucket drained. Pooled bucket arenas stay allocated
        // for the next spawn.
        --nrungs_;
        continue;
      }
      while (rung.buckets[rung.cur].empty()) ++rung.cur;
      drain_.swap(rung.buckets[rung.cur]);
      rung.count -= drain_.size();
      const double bucket_start = rung.threshold();
      ++rung.cur;  // threshold now points past the drained bucket's window
      if (drain_.size() > kBucketThreshold && nrungs_ < kMaxRungs) {
        // Oversized bucket: subdivide its window into a child rung — but only
        // when the timestamps actually spread (a degenerate all-equal bucket
        // subdivides forever; sorting it is O(n) anyway, seq is the only key).
        double lo = drain_[0].time;
        double hi = drain_[0].time;
        for (const EventRef& ref : drain_) {
          if (ref.time < lo) lo = ref.time;
          if (ref.time > hi) hi = ref.time;
        }
        const std::size_t nb = rung_buckets_for(drain_.size());
        const double child_width = rung.width / static_cast<double>(nb);
        if (lo < hi && bucket_start + child_width > bucket_start) {
          spawn_rung(drain_, bucket_start, child_width, nb);
          continue;
        }
      }
      ++stats_.direct_sorts;
      sort_into_bottom(drain_);
      continue;
    }
    if (!top_.empty()) {
      // Transfer the accumulated far future. Small or zero-spread batches go
      // straight to Bottom; otherwise they seed rung 0.
      top_floor_ = top_max_;
      if (top_.size() > kBucketThreshold && top_min_ < top_max_) {
        const std::size_t nb = rung_buckets_for(top_.size());
        const double width = (top_max_ - top_min_) / static_cast<double>(nb);
        if (top_min_ + width > top_min_) {
          spawn_rung(top_, top_min_, width, nb);
          continue;
        }
      }
      ++stats_.direct_sorts;
      sort_into_bottom(top_);
      continue;
    }
    top_floor_ = kNegInf;  // fully drained: the next batch re-anchors Top
    return false;
  }
  return true;
}

// --- running -----------------------------------------------------------------

bool EventQueue::run_one() {
  if (!prepare_bottom()) return false;
  const EventRef ref = bottom_.back();
  bottom_.pop_back();
  // The handler about to fire was written up to a full population ago — a
  // guaranteed cache miss at scale. Bottom is sorted, so the slots firing
  // next are known: prefetch a few pops ahead to overlap those misses with
  // this event's work. A slot spans two cache lines (72B storage + vtable
  // pointer), so touch both.
  if (bottom_.size() >= 4) {
    const char* p =
        static_cast<const char*>(slot_mem(bottom_[bottom_.size() - 4].slot));
    __builtin_prefetch(p, 0, 1);
    __builtin_prefetch(p + 64, 0, 1);
  }
  if (!bottom_.empty()) {
    const char* p = static_cast<const char*>(slot_mem(bottom_.back().slot));
    __builtin_prefetch(p, 0, 3);
    __builtin_prefetch(p + 64, 0, 3);
  }
  now_ = ref.time;
  --pending_;
  ++stats_.fired;
  if (pending_ == 0) top_floor_ = kNegInf;
  // Invoke IN the arena slot — zero handler moves on the pop path. The guard
  // destroys the handler and recycles the slot when the call returns or
  // throws (the seed engine also consumed the event on throw). Slots the
  // handler allocates for follow-on events are distinct, so running in place
  // is safe.
  struct SlotGuard {
    EventQueue* queue;
    std::uint32_t slot;
    ~SlotGuard() { queue->release_slot(slot); }
  } guard{this, ref.slot};
  (*slot_ptr(ref.slot))();
  return true;
}

void EventQueue::run_until(SimTime t_end) {
  while (pending_ > 0) {
    if (!prepare_bottom()) break;
    if (bottom_.back().time > t_end) break;
    run_one();
  }
  if (t_end > now_) now_ = t_end;
}

// --- teardown ----------------------------------------------------------------

void EventQueue::destroy_all() noexcept {
  auto destroy_refs = [this](ArenaVec<EventRef>& refs) {
    for (const EventRef& ref : refs) slot_ptr(ref.slot)->~EventHandler();
    refs.clear();
  };
  destroy_refs(bottom_);
  destroy_refs(top_);
  destroy_refs(drain_);
  for (std::size_t i = 0; i < nrungs_; ++i) {
    for (auto& bucket : rungs_[i].buckets) destroy_refs(bucket);
    rungs_[i].count = 0;
  }
  nrungs_ = 0;
  pending_ = 0;
}

}  // namespace xl::cluster
