#include "cluster/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace xl::cluster {

double CostModel::kernel_seconds(double flops_per_cell, std::size_t cells,
                                 int cores) const {
  XL_REQUIRE(cores >= 1, "need at least one core");
  XL_REQUIRE(flops_per_cell >= 0.0, "kernel cost cannot be negative");
  const double effective_cores =
      std::pow(to_double(cores, "cores"), costs_.parallel_efficiency);
  const double seconds = flops_per_cell * to_double(cells, "cells") /
                         (effective_cores * machine_.core_flops);
  XL_ENSURE(std::isfinite(seconds) && seconds >= 0.0,
            "kernel estimate " << seconds << "s for " << cells << " cells on "
                               << cores << " cores");
  return seconds;
}

double CostModel::thread_speedup() const {
  if (threads_ <= 1) return 1.0;
  return std::pow(to_double(threads_, "threads"), costs_.thread_efficiency);
}

double CostModel::sim_step_seconds(std::size_t cells, int cores, bool euler) const {
  return kernel_seconds(
      euler ? costs_.sim_euler_flops_per_cell : costs_.sim_advect_flops_per_cell, cells,
      cores);
}

double CostModel::marching_cubes_seconds(std::size_t cells_scanned,
                                         std::size_t active_cells, int cores) const {
  return (kernel_seconds(costs_.mc_scan_flops_per_cell, cells_scanned, cores) +
          kernel_seconds(costs_.mc_active_flops_per_cell, active_cells, cores)) /
         thread_speedup();
}

double CostModel::downsample_seconds(std::size_t output_cells, int cores) const {
  return kernel_seconds(costs_.reduce_flops_per_cell, output_cells, cores) /
         thread_speedup();
}

double CostModel::entropy_seconds(std::size_t cells, int cores) const {
  return kernel_seconds(costs_.entropy_flops_per_cell, cells, cores) /
         thread_speedup();
}

double CostModel::statistics_seconds(std::size_t cells, int cores) const {
  return kernel_seconds(costs_.stats_flops_per_cell, cells, cores) /
         thread_speedup();
}

double CostModel::subsetting_seconds(std::size_t cells, int cores) const {
  return kernel_seconds(costs_.subset_flops_per_cell, cells, cores) /
         thread_speedup();
}

double CostModel::transfer_seconds(std::size_t bytes, int sender_nodes,
                                   int receiver_nodes) const {
  XL_REQUIRE(sender_nodes >= 1 && receiver_nodes >= 1, "need nodes on both sides");
  const double per_node =
      machine_.network.link_bandwidth_Bps * machine_.network.efficiency;
  // The slower side's aggregate injection/ejection bandwidth bounds the flow.
  const double aggregate = per_node * std::min(sender_nodes, receiver_nodes);
  const double seconds =
      machine_.network.latency_s + to_double(bytes, "transfer bytes") / aggregate;
  XL_ENSURE(std::isfinite(seconds) && seconds >= 0.0,
            "transfer estimate " << seconds << "s for " << bytes << " bytes");
  return seconds;
}

}  // namespace xl::cluster
