// Shared-link network contention: concurrent transfers between the
// simulation and staging partitions share the staging side's aggregate
// injection bandwidth. The cost model's transfer_seconds() prices a flow in
// isolation; ContendedNetwork tracks overlapping flows on the simulated
// timeline and stretches each flow by the average concurrency it observed —
// a processor-sharing approximation that avoids rescheduling completed
// events (documented limitation: a flow's finish time is fixed when it
// starts, using the concurrency at start).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/event_queue.hpp"
#include "common/buffer_pool.hpp"

namespace xl::cluster {

class ContendedNetwork {
 public:
  explicit ContendedNetwork(const CostModel& cost) : cost_(&cost) {}

  /// Start a transfer at simulated time `now`; returns its finish time given
  /// the flows currently in the air (processor sharing at start).
  SimTime start_transfer(SimTime now, std::size_t bytes, int sender_nodes,
                         int receiver_nodes);

  /// Flows still in flight at `now`.
  int active_flows(SimTime now) const;

  std::size_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t flow_count() const noexcept { return static_cast<std::uint64_t>(finishes_.size()); }

 private:
  /// One in-flight transfer: a flat record in the pooled flow table.
  struct Flow {
    SimTime finish;
    std::size_t bytes;
  };

  void expire(SimTime now);

  const CostModel* cost_;
  /// Flat arena-backed table of in-flight flows, unordered. Only the live
  /// COUNT feeds the processor-sharing arithmetic, so expiry is a swap-remove
  /// — no sorted container and no node allocation per flow. Engine pool, so
  /// flow bookkeeping stays out of the payload pool telemetry.
  ArenaVec<Flow> in_flight_{BufferPool::engine()};
  std::vector<SimTime> finishes_;
  std::size_t total_bytes_ = 0;
};

}  // namespace xl::cluster
