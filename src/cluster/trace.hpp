// Per-core utilization accounting for the staging area: the paper's
// resource-layer evaluation (§5.2.3) defines CPU utilization efficiency
// (eq. 12) as total in-transit analysis time over total in-transit wall time
// across the cores allocated at each step. StagingTrace records both per step.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace xl::cluster {

struct StagingStepRecord {
  int step = 0;
  int cores_allocated = 0;   ///< M_j: in-transit cores at step j.
  double analysis_seconds = 0.0;  ///< sum over cores of analysis busy time.
  double wall_seconds = 0.0;      ///< per-core wall time of the step window.
};

class StagingTrace {
 public:
  void record(const StagingStepRecord& rec) {
    XL_REQUIRE(rec.cores_allocated >= 0, "negative core count");
    XL_REQUIRE(rec.wall_seconds >= 0.0, "negative wall time");
    records_.push_back(rec);
  }

  const std::vector<StagingStepRecord>& records() const noexcept { return records_; }

  /// Eq. 12: sum_j sum_i T_analysis(i,j) / sum_j sum_i T_total(i,j), where
  /// core i at step j contributes wall_seconds each to the denominator.
  double utilization_efficiency() const {
    double analysis = 0.0, total = 0.0;
    for (const auto& r : records_) {
      analysis += r.analysis_seconds;
      total += static_cast<double>(r.cores_allocated) * r.wall_seconds;
    }
    return total > 0.0 ? analysis / total : 0.0;
  }

  /// Fraction of preallocated cores actually used at step j — the Table 2
  /// bucketing input.
  static double used_fraction(const StagingStepRecord& rec, int preallocated) {
    XL_REQUIRE(preallocated > 0, "preallocated core count must be positive");
    return static_cast<double>(rec.cores_allocated) / static_cast<double>(preallocated);
  }

 private:
  std::vector<StagingStepRecord> records_;
};

}  // namespace xl::cluster
