// Deterministic discrete-event engine. Events at equal timestamps fire in
// scheduling order (sequence-number tie-break), so simulated experiments are
// bit-reproducible regardless of host scheduling.
//
// The engine is built for million-core virtual machines: the pending set is a
// ladder queue (Top / rungs-of-buckets / sorted Bottom) over flat, arena-
// allocated event records instead of a binary heap of std::function closures.
// Scheduling appends a 24-byte EventRef to a flat bucket and constructs the
// handler once, in place, in a pooled slab arena; popping moves the handler
// out (never copies it) and recycles the slot. At steady state neither path
// touches the heap — bucket storage and handler slabs cycle through
// common/buffer_pool.hpp arenas. See DESIGN.md §3.6 for the structure and
// bench/bench_des_scaling.cpp for the 2K→1M virtual-core regression gate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"

namespace xl::cluster {

using SimTime = double;  ///< simulated seconds.

/// Move-only callable with a small-buffer-optimized handler slot: callables
/// up to kInlineBytes live inline (no heap), larger ones fall back to one
/// heap allocation. Unlike std::function it never requires copyability and
/// never copies the target — the properties the event hot path needs.
class EventHandler {
 public:
  /// Sized for the largest closure the tree schedules (transport::Fabric's
  /// retry continuation: five scalars plus two shared_ptr callbacks).
  static constexpr std::size_t kInlineBytes = 72;

  EventHandler() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventHandler> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventHandler(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = heap_ops<Fn>();
    }
  }

  EventHandler(const EventHandler&) = delete;
  EventHandler& operator=(const EventHandler&) = delete;

  EventHandler(EventHandler&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, o.storage_);
    o.ops_ = nullptr;
  }

  EventHandler& operator=(EventHandler&& o) noexcept {
    if (this != &o) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, o.storage_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  ~EventHandler() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable was too large for the inline slot (diagnostics:
  /// the DES hot path should never see heap-backed handlers).
  bool heap_backed() const noexcept { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn>
  static const Ops* inline_ops() noexcept {
    static const Ops kOps = {
        [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
        [](void* dst, void* src) noexcept {
          Fn* from = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
        /*heap=*/false,
    };
    return &kOps;
  }

  template <typename Fn>
  static const Ops* heap_ops() noexcept {
    static const Ops kOps = {
        [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
        },
        [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
        /*heap=*/true,
    };
    return &kOps;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Engine telemetry the scaling bench and tests read.
struct EventQueueStats {
  std::uint64_t scheduled = 0;      ///< events accepted.
  std::uint64_t fired = 0;          ///< events executed.
  std::uint64_t rung_spawns = 0;    ///< ladder rungs materialized.
  std::uint64_t direct_sorts = 0;   ///< Top/bucket batches sorted straight to Bottom.
  std::uint64_t heap_handlers = 0;  ///< handlers too large for the inline slot.
  std::size_t peak_pending = 0;     ///< high-water pending-event count.
};

class EventQueue {
 public:
  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` at absolute simulated time `t` (must be >= now()). The
  /// handler is constructed ONCE, directly in its arena slot — no temporary,
  /// no closure copy.
  template <typename F>
  void schedule_at(SimTime t, F&& fn) {
    XL_REQUIRE(t >= now_, "cannot schedule in the past");
    const std::uint32_t slot = reserve_slot();
    EventHandler* handler =
        ::new (slot_mem(slot)) EventHandler(std::forward<F>(fn));
    finish_schedule(t, slot, handler->heap_backed());
  }

  /// Schedule `fn` `delay` seconds from now.
  template <typename F>
  void schedule_in(SimTime delay, F&& fn) {
    XL_REQUIRE(delay >= 0.0, "negative delay");
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return pending_ == 0; }
  std::size_t pending() const noexcept { return pending_; }
  const EventQueueStats& stats() const noexcept { return stats_; }

  /// Pop and run the earliest event; returns false when the queue is empty.
  /// The handler runs IN its arena slot (never moved or copied); the slot is
  /// destroyed and recycled when the handler returns — or throws, matching
  /// the seed engine's consume-even-on-throw semantics.
  bool run_one();

  /// Drain the queue (events may schedule further events).
  void run_until_empty() {
    while (run_one()) {
    }
  }

  /// Run events with time <= t_end, then advance the clock to t_end (the
  /// clock advances even when no event fired — an empty queue still observes
  /// the passage of simulated time).
  void run_until(SimTime t_end);

 private:
  /// One pending event: flat, trivially copyable, sorted by (time, seq).
  /// The handler lives in the slab arena at `slot`.
  struct EventRef {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const EventRef& a, const EventRef& b) noexcept {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  /// One ladder rung: a window [start, start + nbuckets*width) split into
  /// equal buckets; `cur` is the next bucket to drain, so the rung's live
  /// range starts at threshold() and inserts below it belong further down
  /// the ladder. Bucket arenas keep their pooled capacity across reuse.
  struct Rung {
    double start = 0.0;
    double width = 0.0;
    double inv_width = 0.0;  ///< 1/width: bucket index by multiply, not divide.
    std::size_t cur = 0;
    std::size_t nbuckets = 0;
    std::size_t count = 0;
    std::vector<ArenaVec<EventRef>> buckets;

    double threshold() const noexcept {
      return start + static_cast<double>(cur) * width;
    }
  };

 public:
  /// Buckets at or below this size sort straight into Bottom; larger ones
  /// spawn a child rung. Sorting a few hundred flat 24-byte records is
  /// cache-local and beats another level of re-bucketing, so the threshold
  /// sits well above the classic ladder's.
  static constexpr std::size_t kBucketThreshold = 256;

 private:
  static constexpr std::size_t kMaxRungs = 8;
  // Handler slabs grow geometrically from 1 Ki to 256 Ki slots (80 KiB to
  // ~21 MiB), so small queues stay tiny while million-event queues get a few
  // large slabs that BufferPool backs with transparent hugepages. A slot id
  // packs (slab index << kSlotIdxBits) | index-within-slab.
  static constexpr std::size_t kSlotIdxBits = 18;
  static constexpr std::size_t kMaxSlabSlots = std::size_t{1} << kSlotIdxBits;
  static constexpr std::size_t kBaseSlabSlots = 1024;

  static constexpr std::size_t slots_in_slab(std::size_t i) noexcept {
    return i >= 8 ? kMaxSlabSlots : (kBaseSlabSlots << i);
  }

  std::uint32_t reserve_slot();
  void* slot_mem(std::uint32_t slot) noexcept;
  void finish_schedule(SimTime t, std::uint32_t slot, bool heap_backed);
  void insert_ref(const EventRef& ref);
  bool prepare_bottom();
  void spawn_rung(ArenaVec<EventRef>& source, double start, double width,
                  std::size_t nbuckets);
  void sort_into_bottom(ArenaVec<EventRef>& batch);
  void destroy_all() noexcept;

  // --- handler slab arena ----------------------------------------------------
  EventHandler* slot_ptr(std::uint32_t slot) noexcept;
  void release_slot(std::uint32_t slot) noexcept;

  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t pending_ = 0;
  EventQueueStats stats_;

  // Ladder tiers. Bottom is sorted descending by (time, seq) — pop_back is
  // the minimum; Top is the unsorted far future (everything >= top_floor_).
  ArenaVec<EventRef> bottom_;
  std::array<Rung, kMaxRungs> rungs_;
  std::size_t nrungs_ = 0;
  ArenaVec<EventRef> top_;
  double top_floor_ = 0.0;  ///< -inf whenever the queue is fully drained.
  double top_min_ = 0.0;
  double top_max_ = 0.0;
  ArenaVec<EventRef> drain_;  ///< scratch bucket being transferred.

  // Handler arena: fixed-size slots in pooled slabs, LIFO free list. Slabs
  // are stable (never relocated) so slot pointers survive arena growth.
  std::vector<PoolVec<std::uint8_t>> slabs_;
  ArenaVec<std::uint32_t> free_slots_;
  std::uint32_t slab_used_ = 0;     ///< slots handed out from the last slab.
  std::size_t total_slots_ = 0;     ///< slots across all slabs.
};

}  // namespace xl::cluster
