// Deterministic discrete-event engine. Events at equal timestamps fire in
// scheduling order (sequence-number tie-break), so simulated experiments are
// bit-reproducible regardless of host scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace xl::cluster {

using SimTime = double;  ///< simulated seconds.

class EventQueue {
 public:
  /// Schedule `fn` at absolute simulated time `t` (must be >= now()).
  void schedule_at(SimTime t, std::function<void()> fn) {
    XL_REQUIRE(t >= now_, "cannot schedule in the past");
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(SimTime delay, std::function<void()> fn) {
    XL_REQUIRE(delay >= 0.0, "negative delay");
    schedule_at(now_ + delay, std::move(fn));
  }

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Pop and run the earliest event; returns false when the queue is empty.
  bool run_one() {
    if (heap_.empty()) return false;
    // priority_queue::top is const; the handler must be moved out before pop.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  /// Drain the queue (events may schedule further events).
  void run_until_empty() {
    while (run_one()) {
    }
  }

  /// Run events with time <= t_end, then advance the clock to t_end.
  void run_until(SimTime t_end) {
    while (!heap_.empty() && heap_.top().time <= t_end) run_one();
    if (t_end > now_) now_ = t_end;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace xl::cluster
