#include "cluster/machine.hpp"

namespace xl::cluster {

MachineSpec intrepid() {
  MachineSpec m;
  m.name = "Intrepid-BGP";
  m.cores_per_node = 4;
  m.mem_per_node_bytes = std::size_t{2} << 30;  // 500 MB per core
  // 850 MHz PPC450, double-hummer FPU: ~3.4 GF/s peak per core; stencil codes
  // sustain ~10-15%.
  m.core_flops = 4.0e8;
  m.network.link_bandwidth_Bps = 425.0e6;  // 3-D torus per-link
  m.network.latency_s = 3.0e-6;
  m.network.efficiency = 0.7;
  return m;
}

MachineSpec titan() {
  MachineSpec m;
  m.name = "Titan-XK7";
  m.cores_per_node = 16;
  m.mem_per_node_bytes = std::size_t{32} << 30;
  // 2.2 GHz Opteron 6274 (CPU side only; the paper's workloads do not use the
  // GPUs): ~8.8 GF/s peak per core, ~15% sustained for these kernels.
  m.core_flops = 1.3e9;
  m.network.link_bandwidth_Bps = 5.0e9;  // Gemini NIC
  m.network.latency_s = 1.5e-6;
  m.network.efficiency = 0.7;
  return m;
}

MachineSpec test_machine() {
  MachineSpec m;
  m.name = "TestBox";
  m.cores_per_node = 4;
  m.mem_per_node_bytes = std::size_t{4} << 30;
  m.core_flops = 1.0e9;
  m.network.link_bandwidth_Bps = 1.0e9;
  m.network.latency_s = 1.0e-6;
  m.network.efficiency = 1.0;
  return m;
}

}  // namespace xl::cluster
