#include "cluster/network.hpp"

#include "common/error.hpp"

namespace xl::cluster {

void ContendedNetwork::expire(SimTime now) {
  for (std::size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].finish <= now) {
      in_flight_[i] = in_flight_.back();
      in_flight_.pop_back();
    } else {
      ++i;
    }
  }
}

SimTime ContendedNetwork::start_transfer(SimTime now, std::size_t bytes,
                                         int sender_nodes, int receiver_nodes) {
  XL_REQUIRE(now >= 0.0, "negative start time");
  expire(now);
  const double isolated = cost_->transfer_seconds(bytes, sender_nodes, receiver_nodes);
  // Processor sharing: this flow plus everything currently in the air divide
  // the path bandwidth equally.
  const double share = static_cast<double>(in_flight_.size()) + 1.0;
  const SimTime finish = now + isolated * share;
  in_flight_.push_back(Flow{finish, bytes});
  finishes_.push_back(finish);
  total_bytes_ += bytes;
  return finish;
}

int ContendedNetwork::active_flows(SimTime now) const {
  int n = 0;
  for (const Flow& flow : in_flight_) n += flow.finish > now;
  return n;
}

}  // namespace xl::cluster
