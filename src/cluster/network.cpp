#include "cluster/network.hpp"

#include "common/error.hpp"

namespace xl::cluster {

void ContendedNetwork::expire(SimTime now) {
  while (!in_flight_.empty() && in_flight_.begin()->first <= now) {
    in_flight_.erase(in_flight_.begin());
  }
}

SimTime ContendedNetwork::start_transfer(SimTime now, std::size_t bytes,
                                         int sender_nodes, int receiver_nodes) {
  XL_REQUIRE(now >= 0.0, "negative start time");
  expire(now);
  const double isolated = cost_->transfer_seconds(bytes, sender_nodes, receiver_nodes);
  // Processor sharing: this flow plus everything currently in the air divide
  // the path bandwidth equally.
  const double share = static_cast<double>(in_flight_.size()) + 1.0;
  const SimTime finish = now + isolated * share;
  in_flight_.emplace(finish, bytes);
  finishes_.push_back(finish);
  total_bytes_ += bytes;
  return finish;
}

int ContendedNetwork::active_flows(SimTime now) const {
  int n = 0;
  for (const auto& [finish, bytes] : in_flight_) n += finish > now;
  return n;
}

}  // namespace xl::cluster
