// Kernel cost models: translate "work on N cells using P cores of machine M"
// into simulated seconds. FLOP-per-cell constants are calibrated on this host
// by bench_calibration_kernels against the real kernels in src/amr, src/viz
// and src/analysis (see EXPERIMENTS.md); machine specs scale them to
// Intrepid/Titan rates.
#pragma once

#include <cstddef>

#include "cluster/machine.hpp"

namespace xl::cluster {

struct KernelCosts {
  /// Unsplit Godunov Euler advance (PolytropicGas): flop per cell per step.
  double sim_euler_flops_per_cell = 1800.0;
  /// Advection-diffusion advance: much lighter.
  double sim_advect_flops_per_cell = 260.0;
  /// Marching cubes: per cell scanned plus per active (triangulated) cell.
  double mc_scan_flops_per_cell = 60.0;
  double mc_active_flops_per_cell = 900.0;
  /// Strided downsample: per *output* cell.
  double reduce_flops_per_cell = 30.0;
  /// Block entropy: per cell histogrammed.
  double entropy_flops_per_cell = 25.0;
  /// Descriptive statistics (Welford moments + extrema): per cell.
  double stats_flops_per_cell = 12.0;
  /// Data subsetting: per cell copied (memcpy-bound, expressed as flops).
  double subset_flops_per_cell = 4.0;
  /// Parallel efficiency exponent: time ~ cells / (P^eff * core_flops).
  /// < 1 models synchronization/imbalance losses at scale.
  double parallel_efficiency = 0.95;
  /// Intra-rank threading efficiency exponent for the analysis kernels:
  /// with T worker threads their time divides by T^thread_efficiency.
  /// Slightly below the inter-rank exponent — shared caches and the
  /// fork/join barrier of the on-node pool cost more than rank-parallel
  /// domain decomposition (bench_kernel_scaling measures the real curve).
  double thread_efficiency = 0.9;
};

class CostModel {
 public:
  /// `threads` is the per-rank analysis thread count (the CLI `--threads`
  /// knob). 0 or 1 means the kernels run serially, matching the calibrated
  /// constants; N > 1 divides only the *analysis* kernel times (marching
  /// cubes, downsample, entropy, statistics, subsetting) by
  /// N^thread_efficiency. The simulation step is rank-parallel already and
  /// is left untouched.
  CostModel(const MachineSpec& machine, const KernelCosts& costs = {}, int threads = 0)
      : machine_(machine), costs_(costs), threads_(threads) {}

  const MachineSpec& machine() const noexcept { return machine_; }
  const KernelCosts& costs() const noexcept { return costs_; }
  int threads() const noexcept { return threads_; }

  /// Seconds for `flops_per_cell * cells` spread over `cores` cores with
  /// imperfect parallel efficiency. The per-rank imbalance of a layout is
  /// applied by the caller (multiply by the layout's imbalance factor).
  double kernel_seconds(double flops_per_cell, std::size_t cells, int cores) const;

  double sim_step_seconds(std::size_t cells, int cores, bool euler) const;
  double marching_cubes_seconds(std::size_t cells_scanned, std::size_t active_cells,
                                int cores) const;
  double downsample_seconds(std::size_t output_cells, int cores) const;
  double entropy_seconds(std::size_t cells, int cores) const;
  double statistics_seconds(std::size_t cells, int cores) const;
  double subsetting_seconds(std::size_t cells, int cores) const;

  /// Seconds to move `bytes` from the simulation partition to staging:
  /// latency + bytes over the aggregated effective injection bandwidth of
  /// `sender_nodes` nodes (capped by the receiver side's `receiver_nodes`).
  double transfer_seconds(std::size_t bytes, int sender_nodes, int receiver_nodes) const;

 private:
  /// Speedup divisor for the threaded analysis kernels: max(1,T)^thread_eff.
  double thread_speedup() const;

  MachineSpec machine_;
  KernelCosts costs_;
  int threads_ = 0;
};

}  // namespace xl::cluster
