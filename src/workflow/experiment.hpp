// Experiment configurations reproducing the paper's §5 setups. Each factory
// returns a ready WorkflowConfig; the bench binaries run them across modes
// and print the corresponding figure/table series. Cost-model constants are
// tuned within physically plausible ranges so the *ratios* that drive the
// policies (analysis/simulation cost, compute/bandwidth, memory/core) match
// the published behaviour; EXPERIMENTS.md documents every tuned constant.
#pragma once

#include "workflow/coupled_workflow.hpp"

namespace xl::workflow {

/// The four Titan scales of Figs. 7/8/10/11 and Table 2, index 0..3 =
/// 2K/4K/8K/16K simulation cores with the paper's 16:1 staging ratio and
/// grid domains (1024x1024x512 .. 2048x2048x1024).
struct TitanScale {
  int sim_cores;
  int staging_cores;
  mesh::Box domain;
  const char* label;
};

std::vector<TitanScale> titan_scales();

/// Fig. 7/8: AMR Advection-Diffusion on Titan at `scale_index`, running in
/// `mode` (StaticInSitu / StaticInTransit / AdaptiveMiddleware).
WorkflowConfig titan_middleware_experiment(int scale_index, Mode mode);

/// Fig. 10/11 + Table 2: same workload, comparing AdaptiveMiddleware
/// ("local") against Global cross-layer adaptation with the §5.2.1 hint
/// factor phases.
WorkflowConfig titan_global_experiment(int scale_index, Mode mode);

/// Fig. 9 + §5.2.3: memory-intensive Polytropic Gas on Intrepid, 4K
/// simulation cores, 256 preallocated staging cores; `mode` is
/// AdaptiveResource or StaticInTransit.
WorkflowConfig intrepid_resource_experiment(Mode mode);

/// Fig. 1 / Fig. 5 substrate: the Intrepid Polytropic Gas geometry evolution
/// (1024x512x512 base, 3 levels, 4K ranks) and its memory model.
amr::SyntheticAmrConfig intrepid_geometry(int nranks = 4096);
amr::MemoryModelConfig intrepid_memory_model();

}  // namespace xl::workflow
