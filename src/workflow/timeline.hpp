// The workflow's dual-clock timeline (paper eqs. 4-6): the simulation-
// partition clock (T_sum_insitu), the staging-partition clock
// (T_sum_intransit), and the end-of-run max of the two. Timeline owns the
// run-level accounting — pure simulation seconds vs. overhead, per-step start
// times for the window computation — and delegates the clock/memory mechanics
// to whichever ExecutionSubstrate the run was given.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/contract.hpp"
#include "workflow/execution_substrate.hpp"

namespace xl::workflow {

class Timeline {
 public:
  explicit Timeline(ExecutionSubstrate& substrate) : substrate_(substrate) {}

  double sim_now() const noexcept { return substrate_.sim_now(); }
  double staging_free_at() const noexcept { return substrate_.staging_free_at(); }
  std::size_t staging_mem_used() const noexcept { return substrate_.staging_mem_used(); }

  /// Seconds until the staging cores finish their backlog, as seen from the
  /// simulation clock (the monitor's eq. 7 input); 0 when staging is idle.
  double backlog_seconds() const noexcept {
    return std::max(0.0, substrate_.staging_free_at() - substrate_.sim_now());
  }

  /// Mark the start of a step (window accounting). Step starts are monotone:
  /// the simulation clock never runs backwards between steps.
  void begin_step() {
    const double now = substrate_.sim_now();
    XL_ASSERT(step_starts_.empty() || now >= step_starts_.back(),
              "step starts at " << now << " before previous step's "
                                << step_starts_.back());
    step_starts_.push_back(now);
  }

  /// Charge `seconds` to the simulation clock; `pure` marks T_i_sim proper
  /// (everything else — reductions, analyses, waits, overheads — is overhead).
  void advance_sim(double seconds, bool pure = false) {
    XL_ASSERT(std::isfinite(seconds) && seconds >= 0.0,
              "cannot advance the simulation clock by " << seconds << "s");
    substrate_.advance_sim(seconds);
    if (pure) pure_sim_seconds_ += seconds;
  }

  void release_completed() { substrate_.release_completed(); }

  double wait_for_staging_memory(std::size_t bytes, std::size_t capacity) {
    return substrate_.wait_for_staging_memory(bytes, capacity);
  }

  double enqueue_intransit(double arrive, double analysis_seconds, std::size_t bytes) {
    XL_ASSERT(std::isfinite(arrive) && std::isfinite(analysis_seconds) &&
                  analysis_seconds >= 0.0,
              "bad in-transit enqueue: arrive=" << arrive
                                                << " analysis=" << analysis_seconds);
    const double done = substrate_.enqueue_intransit(arrive, analysis_seconds, bytes);
    XL_ENSURE(done >= arrive, "in-transit analysis finishes at " << done
                                                                << " before arrival at "
                                                                << arrive);
    return done;
  }

  /// Fault path: drop `lost_fraction` of every in-flight staged buffer
  /// (staging servers died); 1.0 abandons the whole staging backlog.
  ShedReport shed_staged(double lost_fraction) {
    return substrate_.shed_staged(lost_fraction);
  }

  /// eq. 6: drain the substrate and return max of the two partition clocks.
  double finish() { return substrate_.finish(); }

  double pure_sim_seconds() const noexcept { return pure_sim_seconds_; }
  const std::vector<double>& step_starts() const noexcept { return step_starts_; }
  ExecutionSubstrate& substrate() noexcept { return substrate_; }

 private:
  ExecutionSubstrate& substrate_;
  double pure_sim_seconds_ = 0.0;
  std::vector<double> step_starts_;
};

}  // namespace xl::workflow
