// Trace export: per-step records of a workflow run as CSV (ready for
// gnuplot/pandas) and a compact run summary. Used by the examples and handy
// for regenerating the paper's plots outside this repo.
#pragma once

#include <iosfwd>
#include <string>

#include "workflow/coupled_workflow.hpp"

namespace xl::workflow {

/// One CSV row per step: step, cells, placement, factor, cores, timings,
/// bytes. Header row included.
void write_steps_csv(std::ostream& os, const WorkflowResult& result);
void write_steps_csv(const std::string& path, const WorkflowResult& result);

/// Single-line key=value summary (end-to-end, overhead, movement, counts).
std::string summarize(const WorkflowResult& result);

}  // namespace xl::workflow
