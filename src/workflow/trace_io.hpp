// Trace export: per-step records and the structured observer event stream of
// a workflow run as CSV (ready for gnuplot/pandas), plus a compact run
// summary. Used by the examples/CLI and handy for regenerating the paper's
// plots outside this repo.
#pragma once

#include <iosfwd>
#include <string>

#include "workflow/coupled_workflow.hpp"
#include "workflow/observer.hpp"

namespace xl::workflow {

/// One CSV row per step: step, cells, placement, factor, cores, timings,
/// bytes. Header row included.
void write_steps_csv(std::ostream& os, const WorkflowResult& result);
void write_steps_csv(const std::string& path, const WorkflowResult& result);

/// One CSV row per WorkflowEvent, in emission order: kind, step, the two
/// partition clocks at emission, and the kind-specific payload columns.
/// Header row included.
void write_events_csv(std::ostream& os, const EventLog& log);
void write_events_csv(const std::string& path, const EventLog& log);

/// Single-line key=value summary (end-to-end, overhead, movement, counts).
std::string summarize(const WorkflowResult& result);

}  // namespace xl::workflow
