// Plain-text configuration for the CLI runner: `key = value` lines, `#`
// comments. Covers the experiment knobs a downstream user sweeps without
// recompiling (machine, scales, mode, costs, geometry, adaptation settings).
#pragma once

#include <iosfwd>
#include <string>

#include "workflow/coupled_workflow.hpp"

namespace xl::workflow {

/// Parse a config stream into a WorkflowConfig, starting from the defaults.
/// Unknown keys throw ContractError (catching typos beats ignoring them).
///
/// Recognized keys:
///   machine = titan | intrepid | test
///   mode = insitu | intransit | hybrid | adaptive | resource | global
///   analysis = isosurface | statistics | subsetting
///   sim_cores, staging_cores, steps, ncomp, analysis_ncomp,
///   analysis_interval = <int>
///   threads = <int>                (per-rank analysis threads, 0 = serial)
///   thread_efficiency = <float>    (threading-speedup exponent, see KernelCosts)
///   domain = NX NY NZ
///   max_levels, ref_ratio, max_box_size, tile_size = <int>
///   front_radius0, front_speed, front_thickness, front_decay = <float>
///   front_decay_onset, blob_onset_step, num_blobs = <int>
///   blob_radius = <float>
///   seed = <uint>
///   active_cell_fraction, staging_usable_fraction = <float>
///   sim_euler_flops, sim_advect_flops, mc_scan_flops, mc_active_flops = <float>
///   euler = 0|1
///   factors = X1 X2 ...            (single hint phase)
///   objective = time | movement | utilization
///   sampling_period = <int>
WorkflowConfig parse_workflow_config(std::istream& is);
WorkflowConfig parse_workflow_config_file(const std::string& path);

}  // namespace xl::workflow
