#include "workflow/experiment.hpp"

#include "cluster/machine.hpp"
#include "common/lookup.hpp"

#include <algorithm>

namespace xl::workflow {

using mesh::Box;
using mesh::IntVect;

std::vector<TitanScale> titan_scales() {
  return {
      {2048, 128, Box::domain({1024, 1024, 512}), "2K"},
      {4096, 256, Box::domain({1024, 1024, 1024}), "4K"},
      {8192, 512, Box::domain({2048, 1024, 1024}), "8K"},
      {16384, 1024, Box::domain({2048, 2048, 1024}), "16K"},
  };
}

namespace {

amr::SyntheticAmrConfig titan_geometry(const TitanScale& scale) {
  amr::SyntheticAmrConfig g;
  g.base_domain = scale.domain;
  g.max_levels = 3;
  g.ref_ratio = 2;
  g.max_box_size = 32;
  g.tile_size = 8;
  g.nranks = scale.sim_cores;
  g.front_radius0 = 0.10;
  g.front_speed = 0.004;  // r grows to ~0.3 of the shortest edge over 50 steps.
  // The shell is sized by the shortest domain edge; scaling its thickness by
  // the domain's aspect factor keeps the refined fraction of the *volume* on
  // the same trajectory at every scale, so the larger runs produce
  // proportionally more analysis data (the growth of Fig. 8's bars).
  const mesh::IntVect size = scale.domain.size();
  const double shortest = std::min({size[0], size[1], size[2]});
  const double aspect = static_cast<double>(scale.domain.num_cells()) /
                        (shortest * shortest * shortest);
  g.front_thickness = 0.015 * aspect;
  // The shock weakens late in the run and the band coarsens again.
  g.front_decay = 0.85;
  g.front_decay_onset = 35;
  g.num_blobs = 3;
  g.blob_radius = 0.04;
  g.blob_onset_step = 10;
  g.seed = 1234;
  return g;
}

}  // namespace

WorkflowConfig titan_middleware_experiment(int scale_index, Mode mode) {
  const TitanScale scale =
      at_index(titan_scales(), static_cast<std::size_t>(scale_index), "titan scale");
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = scale.sim_cores;
  c.staging_cores = scale.staging_cores;
  c.steps = 50;
  c.mode = mode;
  c.euler = false;  // AMR Advection-Diffusion
  c.ncomp = 1;
  c.geometry = titan_geometry(scale);
  c.memory_model.ncomp = 1;
  c.memory_model.nghost = 2;
  c.memory_model.solver_overhead = 3.0;
  // Advection-diffusion vs. marching-cubes cost ratio tuned so the staging
  // area (1/16 of the cores) transitions from idle to backlogged as the
  // refined region grows — the regime of the paper's Fig. 4 demonstration.
  c.costs.sim_advect_flops_per_cell = 260.0;
  c.costs.mc_scan_flops_per_cell = 45.0;
  c.costs.mc_active_flops_per_cell = 900.0;
  c.active_cell_fraction = 0.03;
  c.analyze_refined_only = true;
  // Of a staging core's 2 GB, most is OS + DataSpaces runtime + transport
  // buffers; the staged-object budget is what bounds admission (eq. 10).
  c.staging_usable_fraction = 0.06;
  c.monitor.sampling_period = 1;
  c.monitor.estimator = runtime::EstimatorKind::Ewma;
  c.objective = runtime::Objective::MinimizeTimeToSolution;
  return c;
}

WorkflowConfig titan_global_experiment(int scale_index, Mode mode) {
  WorkflowConfig c = titan_middleware_experiment(scale_index, mode);
  // §5.2.4 feeds the §5.2.1 user-defined factor phases to the application
  // layer: {2,4} for the first half of the run, {2,4,8,16} for the second.
  c.hints.factor_phases = {
      {0, {2, 4}},
      {c.steps / 2, {2, 4, 8, 16}},
  };
  return c;
}

amr::SyntheticAmrConfig intrepid_geometry(int nranks) {
  amr::SyntheticAmrConfig g;
  g.base_domain = Box::domain({1024, 512, 512});
  g.max_levels = 3;
  g.ref_ratio = 2;
  g.max_box_size = 32;
  g.tile_size = 8;
  g.nranks = nranks;
  // The 3-D Polytropic Gas explosion: the refined shell grows quickly, which
  // is what drives Fig. 1's erratic memory growth and Fig. 9's allocation.
  g.front_radius0 = 0.12;
  g.front_speed = 0.0095;
  g.front_thickness = 0.025;
  g.num_blobs = 4;
  g.blob_radius = 0.06;
  g.blob_onset_step = 8;
  g.seed = 77;
  return g;
}

amr::MemoryModelConfig intrepid_memory_model() {
  amr::MemoryModelConfig m;
  m.ncomp = 5;  // [rho, mom*, E]
  m.nghost = 2;
  m.solver_overhead = 3.0;
  m.base_runtime_bytes = std::size_t{48} << 20;  // BG/P CNK + Chombo metadata
  return m;
}

WorkflowConfig intrepid_resource_experiment(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::intrepid();
  c.sim_cores = 4096;
  c.staging_cores = 256;
  c.steps = 40;
  c.mode = mode;
  c.euler = true;  // 3-D Polytropic Gas
  c.ncomp = 5;
  c.analysis_ncomp = 1;  // the visualization extracts density isosurfaces
  c.geometry = intrepid_geometry(4096);
  c.memory_model = intrepid_memory_model();
  // Euler advance vs. 5-component marching cubes + packing: the ratio is
  // tuned so (a) the resource policy's minimal M tracks the data growth from
  // ~50 cores to past the 256-core static pool (Fig. 9) and (b) the static
  // allocation idles ~45% of the time (the 54.57% figure of §5.2.3).
  c.costs.sim_euler_flops_per_cell = 1800.0;
  c.costs.mc_scan_flops_per_cell = 90.0;
  c.costs.mc_active_flops_per_cell = 2500.0;
  c.active_cell_fraction = 0.03;
  c.analyze_refined_only = true;
  // 500 MB/core on BG/P: OS + DataSpaces runtime + comm buffers leave ~20%
  // of a staging core's memory for staged objects.
  c.staging_usable_fraction = 0.2;
  c.monitor.sampling_period = 1;
  // Seed the estimator with a realistic per-cell cost so the very first
  // allocation is not driven by the generic prior (the paper's run starts
  // around 50 staging cores).
  c.monitor.prior_cost = 5.0e-7;
  c.objective = runtime::Objective::MaximizeResourceUtilization;
  return c;
}

}  // namespace xl::workflow
