#include "workflow/energy.hpp"

#include "common/error.hpp"

#include <algorithm>

namespace xl::workflow {

EnergyReport estimate_energy(const WorkflowResult& result, int sim_cores,
                             const PowerSpec& power) {
  XL_REQUIRE(sim_cores >= 1, "need simulation cores");
  EnergyReport report;
  const double n = static_cast<double>(sim_cores);
  for (const StepRecord& s : result.steps) {
    // Simulation partition: computing, analyzing in-situ, or blocked.
    report.sim_compute_joules += power.active_watts_per_core * n * s.sim_seconds;
    report.insitu_analysis_joules +=
        power.active_watts_per_core * n *
        (s.insitu_analysis_seconds + s.reduce_seconds);
    report.sim_idle_joules += power.idle_watts_per_core * n * s.wait_seconds;

    // Staging partition: the allocated cores are powered for the whole step
    // window, active for the analysis span.
    const double m = static_cast<double>(s.intransit_cores);
    const double active = std::min(s.intransit_analysis_seconds, s.window_seconds);
    report.staging_active_joules += power.active_watts_per_core * m * active;
    const double idle = std::max(0.0, s.window_seconds - active);
    report.staging_idle_joules += power.idle_watts_per_core * m * idle;

    report.network_joules +=
        power.network_joules_per_byte * static_cast<double>(s.moved_bytes);
  }
  return report;
}

}  // namespace xl::workflow
