// Energy accounting over a workflow run — the paper's §7 future work
// ("utilizing such approach on power management in dynamic simulations")
// realized as an extension: a simple activity-based power model priced over
// the same per-step records the time-to-solution metrics use, so every
// placement/allocation strategy can also be compared on joules.
#pragma once

#include "cluster/machine.hpp"
#include "workflow/coupled_workflow.hpp"

namespace xl::workflow {

/// Activity-based power model. Defaults approximate HPC-node envelopes:
/// an active core burns several times its idle floor, and moving a byte
/// across the interconnect costs a fixed energy.
struct PowerSpec {
  double active_watts_per_core = 12.0;
  double idle_watts_per_core = 4.0;
  double network_joules_per_byte = 0.6e-9;  ///< ~0.6 nJ/B, Gemini-class.
};

struct EnergyReport {
  double sim_compute_joules = 0.0;      ///< simulation partition, active.
  double insitu_analysis_joules = 0.0;  ///< analyses + reductions on sim cores.
  double sim_idle_joules = 0.0;         ///< sim cores blocked (waits).
  double staging_active_joules = 0.0;   ///< in-transit analyses.
  double staging_idle_joules = 0.0;     ///< allocated staging cores idling.
  double network_joules = 0.0;          ///< staged transfers.

  double total_joules() const noexcept {
    return sim_compute_joules + insitu_analysis_joules + sim_idle_joules +
           staging_active_joules + staging_idle_joules + network_joules;
  }
};

/// Price a finished run. `staging_cores_allocated` is the per-step
/// allocation recorded in the result; static runs hold the full pool.
EnergyReport estimate_energy(const WorkflowResult& result, int sim_cores,
                             const PowerSpec& power = {});

}  // namespace xl::workflow
