#include "workflow/step_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "amr/memory_model.hpp"
#include "analysis/entropy.hpp"
#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace xl::workflow {

using runtime::Placement;

namespace {

/// Combined per-rank cell imbalance across all levels of one step.
double step_imbalance(const amr::SyntheticStep& geom, int nranks) {
  std::vector<std::int64_t> per_rank(static_cast<std::size_t>(nranks), 0);
  for (const auto& layout : geom.levels) {
    const auto cells = layout.cells_per_rank();
    for (std::size_t r = 0; r < cells.size(); ++r) per_rank[r] += cells[r];
  }
  std::int64_t total = 0, peak = 0;
  for (std::int64_t c : per_rank) {
    total += c;
    peak = std::max(peak, c);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(nranks);
  return std::max(1.0, static_cast<double>(peak) / mean);
}

/// Cells the visualization service consumes this step. When regions of
/// interest are set, only cells inside them count (ROI boxes are given in
/// base-level coordinates and refined to each level's index space).
std::size_t analyzed_cells_of(const amr::SyntheticStep& geom, bool refined_only,
                              const std::vector<mesh::Box>& roi, int ref_ratio) {
  const std::size_t first_level = refined_only && geom.levels.size() > 1 ? 1 : 0;
  if (roi.empty()) {
    std::int64_t cells = 0;
    for (std::size_t l = first_level; l < geom.levels.size(); ++l) {
      cells += geom.cells_per_level[l];
    }
    return static_cast<std::size_t>(cells);
  }
  std::int64_t cells = 0;
  int ratio = 1;
  for (std::size_t l = 0; l < geom.levels.size(); ++l) {
    if (l >= first_level) {
      for (const mesh::Box& b : geom.levels[l].boxes()) {
        for (const mesh::Box& r : roi) {
          cells += (b & r.refine(ratio)).num_cells();
        }
      }
    }
    ratio *= ref_ratio;
  }
  return static_cast<std::size_t>(cells);
}

}  // namespace

// --- StepPipeline ------------------------------------------------------------

StepPipeline::StepPipeline(const WorkflowConfig& config, ExecutionSubstrate& substrate,
                           WorkflowObserver* observer)
    : config_(config),
      evolution_(config.geometry),
      cost_(config.machine, config.costs, config.threads),
      monitor_(config.monitor),
      timeline_(substrate),
      observer_(observer) {
  const int cores_per_node = config_.machine.cores_per_node;
  sim_nodes_ = std::max(1, config_.sim_cores / cores_per_node);
  usable_per_core_ =
      f2s(config_.staging_usable_fraction *
          static_cast<double>(config_.machine.mem_per_core_bytes()));

  XL_REQUIRE(config_.replication >= 1, "replication factor must be >= 1");
  XL_REQUIRE(config_.replication <= config_.staging_cores,
             "replication cannot exceed the staging server count");

  adaptive_ = config_.mode == Mode::AdaptiveMiddleware ||
              config_.mode == Mode::AdaptiveResource || config_.mode == Mode::Global;
  hybrid_ = config_.mode == Mode::StaticHybrid;
  cur_cores_ = config_.staging_cores;
  fault_plan_ = runtime::FaultPlan(config_.faults);
  cur_placement_ = config_.mode == Mode::StaticInSitu ? Placement::InSitu
                                                      : Placement::InTransit;

  // Estimator hooks binding the engine to the monitor and the cost model.
  runtime::EngineHooks hooks;
  hooks.analysis_seconds = [this](Placement p, std::size_t cells, int cores) {
    return monitor_.estimate_analysis_seconds(p, cells, cores);
  };
  hooks.send_seconds = [this](std::size_t bytes) {
    // Asynchronous initiation on the sender side: the paper's T_sd.
    return cost_.transfer_seconds(bytes, sim_nodes_,
                                  staging_nodes(config_.staging_cores));
  };
  hooks.recv_seconds = [this](std::size_t bytes, int cores) {
    return cost_.transfer_seconds(bytes, sim_nodes_, staging_nodes(cores));
  };
  hooks.next_sim_seconds = [this](std::size_t cells) {
    return monitor_.estimate_sim_seconds(cells);
  };
  // In-situ analysis memory is a PER-RANK quantity (each rank triangulates
  // its own boxes): the worst rank holds data_bytes * imbalance / N, and
  // marching cubes needs roughly that again for triangle buffers.
  hooks.insitu_analysis_mem = [this](std::size_t bytes) {
    return f2s(2.0 * static_cast<double>(bytes) * current_imbalance_ /
               static_cast<double>(config_.sim_cores));
  };
  hooks.on_decisions = [this](const runtime::OperationalState& state,
                              const runtime::EngineDecisions& dec) {
    WorkflowEvent ev;
    ev.kind = EventKind::Decision;
    ev.step = state.step;
    ev.app_adapted = dec.app.has_value();
    ev.resource_adapted = dec.resource.has_value();
    ev.middleware_adapted = dec.middleware.has_value();
    if (dec.app) ev.factor = dec.app->factor;
    ev.intransit_cores = dec.intransit_cores;
    if (dec.middleware) {
      ev.placement = dec.middleware->placement;
      ev.reason = dec.middleware->reason;
    }
    ev.bytes = dec.effective_bytes;
    ev.cells = dec.effective_cells;
    emit(ev);
  };

  runtime::EngineConfig engine_config;
  engine_config.preferences.objective = config_.objective;
  engine_config.hints = config_.hints;
  engine_config.plan_order = config_.plan_order;
  engine_config.enable_application = config_.mode == Mode::Global;
  engine_config.enable_middleware =
      config_.mode == Mode::AdaptiveMiddleware || config_.mode == Mode::Global;
  engine_config.enable_resource =
      config_.mode == Mode::AdaptiveResource || config_.mode == Mode::Global;
  engine_config.min_intransit_cores = 1;
  engine_config.max_intransit_cores = config_.staging_cores;
  if (config_.mode == Mode::AdaptiveResource || config_.mode == Mode::Global) {
    // The resource layer may grow the staging area beyond the preallocation
    // (Fig. 9's adaptive curve crosses the static line).
    engine_config.max_intransit_cores = 2 * config_.staging_cores;
  }
  engine_ = std::make_unique<runtime::AdaptationEngine>(engine_config, std::move(hooks));

  phases_.push_back(std::make_unique<SimulatePhase>(*this));
  phases_.push_back(std::make_unique<MonitorPhase>(*this));
  phases_.push_back(std::make_unique<AdaptPhase>(*this));
  phases_.push_back(std::make_unique<ReducePhase>(*this));
  phases_.push_back(std::make_unique<PlacementPhase>(*this));
  phases_.push_back(std::make_unique<TransferPhase>(*this));
  phases_.push_back(std::make_unique<AnalyzePhase>(*this));
  phases_.push_back(std::make_unique<DrainPhase>(*this));

  pool_base_ = BufferPool::global().stats();

  WorkflowEvent ev;
  ev.kind = EventKind::RunBegin;
  ev.intransit_cores = cur_cores_;
  emit(ev);
  flush_events();
}

int StepPipeline::staging_nodes(int cores) const noexcept {
  return std::max(1, cores / config_.machine.cores_per_node);
}

std::size_t StepPipeline::staging_capacity(int cores) const noexcept {
  // Every staged byte occupies `replication` replicas, so the capacity for
  // LOGICAL data is the physical pool divided by k (k = 1: unchanged).
  return usable_per_core_ * static_cast<std::size_t>(cores) /
         static_cast<std::size_t>(config_.replication);
}

double StepPipeline::analysis_seconds(std::size_t cells, std::size_t active_cells,
                                      int cores) const {
  switch (config_.analysis_kind) {
    case AnalysisKind::Isosurface:
      return cost_.marching_cubes_seconds(cells, active_cells, cores);
    case AnalysisKind::Statistics:
      return cost_.statistics_seconds(cells, cores);
    case AnalysisKind::Subsetting:
      return cost_.subsetting_seconds(cells, cores);
  }
  XL_UNREACHABLE("unknown analysis kind");
}

void StepPipeline::emit(WorkflowEvent event) {
  if (observer_ == nullptr) return;
  event.sim_clock = timeline_.sim_now();
  event.staging_clock = timeline_.staging_free_at();
  if (event.kind == EventKind::StepEnd || event.kind == EventKind::RunEnd) {
    // Deltas since RunBegin, so the log only reflects pool traffic this run
    // caused (zero for purely modeled runs, whatever the pool's prior state).
    const PoolStats now = BufferPool::global().stats();
    event.pool_hits = now.hits - pool_base_.hits;
    event.pool_misses = now.misses - pool_base_.misses;
    event.pool_releases = now.releases - pool_base_.releases;
    event.pool_copied_bytes = now.copied_bytes - pool_base_.copied_bytes;
    event.triggers_fired = result_.triggers_fired;
    event.steps_suppressed = result_.steps_suppressed;
  }
  batch_.push_back(event);
}

void StepPipeline::flush_events() {
  if (observer_ == nullptr || batch_.empty()) return;
  observer_->on_events(std::span<const WorkflowEvent>(batch_.data(), batch_.size()));
  batch_.clear();
}

void StepPipeline::run_step(int step) {
  StepContext ctx;
  ctx.step = step;
  for (auto& phase : phases_) phase->run(ctx);
  flush_events();
}

std::vector<const char*> StepPipeline::phase_names() const {
  std::vector<const char*> names;
  names.reserve(phases_.size());
  for (const auto& phase : phases_) names.push_back(phase->name());
  return names;
}

WorkflowResult StepPipeline::finish() {
  result_.end_to_end_seconds = timeline_.finish();
  result_.pure_sim_seconds = timeline_.pure_sim_seconds();
  result_.overhead_seconds = result_.end_to_end_seconds - result_.pure_sim_seconds;

  // Per-step windows + the eq. 12 staging utilization trace.
  const std::vector<double>& step_starts = timeline_.step_starts();
  for (std::size_t i = 0; i < result_.steps.size(); ++i) {
    const double window = (i + 1 < step_starts.size())
                              ? step_starts[i + 1] - step_starts[i]
                              : result_.end_to_end_seconds - step_starts[i];
    result_.steps[i].window_seconds = window;
    if (config_.mode != Mode::StaticInSitu) {
      cluster::StagingStepRecord trace_rec;
      trace_rec.step = result_.steps[i].step;
      trace_rec.cores_allocated = result_.steps[i].intransit_cores;
      trace_rec.analysis_seconds = result_.steps[i].intransit_analysis_seconds *
                                   static_cast<double>(result_.steps[i].intransit_cores);
      trace_rec.wall_seconds = window;
      result_.staging_trace.record(trace_rec);
    }
  }
  result_.utilization_efficiency = result_.staging_trace.utilization_efficiency();

  WorkflowEvent ev;
  ev.kind = EventKind::RunEnd;
  ev.seconds = result_.end_to_end_seconds;
  ev.bytes = result_.bytes_moved;
  emit(ev);
  flush_events();

  XL_LOG_INFO(mode_name(config_.mode)
              << " [" << timeline_.substrate().name() << "]: E2E "
              << result_.end_to_end_seconds << "s, sim " << result_.pure_sim_seconds
              << "s, overhead " << result_.overhead_seconds << "s, moved "
              << result_.bytes_moved << "B");
  return std::move(result_);
}

// --- SimulatePhase -----------------------------------------------------------

const char* SimulatePhase::name() const noexcept { return "simulate"; }

void SimulatePhase::run(StepContext& ctx) {
  const WorkflowConfig& config = p_.config_;
  ctx.geom = p_.evolution_.at(ctx.step);
  ctx.total_cells = static_cast<std::size_t>(ctx.geom.total_cells);
  ctx.imbalance = step_imbalance(ctx.geom, config.sim_cores);
  p_.current_imbalance_ = ctx.imbalance;

  // The simulation advances one step on all N cores.
  p_.timeline_.begin_step();
  ctx.sim_seconds =
      p_.cost_.sim_step_seconds(ctx.total_cells, config.sim_cores, config.euler) *
      ctx.imbalance;
  p_.timeline_.advance_sim(ctx.sim_seconds, /*pure=*/true);
  p_.monitor_.record_sim_step(ctx.step, ctx.sim_seconds, ctx.total_cells);

  ctx.analyzed_cells =
      analyzed_cells_of(ctx.geom, config.analyze_refined_only,
                        config.regions_of_interest, config.geometry.ref_ratio);
  ctx.analysis_ncomp =
      config.analysis_ncomp > 0 ? config.analysis_ncomp : config.ncomp;
  ctx.raw_bytes = ctx.analyzed_cells *
                  static_cast<std::size_t>(ctx.analysis_ncomp) * sizeof(double);

  WorkflowEvent ev;
  ev.kind = EventKind::StepBegin;
  ev.step = ctx.step;
  ev.cells = ctx.total_cells;
  ev.seconds = ctx.sim_seconds;
  ev.factor = p_.cur_factor_;
  ev.intransit_cores = p_.cur_cores_;
  p_.emit(ev);
}

// --- MonitorPhase ------------------------------------------------------------

const char* MonitorPhase::name() const noexcept { return "monitor"; }

void MonitorPhase::run(StepContext& ctx) {
  const WorkflowConfig& config = p_.config_;
  p_.timeline_.release_completed();

  // Fault layer: apply this step's scheduled crashes/stragglers before the
  // snapshot, so the policies see the post-fault staging partition. Every
  // branch here is inert when fault injection is disabled. The runtime acts
  // on the DETECTED crash count (heartbeat lease expired), not the ground
  // truth: with lease_steps = 0 the two coincide bit-identically.
  if (p_.fault_plan_.enabled()) {
    const int k = config.replication;
    const int actual_down =
        std::min(p_.fault_plan_.servers_down_at(ctx.step), config.staging_cores);
    const int down =
        std::min(p_.fault_plan_.detected_down_at(ctx.step), config.staging_cores);
    const int suspected = actual_down - down;
    const double slowdown = p_.fault_plan_.slowdown_at(ctx.step);
    if (suspected > p_.prev_servers_suspected_) {
      // Heartbeats went silent but the lease has not expired: nothing is
      // shed or repaired yet, but transfers routed at the suspected servers
      // retry (TransferPhase) until the Monitor declares them dead.
      ++p_.result_.server_suspicions;
      WorkflowEvent ev;
      ev.kind = EventKind::ServerSuspected;
      ev.step = ctx.step;
      ev.servers_suspected = suspected;
      ev.servers_down = down;
      p_.emit(ev);
    }
    if (down > p_.prev_servers_down_) {
      // Declared crash onset: the newly dead servers take staged data with
      // them. k = 1: an object dies with its server (uniform share of the
      // in-flight buffers — the original arithmetic, kept verbatim). k > 1:
      // an object dies only when ALL k of its distinct-server replicas
      // landed on dead servers — hypergeometric C(d,k)/C(M,k) — so the
      // incremental shed is the newly-lost fraction of what survived so far.
      double lost_fraction;
      if (k == 1) {
        const int alive_before = config.staging_cores - p_.prev_servers_down_;
        lost_fraction =
            down >= config.staging_cores
                ? 1.0
                : static_cast<double>(down - p_.prev_servers_down_) /
                      static_cast<double>(alive_before);
      } else {
        const auto all_replicas_dead = [&](int d) {
          if (d >= config.staging_cores) return 1.0;
          if (d < k) return 0.0;
          double f = 1.0;
          for (int i = 0; i < k; ++i) {
            f *= static_cast<double>(d - i) /
                 static_cast<double>(config.staging_cores - i);
          }
          return f;
        };
        const double before = all_replicas_dead(p_.prev_servers_down_);
        const double now = all_replicas_dead(down);
        lost_fraction = before >= 1.0 ? 1.0 : (now - before) / (1.0 - before);
      }
      const ShedReport shed = p_.timeline_.shed_staged(lost_fraction);
      p_.result_.dropped_bytes += shed.bytes;
      ++p_.result_.faults_injected;
      WorkflowEvent ev;
      ev.kind = EventKind::Fault;
      ev.step = ctx.step;
      ev.fault = runtime::FaultKind::ServerCrash;
      ev.servers_down = down;
      ev.bytes = shed.bytes;
      p_.emit(ev);
      if (k > 1) {
        // Surviving objects lost their dead-server replicas (k * d_new / M of
        // the surviving replica footprint on average); anti-entropy re-copies
        // them. The copy traffic queues FIFO on the staging cores as
        // zero-byte work, so repair genuinely competes with workflow
        // transfers in the eq. 7 backlog (and the DES event queue) instead
        // of completing by fiat.
        const std::size_t staged_after = p_.timeline_.staging_mem_used();
        const std::size_t lost_replica_bytes =
            f2s(static_cast<double>(staged_after) * static_cast<double>(k) *
                static_cast<double>(down - p_.prev_servers_down_) /
                static_cast<double>(config.staging_cores));
        WorkflowEvent lost;
        lost.kind = EventKind::ReplicaLost;
        lost.step = ctx.step;
        lost.bytes = lost_replica_bytes;
        lost.replicas = k;
        lost.servers_down = down;
        p_.emit(lost);
        if (lost_replica_bytes > 0) {
          const int alive = std::max(1, config.staging_cores - down);
          const double copy_seconds = p_.cost_.transfer_seconds(
              lost_replica_bytes, p_.staging_nodes(alive),
              p_.staging_nodes(alive));
          p_.repair_done_at_ = p_.timeline_.enqueue_intransit(
              p_.timeline_.sim_now(), copy_seconds, /*bytes=*/0);
          p_.repair_pending_bytes_ += lost_replica_bytes;
          p_.result_.repair_bytes += lost_replica_bytes;
          ++p_.result_.repairs_scheduled;
          WorkflowEvent rep;
          rep.kind = EventKind::RepairScheduled;
          rep.step = ctx.step;
          rep.bytes = lost_replica_bytes;
          rep.replicas = k - 1;
          rep.seconds = copy_seconds;
          p_.emit(rep);
        }
      }
    }
    if (slowdown > 1.0 && p_.prev_slowdown_ <= 1.0) {
      ++p_.result_.faults_injected;
      WorkflowEvent ev;
      ev.kind = EventKind::Fault;
      ev.step = ctx.step;
      ev.fault = runtime::FaultKind::Straggler;
      ev.servers_down = down;
      ev.seconds = slowdown;
      p_.emit(ev);
    }
    const bool servers_recovered = p_.prev_servers_down_ > 0 && down == 0;
    const bool straggler_ended = p_.prev_slowdown_ > 1.0 && slowdown <= 1.0;
    if (servers_recovered || straggler_ended) {
      ++p_.result_.recoveries;
      WorkflowEvent ev;
      ev.kind = EventKind::Recovery;
      ev.step = ctx.step;
      ev.servers_down = down;
      p_.emit(ev);
    }
    // Sticky until the adaptation engine consumes it (the recovery edge may
    // land between sampling steps).
    if (servers_recovered) p_.staging_recovered_now_ = true;
    p_.servers_down_now_ = down;
    p_.servers_suspected_now_ = suspected;
    p_.slowdown_now_ = slowdown;
    p_.prev_servers_down_ = down;
    p_.prev_servers_suspected_ = suspected;
    p_.prev_slowdown_ = slowdown;
    // Once the staging clock passed the queued repair's completion, the
    // surviving objects are fully replicated again.
    if (p_.repair_pending_bytes_ > 0 &&
        p_.timeline_.sim_now() >= p_.repair_done_at_) {
      p_.repair_pending_bytes_ = 0;
    }
  }

  runtime::OperationalState& state = ctx.state;
  state.step = ctx.step;
  state.now_seconds = p_.timeline_.sim_now();
  state.sim_cells = ctx.total_cells;
  state.raw_cells = ctx.analyzed_cells;
  state.raw_bytes = ctx.raw_bytes;
  state.ncomp = ctx.analysis_ncomp;
  state.sim_cores = config.sim_cores;
  {
    const auto peaks = amr::per_rank_peak_bytes(ctx.geom.levels, config.memory_model);
    const std::size_t worst = *std::max_element(peaks.begin(), peaks.end());
    const std::size_t cap = config.machine.mem_per_core_bytes();
    state.insitu_mem_available = worst >= cap ? 0 : cap - worst;
  }
  state.intransit_cores = p_.effective_cores();
  state.intransit_mem_per_core = p_.usable_per_core_;
  {
    const std::size_t cap = p_.staging_capacity(p_.effective_cores());
    const std::size_t used = p_.timeline_.staging_mem_used();
    state.intransit_mem_free = used >= cap ? 0 : cap - used;
  }
  state.intransit_backlog_seconds = p_.timeline_.backlog_seconds();
  state.staging_health.servers_total = config.staging_cores;
  state.staging_health.servers_down = p_.servers_down_now_;
  state.staging_health.servers_suspected = p_.servers_suspected_now_;
  state.staging_health.slowdown = p_.slowdown_now_;
  state.staging_health.just_recovered = p_.staging_recovered_now_;
  state.staging_health.repairing = p_.repair_pending_bytes_ > 0;
  p_.monitor_.record_staging_health(state.staging_health);
  if (p_.fault_plan_.enabled()) {
    // Mirror the fault oracle into the Monitor's heartbeat tracker: `beating`
    // is total minus the ACTUAL crashed set (suspected servers are silent
    // too); the tracker's windowed declaration must agree with
    // detected_down_at, which a unit test pins.
    p_.monitor_.record_heartbeats(
        ctx.step,
        config.staging_cores - p_.servers_down_now_ - p_.servers_suspected_now_,
        config.staging_cores, p_.fault_plan_.config().lease_steps);
  }
  state.last_sim_step_seconds = ctx.sim_seconds;

  // Temporal resolution: only every analysis_interval-th step is analyzed.
  ctx.scheduled = ctx.step % std::max(1, config.analysis_interval) == 0;

  // Trigger detection: feed the detector this step's cheap statistics and
  // arm (or suppress) the AdaptPhase sampling gate. The default FixedPeriod
  // policy never reaches this block, keeping the legacy cadence — and its
  // event stream — byte-identical.
  if (p_.adaptive_ &&
      config.monitor.trigger.policy != runtime::TriggerPolicy::FixedPeriod) {
    runtime::TriggerInputs inputs;
    inputs.tagged_cells = static_cast<std::int64_t>(ctx.analyzed_cells);
    inputs.staged_bytes = ctx.raw_bytes;
    inputs.structure_entropy = analysis::distribution_entropy(ctx.geom.cells_per_level);
    const runtime::TriggerDecision dec = p_.monitor_.observe_step(ctx.step, inputs);
    if (dec.fire) {
      ++p_.result_.triggers_fired;
    } else {
      ++p_.result_.steps_suppressed;
    }
    WorkflowEvent ev;
    ev.kind = dec.fire ? EventKind::TriggerFired : EventKind::TriggerSuppressed;
    ev.step = ctx.step;
    ev.indicator = dec.indicator;
    ev.trigger_threshold = dec.threshold;
    ev.skipped = !dec.sampled;  // estimator skipped this step's window update.
    p_.emit(ev);
  }
}

// --- AdaptPhase --------------------------------------------------------------

const char* AdaptPhase::name() const noexcept { return "adapt"; }

void AdaptPhase::run(StepContext& ctx) {
  const WorkflowConfig& config = p_.config_;

  // Adaptation runs on sampling steps; other steps reuse the last decisions.
  if (p_.adaptive_ && p_.monitor_.should_sample(ctx.step)) {
    if (config.monitor.estimator == runtime::EstimatorKind::Oracle) {
      const auto active = f2s(config.active_cell_fraction *
                              static_cast<double>(ctx.analyzed_cells));
      p_.monitor_.set_oracle(
          p_.analysis_seconds(ctx.analyzed_cells, active, config.sim_cores) *
              ctx.imbalance,
          p_.analysis_seconds(ctx.analyzed_cells, active,
                              std::max(1, p_.effective_cores())));
    }
    const runtime::EngineDecisions dec = p_.engine_->adapt(ctx.state);
    // The oracle estimates were computed from THIS step's geometry; drop them
    // so a later sampling step can never consume stale per-step truth.
    p_.monitor_.clear_oracle();
    p_.staging_recovered_now_ = false;  // the engine saw the recovery edge.
    p_.result_.application_adaptations += dec.app.has_value();
    p_.result_.resource_adaptations += dec.resource.has_value();
    p_.result_.middleware_adaptations += dec.middleware.has_value();
    if (dec.app) {
      p_.cur_factor_ = dec.app->factor;
      p_.last_app_constrained_ = dec.app->memory_constrained;
    }
    if (dec.resource) p_.cur_cores_ = dec.resource->cores;
    if (dec.middleware) {
      p_.cur_placement_ = dec.middleware->placement;
      p_.cur_reason_ = dec.middleware->reason;
    }
    if (config.mode == Mode::AdaptiveResource) p_.cur_placement_ = Placement::InTransit;
    p_.timeline_.advance_sim(config.adaptation_overhead_seconds);
  }

  StepRecord& rec = ctx.record;
  rec.backlog_seconds = ctx.state.intransit_backlog_seconds;
  rec.decision_reason = p_.cur_reason_;
  rec.step = ctx.step;
  rec.total_cells = ctx.total_cells;
  rec.analyzed_cells = ctx.analyzed_cells;
  rec.raw_bytes = ctx.raw_bytes;
  rec.factor = p_.cur_factor_;
  rec.intransit_cores = p_.effective_cores();
  rec.servers_down = p_.servers_down_now_;
  rec.servers_suspected = p_.servers_suspected_now_;
  rec.sim_seconds = ctx.sim_seconds;

  // Temporal adaptation gate: skipped steps run neither the reduction nor
  // the analysis (off-schedule, or memory-constrained with
  // skip_analysis_when_constrained set).
  ctx.do_analysis =
      ctx.scheduled && ctx.analyzed_cells > 0 &&
      !(config.skip_analysis_when_constrained && p_.last_app_constrained_);
  if (!ctx.do_analysis) {
    rec.analysis_skipped = true;
    rec.placement = p_.cur_placement_;
  }
}

// --- ReducePhase -------------------------------------------------------------

const char* ReducePhase::name() const noexcept { return "reduce"; }

void ReducePhase::run(StepContext& ctx) {
  if (!ctx.do_analysis) return;
  const WorkflowConfig& config = p_.config_;

  // The application-layer reduction runs in-situ before any transfer.
  const int factor = p_.cur_factor_;
  const std::size_t f3 = static_cast<std::size_t>(factor) * factor * factor;
  ctx.eff_cells = (ctx.analyzed_cells + f3 - 1) / f3;
  ctx.eff_bytes =
      ctx.eff_cells * static_cast<std::size_t>(ctx.analysis_ncomp) * sizeof(double);
  if (factor > 1) {
    ctx.record.reduce_seconds =
        p_.cost_.downsample_seconds(ctx.eff_cells, config.sim_cores) * ctx.imbalance;
    p_.timeline_.advance_sim(ctx.record.reduce_seconds);
  }
  ctx.active_cells =
      f2s(config.active_cell_fraction * static_cast<double>(ctx.eff_cells));
}

// --- PlacementPhase ----------------------------------------------------------

const char* PlacementPhase::name() const noexcept { return "placement"; }

void PlacementPhase::run(StepContext& ctx) {
  if (!ctx.do_analysis) return;

  const int alive = p_.effective_cores();
  if (p_.fault_plan_.enabled() && alive <= 0) {
    // The whole staging partition is down: every mode — static ones included
    // — degrades to in-situ so the step still completes.
    ctx.split = false;
    ctx.intransit_share = 0.0;
    ctx.record.placement = Placement::InSitu;
    ctx.record.decision_reason = runtime::DecisionReason::StagingUnavailable;
    return;
  }

  if (p_.hybrid_) {
    // Split the analysis: stage the largest share that stays hidden under
    // the (estimated ~ current) step duration; the remainder blocks the
    // simulation in-situ. Both partitions work on disjoint subsets, so
    // their costs are the per-share fractions of the full-kernel times.
    const double full_intransit =
        p_.analysis_seconds(ctx.eff_cells, ctx.active_cells, alive);
    double intransit_share =
        full_intransit > 0.0 ? std::min(1.0, ctx.sim_seconds / full_intransit) : 1.0;
    const auto staged_bytes =
        f2s(intransit_share * static_cast<double>(ctx.eff_bytes));
    if (p_.timeline_.staging_mem_used() + staged_bytes >
        p_.staging_capacity(alive)) {
      intransit_share = 0.0;  // staging full: everything in-situ this step
    }
    ctx.split = true;
    ctx.intransit_share = intransit_share;
    ctx.intransit_full_seconds = full_intransit;
    ctx.record.placement =
        intransit_share >= 0.5 ? Placement::InTransit : Placement::InSitu;
    return;
  }

  Placement placement = p_.cur_placement_;
  if (placement == Placement::InTransit &&
      ctx.eff_bytes > p_.staging_capacity(alive)) {
    // The staging area can never cache this step, even drained: forced
    // in-situ (middleware case 1 degenerate).
    placement = Placement::InSitu;
  }
  ctx.intransit_share = placement == Placement::InTransit ? 1.0 : 0.0;
  ctx.record.placement = placement;
}

// --- TransferPhase -----------------------------------------------------------

const char* TransferPhase::name() const noexcept { return "transfer"; }

void TransferPhase::run(StepContext& ctx) {
  if (!ctx.do_analysis || ctx.intransit_share <= 0.0) return;

  const int alive = std::max(1, p_.effective_cores());
  ctx.transfer_bytes =
      ctx.split ? f2s(ctx.intransit_share * static_cast<double>(ctx.eff_bytes))
                : ctx.eff_bytes;
  ctx.wire_seconds = p_.cost_.transfer_seconds(ctx.transfer_bytes, p_.sim_nodes_,
                                               p_.staging_nodes(alive));

  // Resolve the transfer's fate against the fault oracle BEFORE admission:
  // each dropped/corrupt attempt blocks the sender for its detection time
  // (the timeout, or the full wire time for a checksum reject) plus an
  // exponential backoff, then retries; exhausting the retry budget fails the
  // transfer and this step's analysis falls back in-situ without ever
  // charging an admission wait.
  if (p_.fault_plan_.enabled()) {
    const std::uint64_t tid = p_.transfer_seq_++;
    const runtime::FaultConfig& fc = p_.fault_plan_.config();
    const double detect = fc.transfer_timeout_seconds > 0.0
                              ? std::min(fc.transfer_timeout_seconds, ctx.wire_seconds)
                              : ctx.wire_seconds;
    if (p_.servers_suspected_now_ > 0) {
      // The Morton-hash target may be one of the suspected (silent but not
      // yet declared) servers: the put times out once and retries against a
      // probed survivor — the in-flight-put-racing-a-dying-server path the
      // lease window creates. Deterministic (keyed on the suspicion state,
      // no oracle draw); inert whenever lease_steps = 0.
      const double backoff = p_.fault_plan_.backoff_seconds(0);
      ++p_.result_.transfer_retries;
      ++ctx.record.transfer_retries;
      WorkflowEvent ev;
      ev.kind = EventKind::Retry;
      ev.step = ctx.step;
      ev.fault = runtime::FaultKind::TransferDrop;
      ev.attempt = 0;
      ev.backoff_seconds = backoff;
      ev.bytes = ctx.transfer_bytes;
      ev.servers_suspected = p_.servers_suspected_now_;
      p_.emit(ev);
      p_.timeline_.advance_sim(detect);
      p_.timeline_.advance_sim(backoff);
    }
    int attempt = 0;
    bool failed = false;
    while (const auto fate = p_.fault_plan_.transfer_attempt_fault(tid, attempt)) {
      p_.timeline_.advance_sim(detect);
      if (attempt >= fc.max_transfer_retries) {
        failed = true;
        ++p_.result_.transfer_failures;
        WorkflowEvent ev;
        ev.kind = EventKind::Fault;
        ev.step = ctx.step;
        ev.fault = *fate;
        ev.attempt = attempt;
        ev.bytes = ctx.transfer_bytes;
        p_.emit(ev);
        break;
      }
      const double backoff = p_.fault_plan_.backoff_seconds(attempt);
      ++p_.result_.transfer_retries;
      ++ctx.record.transfer_retries;
      WorkflowEvent ev;
      ev.kind = EventKind::Retry;
      ev.step = ctx.step;
      ev.fault = *fate;
      ev.attempt = attempt;
      ev.backoff_seconds = backoff;
      ev.bytes = ctx.transfer_bytes;
      p_.emit(ev);
      p_.timeline_.advance_sim(backoff);
      ++attempt;
    }
    if (failed) {
      ctx.record.transfer_failed = true;
      ctx.split = false;
      ctx.intransit_share = 0.0;
      ctx.record.placement = Placement::InSitu;
      return;  // AnalyzePhase runs the whole analysis in-situ.
    }
  }

  if (!ctx.split) {
    // Admission: block the simulation until the staging area has memory
    // (the paper's T_insitu_wait). The hybrid share was already sized against
    // free staging memory in PlacementPhase.
    ctx.record.wait_seconds = p_.timeline_.wait_for_staging_memory(
        ctx.eff_bytes, p_.staging_capacity(p_.effective_cores()));
  }
  ctx.pending_transfer = true;

  WorkflowEvent ev;
  ev.kind = EventKind::Transfer;
  ev.step = ctx.step;
  ev.bytes = ctx.transfer_bytes;
  ev.seconds = ctx.wire_seconds;
  ev.wait_seconds = ctx.record.wait_seconds;
  ev.intransit_cores = p_.effective_cores();
  ev.placement = Placement::InTransit;
  p_.emit(ev);
}

// --- AnalyzePhase ------------------------------------------------------------

const char* AnalyzePhase::name() const noexcept { return "analyze"; }

void AnalyzePhase::run(StepContext& ctx) {
  if (!ctx.do_analysis) return;
  const WorkflowConfig& config = p_.config_;
  StepRecord& rec = ctx.record;

  // Blocking in-situ share first: the simulation cannot hand the staged
  // buffer off before finishing its own part of the analysis.
  double insitu_analysis = 0.0;
  if (ctx.split) {
    const double insitu_share = 1.0 - ctx.intransit_share;
    if (insitu_share > 0.0) {
      insitu_analysis =
          insitu_share *
          p_.analysis_seconds(ctx.eff_cells, ctx.active_cells, config.sim_cores) *
          ctx.imbalance;
    }
  } else if (ctx.intransit_share <= 0.0) {
    insitu_analysis =
        p_.analysis_seconds(ctx.eff_cells, ctx.active_cells, config.sim_cores) *
        ctx.imbalance;
  }
  if (insitu_analysis > 0.0 || (!ctx.split && ctx.intransit_share <= 0.0)) {
    p_.timeline_.advance_sim(insitu_analysis);
    rec.insitu_analysis_seconds = insitu_analysis;
    if (!ctx.split) {
      p_.monitor_.record_analysis({ctx.step, Placement::InSitu, ctx.eff_cells,
                                   config.sim_cores, insitu_analysis});
    }
    WorkflowEvent ev;
    ev.kind = EventKind::Analysis;
    ev.step = ctx.step;
    ev.placement = Placement::InSitu;
    ev.cells = ctx.eff_cells;
    ev.seconds = insitu_analysis;
    p_.emit(ev);
  }

  // Commit the planned asynchronous transfer: the sender pays a small
  // initiation cost (RDMA-style), the payload lands a wire-time later and
  // queues FIFO behind the staging backlog.
  if (ctx.pending_transfer) {
    p_.timeline_.advance_sim(0.01 * ctx.wire_seconds);
    const double arrive = p_.timeline_.sim_now() + ctx.wire_seconds;
    const int alive = std::max(1, p_.effective_cores());
    // Straggler faults stretch the staging-side kernel; slowdown_now_ is
    // exactly 1.0 whenever no straggler window is active, so the multiply is
    // bit-identical to the fault-free path.
    const double analysis =
        (ctx.split ? ctx.intransit_share * ctx.intransit_full_seconds
                   : p_.analysis_seconds(ctx.eff_cells, ctx.active_cells, alive)) *
        p_.slowdown_now_;
    p_.timeline_.enqueue_intransit(arrive, analysis, ctx.transfer_bytes);
    p_.result_.bytes_moved += ctx.transfer_bytes;
    rec.moved_bytes = ctx.transfer_bytes;
    rec.intransit_analysis_seconds = analysis;
    if (!ctx.split) {
      p_.monitor_.record_analysis(
          {ctx.step, Placement::InTransit, ctx.eff_cells, alive, analysis});
    }
    WorkflowEvent ev;
    ev.kind = EventKind::Analysis;
    ev.step = ctx.step;
    ev.placement = Placement::InTransit;
    ev.cells = ctx.eff_cells;
    ev.seconds = analysis;
    ev.bytes = ctx.transfer_bytes;
    p_.emit(ev);

    if (config.replication > 1) {
      // Replicated put: the primary landing fans out k-1 secondary copies
      // across the staging servers; the copy time queues FIFO behind the
      // analysis like any other staging work (memory is already accounted —
      // staging_capacity() is the physical pool over k).
      const std::size_t copy_bytes =
          ctx.transfer_bytes * static_cast<std::size_t>(config.replication - 1);
      if (copy_bytes > 0) {
        const double copy_seconds = p_.cost_.transfer_seconds(
            copy_bytes, p_.staging_nodes(alive), p_.staging_nodes(alive));
        p_.timeline_.enqueue_intransit(arrive, copy_seconds, /*bytes=*/0);
        p_.result_.replicated_bytes += copy_bytes;
        WorkflowEvent rev;
        rev.kind = EventKind::ReplicaCreated;
        rev.step = ctx.step;
        rev.bytes = copy_bytes;
        rev.replicas = config.replication - 1;
        rev.seconds = copy_seconds;
        p_.emit(rev);
      }
      if (p_.repair_pending_bytes_ > 0) {
        // This staged read lands while replicas are still missing: the get
        // path re-materializes the replicas of the objects it touches ahead
        // of the background pass (read-repair), shrinking the deficit the
        // queued anti-entropy still has to cover.
        const std::size_t consumed =
            std::min(p_.repair_pending_bytes_, ctx.transfer_bytes);
        p_.repair_pending_bytes_ -= consumed;
        ++p_.result_.read_repairs;
        WorkflowEvent rr;
        rr.kind = EventKind::ReadRepair;
        rr.step = ctx.step;
        rr.bytes = consumed;
        rr.replicas = config.replication - 1;
        p_.emit(rr);
      }
    }
  }
}

// --- DrainPhase --------------------------------------------------------------

const char* DrainPhase::name() const noexcept { return "drain"; }

void DrainPhase::run(StepContext& ctx) {
  if (ctx.record.analysis_skipped) {
    ++p_.result_.skipped_count;
  } else if (ctx.record.placement == Placement::InSitu) {
    ++p_.result_.insitu_count;
    if (ctx.record.decision_reason == runtime::DecisionReason::StagingUnavailable ||
        ctx.record.decision_reason == runtime::DecisionReason::DegradedInSitu ||
        ctx.record.transfer_failed) {
      ++p_.result_.degraded_insitu_count;
    }
  } else {
    ++p_.result_.intransit_count;
  }
  p_.result_.steps.push_back(ctx.record);

  WorkflowEvent ev;
  ev.kind = EventKind::StepEnd;
  ev.step = ctx.step;
  ev.placement = ctx.record.placement;
  ev.reason = ctx.record.decision_reason;
  ev.factor = ctx.record.factor;
  ev.intransit_cores = ctx.record.intransit_cores;
  ev.cells = ctx.record.analyzed_cells;
  ev.bytes = ctx.record.moved_bytes;
  ev.seconds = ctx.record.sim_seconds;
  ev.wait_seconds = ctx.record.wait_seconds;
  ev.skipped = ctx.record.analysis_skipped;
  ev.servers_down = ctx.record.servers_down;
  ev.servers_suspected = ctx.record.servers_suspected;
  p_.emit(ev);
}

}  // namespace xl::workflow
