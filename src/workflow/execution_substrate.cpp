#include "workflow/execution_substrate.hpp"

#include <algorithm>

namespace xl::workflow {

// --- AnalyticSubstrate -------------------------------------------------------

void AnalyticSubstrate::release_until(double t) {
  while (!staged_.empty() && staged_.front().first <= t) {
    mem_used_ -= staged_.front().second;
    staged_.pop_front();
  }
}

double AnalyticSubstrate::wait_for_staging_memory(std::size_t bytes,
                                                  std::size_t capacity) {
  const double before = t_sim_;
  while (mem_used_ + bytes > capacity && !staged_.empty()) {
    t_sim_ = std::max(t_sim_, staged_.front().first);
    release_until(t_sim_);
  }
  return t_sim_ - before;
}

double AnalyticSubstrate::enqueue_intransit(double arrive, double analysis_seconds,
                                            std::size_t bytes) {
  const double start = std::max(arrive, staging_free_at_);
  staging_free_at_ = start + analysis_seconds;
  mem_used_ += bytes;
  staged_.emplace_back(staging_free_at_, bytes);
  return staging_free_at_;
}

double AnalyticSubstrate::finish() {
  return std::max(t_sim_, staging_free_at_);
}

// --- EventQueueSubstrate -----------------------------------------------------

double EventQueueSubstrate::wait_for_staging_memory(std::size_t bytes,
                                                    std::size_t capacity) {
  const double before = t_sim_;
  while (mem_used_ + bytes > capacity && !queue_.empty()) {
    // The only scheduled events are buffer releases, so the earliest event is
    // exactly the analytic substrate's staged_.front().
    queue_.run_one();
    t_sim_ = std::max(t_sim_, queue_.now());
  }
  return t_sim_ - before;
}

double EventQueueSubstrate::enqueue_intransit(double arrive, double analysis_seconds,
                                              std::size_t bytes) {
  const double start = std::max(arrive, staging_free_at_);
  staging_free_at_ = start + analysis_seconds;
  mem_used_ += bytes;
  queue_.schedule_at(staging_free_at_, [this, bytes] { mem_used_ -= bytes; });
  return staging_free_at_;
}

double EventQueueSubstrate::finish() {
  queue_.run_until_empty();
  return std::max(t_sim_, staging_free_at_);
}

}  // namespace xl::workflow
