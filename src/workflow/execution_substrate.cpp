#include "workflow/execution_substrate.hpp"

#include <algorithm>
#include <cstdint>

#include "common/contract.hpp"

namespace xl::workflow {

// --- AnalyticSubstrate -------------------------------------------------------

void AnalyticSubstrate::release_until(double t) {
  while (!staged_.empty() && staged_.front().first <= t) {
    XL_ASSERT(mem_used_ >= staged_.front().second,
              "staging memory accounting underflow: used=" << mem_used_
                                                           << " releasing "
                                                           << staged_.front().second);
    mem_used_ -= staged_.front().second;
    staged_.pop_front();
  }
}

double AnalyticSubstrate::wait_for_staging_memory(std::size_t bytes,
                                                  std::size_t capacity) {
  const double before = t_sim_;
  while (mem_used_ + bytes > capacity && !staged_.empty()) {
    t_sim_ = std::max(t_sim_, staged_.front().first);
    release_until(t_sim_);
  }
  return t_sim_ - before;
}

double AnalyticSubstrate::enqueue_intransit(double arrive, double analysis_seconds,
                                            std::size_t bytes) {
  const double start = std::max(arrive, staging_free_at_);
  staging_free_at_ = start + analysis_seconds;
  mem_used_ += bytes;
  staged_.emplace_back(staging_free_at_, bytes);
  return staging_free_at_;
}

ShedReport AnalyticSubstrate::shed_staged(double lost_fraction) {
  const bool full = lost_fraction >= 1.0;
  ShedReport report;
  // Shrink in FIFO order, entry by entry, with the exact arithmetic the
  // discrete-event substrate uses — zero-byte entries are kept so both
  // substrates pop the same release sequence afterwards.
  for (auto& [release, bytes] : staged_) {
    const std::size_t lost =
        full ? bytes
             : f2s(lost_fraction * static_cast<double>(bytes));
    if (lost == 0) continue;
    bytes -= lost;
    mem_used_ -= lost;
    report.bytes += lost;
    ++report.buffers;
  }
  // A full outage abandons the backlog: the staging clock stops accruing.
  if (full) staging_free_at_ = std::min(staging_free_at_, t_sim_);
  return report;
}

double AnalyticSubstrate::finish() {
  return std::max(t_sim_, staging_free_at_);
}

// --- EventQueueSubstrate -----------------------------------------------------

double EventQueueSubstrate::wait_for_staging_memory(std::size_t bytes,
                                                    std::size_t capacity) {
  const double before = t_sim_;
  while (mem_used_ + bytes > capacity && !queue_.empty()) {
    // The only scheduled events are buffer releases, so the earliest event is
    // exactly the analytic substrate's staged_.front().
    queue_.run_one();
    t_sim_ = std::max(t_sim_, queue_.now());
  }
  return t_sim_ - before;
}

double EventQueueSubstrate::enqueue_intransit(double arrive, double analysis_seconds,
                                              std::size_t bytes) {
  const double start = std::max(arrive, staging_free_at_);
  staging_free_at_ = start + analysis_seconds;
  mem_used_ += bytes;
  // The release event looks the bytes up at fire time (not capture time) so a
  // later shed_staged can shrink the buffer while its release is in flight.
  const std::uint64_t id = staged_bytes_.append(bytes);
  queue_.schedule_at(staging_free_at_, [this, id] {
    if (std::size_t* live = staged_bytes_.find(id)) {
      XL_ASSERT(mem_used_ >= *live,
                "staging memory accounting underflow: used=" << mem_used_
                                                             << " releasing "
                                                             << *live);
      mem_used_ -= *live;
      staged_bytes_.release(id);
    }
  });
  return staging_free_at_;
}

ShedReport EventQueueSubstrate::shed_staged(double lost_fraction) {
  const bool full = lost_fraction >= 1.0;
  ShedReport report;
  // Ascending-id iteration == FIFO order: exactly the sequence the analytic
  // substrate's deque walks, entry by entry, same arithmetic.
  staged_bytes_.for_each_live([&](std::uint64_t, std::size_t& bytes) {
    const std::size_t lost =
        full ? bytes
             : f2s(lost_fraction * static_cast<double>(bytes));
    if (lost == 0) return;
    bytes -= lost;
    mem_used_ -= lost;
    report.bytes += lost;
    ++report.buffers;
  });
  if (full) staging_free_at_ = std::min(staging_free_at_, t_sim_);
  return report;
}

double EventQueueSubstrate::finish() {
  queue_.run_until_empty();
  return std::max(t_sim_, staging_free_at_);
}

}  // namespace xl::workflow
