// The per-step phase pipeline the coupled workflow executes (paper §3's
// layered runtime made explicit). Each step flows through eight phases over
// a shared StepContext:
//
//   Simulate -> Monitor -> Adapt -> Reduce -> Placement -> Transfer
//            -> Analyze -> Drain
//
//  * SimulatePhase  — advance the AMR solver one step on the sim partition.
//  * MonitorPhase   — release completed staging buffers, snapshot the
//                     OperationalState the Adaptation Engine consumes.
//  * AdaptPhase     — run the cross-layer engine on sampling steps; apply
//                     the temporal-adaptation gate.
//  * ReducePhase    — application-layer down-sampling (factor X, in-situ).
//  * PlacementPhase — resolve where this step's analysis runs (including
//                     the hybrid split and capacity-forced fallbacks).
//  * TransferPhase  — admission control + transfer planning for the
//                     in-transit share (the paper's T_insitu_wait and T_sd).
//  * AnalyzePhase   — charge the analysis to the owning partition clock(s);
//                     the planned transfer commits here, after the blocking
//                     in-situ share, matching when the simulation actually
//                     hands the buffer off.
//  * DrainPhase     — finalize the StepRecord, accumulate run counters.
//
// All timing flows through the Timeline/ExecutionSubstrate seam, and every
// phase reports into the WorkflowObserver event stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "amr/synthetic.hpp"
#include "cluster/cost_model.hpp"
#include "common/buffer_pool.hpp"
#include "runtime/adaptation_engine.hpp"
#include "runtime/monitor.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/observer.hpp"
#include "workflow/timeline.hpp"

namespace xl::workflow {

/// Mutable working set one step flows through the phases. Phases only
/// communicate through this context (and the pipeline's cross-step state).
struct StepContext {
  int step = 0;
  amr::SyntheticStep geom;
  double imbalance = 1.0;
  std::size_t total_cells = 0;
  std::size_t analyzed_cells = 0;  ///< cells the analysis consumes (pre-reduction).
  std::size_t raw_bytes = 0;       ///< S_data before reduction.
  int analysis_ncomp = 1;
  double sim_seconds = 0.0;        ///< T_i_sim.
  runtime::OperationalState state; ///< the monitor snapshot.
  bool scheduled = false;          ///< temporal gate (analysis_interval).
  bool do_analysis = false;        ///< false: remaining phases are no-ops.
  // Post-reduction sizes.
  std::size_t eff_cells = 0;
  std::size_t eff_bytes = 0;
  std::size_t active_cells = 0;
  // Placement outcome.
  bool split = false;              ///< hybrid: analysis split across partitions.
  double intransit_share = 0.0;    ///< staged fraction (1.0 = everything).
  double intransit_full_seconds = 0.0;  ///< hybrid: full-kernel in-transit time.
  // Planned asynchronous transfer (committed by AnalyzePhase).
  bool pending_transfer = false;
  std::size_t transfer_bytes = 0;
  double wire_seconds = 0.0;
  StepRecord record;
};

class StepPipeline;

class StepPhase {
 public:
  virtual ~StepPhase() = default;
  virtual const char* name() const noexcept = 0;
  virtual void run(StepContext& ctx) = 0;

 protected:
  explicit StepPhase(StepPipeline& pipeline) : p_(pipeline) {}
  StepPipeline& p_;
};

#define XL_DECLARE_PHASE(Phase)                              \
  class Phase final : public StepPhase {                     \
   public:                                                   \
    explicit Phase(StepPipeline& pipeline) : StepPhase(pipeline) {} \
    const char* name() const noexcept override;              \
    void run(StepContext& ctx) override;                     \
  }

XL_DECLARE_PHASE(SimulatePhase);
XL_DECLARE_PHASE(MonitorPhase);
XL_DECLARE_PHASE(AdaptPhase);
XL_DECLARE_PHASE(ReducePhase);
XL_DECLARE_PHASE(PlacementPhase);
XL_DECLARE_PHASE(TransferPhase);
XL_DECLARE_PHASE(AnalyzePhase);
XL_DECLARE_PHASE(DrainPhase);

#undef XL_DECLARE_PHASE

/// Orchestrates the phases over an execution substrate, owning the run-wide
/// state the phases share: monitor, adaptation engine, timeline, carried
/// decisions, and the accumulating WorkflowResult.
class StepPipeline {
 public:
  StepPipeline(const WorkflowConfig& config, ExecutionSubstrate& substrate,
               WorkflowObserver* observer);

  StepPipeline(const StepPipeline&) = delete;
  StepPipeline& operator=(const StepPipeline&) = delete;

  /// Run one step through all phases.
  void run_step(int step);

  /// Drain the substrate, finalize windows / staging trace / eq. 12, and
  /// hand over the result. Call once, after the last step.
  WorkflowResult finish();

  /// Phase names in execution order (for docs, tracing, and tests).
  std::vector<const char*> phase_names() const;

 private:
  friend class SimulatePhase;
  friend class MonitorPhase;
  friend class AdaptPhase;
  friend class ReducePhase;
  friend class PlacementPhase;
  friend class TransferPhase;
  friend class AnalyzePhase;
  friend class DrainPhase;

  int staging_nodes(int cores) const noexcept;
  std::size_t staging_capacity(int cores) const noexcept;
  double analysis_seconds(std::size_t cells, std::size_t active_cells,
                          int cores) const;
  /// Staging cores actually usable this step: the allocation minus the
  /// servers the fault plan killed (0 = whole partition down). Equals
  /// cur_cores_ whenever fault injection is disabled.
  int effective_cores() const noexcept {
    return std::max(0, cur_cores_ - servers_down_now_);
  }
  /// Stamp the partition clocks onto `event` and append it to the step batch.
  /// Clocks are read at emission time (not flush time), so batching changes
  /// only delivery granularity, never a recorded value.
  void emit(WorkflowEvent event);
  /// Hand the accumulated batch to the observer in exact emission order.
  /// Called at construction (RunBegin), after each step, and at finish().
  void flush_events();

  const WorkflowConfig& config_;
  amr::SyntheticAmrEvolution evolution_;
  cluster::CostModel cost_;
  runtime::Monitor monitor_;
  Timeline timeline_;
  WorkflowObserver* observer_;
  std::vector<WorkflowEvent> batch_;  ///< stamped events awaiting delivery.
  std::unique_ptr<runtime::AdaptationEngine> engine_;
  std::vector<std::unique_ptr<StepPhase>> phases_;
  WorkflowResult result_;

  // Derived constants.
  int sim_nodes_ = 1;
  std::size_t usable_per_core_ = 0;
  bool adaptive_ = false;
  bool hybrid_ = false;

  // Decisions carried across steps (sampling steps refresh them).
  int cur_factor_ = 1;
  int cur_cores_ = 0;
  runtime::DecisionReason cur_reason_ = runtime::DecisionReason::None;
  bool last_app_constrained_ = false;
  runtime::Placement cur_placement_ = runtime::Placement::InSitu;
  double current_imbalance_ = 1.0;

  /// Global BufferPool counters at RunBegin; StepEnd/RunEnd events report the
  /// deltas accumulated since (see WorkflowEvent's pool fields).
  PoolStats pool_base_;

  // Fault-injection state (inert when config.faults is disabled). With
  // lease_steps > 0 the *detected* (lease-expired) crash count drives
  // capacity, shed, and recovery; the actual-minus-detected gap is the
  // suspected set that only forces transfer retries.
  runtime::FaultPlan fault_plan_;
  int servers_down_now_ = 0;        ///< declared dead (lease expired).
  int prev_servers_down_ = 0;
  int servers_suspected_now_ = 0;   ///< crashed, lease still running.
  int prev_servers_suspected_ = 0;
  double slowdown_now_ = 1.0;
  double prev_slowdown_ = 1.0;
  /// Recovery edge, sticky until the adaptation engine consumes it.
  bool staging_recovered_now_ = false;
  std::uint64_t transfer_seq_ = 0;  ///< fault-oracle key for each transfer.
  // Replication repair state (inert when config.replication == 1).
  std::size_t repair_pending_bytes_ = 0;  ///< replica bytes awaiting re-creation.
  double repair_done_at_ = 0.0;           ///< staging-clock completion of the queued repair.
};

}  // namespace xl::workflow
