#include "workflow/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace xl::workflow {

void write_steps_csv(std::ostream& os, const WorkflowResult& result) {
  os << "step,total_cells,analyzed_cells,factor,placement,intransit_cores,"
        "sim_seconds,reduce_seconds,insitu_analysis_seconds,"
        "intransit_analysis_seconds,wait_seconds,window_seconds,"
        "backlog_seconds,raw_bytes,moved_bytes,reason\n";
  for (const StepRecord& s : result.steps) {
    os << s.step << ',' << s.total_cells << ',' << s.analyzed_cells << ','
       << s.factor << ',' << runtime::placement_name(s.placement) << ','
       << s.intransit_cores << ',' << s.sim_seconds << ',' << s.reduce_seconds
       << ',' << s.insitu_analysis_seconds << ',' << s.intransit_analysis_seconds
       << ',' << s.wait_seconds << ',' << s.window_seconds << ','
       << s.backlog_seconds << ',' << s.raw_bytes << ',' << s.moved_bytes << ','
       << s.decision_reason << '\n';
  }
  XL_REQUIRE(os.good(), "CSV write failed");
}

void write_steps_csv(const std::string& path, const WorkflowResult& result) {
  std::ofstream os(path);
  XL_REQUIRE(os.good(), "cannot open CSV output: " + path);
  write_steps_csv(os, result);
}

std::string summarize(const WorkflowResult& result) {
  std::ostringstream os;
  os << "end_to_end_s=" << result.end_to_end_seconds
     << " sim_s=" << result.pure_sim_seconds
     << " overhead_s=" << result.overhead_seconds
     << " moved_bytes=" << result.bytes_moved
     << " insitu=" << result.insitu_count
     << " intransit=" << result.intransit_count
     << " staging_utilization=" << result.utilization_efficiency;
  return os.str();
}

}  // namespace xl::workflow
