#include "workflow/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace xl::workflow {

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::RunBegin: return "run-begin";
    case EventKind::StepBegin: return "step-begin";
    case EventKind::Decision: return "decision";
    case EventKind::Transfer: return "transfer";
    case EventKind::Analysis: return "analysis";
    case EventKind::StepEnd: return "step-end";
    case EventKind::RunEnd: return "run-end";
    case EventKind::Fault: return "fault";
    case EventKind::Retry: return "retry";
    case EventKind::Recovery: return "recovery";
    case EventKind::ServerSuspected: return "server-suspected";
    case EventKind::ReplicaLost: return "replica-lost";
    case EventKind::RepairScheduled: return "repair-scheduled";
    case EventKind::ReplicaCreated: return "replica-created";
    case EventKind::ReadRepair: return "read-repair";
    case EventKind::TriggerFired: return "trigger-fired";
    case EventKind::TriggerSuppressed: return "trigger-suppressed";
  }
  return "?";
}

void write_steps_csv(std::ostream& os, const WorkflowResult& result) {
  os << "step,total_cells,analyzed_cells,factor,placement,intransit_cores,"
        "sim_seconds,reduce_seconds,insitu_analysis_seconds,"
        "intransit_analysis_seconds,wait_seconds,window_seconds,"
        "backlog_seconds,raw_bytes,moved_bytes,reason\n";
  for (const StepRecord& s : result.steps) {
    os << s.step << ',' << s.total_cells << ',' << s.analyzed_cells << ','
       << s.factor << ',' << runtime::placement_name(s.placement) << ','
       << s.intransit_cores << ',' << s.sim_seconds << ',' << s.reduce_seconds
       << ',' << s.insitu_analysis_seconds << ',' << s.intransit_analysis_seconds
       << ',' << s.wait_seconds << ',' << s.window_seconds << ','
       << s.backlog_seconds << ',' << s.raw_bytes << ',' << s.moved_bytes << ','
       << runtime::reason_name(s.decision_reason) << '\n';
  }
  XL_REQUIRE(os.good(), "CSV write failed");
}

void write_steps_csv(const std::string& path, const WorkflowResult& result) {
  std::ofstream os(path);
  XL_REQUIRE(os.good(), "cannot open CSV output: " + path);
  write_steps_csv(os, result);
}

void write_events_csv(std::ostream& os, const EventLog& log) {
  os << "event,step,sim_clock,staging_clock,placement,reason,factor,"
        "intransit_cores,app_adapted,resource_adapted,middleware_adapted,"
        "cells,bytes,seconds,wait_seconds,skipped,fault,attempt,"
        "backoff_seconds,servers_down,servers_suspected,replicas,pool_hits,"
        "pool_misses,pool_releases,pool_copied_bytes,indicator,"
        "trigger_threshold,triggers_fired,steps_suppressed\n";
  for (const WorkflowEvent& e : log.events()) {
    os << event_kind_name(e.kind) << ',' << e.step << ',' << e.sim_clock << ','
       << e.staging_clock << ',' << runtime::placement_name(e.placement) << ','
       << runtime::reason_name(e.reason) << ',' << e.factor << ','
       << e.intransit_cores << ',' << int(e.app_adapted) << ','
       << int(e.resource_adapted) << ',' << int(e.middleware_adapted) << ','
       << e.cells << ',' << e.bytes << ',' << e.seconds << ','
       << e.wait_seconds << ',' << int(e.skipped) << ','
       << runtime::fault_kind_name(e.fault) << ',' << e.attempt << ','
       << e.backoff_seconds << ',' << e.servers_down << ','
       << e.servers_suspected << ',' << e.replicas << ',' << e.pool_hits
       << ',' << e.pool_misses << ',' << e.pool_releases << ','
       << e.pool_copied_bytes << ',' << e.indicator << ','
       << e.trigger_threshold << ',' << e.triggers_fired << ','
       << e.steps_suppressed << '\n';
  }
  XL_REQUIRE(os.good(), "CSV write failed");
}

void write_events_csv(const std::string& path, const EventLog& log) {
  std::ofstream os(path);
  XL_REQUIRE(os.good(), "cannot open CSV output: " + path);
  write_events_csv(os, log);
}

std::string summarize(const WorkflowResult& result) {
  std::ostringstream os;
  os << "end_to_end_s=" << result.end_to_end_seconds
     << " sim_s=" << result.pure_sim_seconds
     << " overhead_s=" << result.overhead_seconds
     << " moved_bytes=" << result.bytes_moved
     << " insitu=" << result.insitu_count
     << " intransit=" << result.intransit_count
     << " staging_utilization=" << result.utilization_efficiency;
  if (result.faults_injected > 0 || result.transfer_retries > 0 ||
      result.transfer_failures > 0) {
    os << " faults=" << result.faults_injected
       << " recoveries=" << result.recoveries
       << " retries=" << result.transfer_retries
       << " transfer_failures=" << result.transfer_failures
       << " degraded_insitu=" << result.degraded_insitu_count
       << " dropped_bytes=" << result.dropped_bytes;
  }
  if (result.triggers_fired > 0 || result.steps_suppressed > 0) {
    os << " triggers_fired=" << result.triggers_fired
       << " steps_suppressed=" << result.steps_suppressed;
  }
  if (result.server_suspicions > 0 || result.repairs_scheduled > 0 ||
      result.replicated_bytes > 0) {
    os << " suspicions=" << result.server_suspicions
       << " repairs=" << result.repairs_scheduled
       << " read_repairs=" << result.read_repairs
       << " repair_bytes=" << result.repair_bytes
       << " replicated_bytes=" << result.replicated_bytes;
  }
  return os.str();
}

}  // namespace xl::workflow
