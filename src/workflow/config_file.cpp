#include "workflow/config_file.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"
#include "runtime/trigger.hpp"

namespace xl::workflow {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

// std::sto* throw exactly std::invalid_argument and std::out_of_range;
// catching (...) here used to eat unrelated failures (bad_alloc, contract
// aborts surfacing as exceptions) and mislabel them as config syntax errors.
int to_int(const std::string& v, const std::string& key) {
  try {
    return std::stoi(v);
  } catch (const std::invalid_argument&) {
    throw ContractError("config: bad integer for '" + key + "': " + v);
  } catch (const std::out_of_range& e) {
    throw ContractError("config: integer out of range for '" + key + "': " + v +
                        " (" + e.what() + ")");
  }
}

double to_double(const std::string& v, const std::string& key) {
  try {
    return std::stod(v);
  } catch (const std::invalid_argument&) {
    throw ContractError("config: bad number for '" + key + "': " + v);
  } catch (const std::out_of_range& e) {
    throw ContractError("config: number out of range for '" + key + "': " + v +
                        " (" + e.what() + ")");
  }
}

}  // namespace

WorkflowConfig parse_workflow_config(std::istream& is) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    XL_REQUIRE(eq != std::string::npos,
               "config line " + std::to_string(line_no) + ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    XL_REQUIRE(!value.empty(), "config: empty value for '" + key + "'");

    if (key == "machine") {
      if (value == "titan") c.machine = cluster::titan();
      else if (value == "intrepid") c.machine = cluster::intrepid();
      else if (value == "test") c.machine = cluster::test_machine();
      else throw ContractError("config: unknown machine '" + value + "'");
    } else if (key == "mode") {
      if (value == "insitu") c.mode = Mode::StaticInSitu;
      else if (value == "intransit") c.mode = Mode::StaticInTransit;
      else if (value == "hybrid") c.mode = Mode::StaticHybrid;
      else if (value == "adaptive") c.mode = Mode::AdaptiveMiddleware;
      else if (value == "resource") c.mode = Mode::AdaptiveResource;
      else if (value == "global") c.mode = Mode::Global;
      else throw ContractError("config: unknown mode '" + value + "'");
    } else if (key == "analysis") {
      if (value == "isosurface") c.analysis_kind = AnalysisKind::Isosurface;
      else if (value == "statistics") c.analysis_kind = AnalysisKind::Statistics;
      else if (value == "subsetting") c.analysis_kind = AnalysisKind::Subsetting;
      else throw ContractError("config: unknown analysis '" + value + "'");
    } else if (key == "objective") {
      if (value == "time") c.objective = runtime::Objective::MinimizeTimeToSolution;
      else if (value == "movement") c.objective = runtime::Objective::MinimizeDataMovement;
      else if (value == "utilization")
        c.objective = runtime::Objective::MaximizeResourceUtilization;
      else throw ContractError("config: unknown objective '" + value + "'");
    } else if (key == "domain") {
      std::istringstream ss(value);
      int nx = 0, ny = 0, nz = 0;
      ss >> nx >> ny >> nz;
      XL_REQUIRE(nx > 0 && ny > 0 && nz > 0, "config: domain needs NX NY NZ");
      c.geometry.base_domain = mesh::Box::domain({nx, ny, nz});
    } else if (key == "factors") {
      std::istringstream ss(value);
      std::vector<int> factors;
      int f;
      while (ss >> f) factors.push_back(f);
      XL_REQUIRE(!factors.empty(), "config: factors needs at least one value");
      c.hints.factor_phases = {{0, factors}};
    } else if (key == "sim_cores") {
      c.sim_cores = to_int(value, key);
      c.geometry.nranks = c.sim_cores;
    } else if (key == "staging_cores") c.staging_cores = to_int(value, key);
    else if (key == "threads") {
      c.threads = to_int(value, key);
      XL_REQUIRE(c.threads >= 0, "config: threads must be >= 0");
    } else if (key == "thread_efficiency")
      c.costs.thread_efficiency = to_double(value, key);
    else if (key == "steps") c.steps = to_int(value, key);
    else if (key == "ncomp") c.ncomp = to_int(value, key);
    else if (key == "analysis_ncomp") c.analysis_ncomp = to_int(value, key);
    else if (key == "analysis_interval") c.analysis_interval = to_int(value, key);
    else if (key == "max_levels") c.geometry.max_levels = to_int(value, key);
    else if (key == "ref_ratio") c.geometry.ref_ratio = to_int(value, key);
    else if (key == "max_box_size") c.geometry.max_box_size = to_int(value, key);
    else if (key == "tile_size") c.geometry.tile_size = to_int(value, key);
    else if (key == "front_radius0") c.geometry.front_radius0 = to_double(value, key);
    else if (key == "front_speed") c.geometry.front_speed = to_double(value, key);
    else if (key == "front_thickness") c.geometry.front_thickness = to_double(value, key);
    else if (key == "front_decay") c.geometry.front_decay = to_double(value, key);
    else if (key == "front_decay_onset") c.geometry.front_decay_onset = to_int(value, key);
    else if (key == "blob_onset_step") c.geometry.blob_onset_step = to_int(value, key);
    else if (key == "num_blobs") c.geometry.num_blobs = to_int(value, key);
    else if (key == "blob_radius") c.geometry.blob_radius = to_double(value, key);
    else if (key == "seed")
      c.geometry.seed = static_cast<std::uint64_t>(to_int(value, key));
    else if (key == "active_cell_fraction")
      c.active_cell_fraction = to_double(value, key);
    else if (key == "staging_usable_fraction")
      c.staging_usable_fraction = to_double(value, key);
    else if (key == "sim_euler_flops")
      c.costs.sim_euler_flops_per_cell = to_double(value, key);
    else if (key == "sim_advect_flops")
      c.costs.sim_advect_flops_per_cell = to_double(value, key);
    else if (key == "mc_scan_flops")
      c.costs.mc_scan_flops_per_cell = to_double(value, key);
    else if (key == "mc_active_flops")
      c.costs.mc_active_flops_per_cell = to_double(value, key);
    else if (key == "euler") c.euler = to_int(value, key) != 0;
    else if (key == "sampling_period") {
      c.monitor.sampling_period = to_int(value, key);
      XL_REQUIRE(c.monitor.sampling_period >= 1,
                 "config: sampling_period must be >= 1, got " + value);
    } else if (key == "trigger") {
      if (value == "fixed") c.monitor.trigger.policy = runtime::TriggerPolicy::FixedPeriod;
      else if (value == "percentile")
        c.monitor.trigger.policy = runtime::TriggerPolicy::Percentile;
      else if (value == "hybrid") c.monitor.trigger.policy = runtime::TriggerPolicy::Hybrid;
      else
        throw ContractError("config: unknown trigger '" + value +
                            "' (expected fixed|percentile|hybrid)");
    } else if (key == "trigger_quantile") {
      c.monitor.trigger.quantile = to_double(value, key);
      XL_REQUIRE(c.monitor.trigger.quantile > 0.0 && c.monitor.trigger.quantile < 1.0,
                 "config: trigger_quantile must be in (0, 1), got " + value);
    } else if (key == "trigger_window") {
      c.monitor.trigger.window = to_int(value, key);
      XL_REQUIRE(c.monitor.trigger.window >= 2,
                 "config: trigger_window must be >= 2, got " + value);
    } else if (key == "trigger_sample_rate") {
      c.monitor.trigger.sample_rate = to_double(value, key);
      XL_REQUIRE(c.monitor.trigger.sample_rate > 0.0 &&
                     c.monitor.trigger.sample_rate <= 1.0,
                 "config: trigger_sample_rate must be in (0, 1], got " + value);
    } else if (key == "trigger_max_interval") {
      c.monitor.trigger.max_interval = to_int(value, key);
      XL_REQUIRE(c.monitor.trigger.max_interval >= 1,
                 "config: trigger_max_interval must be >= 1, got " + value);
    } else if (key == "trigger_seed")
      c.monitor.trigger.seed = static_cast<std::uint64_t>(to_int(value, key));
    else if (key == "faults")
      c.faults = runtime::parse_fault_spec(value);
    else if (key == "replication") {
      c.replication = to_int(value, key);
      XL_REQUIRE(c.replication >= 1, "config: replication must be >= 1");
    } else if (key == "lease_steps") {
      // Heartbeat lease window in steps; also settable inside the faults
      // spec as `lease=N`. Keep this key after `faults` in config files —
      // parsing a faults spec resets the whole FaultConfig.
      c.faults.lease_steps = to_int(value, key);
      XL_REQUIRE(c.faults.lease_steps >= 0, "config: lease_steps must be >= 0");
    } else
      throw ContractError("config: unknown key '" + key + "'");
  }
  c.memory_model.ncomp = c.ncomp;
  return c;
}

WorkflowConfig parse_workflow_config_file(const std::string& path) {
  std::ifstream is(path);
  XL_REQUIRE(is.good(), "cannot open config file: " + path);
  return parse_workflow_config(is);
}

}  // namespace xl::workflow
