// The execution substrate behind the step pipeline: the mechanism that
// advances the paper's two partition clocks (eq. 4's simulation clock and
// eq. 5's staging clock) and accounts the staged-buffer memory that couples
// them. Two implementations exist:
//
//  * AnalyticSubstrate — the closed-form clock arithmetic (a pair of doubles
//    plus a FIFO of staged buffers), fastest for parameter sweeps;
//  * EventQueueSubstrate — the same semantics expressed as events on the
//    deterministic cluster::EventQueue, the seam where finer-grained machine
//    events (per-message transfers, per-core contention) plug in.
//
// Both produce identical timelines on identical inputs; a regression test
// asserts it. The pipeline, the machine-scale experiment, and the benches
// all run the same phases over whichever substrate the caller supplies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <utility>

#include "cluster/event_queue.hpp"
#include "common/buffer_pool.hpp"

namespace xl::workflow {

/// Flat monotonic-id ring of live staged-buffer bytes. Buffers are appended
/// with consecutive ids (the insertion order IS the FIFO order — the
/// invariant the shed arithmetic depends on); release tombstones an entry in
/// place, and the window compacts forward once the dead prefix dominates, so
/// steady-state lookups are one subtraction and one index instead of a map
/// walk, with zero node allocations. Note 0 is a LIVE value (a fully shed
/// buffer keeps its slot until its release event fires), distinct from the
/// tombstone.
class StagedLedger {
 public:
  static constexpr std::size_t kTombstone = std::numeric_limits<std::size_t>::max();

  /// Record `bytes` as the next staged buffer; returns its monotonic id.
  std::uint64_t append(std::size_t bytes) {
    entries_.push_back(bytes);
    return base_id_ + static_cast<std::uint64_t>(entries_.size()) - 1;
  }

  /// Live-entry lookup: nullptr once the buffer has been released. The
  /// pointer stays valid until the next append/release.
  std::size_t* find(std::uint64_t id) {
    if (id < base_id_) return nullptr;
    const std::size_t idx = static_cast<std::size_t>(id - base_id_);
    if (idx >= entries_.size() || entries_[idx] == kTombstone) return nullptr;
    return &entries_[idx];
  }

  /// Tombstone `id` and advance the live window past any dead prefix.
  void release(std::uint64_t id) {
    std::size_t* p = find(id);
    if (p == nullptr) return;
    *p = kTombstone;
    while (head_ < entries_.size() && entries_[head_] == kTombstone) ++head_;
    if (head_ == entries_.size()) {
      base_id_ += static_cast<std::uint64_t>(entries_.size());
      entries_.clear();
      head_ = 0;
    } else if (head_ >= kCompactAt && head_ * 2 >= entries_.size()) {
      compact();
    }
  }

  /// Visit live entries in ascending id order (the FIFO shed order) with a
  /// mutable byte count — `fn(id, bytes&)`.
  template <typename Fn>
  void for_each_live(Fn&& fn) {
    for (std::size_t i = head_; i < entries_.size(); ++i) {
      if (entries_[i] == kTombstone) continue;
      fn(base_id_ + static_cast<std::uint64_t>(i), entries_[i]);
    }
  }

  std::size_t live_span() const noexcept { return entries_.size() - head_; }

 private:
  static constexpr std::size_t kCompactAt = 64;

  void compact() {
    const std::size_t live = entries_.size() - head_;
    std::memmove(entries_.data(), entries_.data() + head_,
                 live * sizeof(std::size_t));
    entries_.resize(live);
    base_id_ += static_cast<std::uint64_t>(head_);
    head_ = 0;
  }

  /// Engine pool, not the data-path pool: ledger bookkeeping must not show
  /// up in the payload pool telemetry stamped into workflow events.
  ArenaVec<std::size_t> entries_{BufferPool::engine()};  ///< bytes per id, offset by base_id_.
  std::uint64_t base_id_ = 0;  ///< id of entries_[0].
  std::size_t head_ = 0;       ///< first live index (tombstone-free prefix end).
};

/// What a staging-server loss cost the in-flight staged buffers.
struct ShedReport {
  std::size_t bytes = 0;    ///< staged bytes dropped.
  std::size_t buffers = 0;  ///< staged buffers that lost data.
};

class ExecutionSubstrate {
 public:
  virtual ~ExecutionSubstrate() = default;

  virtual const char* name() const noexcept = 0;

  /// Simulation-partition clock (eq. 4).
  virtual double sim_now() const noexcept = 0;
  /// Time the staging partition finishes its current backlog (eq. 5).
  virtual double staging_free_at() const noexcept = 0;
  /// Bytes currently cached in the staging area (released when the
  /// corresponding in-transit analysis completes).
  virtual std::size_t staging_mem_used() const noexcept = 0;

  /// Advance the simulation clock: sim steps, reductions, in-situ analyses,
  /// adaptation overhead, and transfer-initiation costs all accrue here.
  virtual void advance_sim(double seconds) = 0;

  /// Release staged buffers whose in-transit analysis completed by the
  /// current simulation clock. Called once per step before the monitor
  /// snapshot — matching when the simulation partition actually observes
  /// staging state, rather than eagerly on every clock advance.
  virtual void release_completed() = 0;

  /// Block the simulation until the staging area can admit `bytes` more on
  /// top of what it holds (the paper's T_insitu_wait); gives up when no
  /// staged buffer remains to wait for. Returns the seconds waited.
  virtual double wait_for_staging_memory(std::size_t bytes, std::size_t capacity) = 0;

  /// Hand `bytes` arriving at `arrive` to the staging partition; the buffer
  /// occupies staging memory until its `analysis_seconds` of in-transit work
  /// completes (FIFO behind the existing backlog). Returns completion time.
  virtual double enqueue_intransit(double arrive, double analysis_seconds,
                                   std::size_t bytes) = 0;

  /// Fault path: staging servers died, losing `lost_fraction` of every
  /// in-flight staged buffer (1.0 = the whole partition went down, which also
  /// abandons the backlog). Buffers shrink in FIFO order with identical
  /// arithmetic on both substrates so faulted timelines stay bit-identical.
  virtual ShedReport shed_staged(double lost_fraction) = 0;

  /// Drain all outstanding staging work and return the time-to-solution:
  /// max of the two partition clocks (eq. 6).
  virtual double finish() = 0;
};

/// Closed-form analytic clocks: the original CoupledWorkflow timeline state,
/// extracted verbatim.
class AnalyticSubstrate final : public ExecutionSubstrate {
 public:
  const char* name() const noexcept override { return "analytic"; }
  double sim_now() const noexcept override { return t_sim_; }
  double staging_free_at() const noexcept override { return staging_free_at_; }
  std::size_t staging_mem_used() const noexcept override { return mem_used_; }

  void advance_sim(double seconds) override { t_sim_ += seconds; }

  void release_completed() override { release_until(t_sim_); }

  double wait_for_staging_memory(std::size_t bytes, std::size_t capacity) override;

  double enqueue_intransit(double arrive, double analysis_seconds,
                           std::size_t bytes) override;

  ShedReport shed_staged(double lost_fraction) override;

  double finish() override;

 private:
  void release_until(double t);

  double t_sim_ = 0.0;
  double staging_free_at_ = 0.0;
  std::size_t mem_used_ = 0;
  std::deque<std::pair<double, std::size_t>> staged_;  ///< (release time, bytes).
};

/// The same timeline driven through the deterministic discrete-event engine:
/// each staged buffer's release is an event; waits and drains run the queue.
class EventQueueSubstrate final : public ExecutionSubstrate {
 public:
  const char* name() const noexcept override { return "discrete-event"; }
  double sim_now() const noexcept override { return t_sim_; }
  double staging_free_at() const noexcept override { return staging_free_at_; }
  std::size_t staging_mem_used() const noexcept override { return mem_used_; }

  void advance_sim(double seconds) override { t_sim_ += seconds; }

  void release_completed() override { queue_.run_until(t_sim_); }

  double wait_for_staging_memory(std::size_t bytes, std::size_t capacity) override;

  double enqueue_intransit(double arrive, double analysis_seconds,
                           std::size_t bytes) override;

  ShedReport shed_staged(double lost_fraction) override;

  double finish() override;

  const cluster::EventQueue& queue() const noexcept { return queue_; }

 private:
  cluster::EventQueue queue_;
  double t_sim_ = 0.0;
  double staging_free_at_ = 0.0;
  std::size_t mem_used_ = 0;
  /// Live bytes per staged buffer, keyed by insertion id. Ids are handed out
  /// monotonically, and the ledger iterates in ascending id order — THAT is
  /// the FIFO invariant the shed arithmetic relies on (not any property of
  /// the container). Release events look bytes up here rather than capturing
  /// them, so a shed can shrink a buffer after its release was scheduled.
  StagedLedger staged_bytes_;
};

}  // namespace xl::workflow
