// The coupled simulation + visualization workflow of the paper's §5,
// executed on the discrete-event cluster substrate: a Chombo-style AMR
// simulation (geometry evolved by amr::SyntheticAmrEvolution, priced by the
// cost model) whose per-step output is analyzed by the marching-cubes
// visualization service either in-situ (blocking the simulation partition)
// or in-transit (staged asynchronously onto M staging cores).
//
// Timeline semantics, matching the paper's formulation:
//  * T_sum_insitu  (eq. 4) accrues on the simulation-side clock: sim steps,
//    in-situ reductions, in-situ analyses, and T_insitu_wait — the blocking
//    wait when the staging area cannot accept data (memory full).
//  * T_sum_intransit (eq. 5) accrues on the staging-side clock: in-transit
//    analyses plus T_intransit_wait (staging idle).
//  * Time-to-solution = max of the two clocks at the end (eq. 6).
//  * Transfers are asynchronous (Fabric): the simulation only pays an
//    initiation cost, the data arrives a transfer-time later.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "amr/memory_model.hpp"
#include "amr/synthetic.hpp"
#include "cluster/cost_model.hpp"
#include "cluster/trace.hpp"
#include "runtime/adaptation_engine.hpp"
#include "runtime/fault.hpp"
#include "runtime/monitor.hpp"
#include "runtime/state.hpp"

namespace xl::workflow {

/// Placement strategy of a run — the bars of Figs. 7 and 10.
enum class Mode {
  StaticInSitu,        ///< every analysis on the simulation cores.
  StaticInTransit,     ///< every analysis on the (fixed-size) staging area.
  StaticHybrid,        ///< every analysis split across both partitions (§3's
                       ///< "hybrid (in-situ + in-transit)" placement): the
                       ///< in-transit share is sized to hide under the next
                       ///< step, the rest runs in-situ.
  AdaptiveMiddleware,  ///< middleware layer only — the paper's "local adaptation".
  AdaptiveResource,    ///< resource layer only, placement fixed in-transit (Fig. 9).
  Global,              ///< coordinated cross-layer adaptation (§5.2.4).
};

const char* mode_name(Mode mode) noexcept;

/// Which analysis service the workflow couples to. The paper's evaluation
/// uses marching-cubes visualization; its closing discussion claims the
/// approach extends to other communication-free analyses — descriptive
/// statistics and data subsetting — which are selectable here.
enum class AnalysisKind { Isosurface, Statistics, Subsetting };

const char* analysis_kind_name(AnalysisKind kind) noexcept;

struct WorkflowConfig {
  cluster::MachineSpec machine;
  cluster::KernelCosts costs;
  int sim_cores = 2048;       ///< N.
  int staging_cores = 128;    ///< preallocated M (the 16:1 pool).
  int steps = 50;
  /// Per-rank worker threads for the analysis kernels (the CLI `--threads`
  /// knob). 0 (default) models the serial calibrated kernels and leaves the
  /// timeline byte-identical; N > 1 divides the analysis kernel times by
  /// N^KernelCosts::thread_efficiency, which the Monitor's T_insitu estimate
  /// (eq. 7) then reflects through the recorded samples.
  int threads = 0;
  Mode mode = Mode::AdaptiveMiddleware;
  bool euler = false;         ///< PolytropicGas (true) or AdvectionDiffusion.
  int ncomp = 1;
  /// Components the analysis actually consumes (the visualization service
  /// extracts isosurfaces of ONE variable, e.g. density, even when the solver
  /// carries five). 0 means "all of ncomp".
  int analysis_ncomp = 0;

  amr::SyntheticAmrConfig geometry;
  amr::MemoryModelConfig memory_model;

  /// Analysis input: refined levels only (the regions scientists visualize);
  /// level 0 is included only when the hierarchy has a single level.
  bool analyze_refined_only = true;
  /// Optional regions of interest (base-level index space): when non-empty,
  /// the analysis consumes only the refined cells intersecting these boxes
  /// (the paper's "limit the analytics to interesting regions", sec. 2).
  std::vector<mesh::Box> regions_of_interest;
  /// Temporal resolution: analyze every k-th step (1 = every step). The
  /// application layer's other knob besides the spatial factor (sec. 3).
  int analysis_interval = 1;
  /// Temporal adaptation: when even the largest acceptable factor cannot fit
  /// memory (AppDecision::memory_constrained), skip this step's analysis
  /// instead of thrashing — trading temporal for spatial resolution.
  bool skip_analysis_when_constrained = false;
  /// Fraction of analyzed cells that intersect the isosurface (drives the
  /// triangulation term of the marching-cubes cost).
  double active_cell_fraction = 0.02;
  /// Analysis service to couple (marching cubes by default).
  AnalysisKind analysis_kind = AnalysisKind::Isosurface;

  /// Fraction of a staging core's memory usable for staged data (the rest is
  /// OS + DataSpaces runtime + communication buffers).
  double staging_usable_fraction = 0.2;

  /// Adaptation runtime settings (used by the Adaptive*/Global modes).
  runtime::MonitorConfig monitor;
  runtime::UserHints hints;
  runtime::Objective objective = runtime::Objective::MinimizeTimeToSolution;
  runtime::PlanOrder plan_order = runtime::PlanOrder::LeavesThenRoots;
  /// Fixed per-adaptation engine overhead charged to the simulation clock
  /// (the policies are closed-form; the paper reports end-to-end overhead,
  /// adaptation included, below 6% of simulation time).
  double adaptation_overhead_seconds = 1.0e-4;

  /// Fault injection (disabled by default: the paper's always-up staging).
  /// When enabled, transfers can drop/corrupt and retry with backoff, staging
  /// servers can crash and recover on schedule, and stragglers slow the
  /// in-transit partition — all deterministically from the fault seed.
  runtime::FaultConfig faults;

  /// Copies of every staged object (durability layer; 1 = the paper's
  /// unreplicated shared space). k > 1 divides the usable staging capacity by
  /// k (every byte occupies k replicas), adds a (k-1)-copy fan-out to each
  /// staged transfer, and makes an object survive any < k overlapping server
  /// crashes; lost replicas are re-created by background anti-entropy repair
  /// whose copy traffic competes with workflow traffic in the staging backlog.
  int replication = 1;
};

struct StepRecord {
  int step = 0;
  std::size_t total_cells = 0;
  std::size_t analyzed_cells = 0;  ///< before reduction.
  std::size_t raw_bytes = 0;       ///< S_data before reduction.
  int factor = 1;                  ///< application-layer X.
  std::size_t moved_bytes = 0;     ///< 0 for in-situ steps.
  runtime::Placement placement = runtime::Placement::InSitu;
  int intransit_cores = 0;         ///< M allocated this step.
  double sim_seconds = 0.0;        ///< T_i_sim.
  double reduce_seconds = 0.0;
  double insitu_analysis_seconds = 0.0;
  double intransit_analysis_seconds = 0.0;
  double wait_seconds = 0.0;       ///< T_insitu_wait (sim blocked on staging).
  double window_seconds = 0.0;     ///< step start -> next step start.
  bool analysis_skipped = false;   ///< temporal adaptation skipped this step.
  // Policy inputs at decision time (diagnostics for the benches/tests).
  double backlog_seconds = 0.0;    ///< staging backlog the monitor reported.
  /// Middleware trigger case (if adaptive); None for static placements.
  runtime::DecisionReason decision_reason = runtime::DecisionReason::None;
  // Fault-layer diagnostics (all zero when fault injection is disabled).
  int transfer_retries = 0;        ///< retry attempts this step's transfer took.
  bool transfer_failed = false;    ///< transfer exhausted retries; analysis ran in-situ.
  int servers_down = 0;            ///< staging servers DECLARED down this step.
  int servers_suspected = 0;       ///< crashed but still inside the lease window.
};

struct WorkflowResult {
  std::vector<StepRecord> steps;
  double end_to_end_seconds = 0.0;
  double pure_sim_seconds = 0.0;   ///< sum of T_i_sim only.
  double overhead_seconds = 0.0;   ///< end-to-end minus pure sim.
  std::size_t bytes_moved = 0;
  int insitu_count = 0;
  int intransit_count = 0;
  int skipped_count = 0;           ///< steps whose analysis was skipped.
  /// How often each layer's mechanism executed (the §5.2.4 check that the
  /// global run "employs all the adaptations at these three layers").
  int application_adaptations = 0;
  int resource_adaptations = 0;
  int middleware_adaptations = 0;
  cluster::StagingTrace staging_trace;
  double utilization_efficiency = 0.0;  ///< eq. 12.
  // Fault/recovery accounting (all zero when fault injection is disabled).
  int faults_injected = 0;         ///< fault events that fired (crash/straggler onsets).
  int recoveries = 0;              ///< recovery transitions observed.
  int transfer_retries = 0;        ///< total transfer retry attempts.
  int transfer_failures = 0;       ///< transfers that exhausted their retries.
  int degraded_insitu_count = 0;   ///< steps forced in-situ by staging faults.
  std::size_t dropped_bytes = 0;   ///< staged bytes lost to server crashes.
  // Replication/lease accounting (all zero when replication = 1, lease = 0).
  int server_suspicions = 0;       ///< suspicion onsets (crash seen, lease not expired).
  int repairs_scheduled = 0;       ///< anti-entropy re-replication passes enqueued.
  int read_repairs = 0;            ///< staged reads that consumed pending repair.
  std::size_t repair_bytes = 0;      ///< re-replication copy traffic scheduled.
  std::size_t replicated_bytes = 0;  ///< replica copies fanned out on staging puts.
  // Trigger accounting (all zero under the default FixedPeriod policy).
  int triggers_fired = 0;          ///< steps where the trigger armed adaptation.
  int steps_suppressed = 0;        ///< steps the trigger kept on stale decisions.
};

class ExecutionSubstrate;
class WorkflowObserver;

class CoupledWorkflow {
 public:
  explicit CoupledWorkflow(const WorkflowConfig& config);

  /// Run the step pipeline on the closed-form analytic substrate.
  WorkflowResult run();

  /// Run the same pipeline on a caller-supplied execution substrate (e.g.
  /// the discrete-event EventQueueSubstrate the machine-scale experiment
  /// uses). Both substrates produce identical timelines.
  WorkflowResult run_on(ExecutionSubstrate& substrate);

  /// Attach an observer receiving the structured event stream of subsequent
  /// runs (step-begin / decision / transfer / analysis / step-end). The
  /// observer must outlive the run; nullptr detaches.
  void set_observer(WorkflowObserver* observer) noexcept { observer_ = observer; }

  const WorkflowConfig& config() const noexcept { return config_; }

 private:
  WorkflowConfig config_;
  WorkflowObserver* observer_ = nullptr;
};

}  // namespace xl::workflow
