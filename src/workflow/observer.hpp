// The workflow's structured event stream (paper Fig. 2's "Monitor" feed,
// turned outward): every phase of the step pipeline, the AdaptationEngine,
// and the staging path emit flat WorkflowEvent records through a
// WorkflowObserver. trace_io, xlayer_cli, and the figure benches all consume
// this one stream instead of each re-deriving per-step diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/middleware_policy.hpp"
#include "runtime/state.hpp"

namespace xl::workflow {

enum class EventKind {
  RunBegin,   ///< before the first step.
  StepBegin,  ///< simulation advanced one step (seconds = T_i_sim).
  Decision,   ///< adaptation engine ran (factor/cores/placement/reason).
  Transfer,   ///< data handed to staging (bytes, seconds = wire time).
  Analysis,   ///< analysis charged to a partition (placement, seconds).
  StepEnd,    ///< step finished (final placement, factor, moved bytes).
  RunEnd,     ///< timeline drained (seconds = end-to-end, eq. 6).
  Fault,      ///< injected fault fired (fault kind, servers_down, bytes lost).
  Retry,      ///< transfer attempt failed; retrying after backoff.
  Recovery,   ///< staging partition returned to full health.
  // Durability stream (replication > 1 and/or lease_steps > 0 only).
  ServerSuspected,  ///< heartbeats missed but lease not expired yet.
  ReplicaLost,      ///< declared crash removed staged replicas (bytes = replica bytes).
  RepairScheduled,  ///< anti-entropy re-replication queued on the staging cores.
  ReplicaCreated,   ///< staged put fanned out its k-1 secondary copies.
  ReadRepair,       ///< a staged read re-materialized missing replicas.
  // Trigger stream (adaptive modes under a non-FixedPeriod trigger policy).
  TriggerFired,      ///< indicator crossed the trailing-quantile threshold.
  TriggerSuppressed, ///< quiescent step; adaptation skipped this step.
};

const char* event_kind_name(EventKind kind) noexcept;

/// One flat record of the stream. Only the fields relevant to `kind` are
/// meaningful; the rest keep their defaults so the record stays trivially
/// copyable and CSV-serializable.
struct WorkflowEvent {
  EventKind kind = EventKind::StepBegin;
  int step = -1;
  double sim_clock = 0.0;      ///< simulation-partition clock (eq. 4) at emission.
  double staging_clock = 0.0;  ///< staging-partition clock (eq. 5) at emission.
  runtime::Placement placement = runtime::Placement::InSitu;
  runtime::DecisionReason reason = runtime::DecisionReason::None;
  int factor = 1;
  int intransit_cores = 0;
  bool app_adapted = false;
  bool resource_adapted = false;
  bool middleware_adapted = false;
  std::size_t cells = 0;        ///< cells the payload covers (kind-specific).
  std::size_t bytes = 0;        ///< payload size (Transfer/StepEnd).
  double seconds = 0.0;         ///< kind-specific duration (see EventKind).
  double wait_seconds = 0.0;    ///< admission wait preceding a Transfer.
  bool skipped = false;         ///< StepEnd: temporal adaptation skipped analysis.
  // Fault-stream fields (Fault/Retry/Recovery; defaults otherwise).
  runtime::FaultKind fault = runtime::FaultKind::None;
  int attempt = 0;              ///< Retry: 0-based attempt that just failed.
  double backoff_seconds = 0.0; ///< Retry: wait before the next attempt.
  int servers_down = 0;         ///< Fault/Recovery: staging servers down after it.
  int servers_suspected = 0;    ///< ServerSuspected/StepEnd: in-lease crashed servers.
  int replicas = 0;             ///< Replica*/ReadRepair: copies involved.
  // Trigger-stream fields (TriggerFired/TriggerSuppressed carry the per-step
  // evaluation; StepEnd/RunEnd carry the cumulative counters; zero for runs
  // on the default FixedPeriod cadence).
  double indicator = 0.0;         ///< max normalized indicator this step.
  double trigger_threshold = 0.0; ///< trailing-quantile threshold tested.
  int triggers_fired = 0;         ///< cumulative fired sampling steps.
  int steps_suppressed = 0;       ///< cumulative suppressed steps.
  // BufferPool telemetry (StepEnd/RunEnd; zero otherwise). Deltas of the
  // process-global pool counters since this run's RunBegin — deltas, not
  // absolutes, so a run's event log is independent of whatever pool traffic
  // preceded it (and stays byte-identical across pool on/off sweeps when the
  // run itself allocates nothing, as the modeled pipeline does).
  std::uint64_t pool_hits = 0;          ///< recycled acquires during the run.
  std::uint64_t pool_misses = 0;        ///< heap-backed acquires during the run.
  std::uint64_t pool_releases = 0;      ///< buffers returned to the pool.
  std::uint64_t pool_copied_bytes = 0;  ///< payload bytes deep-copied.
};

class WorkflowObserver {
 public:
  virtual ~WorkflowObserver() = default;
  virtual void on_event(const WorkflowEvent& event) = 0;

  /// Batched delivery: `events` arrive in exact emission order (the pipeline
  /// flushes once per step instead of calling out per event). The default
  /// forwards each event to on_event, so observers that never override this
  /// see the identical per-event sequence they always did.
  virtual void on_events(std::span<const WorkflowEvent> events) {
    for (const WorkflowEvent& e : events) on_event(e);
  }
};

/// Observer that records the stream in memory — the default consumer used by
/// the CLI, the benches, and the tests.
class EventLog final : public WorkflowObserver {
 public:
  void on_event(const WorkflowEvent& event) override { events_.push_back(event); }

  void on_events(std::span<const WorkflowEvent> events) override {
    events_.insert(events_.end(), events.begin(), events.end());
  }

  const std::vector<WorkflowEvent>& events() const noexcept { return events_; }

  std::size_t count(EventKind kind) const noexcept {
    std::size_t n = 0;
    for (const WorkflowEvent& e : events_) n += e.kind == kind;
    return n;
  }

  void clear() noexcept { events_.clear(); }

 private:
  std::vector<WorkflowEvent> events_;
};

/// Fan-out to several observers (e.g. a live printer plus an EventLog).
class ObserverList final : public WorkflowObserver {
 public:
  void add(WorkflowObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  void on_event(const WorkflowEvent& event) override {
    for (WorkflowObserver* o : observers_) o->on_event(event);
  }

  void on_events(std::span<const WorkflowEvent> events) override {
    for (WorkflowObserver* o : observers_) o->on_events(events);
  }

 private:
  std::vector<WorkflowObserver*> observers_;
};

}  // namespace xl::workflow
