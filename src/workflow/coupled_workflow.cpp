#include "workflow/coupled_workflow.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"

namespace xl::workflow {

using runtime::Placement;

const char* analysis_kind_name(AnalysisKind kind) noexcept {
  switch (kind) {
    case AnalysisKind::Isosurface: return "isosurface";
    case AnalysisKind::Statistics: return "statistics";
    case AnalysisKind::Subsetting: return "subsetting";
  }
  return "?";
}

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::StaticInSitu: return "static-insitu";
    case Mode::StaticInTransit: return "static-intransit";
    case Mode::StaticHybrid: return "static-hybrid";
    case Mode::AdaptiveMiddleware: return "adaptive-middleware";
    case Mode::AdaptiveResource: return "adaptive-resource";
    case Mode::Global: return "global-crosslayer";
  }
  return "?";
}

namespace {

/// Combined per-rank cell imbalance across all levels of one step.
double step_imbalance(const amr::SyntheticStep& geom, int nranks) {
  std::vector<std::int64_t> per_rank(static_cast<std::size_t>(nranks), 0);
  for (const auto& layout : geom.levels) {
    const auto cells = layout.cells_per_rank();
    for (std::size_t r = 0; r < cells.size(); ++r) per_rank[r] += cells[r];
  }
  std::int64_t total = 0, peak = 0;
  for (std::int64_t c : per_rank) {
    total += c;
    peak = std::max(peak, c);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(nranks);
  return std::max(1.0, static_cast<double>(peak) / mean);
}

/// Cells the visualization service consumes this step. When regions of
/// interest are set, only cells inside them count (ROI boxes are given in
/// base-level coordinates and refined to each level's index space).
std::size_t analyzed_cells_of(const amr::SyntheticStep& geom, bool refined_only,
                              const std::vector<mesh::Box>& roi, int ref_ratio) {
  const std::size_t first_level = refined_only && geom.levels.size() > 1 ? 1 : 0;
  if (roi.empty()) {
    std::int64_t cells = 0;
    for (std::size_t l = first_level; l < geom.levels.size(); ++l) {
      cells += geom.cells_per_level[l];
    }
    return static_cast<std::size_t>(cells);
  }
  std::int64_t cells = 0;
  int ratio = 1;
  for (std::size_t l = 0; l < geom.levels.size(); ++l) {
    if (l >= first_level) {
      for (const mesh::Box& b : geom.levels[l].boxes()) {
        for (const mesh::Box& r : roi) {
          cells += (b & r.refine(ratio)).num_cells();
        }
      }
    }
    ratio *= ref_ratio;
  }
  return static_cast<std::size_t>(cells);
}

}  // namespace

CoupledWorkflow::CoupledWorkflow(const WorkflowConfig& config) : config_(config) {
  XL_REQUIRE(config.sim_cores >= 1, "need simulation cores");
  XL_REQUIRE(config.staging_cores >= 1, "need staging cores");
  XL_REQUIRE(config.steps >= 1, "need at least one step");
  XL_REQUIRE(config.ncomp >= 1, "need at least one component");
  XL_REQUIRE(config.staging_usable_fraction > 0.0 && config.staging_usable_fraction <= 1.0,
             "staging usable fraction in (0,1]");
}

WorkflowResult CoupledWorkflow::run() {
  const amr::SyntheticAmrEvolution evolution(config_.geometry);
  const cluster::CostModel cost(config_.machine, config_.costs);
  runtime::Monitor monitor(config_.monitor);

  const int cores_per_node = config_.machine.cores_per_node;
  const int sim_nodes = std::max(1, config_.sim_cores / cores_per_node);
  auto staging_nodes = [&](int cores) { return std::max(1, cores / cores_per_node); };
  const std::size_t usable_per_core = static_cast<std::size_t>(
      config_.staging_usable_fraction *
      static_cast<double>(config_.machine.mem_per_core_bytes()));
  auto staging_capacity = [&](int cores) {
    return usable_per_core * static_cast<std::size_t>(cores);
  };

  // --- Adaptation engine (adaptive modes only). -----------------------------
  runtime::EngineHooks hooks;
  hooks.analysis_seconds = [&](Placement p, std::size_t cells, int cores) {
    return monitor.estimate_analysis_seconds(p, cells, cores);
  };
  hooks.send_seconds = [&](std::size_t bytes) {
    // Asynchronous initiation on the sender side: the paper's T_sd.
    return cost.transfer_seconds(bytes, sim_nodes,
                                 staging_nodes(config_.staging_cores));
  };
  hooks.recv_seconds = [&](std::size_t bytes, int cores) {
    return cost.transfer_seconds(bytes, sim_nodes, staging_nodes(cores));
  };
  hooks.next_sim_seconds = [&](std::size_t cells) {
    return monitor.estimate_sim_seconds(cells);
  };
  // In-situ analysis memory is a PER-RANK quantity (each rank triangulates
  // its own boxes): the worst rank holds data_bytes * imbalance / N, and
  // marching cubes needs roughly that again for triangle buffers.
  double current_imbalance = 1.0;
  hooks.insitu_analysis_mem = [&](std::size_t bytes) {
    return static_cast<std::size_t>(2.0 * static_cast<double>(bytes) *
                                    current_imbalance /
                                    static_cast<double>(config_.sim_cores));
  };

  runtime::EngineConfig engine_config;
  engine_config.preferences.objective = config_.objective;
  engine_config.hints = config_.hints;
  engine_config.plan_order = config_.plan_order;
  engine_config.enable_application = config_.mode == Mode::Global;
  engine_config.enable_middleware =
      config_.mode == Mode::AdaptiveMiddleware || config_.mode == Mode::Global;
  engine_config.enable_resource =
      config_.mode == Mode::AdaptiveResource || config_.mode == Mode::Global;
  engine_config.min_intransit_cores = 1;
  engine_config.max_intransit_cores = config_.staging_cores;
  if (config_.mode == Mode::AdaptiveResource || config_.mode == Mode::Global) {
    // The resource layer may grow the staging area beyond the preallocation
    // (Fig. 9's adaptive curve crosses the static line).
    engine_config.max_intransit_cores = 2 * config_.staging_cores;
  }
  const runtime::AdaptationEngine engine(engine_config, hooks);

  // --- Timeline state. -------------------------------------------------------
  double t_sim = 0.0;           // simulation-partition clock (eq. 4).
  double staging_free_at = 0.0; // staging-partition clock (eq. 5).
  double pure_sim = 0.0;
  std::size_t staging_mem_used = 0;
  std::deque<std::pair<double, std::size_t>> staged;  // (release time, bytes)
  auto release_until = [&](double t) {
    while (!staged.empty() && staged.front().first <= t) {
      staging_mem_used -= staged.front().second;
      staged.pop_front();
    }
  };

  auto analysis_seconds = [&](std::size_t cells, std::size_t active, int cores) {
    switch (config_.analysis_kind) {
      case AnalysisKind::Isosurface:
        return cost.marching_cubes_seconds(cells, active, cores);
      case AnalysisKind::Statistics:
        return cost.statistics_seconds(cells, cores);
      case AnalysisKind::Subsetting:
        return cost.subsetting_seconds(cells, cores);
    }
    XL_UNREACHABLE("unknown analysis kind");
  };

  WorkflowResult result;
  std::vector<double> step_starts;
  int cur_factor = 1;
  int cur_cores = config_.staging_cores;
  const char* cur_reason = "";
  bool last_app_constrained = false;
  Placement cur_placement = config_.mode == Mode::StaticInSitu
                                ? Placement::InSitu
                                : Placement::InTransit;

  const bool adaptive = config_.mode == Mode::AdaptiveMiddleware ||
                        config_.mode == Mode::AdaptiveResource ||
                        config_.mode == Mode::Global;
  const bool hybrid = config_.mode == Mode::StaticHybrid;

  for (int step = 0; step < config_.steps; ++step) {
    const amr::SyntheticStep geom = evolution.at(step);
    const auto total_cells = static_cast<std::size_t>(geom.total_cells);
    const double imbalance = step_imbalance(geom, config_.sim_cores);
    current_imbalance = imbalance;

    // 1. Simulation advances one step on all N cores.
    const double t_step_start = t_sim;
    step_starts.push_back(t_step_start);
    const double sim_seconds =
        cost.sim_step_seconds(total_cells, config_.sim_cores, config_.euler) * imbalance;
    t_sim += sim_seconds;
    pure_sim += sim_seconds;
    monitor.record_sim_step(step, sim_seconds, total_cells);

    const std::size_t analyzed = analyzed_cells_of(
        geom, config_.analyze_refined_only, config_.regions_of_interest,
        config_.geometry.ref_ratio);
    const int analysis_ncomp =
        config_.analysis_ncomp > 0 ? config_.analysis_ncomp : config_.ncomp;
    const std::size_t raw_bytes =
        analyzed * static_cast<std::size_t>(analysis_ncomp) * sizeof(double);

    release_until(t_sim);

    // 2. Monitor snapshot.
    runtime::OperationalState state;
    state.step = step;
    state.now_seconds = t_sim;
    state.sim_cells = total_cells;
    state.raw_cells = analyzed;
    state.raw_bytes = raw_bytes;
    state.ncomp = analysis_ncomp;
    state.sim_cores = config_.sim_cores;
    {
      const auto peaks = amr::per_rank_peak_bytes(geom.levels, config_.memory_model);
      const std::size_t worst = *std::max_element(peaks.begin(), peaks.end());
      const std::size_t cap = config_.machine.mem_per_core_bytes();
      state.insitu_mem_available = worst >= cap ? 0 : cap - worst;
    }
    state.intransit_cores = cur_cores;
    state.intransit_mem_per_core = usable_per_core;
    {
      const std::size_t cap = staging_capacity(cur_cores);
      state.intransit_mem_free = staging_mem_used >= cap ? 0 : cap - staging_mem_used;
    }
    state.intransit_backlog_seconds = std::max(0.0, staging_free_at - t_sim);
    state.last_sim_step_seconds = sim_seconds;

    // Temporal resolution: only every analysis_interval-th step is analyzed.
    const bool scheduled = step % std::max(1, config_.analysis_interval) == 0;

    // 3. Adaptation (on sampling steps; other steps reuse the last decisions).
    if (adaptive && monitor.should_sample(step)) {
      if (config_.monitor.estimator == runtime::EstimatorKind::Oracle) {
        const auto active = static_cast<std::size_t>(
            config_.active_cell_fraction * static_cast<double>(analyzed));
        monitor.set_oracle(
            analysis_seconds(analyzed, active, config_.sim_cores) * imbalance,
            analysis_seconds(analyzed, active, cur_cores));
      }
      const runtime::EngineDecisions dec = engine.adapt(state);
      result.application_adaptations += dec.app.has_value();
      result.resource_adaptations += dec.resource.has_value();
      result.middleware_adaptations += dec.middleware.has_value();
      if (dec.app) {
        cur_factor = dec.app->factor;
        last_app_constrained = dec.app->memory_constrained;
      }
      if (dec.resource) cur_cores = dec.resource->cores;
      if (dec.middleware) {
        cur_placement = dec.middleware->placement;
        cur_reason = dec.middleware->reason;
      }
      if (config_.mode == Mode::AdaptiveResource) cur_placement = Placement::InTransit;
      t_sim += config_.adaptation_overhead_seconds;
    }

    const bool app_constrained = last_app_constrained;

    StepRecord rec;
    rec.backlog_seconds = state.intransit_backlog_seconds;
    rec.decision_reason = cur_reason;
    rec.step = step;
    rec.total_cells = total_cells;
    rec.analyzed_cells = analyzed;
    rec.raw_bytes = raw_bytes;
    rec.factor = cur_factor;
    rec.intransit_cores = cur_cores;
    rec.sim_seconds = sim_seconds;

    // Temporal adaptation gate: skipped steps run neither the reduction nor
    // the analysis (off-schedule, or memory-constrained with
    // skip_analysis_when_constrained set).
    const bool do_analysis =
        scheduled && analyzed > 0 &&
        !(config_.skip_analysis_when_constrained && app_constrained);
    if (!do_analysis) {
      rec.analysis_skipped = true;
      ++result.skipped_count;
      rec.placement = cur_placement;
      result.steps.push_back(rec);
      continue;
    }

    // 4. Application-layer reduction runs in-situ before any transfer.
    const std::size_t f3 = static_cast<std::size_t>(cur_factor) * cur_factor * cur_factor;
    const std::size_t eff_cells = (analyzed + f3 - 1) / f3;
    const std::size_t eff_bytes =
        eff_cells * static_cast<std::size_t>(analysis_ncomp) * sizeof(double);
    if (cur_factor > 1) {
      rec.reduce_seconds =
          cost.downsample_seconds(eff_cells, config_.sim_cores) * imbalance;
      t_sim += rec.reduce_seconds;
    }
    const auto active_cells = static_cast<std::size_t>(
        config_.active_cell_fraction * static_cast<double>(eff_cells));

    if (hybrid) {
      // Split the analysis: stage the largest share that stays hidden under
      // the (estimated ~ current) step duration; the remainder blocks the
      // simulation in-situ. Both partitions work on disjoint subsets, so
      // their costs are the per-share fractions of the full-kernel times.
      const double full_intransit = analysis_seconds(eff_cells, active_cells, cur_cores);
      double intransit_share =
          full_intransit > 0.0 ? std::min(1.0, sim_seconds / full_intransit) : 1.0;
      const auto staged_bytes_hybrid =
          static_cast<std::size_t>(intransit_share * static_cast<double>(eff_bytes));
      if (staging_mem_used + staged_bytes_hybrid > staging_capacity(cur_cores)) {
        intransit_share = 0.0;  // staging full: everything in-situ this step
      }
      const double insitu_share = 1.0 - intransit_share;

      if (insitu_share > 0.0) {
        const double analysis =
            insitu_share * analysis_seconds(eff_cells, active_cells, config_.sim_cores) *
            imbalance;
        t_sim += analysis;
        rec.insitu_analysis_seconds = analysis;
      }
      if (intransit_share > 0.0) {
        const auto bytes = static_cast<std::size_t>(
            intransit_share * static_cast<double>(eff_bytes));
        const double wire =
            cost.transfer_seconds(bytes, sim_nodes, staging_nodes(cur_cores));
        t_sim += 0.01 * wire;
        const double start = std::max(t_sim + wire, staging_free_at);
        const double analysis = intransit_share * full_intransit;
        staging_free_at = start + analysis;
        staging_mem_used += bytes;
        staged.emplace_back(staging_free_at, bytes);
        result.bytes_moved += bytes;
        rec.moved_bytes = bytes;
        rec.intransit_analysis_seconds = analysis;
      }
      rec.placement = intransit_share >= 0.5 ? Placement::InTransit : Placement::InSitu;
      (rec.placement == Placement::InSitu ? result.insitu_count
                                          : result.intransit_count)++;
      result.steps.push_back(rec);
      continue;
    }

    Placement placement = cur_placement;
    if (placement == Placement::InTransit &&
        eff_bytes > staging_capacity(cur_cores)) {
      // The staging area can never cache this step, even drained: forced
      // in-situ (middleware case 1 degenerate).
      placement = Placement::InSitu;
    }

    if (placement == Placement::InSitu) {
      const double analysis =
          analysis_seconds(eff_cells, active_cells, config_.sim_cores) * imbalance;
      t_sim += analysis;
      rec.insitu_analysis_seconds = analysis;
      monitor.record_analysis(
          {step, Placement::InSitu, eff_cells, config_.sim_cores, analysis});
      ++result.insitu_count;
    } else {
      // Admission: block the simulation until the staging area has memory
      // (the paper's T_insitu_wait).
      const double before_wait = t_sim;
      while (staging_mem_used + eff_bytes > staging_capacity(cur_cores) &&
             !staged.empty()) {
        t_sim = std::max(t_sim, staged.front().first);
        release_until(t_sim);
      }
      rec.wait_seconds = t_sim - before_wait;

      const double wire =
          cost.transfer_seconds(eff_bytes, sim_nodes, staging_nodes(cur_cores));
      // Asynchronous RDMA-style transfer: the sender pays a small initiation
      // cost; the payload lands a wire-time later.
      t_sim += 0.01 * wire;
      const double arrive = t_sim + wire;
      const double start = std::max(arrive, staging_free_at);
      const double analysis = analysis_seconds(eff_cells, active_cells, cur_cores);
      staging_free_at = start + analysis;
      staging_mem_used += eff_bytes;
      staged.emplace_back(staging_free_at, eff_bytes);
      result.bytes_moved += eff_bytes;
      rec.moved_bytes = eff_bytes;
      rec.intransit_analysis_seconds = analysis;
      monitor.record_analysis({step, Placement::InTransit, eff_cells, cur_cores, analysis});
      ++result.intransit_count;
    }
    rec.placement = placement;
    result.steps.push_back(rec);
  }

  result.end_to_end_seconds = std::max(t_sim, staging_free_at);
  result.pure_sim_seconds = pure_sim;
  result.overhead_seconds = result.end_to_end_seconds - pure_sim;

  // 6. Per-step windows + the eq. 12 staging utilization trace.
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    const double window = (i + 1 < step_starts.size())
                              ? step_starts[i + 1] - step_starts[i]
                              : result.end_to_end_seconds - step_starts[i];
    result.steps[i].window_seconds = window;
    if (config_.mode != Mode::StaticInSitu) {
      cluster::StagingStepRecord trace_rec;
      trace_rec.step = result.steps[i].step;
      trace_rec.cores_allocated = result.steps[i].intransit_cores;
      trace_rec.analysis_seconds = result.steps[i].intransit_analysis_seconds *
                                   static_cast<double>(result.steps[i].intransit_cores);
      trace_rec.wall_seconds = window;
      result.staging_trace.record(trace_rec);
    }
  }
  result.utilization_efficiency = result.staging_trace.utilization_efficiency();

  XL_LOG_INFO(mode_name(config_.mode)
              << ": E2E " << result.end_to_end_seconds << "s, sim " << pure_sim
              << "s, overhead " << result.overhead_seconds << "s, moved "
              << result.bytes_moved << "B");
  return result;
}

}  // namespace xl::workflow
