#include "workflow/coupled_workflow.hpp"

#include "common/error.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/step_pipeline.hpp"

namespace xl::workflow {

const char* analysis_kind_name(AnalysisKind kind) noexcept {
  switch (kind) {
    case AnalysisKind::Isosurface: return "isosurface";
    case AnalysisKind::Statistics: return "statistics";
    case AnalysisKind::Subsetting: return "subsetting";
  }
  return "?";
}

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::StaticInSitu: return "static-insitu";
    case Mode::StaticInTransit: return "static-intransit";
    case Mode::StaticHybrid: return "static-hybrid";
    case Mode::AdaptiveMiddleware: return "adaptive-middleware";
    case Mode::AdaptiveResource: return "adaptive-resource";
    case Mode::Global: return "global-crosslayer";
  }
  return "?";
}

CoupledWorkflow::CoupledWorkflow(const WorkflowConfig& config) : config_(config) {
  XL_REQUIRE(config.sim_cores >= 1, "need simulation cores");
  XL_REQUIRE(config.staging_cores >= 1, "need staging cores");
  XL_REQUIRE(config.steps >= 1, "need at least one step");
  XL_REQUIRE(config.ncomp >= 1, "need at least one component");
  XL_REQUIRE(config.staging_usable_fraction > 0.0 && config.staging_usable_fraction <= 1.0,
             "staging usable fraction in (0,1]");
}

WorkflowResult CoupledWorkflow::run() {
  AnalyticSubstrate substrate;
  return run_on(substrate);
}

WorkflowResult CoupledWorkflow::run_on(ExecutionSubstrate& substrate) {
  StepPipeline pipeline(config_, substrate, observer_);
  for (int step = 0; step < config_.steps; ++step) pipeline.run_step(step);
  return pipeline.finish();
}

}  // namespace xl::workflow
