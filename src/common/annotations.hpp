// Clang thread-safety-analysis capability annotations — the compile-time half
// of the concurrency contract (the run-time half is the TSan CI job).
//
// Every macro expands to a Clang `capability` attribute when the compiler
// supports the analysis (clang with -Wthread-safety) and to nothing otherwise
// (gcc builds see plain C++). The annotations are therefore zero-cost and
// cannot change behavior: they only let clang prove, per translation unit,
// that every access to a guarded field happens with its capability held and
// that scoped locks are released on every path.
//
// Deployment convention (see DESIGN.md §3.9):
//   - every mutex-owning class uses xl::Mutex / xl::MutexLock / xl::CondVar
//     (common/mutex.hpp) instead of the unannotated std primitives;
//   - every field a mutex protects carries XL_GUARDED_BY(mutex_);
//   - mutable state siblings of a mutex that are deliberately NOT guarded
//     (immutable after construction, externally synchronized, atomics) say so
//     with XL_UNGUARDED("reason") — xl_lint's `unguarded-field` rule enforces
//     that one of the two markers is present;
//   - private helpers called under the lock are annotated XL_REQUIRES(mutex_);
//   - XL_NO_THREAD_SAFETY_ANALYSIS takes a MANDATORY reason string; a bare
//     opt-out does not compile, and xl_lint rejects an empty reason.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define XL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef XL_THREAD_ANNOTATION
#define XL_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Class attribute: instances are capabilities (lockable resources).
#define XL_CAPABILITY(name) XL_THREAD_ANNOTATION(capability(name))

/// Class attribute: RAII objects that hold a capability for their lifetime.
#define XL_SCOPED_CAPABILITY XL_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: reads and writes require holding `x`.
#define XL_GUARDED_BY(x) XL_THREAD_ANNOTATION(guarded_by(x))

/// Field attribute: the pointed-to data (not the pointer) is guarded by `x`.
#define XL_PT_GUARDED_BY(x) XL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: caller must hold the listed capabilities.
#define XL_REQUIRES(...) XL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: caller must NOT hold the listed capabilities
/// (deadlock documentation for re-entrant call chains).
#define XL_EXCLUDES(...) XL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attributes: the function acquires / releases the capabilities.
#define XL_ACQUIRE(...) XL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define XL_RELEASE(...) XL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires on success (`result` = the success value).
#define XL_TRY_ACQUIRE(result, ...) \
  XL_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function attribute: returns a reference to a guarded object without
/// holding the lock (accessors that hand out the capability itself).
#define XL_RETURN_CAPABILITY(x) XL_THREAD_ANNOTATION(lock_returned(x))

/// Capability-ordering declarations (documentation the analysis checks).
#define XL_ACQUIRED_BEFORE(...) XL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define XL_ACQUIRED_AFTER(...) XL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Opt-out with a MANDATORY reason. The reason is compiled away but must be a
/// non-empty string literal: xl_lint flags empty or missing reasons, and the
/// macro shape makes a bare `XL_NO_THREAD_SAFETY_ANALYSIS` a compile error.
#define XL_NO_THREAD_SAFETY_ANALYSIS(reason) \
  XL_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation marker for mutable fields of a mutex-owning class that are
/// deliberately not guarded by it (immutable after construction, externally
/// synchronized, atomic). Expands to nothing; xl_lint's `unguarded-field`
/// rule requires every such field to carry either XL_GUARDED_BY or this.
#define XL_UNGUARDED(reason)
