// Contract layer: machine-checked invariants and guarded numeric conversions.
//
// Builds on common/error.hpp (which owns XL_REQUIRE / XL_CHECK, the always-on
// throwing precondition/invariant macros) and adds:
//
//   XL_ASSERT(cond, msg)  -- internal invariant with stream-style message and
//                            value capture: XL_ASSERT(a <= b, "a=" << a).
//                            Aborts with the full message when compiled with
//                            XLAYER_CONTRACTS_ABORT (Debug / sanitizer
//                            builds), throws xl::InternalError otherwise.
//   XL_ENSURE(cond, msg)  -- postcondition, same mechanics as XL_ASSERT.
//   XL_ASSERT_DBG(...)    -- expensive check, compiled out in Release unless
//                            XLAYER_CONTRACTS_FULL is defined.
//
// Guarded conversions (the static-analysis gate bans raw float->int casts;
// these are the sanctioned replacements -- identical to static_cast for
// in-range values, so bit-identical goldens are preserved):
//
//   xl::f2i<To>(v)   -- double -> integral: NaN is a contract violation,
//                       out-of-range clamps to To's limits (the Histogram
//                       fix from the threading PR, generalized).
//   xl::f2s(v)       -- shorthand for f2i<std::size_t>.
//   xl::narrow<To>(v)-- integral -> integral: value-preserving or violation.
//   xl::to_double(v) -- integral -> double: exact below 2^53 or violation.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <type_traits>

#include "common/error.hpp"

namespace xl {

/// True when contract failures abort instead of throwing (Debug / sanitizer
/// builds set XLAYER_CONTRACTS_ABORT so the failure stops exactly at the
/// broken invariant with the stack intact).
constexpr bool contracts_abort() noexcept {
#if defined(XLAYER_CONTRACTS_ABORT)
  return true;
#else
  return false;
#endif
}

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
#if defined(XLAYER_CONTRACTS_ABORT)
  std::fprintf(stderr, "xl: %s failed: (%s) at %s:%d -- %s\n", kind, expr, file,
               line, msg.c_str());
  std::abort();
#else
  throw_failure<InternalError>(kind, expr, file, line, msg);
#endif
}

}  // namespace detail

/// Checked float -> integral conversion. NaN violates the contract; values
/// outside To's range clamp to the nearest representable limit; everything
/// in range converts exactly as static_cast would (C++ truncation toward
/// zero), so swapping a raw cast for f2i never changes an in-range result.
template <typename To, typename From>
To f2i(From value, const char* what = "float->int") {
  static_assert(std::is_integral_v<To> && std::is_floating_point_v<From>);
  if (std::isnan(value)) {
    detail::contract_fail("guarded conversion", "!isnan(value)", what, 0,
                          "NaN cannot be converted to an integer");
  }
  // The limits are converted through From so the comparisons are exact even
  // when To's max is not representable (uint64 in double rounds up to 2^64,
  // which correctly sends only genuinely out-of-range values to the clamp).
  const From lo = static_cast<From>(std::numeric_limits<To>::min());
  const From hi = static_cast<From>(std::numeric_limits<To>::max());
  if (value <= lo) return std::numeric_limits<To>::min();
  if (value >= hi) return std::numeric_limits<To>::max();
  return static_cast<To>(value);
}

/// Checked float -> size_t (byte and cell arithmetic): negative clamps to 0.
template <typename From>
std::size_t f2s(From value, const char* what = "float->size_t") {
  return f2i<std::size_t>(value, what);
}

/// Checked integral -> integral narrowing: the value must survive the round
/// trip (gsl::narrow semantics); anything else is a contract violation, not a
/// silent wrap.
template <typename To, typename From>
To narrow(From value, const char* what = "narrow") {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  const To result = static_cast<To>(value);
  const bool sign_flip =
      (std::is_signed_v<From> != std::is_signed_v<To>) && ((value < From{}) != (result < To{}));
  if (static_cast<From>(result) != value || sign_flip) {
    std::ostringstream os;
    os << "value " << +value << " does not fit the target type (" << what << ")";
    detail::contract_fail("guarded conversion", "narrow", what, 0, os.str());
  }
  return result;
}

/// Checked integral -> double: exact for |v| <= 2^53 (every cell count and
/// byte size this library produces); larger magnitudes would silently lose
/// precision in the eq. 7-10 estimators, so they violate the contract.
template <typename From>
double to_double(From value, const char* what = "int->double") {
  static_assert(std::is_integral_v<From>);
  constexpr std::uint64_t kExact = 1ull << 53;
  const bool exact = value < From{} ? static_cast<std::uint64_t>(-(value + From{1})) < kExact
                                    : static_cast<std::uint64_t>(value) <= kExact;
  if (!exact) {
    std::ostringstream os;
    os << "value " << +value << " exceeds 2^53; double would lose precision (" << what
       << ")";
    detail::contract_fail("guarded conversion", "to_double", what, 0, os.str());
  }
  return static_cast<double>(value);
}

}  // namespace xl

/// Internal invariant with value capture: XL_ASSERT(i < n, "i=" << i).
#define XL_ASSERT(cond, msg)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream xl_assert_os_;                                       \
      xl_assert_os_ << msg;                                                   \
      ::xl::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,     \
                                  xl_assert_os_.str());                       \
    }                                                                         \
  } while (0)

/// Postcondition with value capture, same failure mechanics as XL_ASSERT.
#define XL_ENSURE(cond, msg)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream xl_ensure_os_;                                       \
      xl_ensure_os_ << msg;                                                   \
      ::xl::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__, \
                                  xl_ensure_os_.str());                       \
    }                                                                         \
  } while (0)

/// Expensive invariant: active in Debug (or with XLAYER_CONTRACTS_FULL),
/// compiled out -- unevaluated -- in Release.
#if !defined(NDEBUG) || defined(XLAYER_CONTRACTS_FULL)
#define XL_ASSERT_DBG(cond, msg) XL_ASSERT(cond, msg)
#else
#define XL_ASSERT_DBG(cond, msg) \
  do {                           \
    (void)sizeof(!(cond));       \
  } while (0)
#endif
