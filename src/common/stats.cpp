#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace xl {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::quantile(double q) const {
  XL_REQUIRE(!samples_.empty(), "quantile of empty sample set");
  XL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  MutexLock lock(cache_mutex_);
  if (sorted_cache_.size() != samples_.size()) {
    sorted_cache_ = samples_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
  }
  const double pos = q * static_cast<double>(sorted_cache_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_cache_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_cache_[lo] * (1.0 - frac) + sorted_cache_[hi] * frac;
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  XL_REQUIRE(hi > lo, "histogram range must be non-empty");
  XL_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  // NaN has no bin: casting it to an integer is UB, and clamping it to an
  // edge bin would silently distort the distribution — drop it instead.
  if (std::isnan(x)) return;
  // Clamp in floating point BEFORE the integer cast: ±inf and values whose
  // bin index exceeds the integer range are UB to cast directly.
  const double idx = (x - lo_) / width_;
  const double last = static_cast<double>(counts_.size() - 1);
  // xl-lint: allow(float-cast): NaN dropped and range clamped above; per-sample hot path.
  ++counts_[static_cast<std::size_t>(std::clamp(idx, 0.0, last))];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  XL_REQUIRE(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  XL_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

std::string Histogram::to_string(std::size_t max_bar_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak ? counts_[i] * max_bar_width / peak : 0;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") " << std::string(bar, '#')
       << " " << counts_[i] << "\n";
  }
  return os.str();
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  XL_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
}

void Ewma::add(double x) noexcept {
  if (!has_value_) {
    value_ = x;
    has_value_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace xl
