// Portable SIMD layer for the analysis/sim hot loops.
//
// xl::simd::pack<double> wraps the GCC/Clang vector extensions (256-bit, four
// doubles per pack) behind a type that also compiles as a plain fixed-size
// array on any other toolchain. The XLAYER_SIMD CMake option selects the
// vector path; without it (or on compilers without the extension) every
// operation lowers to the identical per-lane scalar sequence, so both builds
// compute the same bits.
//
// Determinism contract (DESIGN.md §3.10): SIMD is applied ONLY across
// independent output elements — one lane per output cell, each lane executing
// exactly the scalar per-cell operation sequence. Reductions whose FP
// reassociation would change results (histogram binning, compressed-stream
// residual ranges, RunningStats/rmse accumulation, linear fits) stay scalar.
// min/max lane accumulators are the one sanctioned lane-parallel reduction:
// the result is an element of the input selected by the same `(x < acc)`
// predicate the scalar loop uses, so the reduced VALUE is order-independent
// (the only ambiguity, which signed zero wins a tie, never reaches stored
// bytes — see block_entropy). Nothing here may introduce FMA contraction:
// the XLAYER_SIMD builds compile with -ffp-contract=off so vector and scalar
// paths round identically.
#pragma once

#include <cstddef>

#if defined(XLAYER_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define XLAYER_SIMD_ACTIVE 1
#else
#define XLAYER_SIMD_ACTIVE 0
#endif

namespace xl::simd {

template <typename T>
struct pack;

/// Four doubles, elementwise semantics identical to four sequential scalar
/// operations. Loads/stores are unaligned-safe; pooled buffers (BufferPool's
/// 64-byte aligned buckets) additionally satisfy the aligned fast path on
/// every full row.
template <>
struct pack<double> {
  static constexpr std::size_t lanes = 4;

#if XLAYER_SIMD_ACTIVE
  using native = double __attribute__((vector_size(lanes * sizeof(double))));
  using imask = long long __attribute__((vector_size(lanes * sizeof(long long))));
  native v;
#else
  double v[lanes];
#endif

  static pack load(const double* p) noexcept {
#if XLAYER_SIMD_ACTIVE
    // Element-by-element init compiles to one unaligned vector load. The
    // vector must be built as a named local: GCC rejects nested brace-init
    // of a vector member inside an aggregate return list.
    const native t = {p[0], p[1], p[2], p[3]};
    return {t};
#else
    return {{p[0], p[1], p[2], p[3]}};
#endif
  }

  static pack broadcast(double x) noexcept {
#if XLAYER_SIMD_ACTIVE
    const native t = {x, x, x, x};
    return {t};
#else
    return {{x, x, x, x}};
#endif
  }

  /// {0, 1, 2, 3} — the per-lane index offsets for i-dependent expressions
  /// (the quantizer's `a + b * i` predictor).
  static pack iota() noexcept {
#if XLAYER_SIMD_ACTIVE
    const native t = {0.0, 1.0, 2.0, 3.0};
    return {t};
#else
    return {{0.0, 1.0, 2.0, 3.0}};
#endif
  }

  void store(double* p) const noexcept {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }

  double operator[](std::size_t i) const noexcept { return v[i]; }

  friend pack operator+(pack a, pack b) noexcept {
#if XLAYER_SIMD_ACTIVE
    return {a.v + b.v};
#else
    return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2], a.v[3] + b.v[3]}};
#endif
  }

  friend pack operator-(pack a, pack b) noexcept {
#if XLAYER_SIMD_ACTIVE
    return {a.v - b.v};
#else
    return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2], a.v[3] - b.v[3]}};
#endif
  }

  friend pack operator*(pack a, pack b) noexcept {
#if XLAYER_SIMD_ACTIVE
    return {a.v * b.v};
#else
    return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2], a.v[3] * b.v[3]}};
#endif
  }

  friend pack operator/(pack a, pack b) noexcept {
#if XLAYER_SIMD_ACTIVE
    return {a.v / b.v};
#else
    return {{a.v[0] / b.v[0], a.v[1] / b.v[1], a.v[2] / b.v[2], a.v[3] / b.v[3]}};
#endif
  }

  pack& operator+=(pack o) noexcept { return *this = *this + o; }
  pack& operator-=(pack o) noexcept { return *this = *this - o; }
  pack& operator*=(pack o) noexcept { return *this = *this * o; }
  pack& operator/=(pack o) noexcept { return *this = *this / o; }

  /// Per-lane `(b < a) ? b : a` — exactly std::min's selection rule, so NaN
  /// lanes in `b` are ignored just as the scalar scan ignores them.
  friend pack min(pack a, pack b) noexcept {
#if XLAYER_SIMD_ACTIVE
    const imask lt = b.v < a.v;  // all-ones where b[i] < a[i]
    return {select(lt, b.v, a.v)};
#else
    return {{b.v[0] < a.v[0] ? b.v[0] : a.v[0], b.v[1] < a.v[1] ? b.v[1] : a.v[1],
             b.v[2] < a.v[2] ? b.v[2] : a.v[2], b.v[3] < a.v[3] ? b.v[3] : a.v[3]}};
#endif
  }

  /// Per-lane `(a < b) ? b : a` — std::max's selection rule.
  friend pack max(pack a, pack b) noexcept {
#if XLAYER_SIMD_ACTIVE
    const imask lt = a.v < b.v;
    return {select(lt, b.v, a.v)};
#else
    return {{a.v[0] < b.v[0] ? b.v[0] : a.v[0], a.v[1] < b.v[1] ? b.v[1] : a.v[1],
             a.v[2] < b.v[2] ? b.v[2] : a.v[2], a.v[3] < b.v[3] ? b.v[3] : a.v[3]}};
#endif
  }

  /// Horizontal min over the lanes, folded in lane order with the scalar
  /// predicate (the result is one of the lane values).
  double reduce_min() const noexcept {
    double m = v[0];
    if (v[1] < m) m = v[1];
    if (v[2] < m) m = v[2];
    if (v[3] < m) m = v[3];
    return m;
  }

  double reduce_max() const noexcept {
    double m = v[0];
    if (m < v[1]) m = v[1];
    if (m < v[2]) m = v[2];
    if (m < v[3]) m = v[3];
    return m;
  }

  /// Deinterleave two consecutive packs (8 doubles) into even/odd lanes:
  /// even = {p[0], p[2], p[4], p[6]}, odd = {p[1], p[3], p[5], p[7]}.
  /// This is the factor-2 downsample gather.
  static void deinterleave2(pack a, pack b, pack& even, pack& odd) noexcept {
#if XLAYER_SIMD_ACTIVE && defined(__clang__)
    even = {__builtin_shufflevector(a.v, b.v, 0, 2, 4, 6)};
    odd = {__builtin_shufflevector(a.v, b.v, 1, 3, 5, 7)};
#elif XLAYER_SIMD_ACTIVE
    // GCC 12 has __builtin_shufflevector too; lane-init is kept as the
    // conservative spelling — it compiles to the same unpck/perm sequence.
    const native e = {a.v[0], a.v[2], b.v[0], b.v[2]};
    const native o = {a.v[1], a.v[3], b.v[1], b.v[3]};
    even = {e};
    odd = {o};
#else
    even = {{a.v[0], a.v[2], b.v[0], b.v[2]}};
    odd = {{a.v[1], a.v[3], b.v[1], b.v[3]}};
#endif
  }

#if XLAYER_SIMD_ACTIVE
 private:
  /// Bitwise blend: lanes of `mask` are all-ones or all-zero (a vector
  /// comparison result), picking `a` where set, `b` where clear. Same-size
  /// vector casts reinterpret bits, so this is exact for any payload.
  static native select(imask mask, native a, native b) noexcept {
    const imask ai = reinterpret_cast<imask>(a);
    const imask bi = reinterpret_cast<imask>(b);
    return reinterpret_cast<native>((ai & mask) | (bi & ~mask));
  }

 public:
#endif
};

using dpack = pack<double>;

/// True in builds where pack<double> compiles to real vector instructions —
/// reported by benches so speedup tables name the active path.
constexpr bool active() noexcept { return XLAYER_SIMD_ACTIVE != 0; }

}  // namespace xl::simd
