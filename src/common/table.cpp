#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace xl {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  XL_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  XL_REQUIRE(!rows_.empty(), "call row() before cell()");
  XL_REQUIRE(rows_.back().size() < header_.size(), "row has more cells than columns");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(long value) { return cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << "| " << text << std::string(widths[c] - text.size(), ' ') << " ";
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << v << " " << units[unit];
  return os.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  const double abs = std::fabs(seconds);
  if (abs < 1e-6) {
    os << std::fixed << std::setprecision(0) << seconds * 1e9 << " ns";
  } else if (abs < 1e-3) {
    os << std::fixed << std::setprecision(1) << seconds * 1e6 << " us";
  } else if (abs < 1.0) {
    os << std::fixed << std::setprecision(2) << seconds * 1e3 << " ms";
  } else if (abs < 600.0) {
    os << std::fixed << std::setprecision(2) << seconds << " s";
  } else {
    const long total = static_cast<long>(seconds);
    os << total / 60 << "m" << total % 60 << "s";
  }
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace xl
