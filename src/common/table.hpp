// ASCII table writer used by every bench binary to print the reproduced
// figure/table series in a uniform, diff-friendly format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace xl {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so bench output is stable across runs.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int precision = 2);
  Table& cell(std::size_t value);
  Table& cell(int value);
  Table& cell(long value);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with a rule under the header, columns padded to widest cell.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count with binary units ("1.50 GiB").
std::string format_bytes(double bytes);

/// Format seconds adaptively ("834 us", "1.23 s", "12m34s").
std::string format_seconds(double seconds);

/// Format a ratio as a percentage ("87.11%").
std::string format_percent(double fraction, int precision = 2);

}  // namespace xl
