// Deterministic, seedable random number generation.
//
// Experiments must be bit-reproducible across runs, so every stochastic
// component takes an explicit Rng (never a global) and all seeds derive from
// the experiment seed via split().
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace xl {

/// xoshiro256** with a SplitMix64 seeder. Small, fast, and good enough for
/// workload synthesis (we never need cryptographic quality).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] (inclusive). Slight modulo bias is acceptable
  /// for workload synthesis.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return mean + stddev * u * mul;
  }

  /// Derive an independent child stream; used to give each virtual rank or
  /// module its own stream from one experiment seed.
  Rng split(std::uint64_t salt) noexcept {
    return Rng(next_u64() ^ (salt * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull));
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() noexcept { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace xl
