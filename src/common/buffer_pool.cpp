#include "common/buffer_pool.hpp"

#include <algorithm>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace xl {

namespace {

/// Hint the kernel to back a large freshly-allocated buffer with transparent
/// hugepages. Most distros ship THP policy "madvise", so without the hint a
/// multi-megabyte arena sits on 4 KiB pages and large-working-set consumers
/// (the DES ladder's handler slabs and ref arrays at ~1M virtual cores) pay a
/// TLB walk on nearly every random touch. Best-effort: on failure, on small
/// buffers, or off Linux the buffer simply stays on small pages — values and
/// visible behavior are unchanged.
void advise_hugepages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::size_t kMinAdviseBytes = std::size_t{2} << 20;
  if (p == nullptr || bytes < kMinAdviseBytes) return;
  static const std::uintptr_t page =
      static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (addr + page - 1) & ~(page - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(page - 1);
  if (hi > lo) {
    (void)::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

std::size_t next_pow2(std::size_t n) {
  std::size_t b = 1;
  while (b < n) b <<= 1;
  return b;
}

std::size_t prev_pow2(std::size_t n) {
  std::size_t b = 1;
  while ((b << 1) <= n) b <<= 1;
  return b;
}

}  // namespace

std::size_t BufferPool::bucket_for_acquire(std::size_t n) {
  return next_pow2(std::max(n, kMinBucketElements));
}

std::size_t BufferPool::bucket_for_release(std::size_t capacity) {
  return prev_pow2(std::max(capacity, kMinBucketElements));
}

template <>
BufferPool::Shelf<double>& BufferPool::shelf<double>() { return doubles_; }
template <>
BufferPool::Shelf<std::uint8_t>& BufferPool::shelf<std::uint8_t>() { return bytes_; }
template <>
BufferPool::Shelf<std::uint32_t>& BufferPool::shelf<std::uint32_t>() { return u32_; }
template <>
BufferPool::Shelf<std::size_t>& BufferPool::shelf<std::size_t>() { return sizes_; }

template <typename T>
PoolVec<T> BufferPool::acquire(std::size_t n) {
  if (n == 0) return {};
  PoolVec<T> recycled;
  {
    MutexLock lock(mutex_);
    if (enabled_) {
      Shelf<T>& s = shelf<T>();
      // Any bucket at or above the rounded request can serve it: the cached
      // capacity is >= its bucket key >= n, so resize() never reallocates.
      auto it = s.free.lower_bound(bucket_for_acquire(n));
      if (it != s.free.end() && !it->second.empty()) {
        recycled = std::move(it->second.back());
        it->second.pop_back();
        if (it->second.empty()) s.free.erase(it);
        const std::size_t cached = recycled.capacity() * sizeof(T);
        stats_.pooled_bytes -= std::min(stats_.pooled_bytes, cached);
        ++stats_.hits;
      }
    }
    if (recycled.capacity() == 0) ++stats_.misses;
    // Gauge by capacity, not requested size: release() only sees the buffer's
    // capacity, so capacity is the one quantity both sides agree on. The heap
    // fall-through below reserves exactly the acquire bucket.
    stats_.outstanding_bytes +=
        (recycled.capacity() != 0 ? recycled.capacity() : bucket_for_acquire(n)) *
        sizeof(T);
    stats_.high_water_outstanding_bytes =
        std::max(stats_.high_water_outstanding_bytes, stats_.outstanding_bytes);
  }
  if (recycled.capacity() != 0) {
    recycled.resize(n);  // never reallocates: capacity >= bucket key >= n.
    return recycled;
  }
  // Heap fall-through outside the lock; reserve the full bucket so the buffer
  // recycles into the bucket it was sized for. Hint hugepage backing before
  // resize() touches the pages, so they fault in as hugepages where THP
  // policy is "madvise". The hint sticks to the mapping, so it survives
  // pool recycling.
  PoolVec<T> buf;
  buf.reserve(bucket_for_acquire(n));
  advise_hugepages(buf.data(), buf.capacity() * sizeof(T));
  buf.resize(n);
  return buf;
}

template <typename T>
void BufferPool::release(PoolVec<T>&& buf) {
  if (buf.capacity() == 0) return;
  const std::size_t cached = buf.capacity() * sizeof(T);
  MutexLock lock(mutex_);
  stats_.outstanding_bytes -= std::min(stats_.outstanding_bytes, cached);
  if (!enabled_ || stats_.pooled_bytes + cached > capacity_bytes_) {
    ++stats_.trims;
    return;  // buf frees to the heap on scope exit.
  }
  ++stats_.releases;
  stats_.pooled_bytes += cached;
  stats_.high_water_pooled_bytes =
      std::max(stats_.high_water_pooled_bytes, stats_.pooled_bytes);
  shelf<T>().free[bucket_for_release(buf.capacity())].push_back(std::move(buf));
}

template PoolVec<double> BufferPool::acquire<double>(std::size_t);
template PoolVec<std::uint8_t> BufferPool::acquire<std::uint8_t>(std::size_t);
template PoolVec<std::uint32_t> BufferPool::acquire<std::uint32_t>(std::size_t);
template PoolVec<std::size_t> BufferPool::acquire<std::size_t>(std::size_t);
template void BufferPool::release<double>(PoolVec<double>&&);
template void BufferPool::release<std::uint8_t>(PoolVec<std::uint8_t>&&);
template void BufferPool::release<std::uint32_t>(PoolVec<std::uint32_t>&&);
template void BufferPool::release<std::size_t>(PoolVec<std::size_t>&&);

void BufferPool::set_enabled(bool enabled) {
  MutexLock lock(mutex_);
  enabled_ = enabled;
}

bool BufferPool::enabled() const {
  MutexLock lock(mutex_);
  return enabled_;
}

void BufferPool::set_capacity_bytes(std::size_t capacity_bytes) {
  MutexLock lock(mutex_);
  capacity_bytes_ = capacity_bytes;
}

void BufferPool::clear() {
  MutexLock lock(mutex_);
  doubles_.free.clear();
  bytes_.free.clear();
  u32_.free.clear();
  sizes_.free.clear();
  stats_.pooled_bytes = 0;
}

PoolStats BufferPool::stats() const {
  MutexLock lock(mutex_);
  PoolStats out = stats_;
  out.copied_bytes = copied_bytes_.load(std::memory_order_relaxed);
  return out;
}

BufferPool& BufferPool::global() {
  // Leaked on purpose: Fab destructors in static storage may run after any
  // function-local static would have been destroyed. Still reachable through
  // this pointer, so leak checkers stay quiet.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

BufferPool& BufferPool::engine() {
  static BufferPool* pool = new BufferPool();  // leaked; see global()
  return *pool;
}

}  // namespace xl
