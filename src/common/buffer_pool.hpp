// Pooled buffer recycling for the payload data path. Every hop of a coupled
// step (Fab backing stores, pack/compress scratch, staged payloads) used to
// heap-allocate fresh vectors; at scale the step loop was bounded by allocator
// churn, not by the modeled kernels. The BufferPool turns those allocations
// into recycled acquires: buffers are bucketed by capacity (next power of
// two), returned on release, and handed back on the next acquire of a
// compatible size.
//
// Determinism contract: pooling changes WHERE memory comes from, never values.
// acquire() returns a buffer of exactly the requested size whose elements are
// value-initialized only where the vector grew; every consumer in the tree
// fully overwrites the buffer before reading it (Fab fills, pack_into packs,
// compress zero-fills its stream). The golden-trace tests in
// tests/test_buffer_pool.cpp prove pool on/off and pool-size sweeps leave
// every Mode's event log byte-identical.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/contract.hpp"
#include "common/mutex.hpp"

namespace xl {

/// Every pooled buffer starts on a 64-byte boundary: one cache line, and wide
/// enough for any current SIMD width (AVX-512 included). Fab rows, Scratch
/// slabs, and ArenaVec records can therefore use aligned vector loads on lane
/// zero of every buffer, and ArenaVec may hold records up to this alignment.
inline constexpr std::size_t kPoolAlignment = 64;

/// Minimal allocator handing out kPoolAlignment-aligned storage via the
/// align_val_t forms of operator new/delete. Stateless, so all instances are
/// interchangeable and PoolVec moves are pointer swaps, exactly like the
/// default allocator. This is the "aligned bucket class" behind the pool's
/// size buckets: buckets recycle whole PoolVecs, so every hand-out keeps the
/// allocation-time alignment.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kPoolAlignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kPoolAlignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
};

/// The pooled buffer type: a std::vector whose storage is always 64-byte
/// aligned. Everything the BufferPool acquires, caches, and releases is a
/// PoolVec; iterator/span interop with plain vectors is unchanged.
template <typename T>
using PoolVec = std::vector<T, AlignedAllocator<T>>;

/// Snapshot of one pool's counters (monotonic except the byte gauges).
struct PoolStats {
  std::uint64_t hits = 0;      ///< acquires served from a recycled buffer.
  std::uint64_t misses = 0;    ///< acquires that fell through to the heap.
  std::uint64_t releases = 0;  ///< buffers accepted back into the pool.
  std::uint64_t trims = 0;     ///< released buffers dropped (cap or disabled).
  std::uint64_t copied_bytes = 0;  ///< payload bytes deep-copied (Fab copies,
                                   ///< copy_from, pack/unpack) process-wide.
  std::size_t pooled_bytes = 0;       ///< bytes currently cached in free lists.
  /// Capacity bytes acquired and not yet released. Acquire and release both
  /// gauge by buffer capacity, so the ledger balances exactly for the designed
  /// use (acquire, fill within capacity, release). It is approximate — clamped
  /// at zero, never exact — when a caller grows a buffer past its acquired
  /// capacity or donates a foreign heap buffer to release() (plotfile I/O).
  std::size_t outstanding_bytes = 0;
  std::size_t high_water_pooled_bytes = 0;
  std::size_t high_water_outstanding_bytes = 0;
};

/// Thread-safe, size-bucketed recycling pool for the element types the data
/// path moves: doubles (Fab stores, pack scratch), bytes (compressed streams),
/// uint32 (quantizer scratch), and size_t (histogram/count scratch).
///
/// One process-global instance backs mesh::Fab and the kernel scratch
/// (global()); local instances are freely constructible for isolation
/// (tests, per-subsystem pools).
class BufferPool {
 public:
  static constexpr std::size_t kDefaultCapacityBytes = std::size_t{256} << 20;
  /// Smallest bucket: buffers below this round up so tiny acquires recycle
  /// through one shared bucket instead of fragmenting the shelf.
  static constexpr std::size_t kMinBucketElements = 64;

  explicit BufferPool(std::size_t capacity_bytes = kDefaultCapacityBytes)
      : capacity_bytes_(capacity_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of exactly n elements, recycled when a compatible bucket has
  /// one cached, always starting on a kPoolAlignment boundary. Contents are
  /// unspecified beyond vector resize semantics — callers must fully
  /// overwrite before reading (see the determinism note above). Supported T:
  /// double, std::uint8_t, std::uint32_t, std::size_t.
  template <typename T>
  PoolVec<T> acquire(std::size_t n);

  /// Return a buffer to the pool. Buffers beyond the byte cap (or when the
  /// pool is disabled) are dropped to the heap and counted as trims.
  /// Releasing an empty buffer is a no-op. Foreign buffers (never acquired
  /// from this pool) are welcome donations, but they skew the outstanding
  /// gauge — see PoolStats::outstanding_bytes.
  template <typename T>
  void release(PoolVec<T>&& buf);

  /// Disabling makes every acquire a heap miss and every release a trim —
  /// the before/after switch bench_alloc_churn and the bit-identity tests
  /// flip. Values never change, only allocation behavior.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Cap on total cached bytes across all shelves.
  void set_capacity_bytes(std::size_t capacity_bytes);

  /// Drop every cached buffer (the gauges reset; counters keep counting).
  void clear();

  PoolStats stats() const;

  /// Copy-instrumentation tap: the data path calls this wherever it deep-
  /// copies payload bytes, so benches can report bytes-copied/step.
  void add_copied_bytes(std::size_t bytes) noexcept {
    copied_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// The process-global pool backing mesh::Fab and the kernel scratch.
  static BufferPool& global();

  /// A separate process-global pool for engine-internal arenas (the DES
  /// ladder queue's buckets and handler slabs, flat rank tables, the staged-
  /// byte ledger). Keeping engine bookkeeping off the data-path pool means
  /// the pool telemetry stamped into workflow events reflects payload
  /// traffic only — the analytic and event-queue substrates stay
  /// byte-identical — and engine arena churn never contends on the data
  /// path's lock.
  static BufferPool& engine();

 private:
  template <typename T>
  struct Shelf {
    /// bucket capacity (elements) -> cached buffers of at least that capacity.
    std::map<std::size_t, std::vector<PoolVec<T>>> free;
  };

  template <typename T>
  Shelf<T>& shelf() XL_REQUIRES(mutex_);

  static std::size_t bucket_for_acquire(std::size_t n);
  static std::size_t bucket_for_release(std::size_t capacity);

  mutable Mutex mutex_;
  bool enabled_ XL_GUARDED_BY(mutex_) = true;
  std::size_t capacity_bytes_ XL_GUARDED_BY(mutex_);
  /// copied_bytes tracked separately in copied_bytes_.
  PoolStats stats_ XL_GUARDED_BY(mutex_);
  XL_UNGUARDED("lock-free tap on the hot copy path")
  std::atomic<std::uint64_t> copied_bytes_{0};
  Shelf<double> doubles_ XL_GUARDED_BY(mutex_);
  Shelf<std::uint8_t> bytes_ XL_GUARDED_BY(mutex_);
  Shelf<std::uint32_t> u32_ XL_GUARDED_BY(mutex_);
  Shelf<std::size_t> sizes_ XL_GUARDED_BY(mutex_);
};

/// RAII scratch buffer: acquires on construction, releases on destruction.
/// The unit of "persistent per-call scratch" for kernels — each task-group
/// chunk holds one for its working set and the pool recycles it for the next.
template <typename T>
class Scratch {
 public:
  Scratch(BufferPool& pool, std::size_t n) : pool_(&pool), buf_(pool.acquire<T>(n)) {}
  explicit Scratch(std::size_t n) : Scratch(BufferPool::global(), n) {}
  ~Scratch() { pool_->release(std::move(buf_)); }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  T* data() noexcept { return buf_.data(); }
  const T* data() const noexcept { return buf_.data(); }
  std::size_t size() const noexcept { return buf_.size(); }
  T& operator[](std::size_t i) { return buf_[i]; }
  const T& operator[](std::size_t i) const { return buf_[i]; }
  PoolVec<T>& vec() noexcept { return buf_; }

 private:
  BufferPool* pool_;
  PoolVec<T> buf_;
};

/// Flat arena-backed array of trivially copyable records — the storage unit
/// behind the DES ladder-queue buckets, the per-rank record tables, and the
/// staged-byte ring. Semantically a stripped-down vector whose backing bytes
/// come from (and return to) a BufferPool, so steady-state growth cycles
/// recycle pooled capacity instead of touching the heap. Records are plain
/// data: growth is one memcpy, sorting works on raw T* iterators, and there
/// is never a per-element allocation or destructor.
///
/// Arena lifetime rules: the backing buffer belongs to this ArenaVec until
/// destruction (or move-from), at which point it is released to the owning
/// pool; elements must not hold pointers into the arena across push_back
/// (growth relocates), and T must be trivially copyable — both are enforced
/// at compile time where the language allows.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec records are relocated with memcpy");
  // Alignment contract: pooled byte buffers are PoolVec<std::uint8_t>
  // storage, which AlignedAllocator obtains from the align_val_t operator new
  // at kPoolAlignment (64 bytes). The pool recycles whole vectors (it never
  // offsets into them), so every bucket hand-out keeps that guarantee, and
  // the static_assert below makes the reinterpret_cast in data() safe for
  // every admissible T. grow() re-checks the invariant with XL_ASSERT each
  // time the backing buffer changes.
  static_assert(alignof(T) <= kPoolAlignment,
                "pooled buffers guarantee kPoolAlignment (64-byte) alignment only");

 public:
  /// Default-constructed arenas draw from the process-global pool.
  ArenaVec() : pool_(&BufferPool::global()) {}
  explicit ArenaVec(BufferPool& pool) : pool_(&pool) {}

  ArenaVec(const ArenaVec&) = delete;
  ArenaVec& operator=(const ArenaVec&) = delete;

  ArenaVec(ArenaVec&& o) noexcept
      : pool_(o.pool_), raw_(std::move(o.raw_)), size_(std::exchange(o.size_, 0)) {}

  ArenaVec& operator=(ArenaVec&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      raw_ = std::move(o.raw_);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }

  ~ArenaVec() { reset(); }

  /// Release the backing buffer to the pool and become empty.
  void reset() noexcept {
    size_ = 0;
    if (!raw_.empty() || raw_.capacity() != 0) pool_->release(std::move(raw_));
    raw_ = PoolVec<std::uint8_t>();
  }

  T* data() noexcept {
    XL_ASSERT_DBG(reinterpret_cast<std::uintptr_t>(raw_.data()) % alignof(T) == 0,
                  "pooled arena misaligned for T");
    return reinterpret_cast<T*>(raw_.data());
  }
  const T* data() const noexcept {
    XL_ASSERT_DBG(reinterpret_cast<std::uintptr_t>(raw_.data()) % alignof(T) == 0,
                  "pooled arena misaligned for T");
    return reinterpret_cast<const T*>(raw_.data());
  }
  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return raw_.size() / sizeof(T); }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }
  T& back() noexcept { return data()[size_ - 1]; }
  const T& back() const noexcept { return data()[size_ - 1]; }

  void clear() noexcept { size_ = 0; }
  void pop_back() noexcept { --size_; }

  void reserve(std::size_t n) {
    if (n > capacity()) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == capacity()) grow(size_ + 1);
    // memcpy into pooled byte storage implicitly begins the record's lifetime
    // (T is trivially copyable), sidestepping placement-new bookkeeping.
    std::memcpy(raw_.data() + size_ * sizeof(T), &v, sizeof(T));
    ++size_;
  }

  /// Insert `v` before index `at`, shifting the tail one slot right.
  void insert_at(std::size_t at, const T& v) {
    if (size_ == capacity()) grow(size_ + 1);
    std::memmove(raw_.data() + (at + 1) * sizeof(T), raw_.data() + at * sizeof(T),
                 (size_ - at) * sizeof(T));
    std::memcpy(raw_.data() + at * sizeof(T), &v, sizeof(T));
    ++size_;
  }

  /// Grow (value-filling new slots) or shrink to exactly `n` records.
  void resize(std::size_t n, const T& fill = T{}) {
    if (n > capacity()) grow(n);
    for (std::size_t i = size_; i < n; ++i) {
      std::memcpy(raw_.data() + i * sizeof(T), &fill, sizeof(T));
    }
    size_ = n;
  }

  void swap(ArenaVec& o) noexcept {
    std::swap(pool_, o.pool_);
    raw_.swap(o.raw_);
    std::swap(size_, o.size_);
  }

 private:
  void grow(std::size_t min_elems) {
    std::size_t want =
        capacity() == 0 ? BufferPool::kMinBucketElements : capacity() * 2;
    while (want < min_elems) want *= 2;
    PoolVec<std::uint8_t> bigger = pool_->acquire<std::uint8_t>(want * sizeof(T));
    XL_ASSERT(reinterpret_cast<std::uintptr_t>(bigger.data()) % alignof(T) == 0,
              "pool handed back a buffer misaligned for T (alignof="
                  << alignof(T) << ")");
    std::memcpy(bigger.data(), raw_.data(), size_ * sizeof(T));
    pool_->release(std::move(raw_));
    raw_ = std::move(bigger);
  }

  BufferPool* pool_;
  PoolVec<std::uint8_t> raw_;  ///< pooled backing bytes (capacity in slots).
  std::size_t size_ = 0;
};

}  // namespace xl
