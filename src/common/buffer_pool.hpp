// Pooled buffer recycling for the payload data path. Every hop of a coupled
// step (Fab backing stores, pack/compress scratch, staged payloads) used to
// heap-allocate fresh vectors; at scale the step loop was bounded by allocator
// churn, not by the modeled kernels. The BufferPool turns those allocations
// into recycled acquires: buffers are bucketed by capacity (next power of
// two), returned on release, and handed back on the next acquire of a
// compatible size.
//
// Determinism contract: pooling changes WHERE memory comes from, never values.
// acquire() returns a buffer of exactly the requested size whose elements are
// value-initialized only where the vector grew; every consumer in the tree
// fully overwrites the buffer before reading it (Fab fills, pack_into packs,
// compress zero-fills its stream). The golden-trace tests in
// tests/test_buffer_pool.cpp prove pool on/off and pool-size sweeps leave
// every Mode's event log byte-identical.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace xl {

/// Snapshot of one pool's counters (monotonic except the byte gauges).
struct PoolStats {
  std::uint64_t hits = 0;      ///< acquires served from a recycled buffer.
  std::uint64_t misses = 0;    ///< acquires that fell through to the heap.
  std::uint64_t releases = 0;  ///< buffers accepted back into the pool.
  std::uint64_t trims = 0;     ///< released buffers dropped (cap or disabled).
  std::uint64_t copied_bytes = 0;  ///< payload bytes deep-copied (Fab copies,
                                   ///< copy_from, pack/unpack) process-wide.
  std::size_t pooled_bytes = 0;       ///< bytes currently cached in free lists.
  /// Capacity bytes acquired and not yet released. Acquire and release both
  /// gauge by buffer capacity, so the ledger balances exactly for the designed
  /// use (acquire, fill within capacity, release). It is approximate — clamped
  /// at zero, never exact — when a caller grows a buffer past its acquired
  /// capacity or donates a foreign heap buffer to release() (plotfile I/O).
  std::size_t outstanding_bytes = 0;
  std::size_t high_water_pooled_bytes = 0;
  std::size_t high_water_outstanding_bytes = 0;
};

/// Thread-safe, size-bucketed recycling pool for the element types the data
/// path moves: doubles (Fab stores, pack scratch), bytes (compressed streams),
/// uint32 (quantizer scratch), and size_t (histogram/count scratch).
///
/// One process-global instance backs mesh::Fab and the kernel scratch
/// (global()); local instances are freely constructible for isolation
/// (tests, per-subsystem pools).
class BufferPool {
 public:
  static constexpr std::size_t kDefaultCapacityBytes = std::size_t{256} << 20;
  /// Smallest bucket: buffers below this round up so tiny acquires recycle
  /// through one shared bucket instead of fragmenting the shelf.
  static constexpr std::size_t kMinBucketElements = 64;

  explicit BufferPool(std::size_t capacity_bytes = kDefaultCapacityBytes)
      : capacity_bytes_(capacity_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of exactly n elements, recycled when a compatible bucket has
  /// one cached. Contents are unspecified beyond vector resize semantics —
  /// callers must fully overwrite before reading (see the determinism note
  /// above). Supported T: double, std::uint8_t, std::uint32_t, std::size_t.
  template <typename T>
  std::vector<T> acquire(std::size_t n);

  /// Return a buffer to the pool. Buffers beyond the byte cap (or when the
  /// pool is disabled) are dropped to the heap and counted as trims.
  /// Releasing an empty buffer is a no-op. Foreign buffers (never acquired
  /// from this pool) are welcome donations, but they skew the outstanding
  /// gauge — see PoolStats::outstanding_bytes.
  template <typename T>
  void release(std::vector<T>&& buf);

  /// Disabling makes every acquire a heap miss and every release a trim —
  /// the before/after switch bench_alloc_churn and the bit-identity tests
  /// flip. Values never change, only allocation behavior.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Cap on total cached bytes across all shelves.
  void set_capacity_bytes(std::size_t capacity_bytes);

  /// Drop every cached buffer (the gauges reset; counters keep counting).
  void clear();

  PoolStats stats() const;

  /// Copy-instrumentation tap: the data path calls this wherever it deep-
  /// copies payload bytes, so benches can report bytes-copied/step.
  void add_copied_bytes(std::size_t bytes) noexcept {
    copied_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// The process-global pool backing mesh::Fab and the kernel scratch.
  static BufferPool& global();

 private:
  template <typename T>
  struct Shelf {
    /// bucket capacity (elements) -> cached buffers of at least that capacity.
    std::map<std::size_t, std::vector<std::vector<T>>> free;
  };

  template <typename T>
  Shelf<T>& shelf();

  static std::size_t bucket_for_acquire(std::size_t n);
  static std::size_t bucket_for_release(std::size_t capacity);

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::size_t capacity_bytes_;
  PoolStats stats_;  // copied_bytes tracked separately in copied_bytes_.
  std::atomic<std::uint64_t> copied_bytes_{0};
  Shelf<double> doubles_;
  Shelf<std::uint8_t> bytes_;
  Shelf<std::uint32_t> u32_;
  Shelf<std::size_t> sizes_;
};

/// RAII scratch buffer: acquires on construction, releases on destruction.
/// The unit of "persistent per-call scratch" for kernels — each task-group
/// chunk holds one for its working set and the pool recycles it for the next.
template <typename T>
class Scratch {
 public:
  Scratch(BufferPool& pool, std::size_t n) : pool_(&pool), buf_(pool.acquire<T>(n)) {}
  explicit Scratch(std::size_t n) : Scratch(BufferPool::global(), n) {}
  ~Scratch() { pool_->release(std::move(buf_)); }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  T* data() noexcept { return buf_.data(); }
  const T* data() const noexcept { return buf_.data(); }
  std::size_t size() const noexcept { return buf_.size(); }
  T& operator[](std::size_t i) { return buf_[i]; }
  const T& operator[](std::size_t i) const { return buf_[i]; }
  std::vector<T>& vec() noexcept { return buf_; }

 private:
  BufferPool* pool_;
  std::vector<T> buf_;
};

}  // namespace xl
