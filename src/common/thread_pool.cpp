#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace xl {

namespace {

thread_local bool tl_on_worker = false;

/// Chunks per worker: >1 evens out imbalanced bodies (marching cubes spends
/// most of its time in a few active slabs) without changing results — chunk
/// boundaries only affect scheduling, never merge order.
constexpr std::size_t kChunksPerWorker = 4;

std::size_t default_global_workers() {
  // xl-lint: allow(banned-symbol): the single sanctioned environment read — the
  // documented XL_THREADS escape hatch for CI and the CLI (config keys win).
  const char* env = std::getenv("XL_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long n = std::strtol(env, nullptr, 10);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

struct GlobalPool {
  Mutex mutex;
  std::unique_ptr<ThreadPool> pool XL_GUARDED_BY(mutex);
};

GlobalPool& global_slot() {
  static GlobalPool slot;
  return slot;
}

}  // namespace

// --- TaskGroup ---------------------------------------------------------------

ThreadPool::TaskGroup::TaskGroup(ThreadPool& pool) : pool_(pool) {}

ThreadPool::TaskGroup::~TaskGroup() {
  MutexLock lock(pool_.mutex_);
  while (pending_ != 0) done_cv_.wait(lock);
}

void ThreadPool::TaskGroup::run(std::function<void()> task) {
  if (pool_.threads_.empty()) {
    task();
    return;
  }
  pool_.enqueue(std::move(task), *this);
}

void ThreadPool::TaskGroup::wait() {
  std::exception_ptr error;
  {
    MutexLock lock(pool_.mutex_);
    while (pending_ != 0) done_cv_.wait(lock);
    std::swap(error, first_error_);
  }
  if (error) std::rethrow_exception(error);
}

// --- ThreadPool --------------------------------------------------------------

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  // Constructed after the threads so no task can reference it before it exists.
  default_group_ = std::make_unique<TaskGroup>(*this);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task, TaskGroup& group) {
  {
    MutexLock lock(mutex_);
    queue_.push(Task{std::move(task), &group});
    ++group.pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  default_group_->run(std::move(task));
}

void ThreadPool::wait() { default_group_->wait(); }

ThreadPool& ThreadPool::global() {
  GlobalPool& slot = global_slot();
  MutexLock lock(slot.mutex);
  if (!slot.pool) slot.pool = std::make_unique<ThreadPool>(default_global_workers());
  return *slot.pool;
}

void ThreadPool::set_global_workers(std::size_t workers) {
  GlobalPool& slot = global_slot();
  MutexLock lock(slot.mutex);
  if (slot.pool && slot.pool->worker_count() == workers) return;
  slot.pool.reset();  // joins the old workers before the new pool spins up
  slot.pool = std::make_unique<ThreadPool>(workers);
}

bool ThreadPool::on_worker_thread() noexcept { return tl_on_worker; }

void ThreadPool::worker_loop() {
  tl_on_worker = true;
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      TaskGroup& group = *task.group;
      if (error && !group.first_error_) group.first_error_ = error;
      if (--group.pending_ == 0) group.done_cv_.notify_all();
    }
  }
}

// --- parallel loops ----------------------------------------------------------

std::size_t parallel_chunk_count(const ThreadPool& pool, std::size_t n) {
  if (n <= 1 || pool.worker_count() <= 1 || ThreadPool::on_worker_thread()) {
    return n == 0 ? 0 : 1;
  }
  return std::min(n, pool.worker_count() * kChunksPerWorker);
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  XL_REQUIRE(begin <= end, "parallel_for range is inverted");
  if (begin == end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = parallel_chunk_count(pool, n);
  if (chunks == 1) {
    body(0, begin, end);
    return;
  }
  // Balanced partition: the first n % chunks chunks take one extra element, so
  // every chunk index in [0, chunks) runs exactly once with a non-empty range.
  // Call sites pre-size per-chunk buffers with parallel_chunk_count and merge
  // over every slot; a ceil-sized partition can tile the range in fewer chunks
  // (n=100, chunks=16 -> 15 invocations of size 7), leaving trailing slots
  // unwritten — fatal when the slots are pooled scratch with recycled contents.
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  ThreadPool::TaskGroup group(pool);
  std::size_t lo = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    group.run([&body, c, lo, hi] { body(c, lo, hi); });
    lo = hi;
  }
  group.wait();
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_chunks(pool, begin, end,
                      [&body](std::size_t, std::size_t lo, std::size_t hi) {
                        body(lo, hi);
                      });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(ThreadPool::global(), begin, end, body);
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  parallel_for_chunks(ThreadPool::global(), begin, end, body);
}

}  // namespace xl
