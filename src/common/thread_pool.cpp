#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace xl {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  if (!threads_.empty()) {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::swap(error, first_error_);
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max<std::size_t>(1, std::thread::hardware_concurrency()) - 1);
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  XL_REQUIRE(begin <= end, "parallel_for range is inverted");
  if (begin == end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::max<std::size_t>(1, pool.worker_count());
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit([&body, lo, hi] { body(lo, hi); });
  }
  pool.wait();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(ThreadPool::global(), begin, end, body);
}

}  // namespace xl
