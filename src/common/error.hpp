// Error-handling primitives used across the library.
//
// Contract checks follow the C++ Core Guidelines Expects/Ensures style:
//   XL_REQUIRE  -- precondition on a public API (throws xl::ContractError)
//   XL_CHECK    -- internal invariant (throws xl::InternalError)
//   XL_UNREACHABLE -- marks impossible control flow
//
// Checks are always on: the library is a research reproduction where silent
// corruption of an experiment is far worse than a branch per call.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace xl {

/// Violation of a caller-facing precondition.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Violation of an internal invariant (a library bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

template <typename E>
[[noreturn]] inline void throw_failure(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw E(os.str());
}

}  // namespace detail
}  // namespace xl

#define XL_REQUIRE(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::xl::detail::throw_failure<::xl::ContractError>(                   \
          "precondition", #cond, __FILE__, __LINE__, std::string(msg));   \
    }                                                                     \
  } while (0)

#define XL_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::xl::detail::throw_failure<::xl::InternalError>(                   \
          "invariant", #cond, __FILE__, __LINE__, std::string(msg));      \
    }                                                                     \
  } while (0)

#define XL_UNREACHABLE(msg)                                               \
  ::xl::detail::throw_failure<::xl::InternalError>("unreachable", "false", \
                                                   __FILE__, __LINE__,    \
                                                   std::string(msg))
