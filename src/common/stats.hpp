// Streaming statistics used throughout the monitor, the DES traces, and the
// benchmark reports: Welford running moments, exact quantiles over retained
// samples, fixed-bin histograms, and an exponentially weighted moving average
// used by the runtime's execution-time estimators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace xl {

/// Welford single-pass mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains every sample; exact quantiles. Fine for per-step experiment series
/// (tens of thousands of samples at most).
///
/// Concurrent const reads are safe: quantile() sorts into a separate cache
/// guarded by a mutex instead of mutating the sample storage in place (the
/// old lazy in-place sort raced when pool workers read stats). Writers
/// (add()) still need external synchronization against readers.
class SampleSet {
 public:
  SampleSet() = default;
  SampleSet(const SampleSet& other) : samples_(other.samples_) {}
  SampleSet& operator=(const SampleSet& other) {
    if (this != &other) {
      samples_ = other.samples_;
      MutexLock lock(cache_mutex_);
      sorted_cache_.clear();
    }
    return *this;
  }

  void add(double x) {
    samples_.push_back(x);
    MutexLock lock(cache_mutex_);
    sorted_cache_.clear();
  }
  std::size_t count() const noexcept { return samples_.size(); }
  double quantile(double q) const;  ///< q in [0,1]; linear interpolation.
  double median() const { return quantile(0.5); }
  double mean() const noexcept;
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }
  /// Samples in insertion order (never reordered by const accessors).
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  XL_UNGUARDED("writers need external synchronization; const reads are safe")
  std::vector<double> samples_;
  mutable std::vector<double> sorted_cache_ XL_GUARDED_BY(cache_mutex_);
  mutable Mutex cache_mutex_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for the Fig. 1 memory-distribution report.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Render as a compact ASCII bar chart (one line per bin).
  std::string to_string(std::size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponentially weighted moving average; the middleware policy's default
/// estimator for per-step analysis times (eq. 7 needs a forecast of
/// T_intransit_remaining and T_insitu).
class Ewma {
 public:
  explicit Ewma(double alpha = 0.5);

  void add(double x) noexcept;
  bool empty() const noexcept { return !has_value_; }
  double value() const noexcept { return value_; }
  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

}  // namespace xl
