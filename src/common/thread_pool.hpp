// Shared-memory work distribution for the real kernels (AMR sweeps, marching
// cubes, entropy). OpenMP-style static chunking over an index range; the pool
// is optional — with 0 or 1 workers parallel_for degrades to a serial loop.
//
// Determinism contract: every kernel built on parallel_for/parallel_for_chunks
// merges per-chunk results in chunk order, so any worker count (including 0)
// produces bit-identical output. The process-wide default pool starts with 0
// workers (serial); it is sized by `xlayer_cli --threads`, the `threads`
// config key, or the XL_THREADS environment variable.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace xl {

/// Fixed-size worker pool with a simple task queue. Tasks must not throw
/// across the pool boundary; exceptions are captured and rethrown by the
/// owning TaskGroup's wait() (or by ThreadPool::wait() for bare submits).
class ThreadPool {
 public:
  /// Waitable set of tasks submitted to one pool. Each parallel_for call owns
  /// its own group, so two concurrent parallel_fors on the same pool never
  /// wait on each other's tasks.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool);
    /// Blocks until every task of THIS group finished; pending exceptions are
    /// swallowed here — call wait() explicitly to observe them.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueue a task into this group; runs inline when the pool has no
    /// workers (exceptions then propagate directly from run()).
    void run(std::function<void()> task);

    /// Block until every task of this group finished; rethrows the first
    /// captured exception, if any. The group is reusable afterwards.
    void wait();

   private:
    friend class ThreadPool;
    XL_UNGUARDED("reference to the owning pool, immutable after construction")
    ThreadPool& pool_;
    std::size_t pending_ XL_GUARDED_BY(pool_.mutex_) = 0;
    std::exception_ptr first_error_ XL_GUARDED_BY(pool_.mutex_);
    XL_UNGUARDED("condition variables synchronize internally")
    CondVar done_cv_;
  };

  /// @param workers number of worker threads; 0 means "run inline on the caller".
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueue a task into the pool's default group; runs inline when the pool
  /// has no workers.
  void submit(std::function<void()> task);

  /// Block until the default group (bare submit()s) is drained; rethrows the
  /// first captured exception, if any. Tasks owned by explicit TaskGroups are
  /// NOT waited on here — each group scopes its own wait.
  void wait();

  /// Process-wide default pool. Starts with XL_THREADS workers (0 — serial —
  /// when unset), resizable via set_global_workers().
  static ThreadPool& global();

  /// Resize the global pool. Must not be called while kernels are in flight
  /// (intended for startup / between runs: CLI flag, config key, tests).
  static void set_global_workers(std::size_t workers);

  /// True when the calling thread is a worker of any ThreadPool. parallel_for
  /// uses this to run nested parallelism inline instead of deadlocking on a
  /// queue its own worker would have to drain.
  static bool on_worker_thread() noexcept;

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void enqueue(std::function<void()> task, TaskGroup& group) XL_EXCLUDES(mutex_);
  void worker_loop();

  XL_UNGUARDED("written once in the constructor before any worker can race")
  std::vector<std::thread> threads_;
  std::queue<Task> queue_ XL_GUARDED_BY(mutex_);
  Mutex mutex_;
  XL_UNGUARDED("condition variables synchronize internally")
  CondVar work_cv_;
  bool stop_ XL_GUARDED_BY(mutex_) = false;
  XL_UNGUARDED("written once in the constructor before any submit can race")
  std::unique_ptr<TaskGroup> default_group_;
};

/// Static-chunked parallel loop over [begin, end). The body receives a
/// half-open subrange [lo, hi). Runs serially when the pool has <= 1 workers
/// or when called from inside a pool worker (nested parallelism).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Number of chunks parallel_for_chunks will split an n-element range into on
/// this pool from the calling thread (1 on the serial paths). Call sites that
/// accumulate per-chunk results pre-size their buffers with this.
std::size_t parallel_chunk_count(const ThreadPool& pool, std::size_t n);

/// Like parallel_for, but the body also receives the chunk index c. Every
/// chunk index in [0, parallel_chunk_count(pool, end - begin)) is invoked
/// exactly once with a non-empty subrange — per-chunk result buffers sized by
/// parallel_chunk_count are therefore fully written before any merge reads
/// them. Chunks partition the range in order (chunk 0 is the lowest
/// subrange), so merging per-chunk results by chunk index reproduces the
/// serial traversal order exactly.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Convenience overload on the global pool.
void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

}  // namespace xl
