// Shared-memory work distribution for the real kernels (AMR sweeps, marching
// cubes, entropy). OpenMP-style static chunking over an index range; the pool
// is optional — with 0 or 1 workers parallel_for degrades to a serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xl {

/// Fixed-size worker pool with a simple task queue. Tasks must not throw
/// across the pool boundary; exceptions are captured and rethrown by wait().
class ThreadPool {
 public:
  /// @param workers number of worker threads; 0 means "run inline on the caller".
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueue a task; runs inline when the pool has no workers.
  void submit(std::function<void()> task);

  /// Block until the queue is drained and all workers are idle; rethrows the
  /// first captured exception, if any.
  void wait();

  /// Process-wide default pool sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Static-chunked parallel loop over [begin, end). The body receives a
/// half-open subrange [lo, hi); chunk count defaults to worker count.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace xl
