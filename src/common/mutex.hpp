// Capability-annotated synchronization primitives. Clang's thread-safety
// analysis only tracks lock/unlock through functions that carry acquire /
// release attributes, and libstdc++'s std::mutex has none — so every
// mutex-owning class in the tree uses these thin wrappers instead. They add
// no state and no behavior over the std primitives; gcc builds compile them
// to exactly the std code they wrap.
//
// Wait loops are written out explicitly at the call sites:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
//
// rather than with a predicate lambda — the analysis cannot see through a
// lambda that reads guarded fields, but it checks the inline loop fine.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"

namespace xl {

class CondVar;

/// std::mutex with acquire/release capability annotations.
class XL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XL_ACQUIRE() { m_.lock(); }
  void unlock() XL_RELEASE() { m_.unlock(); }
  bool try_lock() XL_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock on an xl::Mutex — the annotated stand-in for std::lock_guard /
/// std::unique_lock. Always locks for the full scope; CondVar::wait releases
/// and reacquires atomically through it.
class XL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) XL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() XL_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mutex_;
};

/// Condition variable over xl::Mutex. wait() atomically releases the lock,
/// blocks, and reacquires before returning — from the analysis's point of
/// view the capability is held across the call, which matches the invariant
/// the caller relies on (guarded state may only be re-checked after wait()
/// returns, i.e. with the lock held again).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.mutex_.m_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace xl
