// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage:
//   XL_LOG_INFO("regrid produced " << nboxes << " boxes");
// Level is a process-wide setting (default: Warn) so that test and bench
// output stays clean; examples raise it to Info.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace xl::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide minimum level that will be emitted.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Emit one formatted record (used by the macros below).
void write(Level level, const char* file, int line, const std::string& message);

const char* level_name(Level level) noexcept;

}  // namespace xl::log

#define XL_LOG_AT(lvl, expr)                                          \
  do {                                                                \
    if (static_cast<int>(lvl) >= static_cast<int>(::xl::log::threshold())) { \
      std::ostringstream xl_log_os;                                   \
      xl_log_os << expr;                                              \
      ::xl::log::write(lvl, __FILE__, __LINE__, xl_log_os.str());     \
    }                                                                 \
  } while (0)

#define XL_LOG_TRACE(expr) XL_LOG_AT(::xl::log::Level::Trace, expr)
#define XL_LOG_DEBUG(expr) XL_LOG_AT(::xl::log::Level::Debug, expr)
#define XL_LOG_INFO(expr) XL_LOG_AT(::xl::log::Level::Info, expr)
#define XL_LOG_WARN(expr) XL_LOG_AT(::xl::log::Level::Warn, expr)
#define XL_LOG_ERROR(expr) XL_LOG_AT(::xl::log::Level::Error, expr)
