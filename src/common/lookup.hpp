// Checked container accessors: every keyed or indexed lookup that must hit
// goes through one of these, so a miss reports *which* key or index failed
// (via common/error.hpp) instead of surfacing as a bare std::out_of_range
// with no context.
#pragma once

#include <cstddef>
#include <sstream>

#include "common/error.hpp"

namespace xl {

/// Checked associative lookup: returns a reference to the mapped value, or
/// throws xl::ContractError naming the container and the missing key.
template <typename Map, typename Key>
const typename Map::mapped_type& map_at(const Map& map, const Key& key,
                                        const char* what) {
  const auto it = map.find(key);
  if (it == map.end()) {
    std::ostringstream os;
    os << what << ": no entry for key " << key;
    throw ContractError(os.str());
  }
  return it->second;
}

template <typename Map, typename Key>
typename Map::mapped_type& map_at(Map& map, const Key& key, const char* what) {
  const auto it = map.find(key);
  if (it == map.end()) {
    std::ostringstream os;
    os << what << ": no entry for key " << key;
    throw ContractError(os.str());
  }
  return it->second;
}

/// Checked random-access lookup: bounds-checked like .at(), but the failure
/// reports the container name, the index, and the size.
template <typename Seq>
const typename Seq::value_type& at_index(const Seq& seq, std::size_t index,
                                         const char* what) {
  if (index >= seq.size()) {
    std::ostringstream os;
    os << what << ": index " << index << " out of range (size " << seq.size() << ")";
    throw ContractError(os.str());
  }
  return seq[index];
}

template <typename Seq>
typename Seq::value_type& at_index(Seq& seq, std::size_t index, const char* what) {
  if (index >= seq.size()) {
    std::ostringstream os;
    os << what << ": index " << index << " out of range (size " << seq.size() << ")";
    throw ContractError(os.str());
  }
  return seq[index];
}

}  // namespace xl
