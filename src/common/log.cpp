#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/mutex.hpp"

namespace xl::log {
namespace {

std::atomic<int> g_threshold{static_cast<int>(Level::Warn)};
Mutex g_write_mutex;

}  // namespace

Level threshold() noexcept { return static_cast<Level>(g_threshold.load(std::memory_order_relaxed)); }

void set_threshold(Level level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

void write(Level level, const char* file, int line, const std::string& message) {
  // Strip directories so records stay short.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "[%-5s] %s:%d: %s\n", level_name(level), base, line, message.c_str());
}

}  // namespace xl::log
