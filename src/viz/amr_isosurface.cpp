#include "viz/amr_isosurface.hpp"

#include "common/thread_pool.hpp"

namespace xl::viz {

using amr::AmrHierarchy;
using mesh::Box;
using mesh::BoxIterator;
using mesh::IntVect;

TriangleMesh extract_amr_isosurface(const AmrHierarchy& hierarchy, double isovalue,
                                    int comp, double dx0, IsosurfaceStats* stats) {
  TriangleMesh mesh;
  double dx = dx0;
  ThreadPool& pool = ThreadPool::global();
  for (std::size_t lev = 0; lev < hierarchy.num_levels(); ++lev) {
    const amr::AmrLevel& level = hierarchy.level(lev);
    const std::size_t nboxes = level.layout.num_boxes();
    const bool finest = lev + 1 == hierarchy.num_levels();
    // Boxes are independent: extract each into its own part mesh, then append
    // in box order — identical to the serial traversal for any thread count.
    // With few boxes the box loop runs on the caller and the per-box
    // extraction parallelizes internally instead (nested loops run inline).
    std::vector<TriangleMesh> parts(nboxes);
    std::vector<std::size_t> scanned(nboxes, 0);
    std::vector<std::size_t> active(nboxes, 0);
    parallel_for(pool, 0, nboxes, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t i = blo; i < bhi; ++i) {
        const Box valid = level.layout.box(i);
        if (finest) {
          // Finest level: extract over the whole valid region at once.
          parts[i] = extract_isosurface(level.data[i], valid, isovalue, comp, dx);
          if (stats) {
            scanned[i] = static_cast<std::size_t>(valid.num_cells());
            active[i] = count_active_cells(level.data[i], valid, isovalue, comp);
          }
        } else {
          // Masked extraction: walk cells, skip those covered by finer data.
          for (BoxIterator it(valid); it.ok(); ++it) {
            if (!hierarchy.is_finest_at(lev, *it)) continue;
            const Box cell(*it, *it);
            TriangleMesh part =
                extract_isosurface(level.data[i], cell, isovalue, comp, dx);
            if (stats) {
              ++scanned[i];
              active[i] += count_active_cells(level.data[i], cell, isovalue, comp);
            }
            parts[i].append(part);
          }
        }
      }
    });
    // Reserve the level's full contribution before the ordered merge so the
    // cumulative mesh grows once per level, not once per re-allocation.
    std::size_t level_vertices = 0;
    for (const TriangleMesh& part : parts) level_vertices += part.vertices.size();
    mesh.vertices.reserve(mesh.vertices.size() + level_vertices);
    for (std::size_t i = 0; i < nboxes; ++i) {
      mesh.append(parts[i]);
      if (stats) {
        stats->cells_scanned += scanned[i];
        stats->active_cells += active[i];
      }
    }
    dx /= static_cast<double>(hierarchy.config().ref_ratio);
  }
  if (stats) stats->triangles = mesh.triangle_count();
  return mesh;
}

}  // namespace xl::viz
