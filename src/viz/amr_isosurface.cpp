#include "viz/amr_isosurface.hpp"

namespace xl::viz {

using amr::AmrHierarchy;
using mesh::Box;
using mesh::BoxIterator;
using mesh::IntVect;

TriangleMesh extract_amr_isosurface(const AmrHierarchy& hierarchy, double isovalue,
                                    int comp, double dx0, IsosurfaceStats* stats) {
  TriangleMesh mesh;
  double dx = dx0;
  for (std::size_t lev = 0; lev < hierarchy.num_levels(); ++lev) {
    const amr::AmrLevel& level = hierarchy.level(lev);
    for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
      const Box valid = level.layout.box(i);
      if (lev + 1 == hierarchy.num_levels()) {
        // Finest level: extract over the whole valid region at once.
        TriangleMesh part = extract_isosurface(level.data[i], valid, isovalue, comp, dx);
        if (stats) {
          stats->cells_scanned += static_cast<std::size_t>(valid.num_cells());
          stats->active_cells += count_active_cells(level.data[i], valid, isovalue, comp);
        }
        mesh.append(part);
      } else {
        // Masked extraction: walk cells, skip those covered by finer data.
        for (BoxIterator it(valid); it.ok(); ++it) {
          if (!hierarchy.is_finest_at(lev, *it)) continue;
          const Box cell(*it, *it);
          TriangleMesh part = extract_isosurface(level.data[i], cell, isovalue, comp, dx);
          if (stats) {
            ++stats->cells_scanned;
            stats->active_cells += count_active_cells(level.data[i], cell, isovalue, comp);
          }
          mesh.append(part);
        }
      }
    }
    dx /= static_cast<double>(hierarchy.config().ref_ratio);
  }
  if (stats) stats->triangles = mesh.triangle_count();
  return mesh;
}

}  // namespace xl::viz
