#include "viz/mesh_io.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace xl::viz {

void write_obj(std::ostream& os, const TriangleMesh& mesh, const std::string& object_name) {
  os << "o " << object_name << "\n";
  for (const Vec3& v : mesh.vertices) {
    os << "v " << v.x << " " << v.y << " " << v.z << "\n";
  }
  for (std::size_t t = 0; t < mesh.triangle_count(); ++t) {
    const std::size_t base = 3 * t + 1;  // OBJ indices are 1-based
    os << "f " << base << " " << base + 1 << " " << base + 2 << "\n";
  }
}

void write_obj_file(const std::string& path, const TriangleMesh& mesh,
                    const std::string& object_name) {
  std::ofstream os(path);
  XL_REQUIRE(os.good(), "cannot open OBJ output file: " + path);
  write_obj(os, mesh, object_name);
  XL_REQUIRE(os.good(), "error writing OBJ file: " + path);
}

}  // namespace xl::viz
