#include "viz/marching_cubes.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "viz/mc_tables.hpp"

namespace xl::viz {

using mesh::Box;
using mesh::Fab;

namespace {

/// Interpolate the crossing point on the edge between corner values va, vb at
/// lattice positions pa, pb.
Vec3 interp_vertex(const Vec3& pa, const Vec3& pb, double va, double vb, double iso) {
  const double denom = vb - va;
  double t = std::fabs(denom) < 1e-300 ? 0.5 : (iso - va) / denom;
  t = std::clamp(t, 0.0, 1.0);
  return {pa.x + t * (pb.x - pa.x), pa.y + t * (pb.y - pa.y), pa.z + t * (pb.z - pa.z)};
}

/// Cells whose full corner cube (p .. p+1) lies inside the fab. The seed
/// per-cell scan returned -1 (no output) for any cell with an out-of-fab
/// corner, so clipping the scan to this box up front is output-identical.
Box valid_corner_cells(const Fab& fab, const Box& region) {
  return Box(fab.box().lo(), fab.box().hi() - 1) & region;
}

/// Load the 8 cube corners of cell x0+i from the four cached row pointers
/// (PolyVox-style slice caching: the rows at (j,k), (j+1,k), (j,k+1),
/// (j+1,k+1) serve every cell of the row; only the x index moves). Corner
/// numbering follows kCornerOffset. Returns the cube configuration index.
int cube_index_rows(const double* r00, const double* r10, const double* r01,
                    const double* r11, std::size_t i, double iso,
                    double corner[8]) {
  corner[0] = r00[i];
  corner[1] = r00[i + 1];
  corner[2] = r10[i + 1];
  corner[3] = r10[i];
  corner[4] = r01[i];
  corner[5] = r01[i + 1];
  corner[6] = r11[i + 1];
  corner[7] = r11[i];
  int index = 0;
  for (int c = 0; c < 8; ++c) {
    if (corner[c] < iso) index |= 1 << c;
  }
  return index;
}

/// Serial triangulation over `region`, appended to `mesh` in iteration order.
void extract_into(const Fab& fab, const Box& region, double isovalue, int comp,
                  double dx, const Vec3& origin, TriangleMesh& mesh) {
  const Box scan = valid_corner_cells(fab, region);
  if (scan.empty()) return;
  const int x0 = scan.lo()[0];
  const auto nx = static_cast<std::size_t>(scan.size()[0]);
  const auto xoff = static_cast<std::size_t>(x0 - fab.box().lo()[0]);
  double corner[8];
  Vec3 edge_vertex[12];
  mesh::for_each_row(scan, [&](int j, int k) {
    const double* r00 = fab.row(comp, j, k) + xoff;
    const double* r10 = fab.row(comp, j + 1, k) + xoff;
    const double* r01 = fab.row(comp, j, k + 1) + xoff;
    const double* r11 = fab.row(comp, j + 1, k + 1) + xoff;
    for (std::size_t i = 0; i < nx; ++i) {
      const int index =
          cube_index_rows(r00, r10, r01, r11, i, isovalue, corner);
      if (index == 0 || index == 255) continue;
      const std::uint16_t edges = kEdgeTable[index];
      if (edges == 0) continue;
      const int px = x0 + static_cast<int>(i);
      for (int e = 0; e < 12; ++e) {
        if (!(edges & (1u << e))) continue;
        const int a = kEdgeCorners[e][0];
        const int b = kEdgeCorners[e][1];
        const Vec3 pa{origin.x + (px + kCornerOffset[a][0] + 0.5) * dx,
                      origin.y + (j + kCornerOffset[a][1] + 0.5) * dx,
                      origin.z + (k + kCornerOffset[a][2] + 0.5) * dx};
        const Vec3 pb{origin.x + (px + kCornerOffset[b][0] + 0.5) * dx,
                      origin.y + (j + kCornerOffset[b][1] + 0.5) * dx,
                      origin.z + (k + kCornerOffset[b][2] + 0.5) * dx};
        edge_vertex[e] = interp_vertex(pa, pb, corner[a], corner[b], isovalue);
      }
      for (int t = 0; kTriTable[index][t] != -1; t += 3) {
        mesh.vertices.push_back(edge_vertex[kTriTable[index][t]]);
        mesh.vertices.push_back(edge_vertex[kTriTable[index][t + 1]]);
        mesh.vertices.push_back(edge_vertex[kTriTable[index][t + 2]]);
      }
    }
  });
}

}  // namespace

TriangleMesh extract_isosurface(const Fab& fab, const Box& region, double isovalue,
                                int comp, double dx, const Vec3& origin) {
  XL_REQUIRE(comp >= 0 && comp < fab.ncomp(), "component out of range");
  if (region.empty()) return {};
  ThreadPool& pool = ThreadPool::global();
  const auto nz = static_cast<std::size_t>(region.size()[2]);
  const std::size_t nchunks = parallel_chunk_count(pool, nz);
  if (nchunks <= 1) {
    TriangleMesh mesh;
    extract_into(fab, region, isovalue, comp, dx, origin, mesh);
    return mesh;
  }
  // Per-slab meshes appended in slab order reproduce the serial vertex order
  // exactly (slabs partition the region along the slowest iteration axis).
  std::vector<TriangleMesh> parts(nchunks);
  parallel_for_chunks(pool, 0, nz,
                      [&](std::size_t c, std::size_t zb, std::size_t ze) {
    extract_into(fab, mesh::z_slab(region, zb, ze), isovalue, comp, dx, origin,
                 parts[c]);
  });
  // Size the destination from the partial sizes up front: the ordered merge
  // then copies each slab exactly once instead of re-growing the vector.
  std::size_t total_vertices = 0;
  for (const TriangleMesh& part : parts) total_vertices += part.vertices.size();
  TriangleMesh mesh;
  mesh.vertices.reserve(total_vertices);
  for (TriangleMesh& part : parts) mesh.append(part);
  return mesh;
}

std::size_t count_active_cells(const Fab& fab, const Box& region, double isovalue,
                               int comp) {
  if (region.empty()) return 0;
  ThreadPool& pool = ThreadPool::global();
  const auto nz = static_cast<std::size_t>(region.size()[2]);
  const std::size_t nchunks = parallel_chunk_count(pool, nz);
  std::vector<std::size_t> slab_active(nchunks, 0);
  parallel_for_chunks(pool, 0, nz,
                      [&](std::size_t c, std::size_t zb, std::size_t ze) {
    std::size_t active = 0;
    double corner[8];
    const Box scan = valid_corner_cells(fab, mesh::z_slab(region, zb, ze));
    if (scan.empty()) return;
    const auto nx = static_cast<std::size_t>(scan.size()[0]);
    const auto xoff = static_cast<std::size_t>(scan.lo()[0] - fab.box().lo()[0]);
    mesh::for_each_row(scan, [&](int j, int k) {
      const double* r00 = fab.row(comp, j, k) + xoff;
      const double* r10 = fab.row(comp, j + 1, k) + xoff;
      const double* r01 = fab.row(comp, j, k + 1) + xoff;
      const double* r11 = fab.row(comp, j + 1, k + 1) + xoff;
      for (std::size_t i = 0; i < nx; ++i) {
        const int index =
            cube_index_rows(r00, r10, r01, r11, i, isovalue, corner);
        if (index > 0 && index < 255) ++active;
      }
    });
    slab_active[c] = active;
  });
  std::size_t active = 0;
  for (std::size_t a : slab_active) active += a;
  return active;
}

}  // namespace xl::viz
