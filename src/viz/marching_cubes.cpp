#include "viz/marching_cubes.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "viz/mc_tables.hpp"

namespace xl::viz {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;
using mesh::IntVect;

namespace {

/// Interpolate the crossing point on the edge between corner values va, vb at
/// lattice positions pa, pb.
Vec3 interp_vertex(const Vec3& pa, const Vec3& pb, double va, double vb, double iso) {
  const double denom = vb - va;
  double t = std::fabs(denom) < 1e-300 ? 0.5 : (iso - va) / denom;
  t = std::clamp(t, 0.0, 1.0);
  return {pa.x + t * (pb.x - pa.x), pa.y + t * (pb.y - pa.y), pa.z + t * (pb.z - pa.z)};
}

/// Cube configuration index of the cell at `p` (corners sample cell centers
/// p .. p+1). Returns -1 when any corner is outside the fab.
int cube_index(const Fab& fab, const IntVect& p, double iso, int comp, double corner[8]) {
  int index = 0;
  for (int i = 0; i < 8; ++i) {
    const IntVect c{p[0] + kCornerOffset[i][0], p[1] + kCornerOffset[i][1],
                    p[2] + kCornerOffset[i][2]};
    if (!fab.box().contains(c)) return -1;
    corner[i] = fab(c, comp);
    if (corner[i] < iso) index |= 1 << i;
  }
  return index;
}

/// Serial triangulation over `region`, appended to `mesh` in iteration order.
void extract_into(const Fab& fab, const Box& region, double isovalue, int comp,
                  double dx, const Vec3& origin, TriangleMesh& mesh) {
  double corner[8];
  Vec3 edge_vertex[12];
  for (BoxIterator it(region); it.ok(); ++it) {
    const IntVect& p = *it;
    const int index = cube_index(fab, p, isovalue, comp, corner);
    if (index <= 0 || index == 255) continue;
    const std::uint16_t edges = kEdgeTable[index];
    if (edges == 0) continue;
    for (int e = 0; e < 12; ++e) {
      if (!(edges & (1u << e))) continue;
      const int a = kEdgeCorners[e][0];
      const int b = kEdgeCorners[e][1];
      const Vec3 pa{origin.x + (p[0] + kCornerOffset[a][0] + 0.5) * dx,
                    origin.y + (p[1] + kCornerOffset[a][1] + 0.5) * dx,
                    origin.z + (p[2] + kCornerOffset[a][2] + 0.5) * dx};
      const Vec3 pb{origin.x + (p[0] + kCornerOffset[b][0] + 0.5) * dx,
                    origin.y + (p[1] + kCornerOffset[b][1] + 0.5) * dx,
                    origin.z + (p[2] + kCornerOffset[b][2] + 0.5) * dx};
      edge_vertex[e] = interp_vertex(pa, pb, corner[a], corner[b], isovalue);
    }
    for (int t = 0; kTriTable[index][t] != -1; t += 3) {
      mesh.vertices.push_back(edge_vertex[kTriTable[index][t]]);
      mesh.vertices.push_back(edge_vertex[kTriTable[index][t + 1]]);
      mesh.vertices.push_back(edge_vertex[kTriTable[index][t + 2]]);
    }
  }
}

}  // namespace

TriangleMesh extract_isosurface(const Fab& fab, const Box& region, double isovalue,
                                int comp, double dx, const Vec3& origin) {
  XL_REQUIRE(comp >= 0 && comp < fab.ncomp(), "component out of range");
  if (region.empty()) return {};
  ThreadPool& pool = ThreadPool::global();
  const auto nz = static_cast<std::size_t>(region.size()[2]);
  const std::size_t nchunks = parallel_chunk_count(pool, nz);
  if (nchunks <= 1) {
    TriangleMesh mesh;
    extract_into(fab, region, isovalue, comp, dx, origin, mesh);
    return mesh;
  }
  // Per-slab meshes appended in slab order reproduce the serial vertex order
  // exactly (slabs partition the region along the slowest iteration axis).
  std::vector<TriangleMesh> parts(nchunks);
  parallel_for_chunks(pool, 0, nz,
                      [&](std::size_t c, std::size_t zb, std::size_t ze) {
    extract_into(fab, mesh::z_slab(region, zb, ze), isovalue, comp, dx, origin,
                 parts[c]);
  });
  // Size the destination from the partial sizes up front: the ordered merge
  // then copies each slab exactly once instead of re-growing the vector.
  std::size_t total_vertices = 0;
  for (const TriangleMesh& part : parts) total_vertices += part.vertices.size();
  TriangleMesh mesh;
  mesh.vertices.reserve(total_vertices);
  for (TriangleMesh& part : parts) mesh.append(part);
  return mesh;
}

std::size_t count_active_cells(const Fab& fab, const Box& region, double isovalue,
                               int comp) {
  if (region.empty()) return 0;
  ThreadPool& pool = ThreadPool::global();
  const auto nz = static_cast<std::size_t>(region.size()[2]);
  const std::size_t nchunks = parallel_chunk_count(pool, nz);
  std::vector<std::size_t> slab_active(nchunks, 0);
  parallel_for_chunks(pool, 0, nz,
                      [&](std::size_t c, std::size_t zb, std::size_t ze) {
    std::size_t active = 0;
    double corner[8];
    for (BoxIterator it(mesh::z_slab(region, zb, ze)); it.ok(); ++it) {
      const int index = cube_index(fab, *it, isovalue, comp, corner);
      if (index > 0 && index < 255) ++active;
    }
    slab_active[c] = active;
  });
  std::size_t active = 0;
  for (std::size_t a : slab_active) active += a;
  return active;
}

}  // namespace xl::viz
