// Triangle-mesh output: Wavefront OBJ (portable, viewable anywhere). The
// examples use this to dump the extracted isosurfaces.
#pragma once

#include <iosfwd>
#include <string>

#include "viz/marching_cubes.hpp"

namespace xl::viz {

/// Write `mesh` as OBJ text to `os` (one `v` line per vertex, `f` triples).
void write_obj(std::ostream& os, const TriangleMesh& mesh,
               const std::string& object_name = "isosurface");

/// Convenience: write to a file path; throws on I/O failure.
void write_obj_file(const std::string& path, const TriangleMesh& mesh,
                    const std::string& object_name = "isosurface");

}  // namespace xl::viz
