// Marching-cubes isosurface extraction over a Fab, the paper's visualization
// analysis kernel: each cell is triangulated locally from the 256-case
// tables, so the algorithm needs no communication — exactly the property the
// paper exploits to run it either in-situ or in-transit.
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/fab.hpp"

namespace xl::viz {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

/// Indexed triangle mesh (no vertex sharing across cells: marching cubes
/// output is a triangle soup; welding is an optional post-pass).
struct TriangleMesh {
  std::vector<Vec3> vertices;         ///< 3 consecutive vertices per triangle.
  std::size_t triangle_count() const noexcept { return vertices.size() / 3; }

  void append(const TriangleMesh& other) {
    vertices.insert(vertices.end(), other.vertices.begin(), other.vertices.end());
  }

  /// Payload bytes (what a transfer of this mesh costs).
  std::size_t bytes() const noexcept { return vertices.size() * sizeof(Vec3); }
};

/// Extract the isosurface of `comp` of `fab` at `isovalue` over the cells of
/// `region` (cell corners sample the field at cell centers; `region` must be
/// shrinkable by 1 in each dim within fab's box so corner stencils resolve).
/// `dx` scales vertices to physical coordinates; `origin` offsets them.
TriangleMesh extract_isosurface(const mesh::Fab& fab, const mesh::Box& region,
                                double isovalue, int comp = 0, double dx = 1.0,
                                const Vec3& origin = {});

/// Count the cells of `region` whose cube configuration is non-trivial (used
/// by the cost model: marching-cubes time ~ cells scanned + k * active cells).
std::size_t count_active_cells(const mesh::Fab& fab, const mesh::Box& region,
                               double isovalue, int comp = 0);

}  // namespace xl::viz
