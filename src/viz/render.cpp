#include "viz/render.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace xl::viz {

namespace {

Vec3 normalize(const Vec3& v) {
  const double len = std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
  XL_REQUIRE(len > 0.0, "zero-length direction");
  return {v.x / len, v.y / len, v.z / len};
}

Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

double dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

Vec3 sub(const Vec3& a, const Vec3& b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }

}  // namespace

Image::Image(int width, int height, std::array<std::uint8_t, 3> fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
  XL_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
}

std::array<std::uint8_t, 3>& Image::at(int x, int y) {
  XL_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_, "pixel out of range");
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

const std::array<std::uint8_t, 3>& Image::at(int x, int y) const {
  XL_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_, "pixel out of range");
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void Image::write_ppm(std::ostream& os) const {
  os << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (const auto& px : pixels_) {
    os.write(reinterpret_cast<const char*>(px.data()), 3);
  }
  XL_REQUIRE(os.good(), "PPM write failed");
}

void Image::write_ppm_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  XL_REQUIRE(os.good(), "cannot open PPM output: " + path);
  write_ppm(os);
}

double Image::coverage(std::array<std::uint8_t, 3> background) const {
  std::size_t covered = 0;
  for (const auto& px : pixels_) covered += px != background;
  return static_cast<double>(covered) / static_cast<double>(pixels_.size());
}

Image render_mesh(const TriangleMesh& mesh, const RenderConfig& config) {
  Image image(config.width, config.height, config.background_rgb);
  if (mesh.vertices.empty()) return image;

  // Camera basis: view direction w, screen axes u (right) and v (up).
  const Vec3 w = normalize(config.view_dir);
  const Vec3 seed = std::fabs(w.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  const Vec3 u = normalize(cross(seed, w));
  const Vec3 v = cross(w, u);
  const Vec3 light = normalize(config.light_dir);

  // Project all vertices; fit the orthographic window to the projection.
  struct P {
    double x, y, depth;
  };
  std::vector<P> proj(mesh.vertices.size());
  double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
  for (std::size_t i = 0; i < mesh.vertices.size(); ++i) {
    const Vec3& p = mesh.vertices[i];
    proj[i] = {dot(p, u), dot(p, v), dot(p, w)};
    x_lo = std::min(x_lo, proj[i].x);
    x_hi = std::max(x_hi, proj[i].x);
    y_lo = std::min(y_lo, proj[i].y);
    y_hi = std::max(y_hi, proj[i].y);
  }
  const double span = std::max({x_hi - x_lo, y_hi - y_lo, 1e-12}) * 1.05;
  const double cx = 0.5 * (x_lo + x_hi), cy = 0.5 * (y_lo + y_hi);
  auto to_px = [&](double x) {
    return (x - cx) / span * config.width + config.width / 2.0;
  };
  auto to_py = [&](double y) {
    return config.height / 2.0 - (y - cy) / span * config.height;
  };

  std::vector<double> zbuf(static_cast<std::size_t>(config.width) * config.height,
                           -std::numeric_limits<double>::infinity());

  for (std::size_t t = 0; t < mesh.triangle_count(); ++t) {
    const P& a = proj[3 * t];
    const P& b = proj[3 * t + 1];
    const P& c = proj[3 * t + 2];
    // Shading from the geometric normal (two-sided).
    const Vec3 e1 = sub(mesh.vertices[3 * t + 1], mesh.vertices[3 * t]);
    const Vec3 e2 = sub(mesh.vertices[3 * t + 2], mesh.vertices[3 * t]);
    Vec3 n = cross(e1, e2);
    const double nlen = std::sqrt(dot(n, n));
    if (nlen <= 0.0) continue;  // degenerate triangle
    n = {n.x / nlen, n.y / nlen, n.z / nlen};
    const double lambert = std::fabs(dot(n, light));
    const double shade = config.ambient + (1.0 - config.ambient) * lambert;

    const double ax = to_px(a.x), ay = to_py(a.y);
    const double bx = to_px(b.x), by = to_py(b.y);
    const double cx2 = to_px(c.x), cy2 = to_py(c.y);
    const double area = (bx - ax) * (cy2 - ay) - (by - ay) * (cx2 - ax);
    if (std::fabs(area) < 1e-12) continue;

    const int px_lo = std::max(0, f2i<int>(std::floor(std::min({ax, bx, cx2}))));
    const int px_hi =
        std::min(config.width - 1, f2i<int>(std::ceil(std::max({ax, bx, cx2}))));
    const int py_lo = std::max(0, f2i<int>(std::floor(std::min({ay, by, cy2}))));
    const int py_hi =
        std::min(config.height - 1, f2i<int>(std::ceil(std::max({ay, by, cy2}))));
    for (int py = py_lo; py <= py_hi; ++py) {
      for (int px = px_lo; px <= px_hi; ++px) {
        const double x = px + 0.5, y = py + 0.5;
        const double w0 = ((bx - x) * (cy2 - y) - (by - y) * (cx2 - x)) / area;
        const double w1 = ((cx2 - x) * (ay - y) - (cy2 - y) * (ax - x)) / area;
        const double w2 = 1.0 - w0 - w1;
        if (w0 < 0.0 || w1 < 0.0 || w2 < 0.0) continue;
        const double depth = w0 * a.depth + w1 * b.depth + w2 * c.depth;
        auto& z = zbuf[static_cast<std::size_t>(py) * config.width + px];
        if (depth <= z) continue;
        z = depth;
        auto& out = image.at(px, py);
        for (int ch = 0; ch < 3; ++ch) {
          // xl-lint: allow(float-cast): clamped to [0,255] in floating point; shade and
          // rgb are finite by construction, and this per-pixel loop is hot.
          out[static_cast<std::size_t>(ch)] = static_cast<std::uint8_t>(
              std::clamp(shade * config.surface_rgb[static_cast<std::size_t>(ch)],
                         0.0, 255.0));
        }
      }
    }
  }
  return image;
}

}  // namespace xl::viz
