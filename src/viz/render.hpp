// Software rendering of triangle meshes to PPM images: the last mile of the
// paper's visualization service. An orthographic depth-buffered rasterizer
// with Lambertian shading — enough to regenerate Fig. 6-style side-by-side
// isosurface renderings without any graphics stack.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "viz/marching_cubes.hpp"

namespace xl::viz {

struct RenderConfig {
  int width = 512;
  int height = 512;
  /// View direction (orthographic projection along this axis); need not be
  /// normalized.
  Vec3 view_dir{0.6, 0.5, 1.0};
  Vec3 light_dir{0.4, 0.8, 1.0};
  std::array<std::uint8_t, 3> surface_rgb{220, 60, 50};
  std::array<std::uint8_t, 3> background_rgb{18, 18, 24};
  double ambient = 0.25;
};

/// 8-bit RGB image.
class Image {
 public:
  Image(int width, int height, std::array<std::uint8_t, 3> fill = {0, 0, 0});

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  std::array<std::uint8_t, 3>& at(int x, int y);
  const std::array<std::uint8_t, 3>& at(int x, int y) const;

  /// Binary PPM (P6).
  void write_ppm(std::ostream& os) const;
  void write_ppm_file(const std::string& path) const;

  /// Fraction of pixels differing from the background (coverage metric used
  /// by tests and the Fig. 6 comparison).
  double coverage(std::array<std::uint8_t, 3> background) const;

 private:
  int width_;
  int height_;
  std::vector<std::array<std::uint8_t, 3>> pixels_;
};

/// Render `mesh` with an orthographic camera fitted to the mesh's bounding
/// box. Returns a fully shaded image; an empty mesh renders as background.
Image render_mesh(const TriangleMesh& mesh, const RenderConfig& config = {});

}  // namespace xl::viz
