// The visualization service of the paper's workflow: marching cubes over an
// AMR hierarchy. Each level is triangulated at its own resolution over the
// cells where it is the finest data available (masking against finer levels),
// so the result captures fine structure without duplicate surfaces.
#pragma once

#include "amr/hierarchy.hpp"
#include "viz/marching_cubes.hpp"

namespace xl::viz {

struct IsosurfaceStats {
  std::size_t triangles = 0;
  std::size_t cells_scanned = 0;
  std::size_t active_cells = 0;
};

/// Extract the isosurface of component `comp` at `isovalue` from the whole
/// hierarchy. `dx0` is the level-0 spacing; finer levels use dx0/ratio^l.
TriangleMesh extract_amr_isosurface(const amr::AmrHierarchy& hierarchy, double isovalue,
                                    int comp, double dx0, IsosurfaceStats* stats = nullptr);

}  // namespace xl::viz
