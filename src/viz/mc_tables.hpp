// Standard marching-cubes lookup tables (Lorensen & Cline 1987), 256 cube
// configurations. kEdgeTable gives the cut-edge bitmask per configuration;
// kTriTable lists up to 5 triangles as edge-index triples, -1 terminated.
#pragma once

#include <cstdint>

namespace xl::viz {

extern const std::uint16_t kEdgeTable[256];
extern const std::int8_t kTriTable[256][16];

/// Cube corner offsets (unit cube), corner i at kCornerOffset[i].
extern const int kCornerOffset[8][3];

/// The two corners each of the 12 edges connects.
extern const int kEdgeCorners[12][2];

}  // namespace xl::viz
