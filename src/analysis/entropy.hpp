// Information-theoretic block entropy (paper eq. 11): the automatic selector
// for the application-layer adaptation. Each data block's value distribution
// is histogrammed and H(X) = -sum p log2 p computed; blocks with entropy
// below a threshold can be aggressively down-sampled without losing
// structure, blocks above keep full resolution (paper Fig. 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mesh/fab.hpp"

namespace xl::analysis {

struct EntropyConfig {
  int bins = 256;       ///< histogram resolution.
  int comp = 0;         ///< component to measure.
  /// Optional fixed value range; when lo >= hi the block's own min/max is used.
  double range_lo = 0.0;
  double range_hi = 0.0;
};

/// Entropy in bits of the value distribution of `fab` over `region`.
double block_entropy(const mesh::Fab& fab, const mesh::Box& region,
                     const EntropyConfig& config = {});

/// Shannon entropy in bits of a discrete weight distribution (negative and
/// zero weights are ignored). Used by the trigger layer as a cheap structure
/// signal: the entropy of the cells-per-level occupancy shifts whenever the
/// refinement hierarchy reshapes, without reading any field data. 0 for an
/// empty or single-outcome distribution.
double distribution_entropy(const std::vector<std::int64_t>& weights);

/// Map an entropy value to a down-sampling factor given thresholds sorted
/// ascending: entropy >= thresholds.back() -> factors.front() (keep most),
/// lower entropy -> larger factor. factors.size() == thresholds.size() + 1.
int factor_for_entropy(double entropy, const std::vector<double>& thresholds,
                       const std::vector<int>& factors);

/// Per-block decision record for Fig. 6-style reports.
struct BlockDecision {
  mesh::Box block;
  double entropy = 0.0;
  int factor = 1;
};

/// Chop `fab`'s box into `block_size`-sided blocks, compute each block's
/// entropy, and pick its factor.
std::vector<BlockDecision> entropy_downsample_plan(const mesh::Fab& fab, int block_size,
                                                   const std::vector<double>& thresholds,
                                                   const std::vector<int>& factors,
                                                   const EntropyConfig& config = {});

}  // namespace xl::analysis
