#include "analysis/compress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace xl::analysis {

namespace {

constexpr std::size_t kBlockHeaderBytes = 4 * sizeof(double);  // a, b, rmin, step

std::size_t block_payload_bytes(std::size_t n, int bits) {
  return (n * static_cast<std::size_t>(bits) + 7) / 8;
}

void store_double(std::uint8_t* dst, double v) {
  std::memcpy(dst, &v, sizeof(double));
}

double read_double(const std::uint8_t*& p) {
  double v;
  std::memcpy(&v, p, sizeof(double));
  p += sizeof(double);
  return v;
}

/// Least-squares linear fit v ~ a + b*i over the block.
void linear_fit(const double* v, std::size_t n, double& a, double& b) {
  if (n == 1) {
    a = v[0];
    b = 0.0;
    return;
  }
  double sum_v = 0.0, sum_iv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_v += v[i];
    sum_iv += static_cast<double>(i) * v[i];
  }
  const double nn = static_cast<double>(n);
  const double sum_i = nn * (nn - 1.0) / 2.0;
  const double sum_ii = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
  const double denom = nn * sum_ii - sum_i * sum_i;
  b = denom != 0.0 ? (nn * sum_iv - sum_i * sum_v) / denom : 0.0;
  a = (sum_v - b * sum_i) / nn;
}

/// Encode one block of `n` values into `dst` (header + zeroed packed bits).
void encode_block(const double* v, std::size_t n, int bits, std::uint32_t levels,
                  std::vector<std::uint32_t>& q, std::uint8_t* dst) {
  double a, b;
  linear_fit(v, n, a, b);
  double rmin = 0.0, rmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = v[i] - (a + b * static_cast<double>(i));
    rmin = i == 0 ? r : std::min(rmin, r);
    rmax = i == 0 ? r : std::max(rmax, r);
  }
  const double step = rmax > rmin ? (rmax - rmin) / levels : 0.0;
  store_double(dst + 0 * sizeof(double), a);
  store_double(dst + 1 * sizeof(double), b);
  store_double(dst + 2 * sizeof(double), rmin);
  store_double(dst + 3 * sizeof(double), step);
  // Quantize then bit-pack.
  for (std::size_t i = 0; i < n; ++i) {
    const double r = v[i] - (a + b * static_cast<double>(i));
    q[i] = step > 0.0
               // xl-lint: allow(float-cast): lround of a value in [0, levels] by
               // construction; the clamp below catches rounding spill.
               ? static_cast<std::uint32_t>(std::lround((r - rmin) / step))
               : 0u;
    if (q[i] > levels) q[i] = levels;
  }
  std::uint8_t* packed = dst + kBlockHeaderBytes;
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (int bit = 0; bit < bits; ++bit, ++bitpos) {
      if (q[i] & (1u << bit)) {
        packed[bitpos / 8] |= static_cast<std::uint8_t>(1u << (bitpos % 8));
      }
    }
  }
}

void validate(const CompressConfig& config) {
  XL_REQUIRE(config.residual_bits >= 1 && config.residual_bits <= 16,
             "residual bits must be in [1,16]");
  XL_REQUIRE(config.block >= 2, "compression block must hold at least 2 values");
}

}  // namespace

CompressedField compress(const mesh::Fab& fab, const CompressConfig& config) {
  validate(config);
  CompressedField out;
  out.config = config;
  out.box = fab.box();
  out.ncomp = fab.ncomp();

  const std::span<const double> data = fab.flat();
  const auto levels = (1u << config.residual_bits) - 1u;
  const auto block = static_cast<std::size_t>(config.block);
  const std::size_t nblocks = (data.size() + block - 1) / block;
  // Every block's output size is known up front (only the tail block is
  // shorter), so blocks encode in parallel into disjoint payload slices —
  // the stream is byte-identical for any thread count.
  const std::size_t full_bytes =
      kBlockHeaderBytes + block_payload_bytes(block, config.residual_bits);
  const std::size_t tail_n = data.size() - (nblocks - 1) * block;
  out.payload.resize((nblocks - 1) * full_bytes + kBlockHeaderBytes +
                         block_payload_bytes(tail_n, config.residual_bits),
                     0);

  parallel_for(ThreadPool::global(), 0, nblocks,
               [&](std::size_t blo, std::size_t bhi) {
    // Quantizer scratch recycles through the pool: one acquire per task-group
    // chunk, reused across every block the chunk encodes, released on exit.
    // encode_block fully writes q[0..n) before packing, so recycled contents
    // never leak into the stream.
    Scratch<std::uint32_t> q(block);
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t n = b + 1 == nblocks ? tail_n : block;
      encode_block(data.data() + b * block, n, config.residual_bits, levels,
                   q.vec(), out.payload.data() + b * full_bytes);
    }
  });
  return out;
}

mesh::Fab decompress(const CompressedField& field) {
  validate(field.config);
  mesh::Fab out(field.box, field.ncomp);
  std::span<double> data = out.flat();

  const auto block = static_cast<std::size_t>(field.config.block);
  const int bits = field.config.residual_bits;
  const std::size_t nblocks = (data.size() + block - 1) / block;
  const std::size_t full_bytes = kBlockHeaderBytes + block_payload_bytes(block, bits);
  const std::size_t tail_n = data.size() - (nblocks - 1) * block;
  XL_REQUIRE(field.payload.size() == (nblocks - 1) * full_bytes +
                                         kBlockHeaderBytes +
                                         block_payload_bytes(tail_n, bits),
             "compressed stream size does not match its header geometry");

  parallel_for(ThreadPool::global(), 0, nblocks,
               [&](std::size_t blo, std::size_t bhi) {
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t n = b + 1 == nblocks ? tail_n : block;
      const std::uint8_t* p = field.payload.data() + b * full_bytes;
      const double a = read_double(p);
      const double bb = read_double(p);
      const double rmin = read_double(p);
      const double step = read_double(p);
      const std::size_t start = b * block;
      std::size_t bitpos = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t q = 0;
        for (int bit = 0; bit < bits; ++bit, ++bitpos) {
          if (p[bitpos / 8] & (1u << (bitpos % 8))) q |= 1u << bit;
        }
        data[start + i] = a + bb * static_cast<double>(i) + rmin + step * q;
      }
    }
  });
  return out;
}

std::size_t compressed_bytes(std::size_t cells, int ncomp, const CompressConfig& config) {
  validate(config);
  const std::size_t values = cells * static_cast<std::size_t>(ncomp);
  const auto block = static_cast<std::size_t>(config.block);
  const std::size_t full_blocks = values / block;
  const std::size_t tail = values % block;
  std::size_t bytes = full_blocks *
                      (kBlockHeaderBytes + block_payload_bytes(block, config.residual_bits));
  if (tail > 0) {
    bytes += kBlockHeaderBytes + block_payload_bytes(tail, config.residual_bits);
  }
  return bytes + sizeof(CompressConfig) + sizeof(mesh::Box) + sizeof(int);
}

std::size_t compression_scratch_bytes(std::size_t cells, int ncomp,
                                      const CompressConfig& config) {
  // Output stream plus one block of residuals/quantized values.
  return compressed_bytes(cells, ncomp, config) +
         static_cast<std::size_t>(config.block) * (sizeof(double) + sizeof(std::uint32_t));
}

double max_error_for_range(double residual_range, const CompressConfig& config) {
  validate(config);
  const auto levels = (1u << config.residual_bits) - 1u;
  return residual_range > 0.0 ? 0.5 * residual_range / levels : 0.0;
}

}  // namespace xl::analysis
