#include "analysis/compress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace xl::analysis {

namespace {

constexpr std::size_t kBlockHeaderBytes = 4 * sizeof(double);  // a, b, rmin, step

std::size_t block_payload_bytes(std::size_t n, int bits) {
  return (n * static_cast<std::size_t>(bits) + 7) / 8;
}

void store_double(std::uint8_t* dst, double v) {
  std::memcpy(dst, &v, sizeof(double));
}

double read_double(const std::uint8_t*& p) {
  double v;
  std::memcpy(&v, p, sizeof(double));
  p += sizeof(double);
  return v;
}

/// Least-squares linear fit v ~ a + b*i over the block.
void linear_fit(const double* v, std::size_t n, double& a, double& b) {
  if (n == 1) {
    a = v[0];
    b = 0.0;
    return;
  }
  double sum_v = 0.0, sum_iv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_v += v[i];
    sum_iv += static_cast<double>(i) * v[i];
  }
  const double nn = static_cast<double>(n);
  const double sum_i = nn * (nn - 1.0) / 2.0;
  const double sum_ii = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
  const double denom = nn * sum_ii - sum_i * sum_i;
  b = denom != 0.0 ? (nn * sum_iv - sum_i * sum_v) / denom : 0.0;
  a = (sum_v - b * sum_i) / nn;
}

/// Encode one block of `n` values into `dst` (header + zeroed packed bits).
/// `q` and `t` are caller-owned scratch of at least `n` slots.
void encode_block(const double* v, std::size_t n, int bits, std::uint32_t levels,
                  PoolVec<std::uint32_t>& q, PoolVec<double>& t,
                  std::uint8_t* dst) {
  using simd::dpack;
  double a, b;
  linear_fit(v, n, a, b);
  // The residual range is a sequential scalar scan BY CONTRACT: rmin and
  // step are stored in the stream header and byte-compared by the golden
  // tests, and a lane-parallel min could legally resolve a ±0.0 tie to the
  // other sign bit. (The entropy scan has no such byte-visible artifact.)
  double rmin = 0.0, rmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = v[i] - (a + b * static_cast<double>(i));
    rmin = i == 0 ? r : std::min(rmin, r);
    rmax = i == 0 ? r : std::max(rmax, r);
  }
  const double step = rmax > rmin ? (rmax - rmin) / levels : 0.0;
  store_double(dst + 0 * sizeof(double), a);
  store_double(dst + 1 * sizeof(double), b);
  store_double(dst + 2 * sizeof(double), rmin);
  store_double(dst + 3 * sizeof(double), step);
  // Stage the scaled residuals (v - (a + b*i) - rmin) / step elementwise:
  // lane-per-value SIMD, every lane running the scalar operation sequence,
  // so t[i] is bit-identical to the scalar expression.
  if (step > 0.0) {
    std::size_t i = 0;
    const dpack va = dpack::broadcast(a);
    const dpack vb = dpack::broadcast(b);
    const dpack vrmin = dpack::broadcast(rmin);
    const dpack vstep = dpack::broadcast(step);
    for (; i + dpack::lanes <= n; i += dpack::lanes) {
      const dpack idx = dpack::broadcast(static_cast<double>(i)) + dpack::iota();
      const dpack r = dpack::load(v + i) - (va + vb * idx);
      const dpack scaled = (r - vrmin) / vstep;
      scaled.store(t.data() + i);
    }
    for (; i < n; ++i) {
      const double r = v[i] - (a + b * static_cast<double>(i));
      t[i] = (r - rmin) / step;
    }
  }
  // Quantize: lround's half-away-from-zero rounding has no exact vector
  // equivalent (floor(x + 0.5) differs one ulp below .5 boundaries), so the
  // cast stays scalar on the staged values.
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = step > 0.0
               // xl-lint: allow(float-cast): lround of a value in [0, levels] by
               // construction; the clamp below catches rounding spill.
               ? static_cast<std::uint32_t>(std::lround(t[i]))
               : 0u;
    if (q[i] > levels) q[i] = levels;
  }
  // Bit-pack word-wise: append each value LSB-first into a 64-bit
  // accumulator and flush whole bytes — the same little-endian-in-byte bit
  // order as the seed per-bit loop (bit `bit` of value i lands at stream bit
  // i*bits + bit), at ~one store per 8 bits instead of one test per bit.
  // bits <= 16 and we flush below 8 pending bits, so acc never overflows.
  std::uint8_t* packed = dst + kBlockHeaderBytes;
  std::uint64_t acc = 0;
  unsigned pending = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<std::uint64_t>(q[i]) << pending;
    pending += static_cast<unsigned>(bits);
    while (pending >= 8) {
      *packed++ = static_cast<std::uint8_t>(acc);
      acc >>= 8;
      pending -= 8;
    }
  }
  if (pending > 0) *packed = static_cast<std::uint8_t>(acc);
}

void validate(const CompressConfig& config) {
  XL_REQUIRE(config.residual_bits >= 1 && config.residual_bits <= 16,
             "residual bits must be in [1,16]");
  XL_REQUIRE(config.block >= 2, "compression block must hold at least 2 values");
}

}  // namespace

CompressedField compress(const mesh::Fab& fab, const CompressConfig& config) {
  validate(config);
  CompressedField out;
  out.config = config;
  out.box = fab.box();
  out.ncomp = fab.ncomp();

  const std::span<const double> data = fab.flat();
  const auto levels = (1u << config.residual_bits) - 1u;
  const auto block = static_cast<std::size_t>(config.block);
  const std::size_t nblocks = (data.size() + block - 1) / block;
  // Every block's output size is known up front (only the tail block is
  // shorter), so blocks encode in parallel into disjoint payload slices —
  // the stream is byte-identical for any thread count.
  const std::size_t full_bytes =
      kBlockHeaderBytes + block_payload_bytes(block, config.residual_bits);
  const std::size_t tail_n = data.size() - (nblocks - 1) * block;
  out.payload.resize((nblocks - 1) * full_bytes + kBlockHeaderBytes +
                         block_payload_bytes(tail_n, config.residual_bits),
                     0);

  parallel_for(ThreadPool::global(), 0, nblocks,
               [&](std::size_t blo, std::size_t bhi) {
    // Quantizer scratch recycles through the pool: one acquire per task-group
    // chunk, reused across every block the chunk encodes, released on exit.
    // encode_block fully writes q[0..n) / t[0..n) before reading, so recycled
    // contents never leak into the stream.
    Scratch<std::uint32_t> q(block);
    Scratch<double> t(block);
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t n = b + 1 == nblocks ? tail_n : block;
      encode_block(data.data() + b * block, n, config.residual_bits, levels,
                   q.vec(), t.vec(), out.payload.data() + b * full_bytes);
    }
  });
  return out;
}

mesh::Fab decompress(const CompressedField& field) {
  validate(field.config);
  mesh::Fab out(field.box, field.ncomp);
  std::span<double> data = out.flat();

  const auto block = static_cast<std::size_t>(field.config.block);
  const int bits = field.config.residual_bits;
  const std::size_t nblocks = (data.size() + block - 1) / block;
  const std::size_t full_bytes = kBlockHeaderBytes + block_payload_bytes(block, bits);
  const std::size_t tail_n = data.size() - (nblocks - 1) * block;
  XL_REQUIRE(field.payload.size() == (nblocks - 1) * full_bytes +
                                         kBlockHeaderBytes +
                                         block_payload_bytes(tail_n, bits),
             "compressed stream size does not match its header geometry");

  parallel_for(ThreadPool::global(), 0, nblocks,
               [&](std::size_t blo, std::size_t bhi) {
    using simd::dpack;
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    Scratch<std::uint32_t> q(block);
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t n = b + 1 == nblocks ? tail_n : block;
      const std::uint8_t* p = field.payload.data() + b * full_bytes;
      const double a = read_double(p);
      const double bb = read_double(p);
      const double rmin = read_double(p);
      const double step = read_double(p);
      const std::size_t start = b * block;
      // Unpack word-wise (mirror of encode_block's packer): bytes refill a
      // 64-bit accumulator, each value is the next `bits` LSBs.
      std::uint64_t acc = 0;
      unsigned pending = 0;
      for (std::size_t i = 0; i < n; ++i) {
        while (pending < static_cast<unsigned>(bits)) {
          acc |= static_cast<std::uint64_t>(*p++) << pending;
          pending += 8;
        }
        q[i] = static_cast<std::uint32_t>(acc & mask);
        acc >>= bits;
        pending -= static_cast<unsigned>(bits);
      }
      // Reconstruct elementwise: ((a + bb*i) + rmin) + step*q per lane, the
      // scalar operation sequence exactly (-ffp-contract=off, no FMA).
      std::size_t i = 0;
      const dpack va = dpack::broadcast(a);
      const dpack vb = dpack::broadcast(bb);
      const dpack vrmin = dpack::broadcast(rmin);
      const dpack vstep = dpack::broadcast(step);
      for (; i + dpack::lanes <= n; i += dpack::lanes) {
        const dpack idx = dpack::broadcast(static_cast<double>(i)) + dpack::iota();
        const dpack qd{{static_cast<double>(q[i]), static_cast<double>(q[i + 1]),
                        static_cast<double>(q[i + 2]), static_cast<double>(q[i + 3])}};
        dpack r = va + vb * idx;
        r += vrmin;
        r += vstep * qd;
        r.store(data.data() + start + i);
      }
      for (; i < n; ++i) {
        data[start + i] = a + bb * static_cast<double>(i) + rmin + step * q[i];
      }
    }
  });
  return out;
}

std::size_t compressed_bytes(std::size_t cells, int ncomp, const CompressConfig& config) {
  validate(config);
  const std::size_t values = cells * static_cast<std::size_t>(ncomp);
  const auto block = static_cast<std::size_t>(config.block);
  const std::size_t full_blocks = values / block;
  const std::size_t tail = values % block;
  std::size_t bytes = full_blocks *
                      (kBlockHeaderBytes + block_payload_bytes(block, config.residual_bits));
  if (tail > 0) {
    bytes += kBlockHeaderBytes + block_payload_bytes(tail, config.residual_bits);
  }
  return bytes + sizeof(CompressConfig) + sizeof(mesh::Box) + sizeof(int);
}

std::size_t compression_scratch_bytes(std::size_t cells, int ncomp,
                                      const CompressConfig& config) {
  // Output stream plus one block of residuals/quantized values.
  return compressed_bytes(cells, ncomp, config) +
         static_cast<std::size_t>(config.block) * (sizeof(double) + sizeof(std::uint32_t));
}

double max_error_for_range(double residual_range, const CompressConfig& config) {
  validate(config);
  const auto levels = (1u << config.residual_bits) - 1u;
  return residual_range > 0.0 ? 0.5 * residual_range / levels : 0.0;
}

}  // namespace xl::analysis
