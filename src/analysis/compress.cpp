#include "analysis/compress.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace xl::analysis {

namespace {

constexpr std::size_t kBlockHeaderBytes = 4 * sizeof(double);  // a, b, rmin, step

std::size_t block_payload_bytes(std::size_t n, int bits) {
  return (n * static_cast<std::size_t>(bits) + 7) / 8;
}

void append_double(std::vector<std::uint8_t>& out, double v) {
  std::uint8_t raw[sizeof(double)];
  std::memcpy(raw, &v, sizeof(double));
  out.insert(out.end(), raw, raw + sizeof(double));
}

double read_double(const std::uint8_t*& p) {
  double v;
  std::memcpy(&v, p, sizeof(double));
  p += sizeof(double);
  return v;
}

/// Least-squares linear fit v ~ a + b*i over the block.
void linear_fit(const double* v, std::size_t n, double& a, double& b) {
  if (n == 1) {
    a = v[0];
    b = 0.0;
    return;
  }
  double sum_v = 0.0, sum_iv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_v += v[i];
    sum_iv += static_cast<double>(i) * v[i];
  }
  const double nn = static_cast<double>(n);
  const double sum_i = nn * (nn - 1.0) / 2.0;
  const double sum_ii = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
  const double denom = nn * sum_ii - sum_i * sum_i;
  b = denom != 0.0 ? (nn * sum_iv - sum_i * sum_v) / denom : 0.0;
  a = (sum_v - b * sum_i) / nn;
}

void validate(const CompressConfig& config) {
  XL_REQUIRE(config.residual_bits >= 1 && config.residual_bits <= 16,
             "residual bits must be in [1,16]");
  XL_REQUIRE(config.block >= 2, "compression block must hold at least 2 values");
}

}  // namespace

CompressedField compress(const mesh::Fab& fab, const CompressConfig& config) {
  validate(config);
  CompressedField out;
  out.config = config;
  out.box = fab.box();
  out.ncomp = fab.ncomp();

  const std::span<const double> data = fab.flat();
  const auto levels = (1u << config.residual_bits) - 1u;
  std::vector<std::uint32_t> q(static_cast<std::size_t>(config.block));

  for (std::size_t start = 0; start < data.size();
       start += static_cast<std::size_t>(config.block)) {
    const std::size_t n =
        std::min<std::size_t>(config.block, data.size() - start);
    const double* v = data.data() + start;
    double a, b;
    linear_fit(v, n, a, b);
    double rmin = 0.0, rmax = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = v[i] - (a + b * static_cast<double>(i));
      rmin = i == 0 ? r : std::min(rmin, r);
      rmax = i == 0 ? r : std::max(rmax, r);
    }
    const double step = rmax > rmin ? (rmax - rmin) / levels : 0.0;
    append_double(out.payload, a);
    append_double(out.payload, b);
    append_double(out.payload, rmin);
    append_double(out.payload, step);
    // Quantize then bit-pack.
    for (std::size_t i = 0; i < n; ++i) {
      const double r = v[i] - (a + b * static_cast<double>(i));
      q[i] = step > 0.0
                 ? static_cast<std::uint32_t>(std::lround((r - rmin) / step))
                 : 0u;
      if (q[i] > levels) q[i] = levels;
    }
    const std::size_t packed = block_payload_bytes(n, config.residual_bits);
    const std::size_t base = out.payload.size();
    out.payload.resize(base + packed, 0);
    std::size_t bitpos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (int bit = 0; bit < config.residual_bits; ++bit, ++bitpos) {
        if (q[i] & (1u << bit)) {
          out.payload[base + bitpos / 8] |= static_cast<std::uint8_t>(1u << (bitpos % 8));
        }
      }
    }
  }
  return out;
}

mesh::Fab decompress(const CompressedField& field) {
  validate(field.config);
  mesh::Fab out(field.box, field.ncomp);
  std::span<double> data = out.flat();
  const std::uint8_t* p = field.payload.data();
  const std::uint8_t* end = p + field.payload.size();

  for (std::size_t start = 0; start < data.size();
       start += static_cast<std::size_t>(field.config.block)) {
    const std::size_t n =
        std::min<std::size_t>(field.config.block, data.size() - start);
    XL_REQUIRE(p + kBlockHeaderBytes <= end, "truncated compressed stream");
    const double a = read_double(p);
    const double b = read_double(p);
    const double rmin = read_double(p);
    const double step = read_double(p);
    const std::size_t packed = block_payload_bytes(n, field.config.residual_bits);
    XL_REQUIRE(p + packed <= end, "truncated compressed block payload");
    std::size_t bitpos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t q = 0;
      for (int bit = 0; bit < field.config.residual_bits; ++bit, ++bitpos) {
        if (p[bitpos / 8] & (1u << (bitpos % 8))) q |= 1u << bit;
      }
      data[start + i] = a + b * static_cast<double>(i) + rmin + step * q;
    }
    p += packed;
  }
  XL_CHECK(p == end, "compressed stream has trailing bytes");
  return out;
}

std::size_t compressed_bytes(std::size_t cells, int ncomp, const CompressConfig& config) {
  validate(config);
  const std::size_t values = cells * static_cast<std::size_t>(ncomp);
  const auto block = static_cast<std::size_t>(config.block);
  const std::size_t full_blocks = values / block;
  const std::size_t tail = values % block;
  std::size_t bytes = full_blocks *
                      (kBlockHeaderBytes + block_payload_bytes(block, config.residual_bits));
  if (tail > 0) {
    bytes += kBlockHeaderBytes + block_payload_bytes(tail, config.residual_bits);
  }
  return bytes + sizeof(CompressConfig) + sizeof(mesh::Box) + sizeof(int);
}

std::size_t compression_scratch_bytes(std::size_t cells, int ncomp,
                                      const CompressConfig& config) {
  // Output stream plus one block of residuals/quantized values.
  return compressed_bytes(cells, ncomp, config) +
         static_cast<std::size_t>(config.block) * (sizeof(double) + sizeof(std::uint32_t));
}

double max_error_for_range(double residual_range, const CompressConfig& config) {
  validate(config);
  const auto levels = (1u << config.residual_bits) - 1u;
  return residual_range > 0.0 ? 0.5 * residual_range / levels : 0.0;
}

}  // namespace xl::analysis
