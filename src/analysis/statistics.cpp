#include "analysis/statistics.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace xl::analysis {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

RunningStats descriptive_stats(const Fab& fab, const Box& region, int comp) {
  XL_REQUIRE(comp >= 0 && comp < fab.ncomp(), "component out of range");
  RunningStats stats;
  const Box scan = fab.box() & region;
  if (scan.empty()) return stats;
  // Row order is BoxIterator order, so the sequential accumulation below is
  // bit-identical to the seed per-cell loop. The reduction itself must stay
  // scalar: RunningStats is an order-dependent FP recurrence.
  const auto xoff = static_cast<std::size_t>(scan.lo()[0] - fab.box().lo()[0]);
  const auto nx = static_cast<std::size_t>(scan.size()[0]);
  mesh::for_each_row(scan, [&](int j, int k) {
    const double* r = fab.row(comp, j, k) + xoff;
    for (std::size_t i = 0; i < nx; ++i) stats.add(r[i]);
  });
  return stats;
}

Fab subset(const Fab& fab, const Box& region) {
  const Box target = fab.box() & region;
  XL_REQUIRE(!target.empty(), "subset region does not intersect fab");
  Fab out(target, fab.ncomp());
  out.copy_from(fab, target);
  return out;
}

double rmse(const Fab& a, const Fab& b, int comp) {
  const Box common = a.box() & b.box();
  XL_REQUIRE(!common.empty(), "fabs do not overlap");
  // Sequential sum in row (= BoxIterator) order: the accumulation order is
  // part of the determinism contract, so no lane-parallel reduction here.
  double sum = 0.0;
  const auto axoff = static_cast<std::size_t>(common.lo()[0] - a.box().lo()[0]);
  const auto bxoff = static_cast<std::size_t>(common.lo()[0] - b.box().lo()[0]);
  const auto nx = static_cast<std::size_t>(common.size()[0]);
  mesh::for_each_row(common, [&](int j, int k) {
    const double* ra = a.row(comp, j, k) + axoff;
    const double* rb = b.row(comp, j, k) + bxoff;
    for (std::size_t i = 0; i < nx; ++i) {
      const double d = ra[i] - rb[i];
      sum += d * d;
    }
  });
  return std::sqrt(sum / static_cast<double>(common.num_cells()));
}

double psnr(const Fab& reference, const Fab& test, int comp) {
  const double err = rmse(reference, test, comp);
  RunningStats ref = descriptive_stats(reference, reference.box(), comp);
  const double range = ref.max() - ref.min();
  if (err <= 0.0) return std::numeric_limits<double>::infinity();
  if (range <= 0.0) return 0.0;
  return 20.0 * std::log10(range / err);
}

}  // namespace xl::analysis
