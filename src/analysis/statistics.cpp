#include "analysis/statistics.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace xl::analysis {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

RunningStats descriptive_stats(const Fab& fab, const Box& region, int comp) {
  XL_REQUIRE(comp >= 0 && comp < fab.ncomp(), "component out of range");
  RunningStats stats;
  for (BoxIterator it(fab.box() & region); it.ok(); ++it) {
    stats.add(fab(*it, comp));
  }
  return stats;
}

Fab subset(const Fab& fab, const Box& region) {
  const Box target = fab.box() & region;
  XL_REQUIRE(!target.empty(), "subset region does not intersect fab");
  Fab out(target, fab.ncomp());
  out.copy_from(fab, target);
  return out;
}

double rmse(const Fab& a, const Fab& b, int comp) {
  const Box common = a.box() & b.box();
  XL_REQUIRE(!common.empty(), "fabs do not overlap");
  double sum = 0.0;
  std::int64_t n = 0;
  for (BoxIterator it(common); it.ok(); ++it) {
    const double d = a(*it, comp) - b(*it, comp);
    sum += d * d;
    ++n;
  }
  return std::sqrt(sum / static_cast<double>(n));
}

double psnr(const Fab& reference, const Fab& test, int comp) {
  const double err = rmse(reference, test, comp);
  RunningStats ref = descriptive_stats(reference, reference.box(), comp);
  const double range = ref.max() - ref.min();
  if (err <= 0.0) return std::numeric_limits<double>::infinity();
  if (range <= 0.0) return 0.0;
  return 20.0 * std::log10(range / err);
}

}  // namespace xl::analysis
