// Fixed-rate lossy compression: the second data-reduction operator the
// paper's application layer can select ("appropriately selecting the
// parameters of the data reduction module (e.g., down-sample factor,
// compression rate, etc.)", §3).
//
// The codec is a block transform in the spirit of ISABELA/ZFP-class
// in-situ compressors, kept dependency-free: values are processed in fixed
// blocks; each block stores a linear predictor (offset + slope along the
// fastest axis) and quantized residuals at a configurable bit width. The
// rate is therefore known a priori — exactly what eq. 1-3's memory
// constraint needs — and decompression error is bounded by the residual
// quantization step.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/fab.hpp"

namespace xl::analysis {

struct CompressConfig {
  int residual_bits = 8;   ///< quantized bits per value (1..16).
  int block = 64;          ///< values per block (along the flattened stream).
};

/// Compressed stream: self-describing header + per-block payloads.
struct CompressedField {
  CompressConfig config;
  mesh::Box box;
  int ncomp = 1;
  std::vector<std::uint8_t> payload;

  std::size_t bytes() const noexcept {
    return payload.size() + sizeof(CompressConfig) + sizeof(mesh::Box) + sizeof(int);
  }
};

/// Compress all components of `fab`.
CompressedField compress(const mesh::Fab& fab, const CompressConfig& config = {});

/// Reconstruct the field. The result covers the original box exactly.
mesh::Fab decompress(const CompressedField& field);

/// Exact compressed size (bytes) for a field of `cells` x `ncomp` doubles at
/// this config — the f_data_reduce model when compression is the selected
/// reduction (rate is fixed, independent of content).
std::size_t compressed_bytes(std::size_t cells, int ncomp, const CompressConfig& config = {});

/// Scratch memory the compressor needs (output + one block of residuals).
std::size_t compression_scratch_bytes(std::size_t cells, int ncomp,
                                      const CompressConfig& config = {});

/// Worst-case absolute reconstruction error for a block whose residual range
/// (after the linear predictor) is `residual_range`.
double max_error_for_range(double residual_range, const CompressConfig& config = {});

}  // namespace xl::analysis
