#include "analysis/downsample.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace xl::analysis {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;
using mesh::IntVect;

namespace {

// Round-toward-minus-infinity division, matching IntVect::coarsen on
// negative coordinates.
int floor_div(int a, int b) { return a >= 0 ? a / b : -((-a + b - 1) / b); }
int ceil_div(int a, int b) { return a >= 0 ? (a + b - 1) / b : -((-a) / b); }

/// One coarse cell the seed way: sum the (possibly clipped) children in
/// BoxIterator order, divide by their count. Used for every boundary cell so
/// clipped cells are trivially byte-identical to the seed path.
double average_cell_clipped(const Fab& src, const IntVect& coarse, int c,
                            int factor, double inv_vol) {
  const IntVect base = coarse.refine(IntVect::uniform(factor));
  const Box children = Box(base, base + (factor - 1)) & src.box();
  double sum = 0.0;
  // xl-lint: allow(row-loop): boundary cells reuse the seed per-cell path BY
  // CONTRACT — clipped children must accumulate in exact BoxIterator order so
  // edge cells stay byte-identical; at most one cell per box face runs here.
  for (BoxIterator fit(children); fit.ok(); ++fit) sum += src(*fit, c);
  return children.num_cells() == factor * factor * factor
             ? sum * inv_vol
             : sum / static_cast<double>(children.num_cells());
}

/// Interior coarse cells [cx_lo, cx_hi] of one coarse row: every child lies
/// inside src, so the sum runs dz -> dy -> dx — the exact BoxIterator order
/// of the unclipped children box. Lane-per-output-cell SIMD for factor 2
/// (even/odd deinterleave of the child row); flat scalar rows otherwise.
void average_row_interior(const Fab& src, Fab& out, int c, int j, int k,
                          int cx_lo, int cx_hi, int factor, double inv_vol) {
  using simd::dpack;
  double* orow = out.row(c, j, k);
  const int out_x0 = out.box().lo()[0];
  const int src_x0 = src.box().lo()[0];
  int cx = cx_lo;
  if (factor == 2) {
    const dpack vinv = dpack::broadcast(inv_vol);
    for (; cx + static_cast<int>(dpack::lanes) - 1 <= cx_hi;
         cx += static_cast<int>(dpack::lanes)) {
      dpack acc = dpack::broadcast(0.0);
      for (int dz = 0; dz < 2; ++dz) {
        for (int dy = 0; dy < 2; ++dy) {
          const double* p =
              src.row(c, 2 * j + dy, 2 * k + dz) + (2 * cx - src_x0);
          dpack even, odd;
          dpack::deinterleave2(dpack::load(p), dpack::load(p + dpack::lanes),
                               even, odd);
          acc += even;  // dx = 0 children, then dx = 1: BoxIterator order
          acc += odd;
        }
      }
      acc *= vinv;
      acc.store(orow + (cx - out_x0));
    }
  }
  for (; cx <= cx_hi; ++cx) {
    double sum = 0.0;
    for (int dz = 0; dz < factor; ++dz) {
      for (int dy = 0; dy < factor; ++dy) {
        const double* p = src.row(c, factor * j + dy, factor * k + dz) +
                          (factor * cx - src_x0);
        for (int dx = 0; dx < factor; ++dx) sum += p[dx];
      }
    }
    orow[cx - out_x0] = sum * inv_vol;
  }
}

}  // namespace

Fab downsample(const Fab& src, int factor, DownsampleMethod method) {
  XL_REQUIRE(factor >= 1, "downsample factor must be >= 1");
  if (factor == 1) {
    Fab copy(src.box(), src.ncomp());
    copy.copy_from(src, src.box());
    return copy;
  }
  const IntVect rvec = IntVect::uniform(factor);
  const Box coarse_box = src.box().coarsen(rvec);
  Fab out(coarse_box, src.ncomp());
  const double inv_vol = 1.0 / static_cast<double>(factor) / factor / factor;
  const IntVect slo = src.box().lo(), shi = src.box().hi();
  // Interior coarse x-range: cells whose children [cx*f, cx*f + f - 1] sit
  // fully inside the source x-extent. Outside it (at most one cell per end)
  // the children box is clipped and handled by the seed per-cell path.
  const int cx_in_lo = std::max(coarse_box.lo()[0], ceil_div(slo[0], factor));
  const int cx_in_hi =
      std::min(coarse_box.hi()[0], floor_div(shi[0] - factor + 1, factor));
  // Every coarse cell is computed independently and written in place:
  // identical output for any slab partition / thread count.
  const auto nz = static_cast<std::size_t>(coarse_box.size()[2]);
  parallel_for(ThreadPool::global(), 0, nz,
               [&](std::size_t zb, std::size_t ze) {
    const Box slab = mesh::z_slab(coarse_box, zb, ze);
    for (int c = 0; c < src.ncomp(); ++c) {
      mesh::for_each_row(slab, [&](int j, int k) {
        if (method == DownsampleMethod::Stride) {
          // Sample the first child cell that lies inside the source box (the
          // coarsened box can overhang when sizes are not multiples of f).
          const int pj = std::clamp(factor * j, slo[1], shi[1]);
          const int pk = std::clamp(factor * k, slo[2], shi[2]);
          const double* prow = src.row(c, pj, pk);
          double* orow = out.row(c, j, k);
          for (int cx = coarse_box.lo()[0]; cx <= coarse_box.hi()[0]; ++cx) {
            const int px = std::clamp(factor * cx, slo[0], shi[0]);
            orow[cx - coarse_box.lo()[0]] = prow[px - slo[0]];
          }
          return;
        }
        // Average: rows whose child y/z planes are clipped fall back to the
        // per-cell path wholesale; interior rows split into [lo-edge | fast
        // interior | hi-edge] runs.
        const bool yz_interior = factor * j >= slo[1] &&
                                 factor * j + factor - 1 <= shi[1] &&
                                 factor * k >= slo[2] &&
                                 factor * k + factor - 1 <= shi[2];
        double* orow = out.row(c, j, k);
        const int clo = coarse_box.lo()[0], chi = coarse_box.hi()[0];
        if (!yz_interior || cx_in_lo > cx_in_hi) {
          for (int cx = clo; cx <= chi; ++cx) {
            orow[cx - clo] =
                average_cell_clipped(src, IntVect{cx, j, k}, c, factor, inv_vol);
          }
          return;
        }
        for (int cx = clo; cx < cx_in_lo; ++cx) {
          orow[cx - clo] =
              average_cell_clipped(src, IntVect{cx, j, k}, c, factor, inv_vol);
        }
        average_row_interior(src, out, c, j, k, cx_in_lo, cx_in_hi, factor,
                             inv_vol);
        for (int cx = cx_in_hi + 1; cx <= chi; ++cx) {
          orow[cx - clo] =
              average_cell_clipped(src, IntVect{cx, j, k}, c, factor, inv_vol);
        }
      });
    }
  });
  return out;
}

Fab upsample_constant(const Fab& coarse, const Box& target, int factor) {
  XL_REQUIRE(factor >= 1, "upsample factor must be >= 1");
  Fab out(target, coarse.ncomp());
  const IntVect clo = coarse.box().lo(), chi = coarse.box().hi();
  for (int c = 0; c < coarse.ncomp(); ++c) {
    mesh::for_each_row(target, [&](int j, int k) {
      const int pj = std::clamp(floor_div(j, factor), clo[1], chi[1]);
      const int pk = std::clamp(floor_div(k, factor), clo[2], chi[2]);
      const double* prow = coarse.row(c, pj, pk);
      double* orow = out.row(c, j, k);
      for (int x = target.lo()[0]; x <= target.hi()[0]; ++x) {
        const int px = std::clamp(floor_div(x, factor), clo[0], chi[0]);
        orow[x - target.lo()[0]] = prow[px - clo[0]];
      }
    });
  }
  return out;
}

std::size_t reduced_bytes(std::size_t raw_cells, int ncomp, int factor) {
  XL_REQUIRE(factor >= 1, "factor must be >= 1");
  const std::size_t f3 = static_cast<std::size_t>(factor) * factor * factor;
  const std::size_t cells = (raw_cells + f3 - 1) / f3;
  return cells * static_cast<std::size_t>(ncomp) * sizeof(double);
}

std::size_t reduction_scratch_bytes(std::size_t raw_cells, int ncomp, int factor,
                                    DownsampleMethod method) {
  // The reduced copy itself...
  std::size_t scratch = reduced_bytes(raw_cells, ncomp, factor);
  // ...plus, for averaging, a row of accumulators (modelled as one plane of
  // the raw data: the kernel streams plane by plane).
  if (method == DownsampleMethod::Average) {
    const auto plane = f2s(std::cbrt(static_cast<double>(raw_cells)) *
                           std::cbrt(static_cast<double>(raw_cells)));
    scratch += plane * static_cast<std::size_t>(ncomp) * sizeof(double);
  }
  return scratch;
}

}  // namespace xl::analysis
