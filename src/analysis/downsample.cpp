#include "analysis/downsample.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace xl::analysis {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;
using mesh::IntVect;

Fab downsample(const Fab& src, int factor, DownsampleMethod method) {
  XL_REQUIRE(factor >= 1, "downsample factor must be >= 1");
  if (factor == 1) {
    Fab copy(src.box(), src.ncomp());
    copy.copy_from(src, src.box());
    return copy;
  }
  const IntVect rvec = IntVect::uniform(factor);
  const Box coarse_box = src.box().coarsen(rvec);
  Fab out(coarse_box, src.ncomp());
  const double inv_vol = 1.0 / static_cast<double>(factor) / factor / factor;
  // Every coarse cell is computed independently and written in place:
  // identical output for any slab partition / thread count.
  const auto nz = static_cast<std::size_t>(coarse_box.size()[2]);
  parallel_for(ThreadPool::global(), 0, nz,
               [&](std::size_t zb, std::size_t ze) {
    const Box slab = mesh::z_slab(coarse_box, zb, ze);
    for (int c = 0; c < src.ncomp(); ++c) {
      for (BoxIterator it(slab); it.ok(); ++it) {
        const IntVect base = (*it).refine(rvec);
        switch (method) {
          case DownsampleMethod::Stride: {
            // Sample the first child cell that lies inside the source box (the
            // coarsened box can overhang when sizes are not multiples of X).
            const IntVect probe = base.max(src.box().lo()).min(src.box().hi());
            out(*it, c) = src(probe, c);
            break;
          }
          case DownsampleMethod::Average: {
            const Box children = Box(base, base + (factor - 1)) & src.box();
            double sum = 0.0;
            for (BoxIterator fit(children); fit.ok(); ++fit) sum += src(*fit, c);
            out(*it, c) = children.num_cells() == factor * factor * factor
                              ? sum * inv_vol
                              : sum / static_cast<double>(children.num_cells());
            break;
          }
        }
      }
    }
  });
  return out;
}

Fab upsample_constant(const Fab& coarse, const Box& target, int factor) {
  XL_REQUIRE(factor >= 1, "upsample factor must be >= 1");
  Fab out(target, coarse.ncomp());
  const IntVect rvec = IntVect::uniform(factor);
  for (int c = 0; c < coarse.ncomp(); ++c) {
    for (BoxIterator it(target); it.ok(); ++it) {
      const IntVect parent = (*it).coarsen(rvec).max(coarse.box().lo()).min(coarse.box().hi());
      out(*it, c) = coarse(parent, c);
    }
  }
  return out;
}

std::size_t reduced_bytes(std::size_t raw_cells, int ncomp, int factor) {
  XL_REQUIRE(factor >= 1, "factor must be >= 1");
  const std::size_t f3 = static_cast<std::size_t>(factor) * factor * factor;
  const std::size_t cells = (raw_cells + f3 - 1) / f3;
  return cells * static_cast<std::size_t>(ncomp) * sizeof(double);
}

std::size_t reduction_scratch_bytes(std::size_t raw_cells, int ncomp, int factor,
                                    DownsampleMethod method) {
  // The reduced copy itself...
  std::size_t scratch = reduced_bytes(raw_cells, ncomp, factor);
  // ...plus, for averaging, a row of accumulators (modelled as one plane of
  // the raw data: the kernel streams plane by plane).
  if (method == DownsampleMethod::Average) {
    const auto plane = f2s(std::cbrt(static_cast<double>(raw_cells)) *
                           std::cbrt(static_cast<double>(raw_cells)));
    scratch += plane * static_cast<std::size_t>(ncomp) * sizeof(double);
  }
  return scratch;
}

}  // namespace xl::analysis
