// Data reduction operators for the application-layer adaptation (§4.1):
// down-sample a field by factor X before it is written/staged, either by
// strided sampling (cheap; what the paper's in-situ reduction does) or by
// block averaging (smoother; an option the policy can select).
//
// The reduced size model used everywhere: cells / X^3.
#pragma once

#include <cstddef>

#include "mesh/fab.hpp"

namespace xl::analysis {

enum class DownsampleMethod { Stride, Average };

/// Reduce `src` (component-wise) by `factor` along each dimension. The result
/// covers src.box().coarsen(factor). factor == 1 returns a copy.
mesh::Fab downsample(const mesh::Fab& src, int factor,
                     DownsampleMethod method = DownsampleMethod::Stride);

/// Upsample back to `target` (piecewise constant) — used to measure the
/// information lost by a given factor.
mesh::Fab upsample_constant(const mesh::Fab& coarse, const mesh::Box& target, int factor);

/// Bytes of the reduced field for a given raw cell count — the S_data model
/// the policies consume (eq. 1's f_data_reduce).
std::size_t reduced_bytes(std::size_t raw_cells, int ncomp, int factor);

/// Scratch memory the reduction kernel itself needs (eq. 2's
/// Mem_data_reduce): the reduced copy plus one block-row of accumulators.
std::size_t reduction_scratch_bytes(std::size_t raw_cells, int ncomp, int factor,
                                    DownsampleMethod method = DownsampleMethod::Stride);

}  // namespace xl::analysis
