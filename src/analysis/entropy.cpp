#include "analysis/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "mesh/layout.hpp"

namespace xl::analysis {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

namespace {

/// Fold [r, r+n) into the running min/max with std::min/std::max selection
/// semantics (NaN inputs leave the accumulators untouched). Lane-parallel
/// under XLAYER_SIMD: min/max of a set is order-independent, so the folded
/// VALUE matches the scalar left-to-right scan bit for bit — the one
/// sanctioned lane-parallel reduction (see common/simd.hpp).
void minmax_scan(const double* r, std::size_t n, double& l, double& h) {
  using simd::dpack;
  std::size_t i = 0;
  if (n >= dpack::lanes) {
    dpack vl = dpack::broadcast(l);
    dpack vh = dpack::broadcast(h);
    for (; i + dpack::lanes <= n; i += dpack::lanes) {
      const dpack x = dpack::load(r + i);
      vl = min(vl, x);
      vh = max(vh, x);
    }
    l = std::min(l, vl.reduce_min());
    h = std::max(h, vh.reduce_max());
  }
  for (; i < n; ++i) {
    l = std::min(l, r[i]);
    h = std::max(h, r[i]);
  }
}

}  // namespace

double block_entropy(const Fab& fab, const Box& region, const EntropyConfig& config) {
  XL_REQUIRE(config.bins >= 2, "entropy needs at least two bins");
  XL_REQUIRE(config.comp >= 0 && config.comp < fab.ncomp(), "component out of range");
  const Box scan = fab.box() & region;
  XL_REQUIRE(!scan.empty(), "entropy of empty region");

  ThreadPool& pool = ThreadPool::global();
  const auto nz = static_cast<std::size_t>(scan.size()[2]);

  double lo = config.range_lo, hi = config.range_hi;
  if (lo >= hi) {
    const std::size_t nchunks = parallel_chunk_count(pool, nz);
    // Pool-backed per-slab reductions: parallel_for_chunks guarantees every
    // chunk index in [0, nchunks) runs, so each slot is written before the
    // merge reads it and recycled contents never matter.
    Scratch<double> slab_lo(nchunks);
    Scratch<double> slab_hi(nchunks);
    const std::size_t xoff =
        static_cast<std::size_t>(scan.lo()[0] - fab.box().lo()[0]);
    const auto nx = static_cast<std::size_t>(scan.size()[0]);
    parallel_for_chunks(pool, 0, nz,
                        [&](std::size_t c, std::size_t zb, std::size_t ze) {
      double l = std::numeric_limits<double>::infinity();
      double h = -std::numeric_limits<double>::infinity();
      mesh::for_each_row(mesh::z_slab(scan, zb, ze), [&](int j, int k) {
        minmax_scan(fab.row(config.comp, j, k) + xoff, nx, l, h);
      });
      slab_lo[c] = l;
      slab_hi[c] = h;
    });
    lo = std::numeric_limits<double>::infinity();
    hi = -lo;
    for (std::size_t c = 0; c < nchunks; ++c) {
      lo = std::min(lo, slab_lo[c]);
      hi = std::max(hi, slab_hi[c]);
    }
    if (hi <= lo) return 0.0;  // constant block carries no information
  }

  const auto bins = static_cast<std::size_t>(config.bins);
  const double scale = static_cast<double>(config.bins) / (hi - lo);
  const double last_bin = static_cast<double>(config.bins - 1);
  const std::size_t nchunks = parallel_chunk_count(pool, nz);
  // One flat pooled histogram buffer (nchunks x bins) instead of a vector of
  // per-slab vectors: a single recycled acquire and contiguous rows. Each
  // chunk zeroes its own row before counting into it.
  Scratch<std::size_t> slab_counts(nchunks * bins);
  Scratch<std::size_t> slab_total(nchunks);
  const std::size_t xoff =
      static_cast<std::size_t>(scan.lo()[0] - fab.box().lo()[0]);
  const auto nx = static_cast<std::size_t>(scan.size()[0]);
  parallel_for_chunks(pool, 0, nz,
                      [&](std::size_t c, std::size_t zb, std::size_t ze) {
    std::size_t* counts = slab_counts.data() + c * bins;
    std::fill(counts, counts + bins, std::size_t{0});
    std::size_t total = 0;
    // Binning stays scalar by contract (the counts feed byte-compared
    // output); the row walk removes the per-cell index arithmetic.
    mesh::for_each_row(mesh::z_slab(scan, zb, ze), [&](int j, int k) {
      const double* r = fab.row(config.comp, j, k) + xoff;
      for (std::size_t i = 0; i < nx; ++i) {
        // Guard the bin cast: NaN (and inf-range artifacts) poison the
        // float->int conversion with UB. NaN cells carry no bin and are
        // dropped; ±inf clamps to the edge bins in floating point first.
        const double idx = (r[i] - lo) * scale;
        if (std::isnan(idx)) continue;
        // xl-lint: allow(float-cast): NaN dropped and range clamped above; per-cell hot loop.
        ++counts[static_cast<std::size_t>(std::clamp(idx, 0.0, last_bin))];
        ++total;
      }
    });
    slab_total[c] = total;
  });

  // Integer merges: bit-identical for any slab partition, thread count included.
  Scratch<std::size_t> counts(bins);
  std::fill(counts.data(), counts.data() + bins, std::size_t{0});
  std::size_t total = 0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    for (std::size_t b = 0; b < bins; ++b) counts[b] += slab_counts[c * bins + b];
    total += slab_total[c];
  }
  if (total == 0) return 0.0;  // every cell was NaN

  double entropy = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    const double p = static_cast<double>(counts[b]) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double distribution_entropy(const std::vector<std::int64_t>& weights) {
  double total = 0.0;
  for (std::int64_t w : weights) {
    if (w > 0) total += static_cast<double>(w);
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (std::int64_t w : weights) {
    if (w <= 0) continue;
    const double p = static_cast<double>(w) / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

int factor_for_entropy(double entropy, const std::vector<double>& thresholds,
                       const std::vector<int>& factors) {
  XL_REQUIRE(factors.size() == thresholds.size() + 1,
             "need one more factor than thresholds");
  XL_REQUIRE(std::is_sorted(thresholds.begin(), thresholds.end()),
             "thresholds must be sorted ascending");
  // High entropy -> first (smallest) factor; each threshold crossed downward
  // moves one factor up the reduction ladder.
  std::size_t idx = 0;
  for (std::size_t t = thresholds.size(); t-- > 0;) {
    if (entropy >= thresholds[t]) break;
    ++idx;
  }
  return factors[idx];
}

std::vector<BlockDecision> entropy_downsample_plan(const Fab& fab, int block_size,
                                                   const std::vector<double>& thresholds,
                                                   const std::vector<int>& factors,
                                                   const EntropyConfig& config) {
  XL_REQUIRE(block_size >= 1, "block size must be positive");
  const std::vector<Box> blocks = mesh::decompose(fab.box(), block_size);
  std::vector<BlockDecision> plan(blocks.size());
  // One independent decision per block, written by index: deterministic for
  // any thread count. block_entropy's own parallel loops run inline here
  // (nested parallelism degrades to serial on pool workers).
  parallel_for(ThreadPool::global(), 0, blocks.size(),
               [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      BlockDecision d;
      d.block = blocks[i];
      d.entropy = block_entropy(fab, blocks[i], config);
      d.factor = factor_for_entropy(d.entropy, thresholds, factors);
      plan[i] = d;
    }
  });
  return plan;
}

}  // namespace xl::analysis
