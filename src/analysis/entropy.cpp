#include "analysis/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "mesh/layout.hpp"

namespace xl::analysis {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

double block_entropy(const Fab& fab, const Box& region, const EntropyConfig& config) {
  XL_REQUIRE(config.bins >= 2, "entropy needs at least two bins");
  XL_REQUIRE(config.comp >= 0 && config.comp < fab.ncomp(), "component out of range");
  const Box scan = fab.box() & region;
  XL_REQUIRE(!scan.empty(), "entropy of empty region");

  double lo = config.range_lo, hi = config.range_hi;
  if (lo >= hi) {
    lo = std::numeric_limits<double>::infinity();
    hi = -lo;
    for (BoxIterator it(scan); it.ok(); ++it) {
      const double v = fab(*it, config.comp);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi <= lo) return 0.0;  // constant block carries no information
  }

  std::vector<std::size_t> counts(static_cast<std::size_t>(config.bins), 0);
  const double scale = static_cast<double>(config.bins) / (hi - lo);
  std::size_t total = 0;
  for (BoxIterator it(scan); it.ok(); ++it) {
    const double v = fab(*it, config.comp);
    auto bin = static_cast<std::ptrdiff_t>((v - lo) * scale);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, config.bins - 1);
    ++counts[static_cast<std::size_t>(bin)];
    ++total;
  }
  double entropy = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

int factor_for_entropy(double entropy, const std::vector<double>& thresholds,
                       const std::vector<int>& factors) {
  XL_REQUIRE(factors.size() == thresholds.size() + 1,
             "need one more factor than thresholds");
  XL_REQUIRE(std::is_sorted(thresholds.begin(), thresholds.end()),
             "thresholds must be sorted ascending");
  // High entropy -> first (smallest) factor; each threshold crossed downward
  // moves one factor up the reduction ladder.
  std::size_t idx = 0;
  for (std::size_t t = thresholds.size(); t-- > 0;) {
    if (entropy >= thresholds[t]) break;
    ++idx;
  }
  return factors[idx];
}

std::vector<BlockDecision> entropy_downsample_plan(const Fab& fab, int block_size,
                                                   const std::vector<double>& thresholds,
                                                   const std::vector<int>& factors,
                                                   const EntropyConfig& config) {
  XL_REQUIRE(block_size >= 1, "block size must be positive");
  std::vector<BlockDecision> plan;
  for (const Box& block : mesh::decompose(fab.box(), block_size)) {
    BlockDecision d;
    d.block = block;
    d.entropy = block_entropy(fab, block, config);
    d.factor = factor_for_entropy(d.entropy, thresholds, factors);
    plan.push_back(d);
  }
  return plan;
}

}  // namespace xl::analysis
