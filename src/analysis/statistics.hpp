// Descriptive-statistics analysis kernel (the paper's §5 closing remark lists
// it as the other communication-free analysis the framework extends to) and
// data subsetting. Both are placement-agnostic kernels the middleware policy
// can schedule in-situ or in-transit.
#pragma once

#include "common/stats.hpp"
#include "mesh/fab.hpp"

namespace xl::analysis {

/// Moments + extrema of one component over a region.
RunningStats descriptive_stats(const mesh::Fab& fab, const mesh::Box& region, int comp = 0);

/// Extract the sub-box `region` of `fab` into a fresh fab (data subsetting).
mesh::Fab subset(const mesh::Fab& fab, const mesh::Box& region);

/// Root-mean-square error between two fabs over their common box, per
/// component `comp` — the reconstruction-quality metric for Fig. 6 reports.
double rmse(const mesh::Fab& a, const mesh::Fab& b, int comp = 0);

/// Peak signal-to-noise ratio in dB given the reference's value range.
double psnr(const mesh::Fab& reference, const mesh::Fab& test, int comp = 0);

}  // namespace xl::analysis
