// 3-D Polytropic Gas: the compressible Euler equations with an ideal-gas
// (polytropic) equation of state, integrated with a MUSCL-Hancock-style
// limited reconstruction and a Rusanov (local Lax-Friedrichs) flux. This is
// the reproduction of Chombo's AMRGodunov PolytropicGas example — the memory-
// and compute-intensive workload of the paper's Figs. 1, 5, 6 and 9.
//
// Conserved components: [rho, rho*u, rho*v, rho*w, E].
#pragma once

#include "amr/physics.hpp"

namespace xl::amr {

struct PolytropicGasConfig {
  double gamma = 1.4;
  /// Spherical "explosion" initial condition (Sedov-like): an overpressured
  /// sphere at `center` (fractions of the unit domain) of radius `radius`.
  double center[3] = {0.5, 0.5, 0.5};
  double radius = 0.15;
  double rho_inside = 1.0;
  double rho_outside = 0.125;
  double p_inside = 10.0;
  double p_outside = 0.1;
  /// Domain extent in physical units; dx(level 0) = extent / ncells(level 0).
  double extent = 1.0;
};

class PolytropicGas final : public Physics {
 public:
  static constexpr int kRho = 0;
  static constexpr int kMomX = 1;
  static constexpr int kMomY = 2;
  static constexpr int kMomZ = 3;
  static constexpr int kEnergy = 4;
  static constexpr int kNcomp = 5;

  explicit PolytropicGas(const PolytropicGasConfig& config = {});

  std::string name() const override { return "PolytropicGas"; }
  int ncomp() const override { return kNcomp; }
  int nghost() const override { return 2; }

  void initial_value(const IntVect& p, double dx, double* out) const override;
  double max_wave_speed(const Fab& u, const Box& valid, double dx) const override;
  void face_flux(const Fab& u, const Box& faces, int dim, double dx,
                 Fab& flux) const override;

  double gamma() const noexcept { return config_.gamma; }
  const PolytropicGasConfig& config() const noexcept { return config_; }

  /// Pressure from a conserved-state vector.
  double pressure(const double* cons) const;
  /// Sound speed from a conserved-state vector.
  double sound_speed(const double* cons) const;

 private:
  /// Analytic flux F_dim(cons) into `out`.
  void physical_flux(const double* cons, int dim, double* out) const;

  PolytropicGasConfig config_;
};

}  // namespace xl::amr
