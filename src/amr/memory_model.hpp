// Per-rank peak-memory model: what Chombo's embedded performance tools report
// to the paper's Monitor. Peak memory on a rank is modeled as
//
//   base_runtime + sum over owned boxes of
//       ghosted_cells * ncomp * 8B * (1 + solver_overhead)
//
// where solver_overhead accounts for the unsplit Godunov temporaries (old/new
// state, per-dimension flux fabs, reconstruction scratch). The model is
// deliberately layout-driven: dynamic refinement concentrates fine boxes on a
// few ranks, which is exactly the erratic, imbalanced profile of the paper's
// Fig. 1.
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/layout.hpp"

namespace xl::amr {

struct MemoryModelConfig {
  int ncomp = 5;
  int nghost = 2;
  /// Multiplier on state bytes for solver temporaries. The unsplit update
  /// holds old+new state (2x) plus one flux fab per dimension (3x) and
  /// reconstruction scratch; 3.0 extra is representative of Chombo's
  /// PolytropicGas footprint.
  double solver_overhead = 3.0;
  /// Fixed per-rank footprint (binary, MPI buffers, Chombo metadata).
  std::size_t base_runtime_bytes = std::size_t{16} << 20;
  /// Extra per-cell bytes while an in-situ analysis kernel is resident.
  double analysis_bytes_per_cell = 0.0;
};

/// Peak bytes per rank for one hierarchy snapshot given its level layouts.
/// Works on geometry only, so it scales to thousands of virtual ranks.
std::vector<std::size_t> per_rank_peak_bytes(const std::vector<mesh::BoxLayout>& levels,
                                             const MemoryModelConfig& config);

/// Memory still available per rank given a per-rank capacity.
std::vector<std::size_t> per_rank_available_bytes(
    const std::vector<mesh::BoxLayout>& levels, const MemoryModelConfig& config,
    std::size_t capacity_per_rank);

}  // namespace xl::amr
