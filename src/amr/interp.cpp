#include "amr/interp.hpp"

namespace xl::amr {

using mesh::BoxIterator;
using mesh::Fab;

void prolong_constant(const AmrLevel& coarse, AmrLevel& fine, int ratio) {
  const IntVect rvec = IntVect::uniform(ratio);
  for (std::size_t fi = 0; fi < fine.layout.num_boxes(); ++fi) {
    Fab& ffab = fine.data[fi];
    const Box fvalid = fine.layout.box(fi);
    const Box cneeded = fvalid.coarsen(rvec);
    for (std::size_t ci = 0; ci < coarse.layout.num_boxes(); ++ci) {
      const Box coverlap = cneeded & coarse.layout.box(ci);
      if (coverlap.empty()) continue;
      const Fab& cfab = coarse.data[ci];
      const Box ftarget = coverlap.refine(rvec) & fvalid;
      for (int c = 0; c < ffab.ncomp(); ++c) {
        for (BoxIterator it(ftarget); it.ok(); ++it) {
          ffab(*it, c) = cfab((*it).coarsen(rvec), c);
        }
      }
    }
  }
}

void restrict_average(const AmrLevel& fine, AmrLevel& coarse, int ratio) {
  const IntVect rvec = IntVect::uniform(ratio);
  const double inv_vol = 1.0 / static_cast<double>(ratio * ratio * ratio);
  for (std::size_t ci = 0; ci < coarse.layout.num_boxes(); ++ci) {
    Fab& cfab = coarse.data[ci];
    const Box cvalid = coarse.layout.box(ci);
    for (std::size_t fi = 0; fi < fine.layout.num_boxes(); ++fi) {
      const Box covered = fine.layout.box(fi).coarsen(rvec) & cvalid;
      if (covered.empty()) continue;
      const Fab& ffab = fine.data[fi];
      for (int c = 0; c < cfab.ncomp(); ++c) {
        for (BoxIterator it(covered); it.ok(); ++it) {
          const Box children((*it).refine(rvec), (*it).refine(rvec) + (ratio - 1));
          double sum = 0.0;
          for (BoxIterator fit(children); fit.ok(); ++fit) sum += ffab(*fit, c);
          cfab(*it, c) = sum * inv_vol;
        }
      }
    }
  }
}

void fill_cf_ghosts(const AmrLevel& coarse, AmrLevel& fine, int ratio, int nghost) {
  const IntVect rvec = IntVect::uniform(ratio);
  for (std::size_t fi = 0; fi < fine.layout.num_boxes(); ++fi) {
    Fab& ffab = fine.data[fi];
    const Box ghosted = fine.layout.box(fi).grow(nghost);
    // Cells of the ghost halo not covered by any fine valid box.
    std::vector<Box> halo;
    ghosted.subtract(fine.layout.box(fi), halo);
    for (const Box& piece : halo) {
      // Remove parts covered by other fine boxes (exchange handles those).
      std::vector<Box> uncovered{piece};
      for (std::size_t fj = 0; fj < fine.layout.num_boxes(); ++fj) {
        if (fj == fi) continue;
        std::vector<Box> next;
        for (const Box& u : uncovered) u.subtract(fine.layout.box(fj), next);
        uncovered = std::move(next);
        if (uncovered.empty()) break;
      }
      for (const Box& u : uncovered) {
        const Box cneeded = u.coarsen(rvec);
        for (std::size_t ci = 0; ci < coarse.layout.num_boxes(); ++ci) {
          // Read through the coarse fab's own ghosts so domain-boundary fine
          // ghosts get filled too (coarse ghosts were filled by exchange).
          const Box creadable = coarse.data[ci].box();
          const Box coverlap = cneeded & creadable;
          if (coverlap.empty()) continue;
          const Fab& cfab = coarse.data[ci];
          const Box ftarget = coverlap.refine(rvec) & u;
          for (int c = 0; c < ffab.ncomp(); ++c) {
            for (BoxIterator it(ftarget); it.ok(); ++it) {
              ffab(*it, c) = cfab((*it).coarsen(rvec), c);
            }
          }
        }
      }
    }
  }
}

}  // namespace xl::amr
