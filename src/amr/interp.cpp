#include "amr/interp.hpp"

#include <vector>

namespace xl::amr {

using mesh::BoxIterator;
using mesh::Fab;

namespace {

/// Floor division matching IntVect::coarsen on negative coordinates.
int floor_div(int a, int b) { return (a >= 0) ? a / b : -((-a + b - 1) / b); }

}  // namespace

void prolong_constant(const AmrLevel& coarse, AmrLevel& fine, int ratio) {
  const IntVect rvec = IntVect::uniform(ratio);
  for (std::size_t fi = 0; fi < fine.layout.num_boxes(); ++fi) {
    Fab& ffab = fine.data[fi];
    const Box fvalid = fine.layout.box(fi);
    const Box cneeded = fvalid.coarsen(rvec);
    for (std::size_t ci = 0; ci < coarse.layout.num_boxes(); ++ci) {
      const Box coverlap = cneeded & coarse.layout.box(ci);
      if (coverlap.empty()) continue;
      const Fab& cfab = coarse.data[ci];
      const Box ftarget = coverlap.refine(rvec) & fvalid;
      // Each fine row reads one coarse row (the one at j/ratio, k/ratio);
      // only the x gather index changes per cell.
      const int fx0 = ftarget.lo()[0];
      const int cx0 = cfab.box().lo()[0];
      const auto nx = static_cast<std::size_t>(ftarget.size()[0]);
      const auto fxoff = static_cast<std::size_t>(fx0 - ffab.box().lo()[0]);
      for (int c = 0; c < ffab.ncomp(); ++c) {
        mesh::for_each_row(ftarget, [&](int j, int k) {
          double* fr = ffab.row(c, j, k) + fxoff;
          const double* cr =
              cfab.row(c, floor_div(j, ratio), floor_div(k, ratio));
          for (std::size_t i = 0; i < nx; ++i) {
            fr[i] = cr[floor_div(fx0 + static_cast<int>(i), ratio) - cx0];
          }
        });
      }
    }
  }
}

void restrict_average(const AmrLevel& fine, AmrLevel& coarse, int ratio) {
  const IntVect rvec = IntVect::uniform(ratio);
  const double inv_vol = 1.0 / static_cast<double>(ratio * ratio * ratio);
  for (std::size_t ci = 0; ci < coarse.layout.num_boxes(); ++ci) {
    Fab& cfab = coarse.data[ci];
    const Box cvalid = coarse.layout.box(ci);
    for (std::size_t fi = 0; fi < fine.layout.num_boxes(); ++fi) {
      const Box covered = fine.layout.box(fi).coarsen(rvec) & cvalid;
      if (covered.empty()) continue;
      const Fab& ffab = fine.data[fi];
      // All ratio^2 child rows of a coarse row are hoisted once; the per-cell
      // sum walks them dz -> dy -> dx, the exact BoxIterator child order, so
      // the accumulation is bit-identical to the seed per-cell loop.
      const int cx0 = covered.lo()[0];
      const auto ncx = static_cast<std::size_t>(covered.size()[0]);
      const auto cxoff = static_cast<std::size_t>(cx0 - cfab.box().lo()[0]);
      const int ffx0 = ffab.box().lo()[0];
      std::vector<const double*> frows(
          static_cast<std::size_t>(ratio) * static_cast<std::size_t>(ratio));
      for (int c = 0; c < cfab.ncomp(); ++c) {
        mesh::for_each_row(covered, [&](int j, int k) {
          for (int dz = 0; dz < ratio; ++dz) {
            for (int dy = 0; dy < ratio; ++dy) {
              frows[static_cast<std::size_t>(dz * ratio + dy)] =
                  ffab.row(c, j * ratio + dy, k * ratio + dz);
            }
          }
          double* cr = cfab.row(c, j, k) + cxoff;
          for (std::size_t i = 0; i < ncx; ++i) {
            const int fx = (cx0 + static_cast<int>(i)) * ratio;
            double sum = 0.0;
            for (int dz = 0; dz < ratio; ++dz) {
              for (int dy = 0; dy < ratio; ++dy) {
                const double* fr =
                    frows[static_cast<std::size_t>(dz * ratio + dy)] +
                    (fx - ffx0);
                for (int dx = 0; dx < ratio; ++dx) sum += fr[dx];
              }
            }
            cr[i] = sum * inv_vol;
          }
        });
      }
    }
  }
}

void fill_cf_ghosts(const AmrLevel& coarse, AmrLevel& fine, int ratio, int nghost) {
  const IntVect rvec = IntVect::uniform(ratio);
  for (std::size_t fi = 0; fi < fine.layout.num_boxes(); ++fi) {
    Fab& ffab = fine.data[fi];
    const Box ghosted = fine.layout.box(fi).grow(nghost);
    // Cells of the ghost halo not covered by any fine valid box.
    std::vector<Box> halo;
    ghosted.subtract(fine.layout.box(fi), halo);
    for (const Box& piece : halo) {
      // Remove parts covered by other fine boxes (exchange handles those).
      std::vector<Box> uncovered{piece};
      for (std::size_t fj = 0; fj < fine.layout.num_boxes(); ++fj) {
        if (fj == fi) continue;
        std::vector<Box> next;
        for (const Box& u : uncovered) u.subtract(fine.layout.box(fj), next);
        uncovered = std::move(next);
        if (uncovered.empty()) break;
      }
      for (const Box& u : uncovered) {
        const Box cneeded = u.coarsen(rvec);
        for (std::size_t ci = 0; ci < coarse.layout.num_boxes(); ++ci) {
          // Read through the coarse fab's own ghosts so domain-boundary fine
          // ghosts get filled too (coarse ghosts were filled by exchange).
          const Box creadable = coarse.data[ci].box();
          const Box coverlap = cneeded & creadable;
          if (coverlap.empty()) continue;
          const Fab& cfab = coarse.data[ci];
          const Box ftarget = coverlap.refine(rvec) & u;
          for (int c = 0; c < ffab.ncomp(); ++c) {
            for (BoxIterator it(ftarget); it.ok(); ++it) {
              ffab(*it, c) = cfab((*it).coarsen(rvec), c);
            }
          }
        }
      }
    }
  }
}

}  // namespace xl::amr
