#include "amr/berger_rigoutsos.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "mesh/layout.hpp"

namespace xl::amr {

using mesh::Box;
using mesh::IntVect;
using mesh::kDim;

namespace {

/// Minimal box containing all tags.
Box bounding_box(const std::vector<IntVect>& tags) {
  XL_CHECK(!tags.empty(), "bounding box of no tags");
  IntVect lo = tags[0], hi = tags[0];
  for (const IntVect& t : tags) {
    lo = lo.min(t);
    hi = hi.max(t);
  }
  return Box(lo, hi);
}

/// Signature: tag count per plane along dimension `dim` of `box`.
std::vector<int> signature(const std::vector<IntVect>& tags, const Box& box, int dim) {
  std::vector<int> sig(static_cast<std::size_t>(box.size()[dim]), 0);
  for (const IntVect& t : tags) {
    ++sig[static_cast<std::size_t>(t[dim] - box.lo()[dim])];
  }
  return sig;
}

struct Cut {
  int dim = -1;
  int at = 0;       ///< absolute coordinate; cells < at go left.
  int quality = -1; ///< larger is better.
};

/// Look for a zero plane (hole) in any signature — the best possible cut.
Cut find_hole(const std::vector<std::vector<int>>& sigs, const Box& box, int min_size) {
  Cut best;
  for (int d = 0; d < kDim; ++d) {
    const auto& sig = sigs[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < sig.size(); ++i) {
      if (sig[i] != 0) continue;
      const int at = box.lo()[d] + static_cast<int>(i);
      const int left = at - box.lo()[d];
      const int right = box.hi()[d] - at;
      if (left < min_size || right + 1 < min_size) continue;
      // Prefer the hole most central in its dimension.
      const int quality = std::min(left, right + 1);
      if (quality > best.quality) best = Cut{d, at, quality};
    }
  }
  return best;
}

/// Otherwise cut at the strongest inflection of the signature Laplacian.
Cut find_inflection(const std::vector<std::vector<int>>& sigs, const Box& box,
                    int min_size) {
  Cut best;
  for (int d = 0; d < kDim; ++d) {
    const auto& sig = sigs[static_cast<std::size_t>(d)];
    const int n = static_cast<int>(sig.size());
    // Second derivative of the signature; a sign change with large magnitude
    // marks the edge of a tag cluster.
    for (int i = 1; i + 2 < n; ++i) {
      const int d2a = sig[static_cast<std::size_t>(i - 1)] - 2 * sig[static_cast<std::size_t>(i)] +
                      sig[static_cast<std::size_t>(i + 1)];
      const int d2b = sig[static_cast<std::size_t>(i)] - 2 * sig[static_cast<std::size_t>(i + 1)] +
                      sig[static_cast<std::size_t>(i + 2)];
      if (static_cast<long>(d2a) * d2b >= 0) continue;
      const int strength = std::abs(d2a - d2b);
      const int at = box.lo()[d] + i + 1;
      const int left = at - box.lo()[d];
      const int right = box.hi()[d] - at;
      if (left < min_size || right + 1 < min_size) continue;
      if (strength > best.quality) best = Cut{d, at, strength};
    }
  }
  return best;
}

/// Fallback: bisect the longest splittable dimension.
Cut find_bisection(const Box& box, int min_size) {
  Cut best;
  for (int d = 0; d < kDim; ++d) {
    const int len = box.size()[d];
    if (len < 2 * min_size) continue;
    if (best.dim < 0 || len > box.size()[best.dim]) {
      best = Cut{d, box.lo()[d] + len / 2, len};
    }
  }
  return best;
}

void cluster(std::vector<IntVect> tags, const Box& domain, const BrConfig& config,
             std::vector<Box>& out) {
  if (tags.empty()) return;
  const Box bb = bounding_box(tags) & domain;
  const double fill = static_cast<double>(tags.size()) /
                      static_cast<double>(bb.num_cells());
  const bool small_enough = bb.size()[bb.longest_dim()] <= config.max_box_size;
  if (small_enough && fill >= config.fill_ratio) {
    out.push_back(bb);
    return;
  }
  // Cannot split further -> accept regardless of fill.
  const bool splittable = bb.size()[bb.longest_dim()] >= 2 * config.min_box_size;
  if (!splittable) {
    out.push_back(bb);
    return;
  }

  std::vector<std::vector<int>> sigs;
  sigs.reserve(kDim);
  for (int d = 0; d < kDim; ++d) sigs.push_back(signature(tags, bb, d));

  Cut cut = find_hole(sigs, bb, config.min_box_size);
  if (cut.dim < 0) cut = find_inflection(sigs, bb, config.min_box_size);
  if (cut.dim < 0) cut = find_bisection(bb, config.min_box_size);
  if (cut.dim < 0) {
    out.push_back(bb);  // genuinely unsplittable
    return;
  }

  std::vector<IntVect> left, right;
  left.reserve(tags.size());
  right.reserve(tags.size());
  for (const IntVect& t : tags) {
    (t[cut.dim] < cut.at ? left : right).push_back(t);
  }
  XL_CHECK(!left.empty() || !right.empty(), "cut lost all tags");
  cluster(std::move(left), domain, config, out);
  cluster(std::move(right), domain, config, out);
}

}  // namespace

std::vector<Box> berger_rigoutsos(const std::vector<IntVect>& tags, const Box& domain,
                                  const BrConfig& config) {
  XL_REQUIRE(config.fill_ratio > 0.0 && config.fill_ratio <= 1.0,
             "fill ratio must be in (0,1]");
  XL_REQUIRE(config.min_box_size >= 1, "min box size must be positive");
  std::vector<Box> out;
  std::vector<IntVect> inside;
  inside.reserve(tags.size());
  for (const IntVect& t : tags) {
    if (domain.contains(t)) inside.push_back(t);
  }
  cluster(std::move(inside), domain, config, out);
  // Guarantee max_box_size: the fill-ratio early-accept can return oversized
  // boxes only when they were unsplittable, but decompose() enforces the cap.
  std::vector<Box> sized;
  for (const Box& b : out) {
    auto pieces = mesh::decompose(b, config.max_box_size);
    sized.insert(sized.end(), pieces.begin(), pieces.end());
  }
  return sized;
}

}  // namespace xl::amr
