#include "amr/plotfile.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/buffer_pool.hpp"
#include "common/error.hpp"

namespace xl::amr {

namespace {

constexpr char kMagic[4] = {'X', 'L', 'P', 'F'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value;
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  XL_REQUIRE(is.good(), "plotfile truncated");
  return value;
}

void write_box(std::ostream& os, const Box& b) {
  for (int d = 0; d < mesh::kDim; ++d) write_pod<std::int32_t>(os, b.lo()[d]);
  for (int d = 0; d < mesh::kDim; ++d) write_pod<std::int32_t>(os, b.hi()[d]);
}

Box read_box(std::istream& is) {
  IntVect lo, hi;
  for (int d = 0; d < mesh::kDim; ++d) lo[d] = read_pod<std::int32_t>(is);
  for (int d = 0; d < mesh::kDim; ++d) hi[d] = read_pod<std::int32_t>(is);
  return Box(lo, hi);
}

}  // namespace

std::int64_t PlotFileData::total_cells() const noexcept {
  std::int64_t cells = 0;
  for (const PlotLevel& lev : levels) {
    for (const Box& b : lev.boxes) cells += b.num_cells();
  }
  return cells;
}

void write_plotfile(std::ostream& os, const AmrHierarchy& hierarchy, int step,
                    double time) {
  os.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(os, kVersion);
  write_pod<std::int32_t>(os, step);
  write_pod<double>(os, time);
  write_pod<std::int32_t>(os, hierarchy.ncomp());
  write_pod<std::int32_t>(os, hierarchy.config().ref_ratio);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(hierarchy.num_levels()));
  // One pack buffer reused across every box of every level: it grows to the
  // largest box once and recycles through the pool afterwards, instead of a
  // fresh vector per box.
  PoolVec<double> payload;
  for (std::size_t l = 0; l < hierarchy.num_levels(); ++l) {
    const AmrLevel& level = hierarchy.level(l);
    write_box(os, level.domain);
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(level.layout.num_boxes()));
    for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
      const Box valid = level.layout.box(i);
      write_box(os, valid);
      write_pod<std::int32_t>(os, level.layout.rank_of(i));
      level.data[i].pack_into(valid, payload);
      os.write(reinterpret_cast<const char*>(payload.data()),
               static_cast<std::streamsize>(payload.size() * sizeof(double)));
    }
  }
  BufferPool::global().release(std::move(payload));
  XL_REQUIRE(os.good(), "plotfile write failed");
}

void write_plotfile(const std::string& path, const AmrHierarchy& hierarchy, int step,
                    double time) {
  std::ofstream os(path, std::ios::binary);
  XL_REQUIRE(os.good(), "cannot open plotfile for writing: " + path);
  write_plotfile(os, hierarchy, step, time);
}

PlotFileData read_plotfile(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  XL_REQUIRE(is.good() && std::memcmp(magic, kMagic, 4) == 0,
             "not a plotfile (bad magic)");
  const auto version = read_pod<std::uint32_t>(is);
  XL_REQUIRE(version == kVersion, "unsupported plotfile version");

  PlotFileData data;
  data.step = read_pod<std::int32_t>(is);
  data.time = read_pod<double>(is);
  data.ncomp = read_pod<std::int32_t>(is);
  data.ref_ratio = read_pod<std::int32_t>(is);
  XL_REQUIRE(data.ncomp >= 1 && data.ncomp < 1024, "implausible component count");
  const auto num_levels = read_pod<std::uint32_t>(is);
  XL_REQUIRE(num_levels >= 1 && num_levels < 64, "implausible level count");

  // Mirror of the writer: one read buffer reused across all boxes.
  PoolVec<double> payload;
  for (std::uint32_t l = 0; l < num_levels; ++l) {
    PlotLevel level;
    level.domain = read_box(is);
    XL_REQUIRE(!level.domain.empty(), "empty level domain");
    const auto nboxes = read_pod<std::uint32_t>(is);
    for (std::uint32_t i = 0; i < nboxes; ++i) {
      const Box valid = read_box(is);
      XL_REQUIRE(!valid.empty(), "empty box in plotfile");
      XL_REQUIRE(level.domain.contains(valid), "box outside level domain");
      const auto rank = read_pod<std::int32_t>(is);
      mesh::Fab fab(valid, data.ncomp);
      payload.resize(static_cast<std::size_t>(valid.num_cells()) *
                     static_cast<std::size_t>(data.ncomp));
      is.read(reinterpret_cast<char*>(payload.data()),
              static_cast<std::streamsize>(payload.size() * sizeof(double)));
      XL_REQUIRE(is.good(), "plotfile payload truncated");
      fab.unpack(valid, payload);
      level.boxes.push_back(valid);
      level.ranks.push_back(rank);
      level.data.push_back(std::move(fab));
    }
    data.levels.push_back(std::move(level));
  }
  BufferPool::global().release(std::move(payload));
  return data;
}

PlotFileData read_plotfile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  XL_REQUIRE(is.good(), "cannot open plotfile: " + path);
  return read_plotfile(is);
}

AmrHierarchy hierarchy_from_plotfile(const PlotFileData& data, const AmrConfig& config) {
  XL_REQUIRE(!data.levels.empty(), "plotfile has no levels");
  XL_REQUIRE(config.base_domain == data.levels.front().domain,
             "config base domain does not match plotfile");
  AmrHierarchy hierarchy(config, data.ncomp);

  // Rebuild the fine layouts with the recorded rank assignment, then copy
  // payloads level by level.
  std::vector<mesh::BoxLayout> fine_layouts;
  for (std::size_t l = 1; l < data.levels.size(); ++l) {
    int nranks = config.nranks;
    for (int r : data.levels[l].ranks) nranks = std::max(nranks, r + 1);
    fine_layouts.emplace_back(data.levels[l].boxes, data.levels[l].ranks, nranks);
  }
  hierarchy.regrid(fine_layouts);

  for (std::size_t l = 0; l < data.levels.size(); ++l) {
    AmrLevel& level = hierarchy.level(l);
    for (std::size_t i = 0; i < data.levels[l].boxes.size(); ++i) {
      const Box& src_box = data.levels[l].boxes[i];
      for (std::size_t j = 0; j < level.layout.num_boxes(); ++j) {
        const Box overlap = level.layout.box(j) & src_box;
        if (!overlap.empty()) {
          level.data[j].copy_from(data.levels[l].data[i], overlap);
        }
      }
    }
  }
  return hierarchy;
}

}  // namespace xl::amr
