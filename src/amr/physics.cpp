#include "amr/physics.hpp"

#include "common/error.hpp"

namespace xl::amr {

using mesh::BoxIterator;

void godunov_update(const Physics& physics, const Fab& u, const Box& valid, double dx,
                    double dt, Fab& u_new) {
  const int nc = physics.ncomp();
  XL_REQUIRE(u.ncomp() == nc && u_new.ncomp() == nc, "component mismatch");
  XL_REQUIRE(u_new.box().contains(valid), "destination does not cover valid box");
  const double lambda = dt / dx;

  // Copy current state, then apply the flux differences of each dimension —
  // the "unsplit" update uses one state for all directional fluxes.
  u_new.copy_from(u, valid);
  for (int d = 0; d < mesh::kDim; ++d) {
    // Faces needed: low faces of every valid cell plus the face one past the
    // high end (hi+1 stores the high face of the last cell).
    IntVect hi = valid.hi();
    hi[d] += 1;
    const Box faces(valid.lo(), hi);
    Fab flux(faces, nc);
    physics.face_flux(u, faces, d, dx, flux);
    for (int c = 0; c < nc; ++c) {
      for (BoxIterator it(valid); it.ok(); ++it) {
        IntVect up = *it;
        up[d] += 1;
        u_new(*it, c) -= lambda * (flux(up, c) - flux(*it, c));
      }
    }
  }
}

}  // namespace xl::amr
