#include "amr/physics.hpp"

#include "common/error.hpp"
#include "common/simd.hpp"

namespace xl::amr {

void godunov_update(const Physics& physics, const Fab& u, const Box& valid, double dx,
                    double dt, Fab& u_new) {
  using simd::dpack;
  const int nc = physics.ncomp();
  XL_REQUIRE(u.ncomp() == nc && u_new.ncomp() == nc, "component mismatch");
  XL_REQUIRE(u_new.box().contains(valid), "destination does not cover valid box");
  const double lambda = dt / dx;

  // Copy current state, then apply the flux differences of each dimension —
  // the "unsplit" update uses one state for all directional fluxes.
  u_new.copy_from(u, valid);
  const auto nx = static_cast<std::size_t>(valid.size()[0]);
  const auto nxoff =
      static_cast<std::size_t>(valid.lo()[0] - u_new.box().lo()[0]);
  const dpack vlambda = dpack::broadcast(lambda);
  for (int d = 0; d < mesh::kDim; ++d) {
    // Faces needed: low faces of every valid cell plus the face one past the
    // high end (hi+1 stores the high face of the last cell).
    IntVect hi = valid.hi();
    hi[d] += 1;
    const Box faces(valid.lo(), hi);
    Fab flux(faces, nc);
    physics.face_flux(u, faces, d, dx, flux);
    // The low and high faces of a whole row are two flat streams (the high
    // stream is the low one shifted in `d`), so the difference is a
    // lane-per-cell elementwise update — bit-identical to the cell loop.
    for (int c = 0; c < nc; ++c) {
      mesh::for_each_row(valid, [&](int j, int k) {
        const double* flo = flux.row(c, j, k);
        const double* fhi = d == 0   ? flo + 1
                            : d == 1 ? flux.row(c, j + 1, k)
                                     : flux.row(c, j, k + 1);
        double* un = u_new.row(c, j, k) + nxoff;
        std::size_t i = 0;
        for (; i + dpack::lanes <= nx; i += dpack::lanes) {
          const dpack upd = dpack::load(un + i) -
                            vlambda * (dpack::load(fhi + i) - dpack::load(flo + i));
          upd.store(un + i);
        }
        for (; i < nx; ++i) {
          un[i] -= lambda * (fhi[i] - flo[i]);
        }
      });
    }
  }
}

}  // namespace xl::amr
