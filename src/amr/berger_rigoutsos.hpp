// Berger-Rigoutsos grid generation: cluster tagged cells into a small set of
// boxes whose fill ratio (tags / cells) meets a target efficiency. This is
// the classic signature/hole/inflection algorithm Chombo's BRMeshRefine uses.
#pragma once

#include <vector>

#include "mesh/box.hpp"
#include "mesh/intvect.hpp"

namespace xl::amr {

struct BrConfig {
  double fill_ratio = 0.7;  ///< minimum tags/cells before a box is accepted.
  int max_box_size = 32;    ///< boxes longer than this are always split.
  int min_box_size = 4;     ///< never split below this (also blocking factor).
};

/// Cluster `tags` (cells in the index space of the level being refined) into
/// boxes. Returned boxes are disjoint, cover every tag, lie within `domain`,
/// and are aligned to min_box_size where possible.
std::vector<mesh::Box> berger_rigoutsos(const std::vector<mesh::IntVect>& tags,
                                        const mesh::Box& domain, const BrConfig& config);

}  // namespace xl::amr
