#include "amr/hierarchy.hpp"

#include "amr/interp.hpp"

#include <cstdint>

namespace xl::amr {

AmrHierarchy::AmrHierarchy(const AmrConfig& config, int ncomp)
    : config_(config), ncomp_(ncomp) {
  XL_REQUIRE(!config.base_domain.empty(), "base domain must be non-empty");
  XL_REQUIRE(config.max_levels >= 1, "need at least the base level");
  XL_REQUIRE(config.ref_ratio >= 2, "refinement ratio must be >= 2");
  XL_REQUIRE(ncomp >= 1, "need at least one component");
  AmrLevel base;
  base.domain = config.base_domain;
  base.layout = mesh::balance(mesh::decompose(config.base_domain, config.max_box_size),
                              config.nranks, config.balance);
  base.data = LevelData(base.layout, ncomp, config.nghost);
  levels_.push_back(std::move(base));
}

Box AmrHierarchy::domain_of(std::size_t l) const {
  Box d = config_.base_domain;
  for (std::size_t i = 0; i < l; ++i) d = d.refine(config_.ref_ratio);
  return d;
}

void AmrHierarchy::regrid(const std::vector<BoxLayout>& fine_layouts) {
  XL_REQUIRE(fine_layouts.size() + 1 <= static_cast<std::size_t>(config_.max_levels),
             "too many levels in regrid");
  std::vector<AmrLevel> old_levels = std::move(levels_);
  levels_.clear();
  levels_.push_back(std::move(old_levels[0]));

  for (std::size_t l = 0; l < fine_layouts.size(); ++l) {
    const std::size_t lev = l + 1;
    AmrLevel next;
    next.domain = domain_of(lev);
    next.layout = fine_layouts[l];
    next.data = LevelData(next.layout, ncomp_, config_.nghost);
    levels_.push_back(std::move(next));

    // Initialize from coarse, then overwrite with old same-level data where
    // the old level existed and overlaps.
    prolong_constant(levels_[lev - 1], levels_[lev], config_.ref_ratio);
    if (lev < old_levels.size()) {
      const AmrLevel& old = old_levels[lev];
      for (std::size_t ni = 0; ni < levels_[lev].layout.num_boxes(); ++ni) {
        for (std::size_t oi = 0; oi < old.layout.num_boxes(); ++oi) {
          const Box overlap = levels_[lev].layout.box(ni) & old.layout.box(oi);
          if (!overlap.empty()) {
            levels_[lev].data[ni].copy_from(old.data[oi], overlap);
          }
        }
      }
    }
  }
}

std::int64_t AmrHierarchy::total_cells() const noexcept {
  std::int64_t total = 0;
  for (const AmrLevel& lev : levels_) total += lev.layout.total_cells();
  return total;
}

std::size_t AmrHierarchy::bytes() const noexcept {
  std::size_t total = 0;
  for (const AmrLevel& lev : levels_) total += lev.data.bytes();
  return total;
}

bool AmrHierarchy::is_finest_at(std::size_t l, const IntVect& cell) const {
  if (l + 1 >= levels_.size()) return true;
  const IntVect fine = cell.refine(IntVect::uniform(config_.ref_ratio));
  const Box child(fine, fine + (config_.ref_ratio - 1));
  for (const Box& b : levels_[l + 1].layout.boxes()) {
    if (b.intersects(child)) return false;
  }
  return true;
}

}  // namespace xl::amr
