// The AMR time-stepping driver: owns the hierarchy, advances all levels with
// the shared stable dt (non-subcycled), restricts fine onto coarse after each
// step, and regrids on a fixed cadence using gradient tags clustered by
// Berger-Rigoutsos. Equivalent in role to Chombo's AMR class for the paper's
// workloads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "amr/berger_rigoutsos.hpp"
#include "amr/hierarchy.hpp"
#include "amr/physics.hpp"
#include "amr/tagging.hpp"

namespace xl::amr {

/// Per-step observables consumed by the runtime Monitor and the benches.
struct StepStats {
  int step = 0;
  double time = 0.0;
  double dt = 0.0;
  bool regridded = false;
  std::vector<std::int64_t> cells_per_level;
  std::int64_t total_cells = 0;
  std::size_t bytes = 0;          ///< hierarchy payload after the step.
  double wall_seconds = 0.0;      ///< measured advance time on this machine.
};

class AmrSimulation {
 public:
  AmrSimulation(const AmrConfig& config, std::shared_ptr<Physics> physics,
                const TagCriterion& criterion, double cfl = 0.4,
                int regrid_interval = 4);

  /// Build the initial hierarchy: initialize level 0 from the physics, then
  /// repeatedly tag/cluster/refine until max_levels (or no tags).
  void initialize();

  /// Advance one step; returns the step's observables.
  StepStats advance();

  AmrHierarchy& hierarchy() { return hierarchy_; }
  const AmrHierarchy& hierarchy() const { return hierarchy_; }
  const Physics& physics() const { return *physics_; }

  int step() const noexcept { return step_; }
  double time() const noexcept { return time_; }
  double dx(std::size_t level) const;

 private:
  void init_level_from_physics(std::size_t lev);
  void fill_ghosts(std::size_t lev);
  double stable_dt() const;
  void advance_level(std::size_t lev, double dt);
  /// Subcycled recursion: advance level `lev` by dt, then the finer level by
  /// ref_ratio substeps of dt/ref_ratio, then restrict.
  void advance_recursive(std::size_t lev, double dt);
  void regrid_all();
  /// Tags of level `lev` converted into a refined-level layout; empty
  /// optional when there are no tags.
  std::vector<Box> boxes_from_tags(std::size_t lev);

  AmrConfig config_;
  std::shared_ptr<Physics> physics_;
  TagCriterion criterion_;
  double cfl_;
  int regrid_interval_;
  AmrHierarchy hierarchy_;
  int step_ = 0;
  double time_ = 0.0;
};

}  // namespace xl::amr
