#include "amr/polytropic_gas.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xl::amr {

using mesh::BoxIterator;

namespace {

/// Minmod slope limiter.
double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::fabs(a) < std::fabs(b) ? a : b;
}

}  // namespace

PolytropicGas::PolytropicGas(const PolytropicGasConfig& config) : config_(config) {
  XL_REQUIRE(config.gamma > 1.0, "polytropic gamma must exceed 1");
  XL_REQUIRE(config.p_inside > 0 && config.p_outside > 0, "pressure must be positive");
  XL_REQUIRE(config.rho_inside > 0 && config.rho_outside > 0, "density must be positive");
}

void PolytropicGas::initial_value(const IntVect& p, double dx, double* out) const {
  const double x = (p[0] + 0.5) * dx;
  const double y = (p[1] + 0.5) * dx;
  const double z = (p[2] + 0.5) * dx;
  const double dx0 = x - config_.center[0] * config_.extent;
  const double dy0 = y - config_.center[1] * config_.extent;
  const double dz0 = z - config_.center[2] * config_.extent;
  const double r = std::sqrt(dx0 * dx0 + dy0 * dy0 + dz0 * dz0);
  // Smooth the interface over one coarse cell so tagging sees a gradient
  // rather than a jump aligned to the grid.
  const double s = 1.0 / (1.0 + std::exp((r - config_.radius * config_.extent) / (0.5 * dx + 1e-300)));
  const double rho = config_.rho_outside + (config_.rho_inside - config_.rho_outside) * s;
  const double pr = config_.p_outside + (config_.p_inside - config_.p_outside) * s;
  out[kRho] = rho;
  out[kMomX] = 0.0;
  out[kMomY] = 0.0;
  out[kMomZ] = 0.0;
  out[kEnergy] = pr / (config_.gamma - 1.0);
}

double PolytropicGas::pressure(const double* cons) const {
  const double rho = std::max(cons[kRho], 1e-12);
  const double ke = 0.5 *
                    (cons[kMomX] * cons[kMomX] + cons[kMomY] * cons[kMomY] +
                     cons[kMomZ] * cons[kMomZ]) /
                    rho;
  return std::max((config_.gamma - 1.0) * (cons[kEnergy] - ke), 1e-12);
}

double PolytropicGas::sound_speed(const double* cons) const {
  const double rho = std::max(cons[kRho], 1e-12);
  return std::sqrt(config_.gamma * pressure(cons) / rho);
}

void PolytropicGas::physical_flux(const double* cons, int dim, double* out) const {
  const double rho = std::max(cons[kRho], 1e-12);
  const double vel = cons[kMomX + dim] / rho;
  const double p = pressure(cons);
  out[kRho] = cons[kRho] * vel;
  out[kMomX] = cons[kMomX] * vel;
  out[kMomY] = cons[kMomY] * vel;
  out[kMomZ] = cons[kMomZ] * vel;
  out[kMomX + dim] += p;
  out[kEnergy] = (cons[kEnergy] + p) * vel;
}

double PolytropicGas::max_wave_speed(const Fab& u, const Box& valid, double /*dx*/) const {
  double speed = 0.0;
  double cons[kNcomp];
  for (BoxIterator it(valid); it.ok(); ++it) {
    for (int c = 0; c < kNcomp; ++c) cons[c] = u(*it, c);
    const double rho = std::max(cons[kRho], 1e-12);
    const double cs = sound_speed(cons);
    for (int d = 0; d < mesh::kDim; ++d) {
      speed = std::max(speed, std::fabs(cons[kMomX + d] / rho) + cs);
    }
  }
  return speed;
}

void PolytropicGas::face_flux(const Fab& u, const Box& faces, int dim, double /*dx*/,
                              Fab& flux) const {
  XL_REQUIRE(flux.box().contains(faces), "flux fab does not cover faces");
  double left[kNcomp], right[kNcomp], fl[kNcomp], fr[kNcomp];
  for (BoxIterator it(faces); it.ok(); ++it) {
    // Face between cells lo = p - e_dim and hi = p.
    IntVect lo = *it;
    lo[dim] -= 1;
    IntVect lolo = lo;
    lolo[dim] -= 1;
    IntVect hihi = *it;
    hihi[dim] += 1;

    // Limited linear reconstruction of the conserved state on both sides.
    for (int c = 0; c < kNcomp; ++c) {
      const double ull = u(lolo, c);
      const double ul = u(lo, c);
      const double ur = u(*it, c);
      const double urr = u(hihi, c);
      const double slope_l = minmod(ul - ull, ur - ul);
      const double slope_r = minmod(ur - ul, urr - ur);
      left[c] = ul + 0.5 * slope_l;
      right[c] = ur - 0.5 * slope_r;
    }

    // Rusanov flux: 0.5 (F(L)+F(R)) - 0.5 smax (R - L).
    physical_flux(left, dim, fl);
    physical_flux(right, dim, fr);
    const double rho_l = std::max(left[kRho], 1e-12);
    const double rho_r = std::max(right[kRho], 1e-12);
    const double smax =
        std::max(std::fabs(left[kMomX + dim] / rho_l) + sound_speed(left),
                 std::fabs(right[kMomX + dim] / rho_r) + sound_speed(right));
    for (int c = 0; c < kNcomp; ++c) {
      flux(*it, c) = 0.5 * (fl[c] + fr[c]) - 0.5 * smax * (right[c] - left[c]);
    }
  }
}

}  // namespace xl::amr
