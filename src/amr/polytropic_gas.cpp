#include "amr/polytropic_gas.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace xl::amr {

namespace {

/// Minmod slope limiter.
double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::fabs(a) < std::fabs(b) ? a : b;
}

}  // namespace

PolytropicGas::PolytropicGas(const PolytropicGasConfig& config) : config_(config) {
  XL_REQUIRE(config.gamma > 1.0, "polytropic gamma must exceed 1");
  XL_REQUIRE(config.p_inside > 0 && config.p_outside > 0, "pressure must be positive");
  XL_REQUIRE(config.rho_inside > 0 && config.rho_outside > 0, "density must be positive");
}

void PolytropicGas::initial_value(const IntVect& p, double dx, double* out) const {
  const double x = (p[0] + 0.5) * dx;
  const double y = (p[1] + 0.5) * dx;
  const double z = (p[2] + 0.5) * dx;
  const double dx0 = x - config_.center[0] * config_.extent;
  const double dy0 = y - config_.center[1] * config_.extent;
  const double dz0 = z - config_.center[2] * config_.extent;
  const double r = std::sqrt(dx0 * dx0 + dy0 * dy0 + dz0 * dz0);
  // Smooth the interface over one coarse cell so tagging sees a gradient
  // rather than a jump aligned to the grid.
  const double s = 1.0 / (1.0 + std::exp((r - config_.radius * config_.extent) / (0.5 * dx + 1e-300)));
  const double rho = config_.rho_outside + (config_.rho_inside - config_.rho_outside) * s;
  const double pr = config_.p_outside + (config_.p_inside - config_.p_outside) * s;
  out[kRho] = rho;
  out[kMomX] = 0.0;
  out[kMomY] = 0.0;
  out[kMomZ] = 0.0;
  out[kEnergy] = pr / (config_.gamma - 1.0);
}

double PolytropicGas::pressure(const double* cons) const {
  const double rho = std::max(cons[kRho], 1e-12);
  const double ke = 0.5 *
                    (cons[kMomX] * cons[kMomX] + cons[kMomY] * cons[kMomY] +
                     cons[kMomZ] * cons[kMomZ]) /
                    rho;
  return std::max((config_.gamma - 1.0) * (cons[kEnergy] - ke), 1e-12);
}

double PolytropicGas::sound_speed(const double* cons) const {
  const double rho = std::max(cons[kRho], 1e-12);
  return std::sqrt(config_.gamma * pressure(cons) / rho);
}

void PolytropicGas::physical_flux(const double* cons, int dim, double* out) const {
  const double rho = std::max(cons[kRho], 1e-12);
  const double vel = cons[kMomX + dim] / rho;
  const double p = pressure(cons);
  out[kRho] = cons[kRho] * vel;
  out[kMomX] = cons[kMomX] * vel;
  out[kMomY] = cons[kMomY] * vel;
  out[kMomZ] = cons[kMomZ] * vel;
  out[kMomX + dim] += p;
  out[kEnergy] = (cons[kEnergy] + p) * vel;
}

double PolytropicGas::max_wave_speed(const Fab& u, const Box& valid, double /*dx*/) const {
  double speed = 0.0;
  double cons[kNcomp];
  const auto nx = static_cast<std::size_t>(valid.size()[0]);
  const auto xoff = static_cast<std::size_t>(valid.lo()[0] - u.box().lo()[0]);
  mesh::for_each_row(valid, [&](int j, int k) {
    const double* rows[kNcomp];
    for (int c = 0; c < kNcomp; ++c) rows[c] = u.row(c, j, k) + xoff;
    for (std::size_t i = 0; i < nx; ++i) {
      for (int c = 0; c < kNcomp; ++c) cons[c] = rows[c][i];
      const double rho = std::max(cons[kRho], 1e-12);
      const double cs = sound_speed(cons);
      for (int d = 0; d < mesh::kDim; ++d) {
        speed = std::max(speed, std::fabs(cons[kMomX + d] / rho) + cs);
      }
    }
  });
  return speed;
}

void PolytropicGas::face_flux(const Fab& u, const Box& faces, int dim, double /*dx*/,
                              Fab& flux) const {
  XL_REQUIRE(flux.box().contains(faces), "flux fab does not cover faces");
  double left[kNcomp], right[kNcomp], fl[kNcomp], fr[kNcomp];
  // The four-point stencil along `dim` is four flat rows per component: for
  // dim 0 they are the same row shifted, otherwise rows at j/k offsets. The
  // per-face Rusanov math itself stays scalar — it is branchy (minmod,
  // clamps) and feeds golden byte-compared output; the win here is replacing
  // twenty bounds-checked Fab index computations per face with row cursors.
  const auto nx = static_cast<std::size_t>(faces.size()[0]);
  const auto uxoff = static_cast<std::size_t>(faces.lo()[0] - u.box().lo()[0]);
  const auto fxoff = static_cast<std::size_t>(faces.lo()[0] - flux.box().lo()[0]);
  mesh::for_each_row(faces, [&](int j, int k) {
    const double* rll[kNcomp];
    const double* rl[kNcomp];
    const double* rr[kNcomp];
    const double* rrr[kNcomp];
    double* rf[kNcomp];
    for (int c = 0; c < kNcomp; ++c) {
      rr[c] = u.row(c, j, k) + uxoff;
      if (dim == 0) {
        rl[c] = rr[c] - 1;
        rll[c] = rr[c] - 2;
        rrr[c] = rr[c] + 1;
      } else if (dim == 1) {
        rl[c] = u.row(c, j - 1, k) + uxoff;
        rll[c] = u.row(c, j - 2, k) + uxoff;
        rrr[c] = u.row(c, j + 1, k) + uxoff;
      } else {
        rl[c] = u.row(c, j, k - 1) + uxoff;
        rll[c] = u.row(c, j, k - 2) + uxoff;
        rrr[c] = u.row(c, j, k + 1) + uxoff;
      }
      rf[c] = flux.row(c, j, k) + fxoff;
    }
    for (std::size_t i = 0; i < nx; ++i) {
      // Limited linear reconstruction of the conserved state on both sides.
      for (int c = 0; c < kNcomp; ++c) {
        const double ull = rll[c][i];
        const double ul = rl[c][i];
        const double ur = rr[c][i];
        const double urr = rrr[c][i];
        const double slope_l = minmod(ul - ull, ur - ul);
        const double slope_r = minmod(ur - ul, urr - ur);
        left[c] = ul + 0.5 * slope_l;
        right[c] = ur - 0.5 * slope_r;
      }

      // Rusanov flux: 0.5 (F(L)+F(R)) - 0.5 smax (R - L).
      physical_flux(left, dim, fl);
      physical_flux(right, dim, fr);
      const double rho_l = std::max(left[kRho], 1e-12);
      const double rho_r = std::max(right[kRho], 1e-12);
      const double smax =
          std::max(std::fabs(left[kMomX + dim] / rho_l) + sound_speed(left),
                   std::fabs(right[kMomX + dim] / rho_r) + sound_speed(right));
      for (int c = 0; c < kNcomp; ++c) {
        rf[c][i] = 0.5 * (fl[c] + fr[c]) - 0.5 * smax * (right[c] - left[c]);
      }
    }
  });
}

}  // namespace xl::amr
