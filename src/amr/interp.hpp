// Inter-level data transfer: prolongation (coarse -> fine) and restriction
// (fine -> coarse volume average), plus coarse-fine ghost filling.
#pragma once

#include "amr/hierarchy.hpp"

namespace xl::amr {

/// Piecewise-constant prolongation of the overlap of `coarse` onto `fine`'s
/// valid regions (each fine cell copies its coarse parent).
void prolong_constant(const AmrLevel& coarse, AmrLevel& fine, int ratio);

/// Volume-average restriction of `fine`'s valid regions onto `coarse`.
void restrict_average(const AmrLevel& fine, AmrLevel& coarse, int ratio);

/// Fill `fine`'s ghost cells that lie outside the fine level's valid union by
/// piecewise-constant interpolation from `coarse`. Ghosts interior to the
/// fine level must already be filled by exchange().
void fill_cf_ghosts(const AmrLevel& coarse, AmrLevel& fine, int ratio, int nghost);

}  // namespace xl::amr
