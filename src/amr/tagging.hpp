// Refinement tagging: mark the cells whose solution gradient exceeds a
// threshold, the standard Chombo criterion for the Godunov examples.
#pragma once

#include <vector>

#include "amr/hierarchy.hpp"

namespace xl::amr {

struct TagCriterion {
  int comp = 0;              ///< component to examine (density for Euler).
  double rel_threshold = 0.1;  ///< tag when |undivided gradient| / |value| exceeds this.
  double abs_floor = 1e-12;    ///< values below this never tag (avoid 0/0).
};

/// Tag cells of `level` (valid regions only; ghosts must be filled first so
/// the one-sided differences at box edges see neighbour data).
std::vector<IntVect> tag_cells(const AmrLevel& level, const TagCriterion& criterion);

/// Grow each tag by `buffer` cells (clipped to `domain`), deduplicated.
std::vector<IntVect> buffer_tags(const std::vector<IntVect>& tags, int buffer,
                                 const Box& domain);

}  // namespace xl::amr
