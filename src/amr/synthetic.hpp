// Geometry-only AMR evolution for the paper's machine-scale experiments.
//
// The Fig. 7-11 / Table 2 runs use 2K-16K cores and domains up to
// 2048x2048x1024 — far beyond what one workstation can hold as field data.
// But the adaptation policies never read field values: they consume the
// *hierarchy geometry* per step (cells per level, per-rank distribution,
// generated data size). This class evolves exactly that geometry: an
// expanding spherical front plus drifting blobs produce refinement tags
// analytically (at tile granularity), the real Berger-Rigoutsos clusterer and
// the real load balancer turn them into per-step layouts, and the memory
// model prices them. Everything downstream (staging, policies, DES) is the
// same code path a field-carrying run uses.
#pragma once

#include <cstdint>
#include <vector>

#include "amr/berger_rigoutsos.hpp"
#include "common/rng.hpp"
#include "mesh/layout.hpp"

namespace xl::amr {

using mesh::Box;
using mesh::BoxLayout;
using mesh::IntVect;

struct SyntheticAmrConfig {
  Box base_domain;           ///< level-0 index domain.
  int max_levels = 3;
  int ref_ratio = 2;
  int max_box_size = 32;
  int tile_size = 8;         ///< tag granularity (cells per tile side, level-0 space).
  int nranks = 64;
  mesh::BalanceMethod balance = mesh::BalanceMethod::MortonRoundRobin;
  double fill_ratio = 0.7;

  /// Expanding spherical front (fractions of the shortest domain edge for the
  /// radius; cells/step for the speed). Models the Sedov-like shock the
  /// Polytropic Gas run refines around.
  double front_radius0 = 0.10;
  double front_speed = 0.012;  ///< fraction of shortest edge per step.
  double front_thickness = 0.03;
  /// The refined band thins as the shock weakens: from `front_decay_onset`
  /// on, the band thickness shrinks by `front_decay` per step (1.0 = never).
  /// Gives runs the refine-then-coarsen life cycle of real AMR explosions.
  double front_decay = 1.0;
  int front_decay_onset = 0;

  /// Secondary drifting Gaussian blobs (turbulent features entering the
  /// refined set mid-run).
  int num_blobs = 3;
  double blob_radius = 0.05;
  int blob_onset_step = 10;  ///< blobs start refining after this step.

  std::uint64_t seed = 42;
};

/// One step's hierarchy geometry.
struct SyntheticStep {
  std::vector<BoxLayout> levels;         ///< level 0 first.
  std::vector<std::int64_t> cells_per_level;
  std::int64_t total_cells = 0;
};

class SyntheticAmrEvolution {
 public:
  explicit SyntheticAmrEvolution(const SyntheticAmrConfig& config);

  /// Geometry at time step `step` (deterministic in (config, step)).
  SyntheticStep at(int step) const;

  const SyntheticAmrConfig& config() const noexcept { return config_; }

 private:
  /// Tile-granular tags at refinement level `lev` (index space of level lev)
  /// for time step `step`. Returned points are tile indices.
  std::vector<IntVect> tile_tags(int step, int lev) const;

  SyntheticAmrConfig config_;
  double shortest_edge_;
  BoxLayout base_layout_;  ///< level 0 is static; built once.
  std::vector<std::array<double, 3>> blob_centers_;   ///< fractions of domain.
  std::vector<std::array<double, 3>> blob_velocity_;  ///< fractions per step.
};

}  // namespace xl::amr
