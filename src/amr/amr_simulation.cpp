#include "amr/amr_simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "amr/interp.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace xl::amr {

using mesh::BoxIterator;
using mesh::Fab;

AmrSimulation::AmrSimulation(const AmrConfig& config, std::shared_ptr<Physics> physics,
                             const TagCriterion& criterion, double cfl,
                             int regrid_interval)
    : config_(config),
      physics_(std::move(physics)),
      criterion_(criterion),
      cfl_(cfl),
      regrid_interval_(regrid_interval),
      hierarchy_(config, physics_ ? physics_->ncomp() : 1) {
  XL_REQUIRE(physics_ != nullptr, "simulation needs a physics");
  XL_REQUIRE(cfl > 0.0 && cfl < 1.0, "CFL must be in (0,1)");
  XL_REQUIRE(regrid_interval >= 1, "regrid interval must be positive");
  XL_REQUIRE(config.nghost >= physics_->nghost(), "config ghost width below physics stencil");
}

double AmrSimulation::dx(std::size_t level) const {
  double d = 1.0 / static_cast<double>(config_.base_domain.size()[0]);
  for (std::size_t l = 0; l < level; ++l) d /= static_cast<double>(config_.ref_ratio);
  return d;
}

void AmrSimulation::init_level_from_physics(std::size_t lev) {
  AmrLevel& level = hierarchy_.level(lev);
  const double d = dx(lev);
  parallel_for(ThreadPool::global(), 0, level.layout.num_boxes(),
               [&](std::size_t blo, std::size_t bhi) {
    std::vector<double> value(static_cast<std::size_t>(physics_->ncomp()));
    for (std::size_t i = blo; i < bhi; ++i) {
      Fab& fab = level.data[i];
      // Fill ghosts too: cheap, and gives tagging valid one-sided stencils
      // even before the first exchange.
      for (BoxIterator it(fab.box()); it.ok(); ++it) {
        physics_->initial_value(*it, d, value.data());
        for (int c = 0; c < physics_->ncomp(); ++c) fab(*it, c) = value[c];
      }
    }
  });
}

void AmrSimulation::initialize() {
  init_level_from_physics(0);
  fill_ghosts(0);
  // Grow the hierarchy one level at a time from fresh physics data.
  while (hierarchy_.num_levels() < static_cast<std::size_t>(config_.max_levels)) {
    const std::size_t lev = hierarchy_.num_levels() - 1;
    std::vector<Box> boxes = boxes_from_tags(lev);
    if (boxes.empty()) break;
    std::vector<BoxLayout> layouts;
    for (std::size_t l = 1; l < hierarchy_.num_levels(); ++l) {
      layouts.push_back(hierarchy_.level(l).layout);
    }
    layouts.push_back(mesh::balance(std::move(boxes), config_.nranks, config_.balance));
    hierarchy_.regrid(layouts);
    init_level_from_physics(hierarchy_.num_levels() - 1);
    fill_ghosts(hierarchy_.num_levels() - 1);
  }
  XL_LOG_INFO("initialized " << physics_->name() << " with "
                             << hierarchy_.num_levels() << " levels, "
                             << hierarchy_.total_cells() << " cells");
}

void AmrSimulation::fill_ghosts(std::size_t lev) {
  AmrLevel& level = hierarchy_.level(lev);
  level.data.exchange(level.domain, config_.periodic);
  if (lev > 0) {
    fill_cf_ghosts(hierarchy_.level(lev - 1), level, config_.ref_ratio, config_.nghost);
  }
}

double AmrSimulation::stable_dt() const {
  // Non-subcycled: the returned dt must be stable on every level as-is.
  // Subcycled: level l advances with dt / ratio^l, so a level's constraint
  // relaxes by ratio^l when folded back to the level-0 dt.
  double dt = std::numeric_limits<double>::infinity();
  double level_scale = 1.0;
  for (std::size_t lev = 0; lev < hierarchy_.num_levels(); ++lev) {
    const AmrLevel& level = hierarchy_.level(lev);
    const double d = dx(lev);
    // min() over per-box wave speeds is exact under any partition, so the
    // parallel reduction matches the serial dt bit for bit.
    const std::size_t nboxes = level.layout.num_boxes();
    std::vector<double> box_speed(nboxes, 0.0);
    parallel_for(ThreadPool::global(), 0, nboxes,
                 [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t i = blo; i < bhi; ++i) {
        box_speed[i] =
            physics_->max_wave_speed(level.data[i], level.layout.box(i), d);
      }
    });
    for (double speed : box_speed) {
      if (speed > 0.0) dt = std::min(dt, level_scale * cfl_ * d / speed);
    }
    if (config_.subcycle) level_scale *= static_cast<double>(config_.ref_ratio);
  }
  XL_CHECK(std::isfinite(dt), "no finite stable dt (all-zero wave speeds?)");
  return dt;
}

void AmrSimulation::advance_recursive(std::size_t lev, double dt) {
  fill_ghosts(lev);
  advance_level(lev, dt);
  if (lev + 1 < hierarchy_.num_levels()) {
    const double fine_dt = dt / static_cast<double>(config_.ref_ratio);
    for (int sub = 0; sub < config_.ref_ratio; ++sub) {
      advance_recursive(lev + 1, fine_dt);
    }
    restrict_average(hierarchy_.level(lev + 1), hierarchy_.level(lev),
                     config_.ref_ratio);
  }
}

void AmrSimulation::advance_level(std::size_t lev, double dt) {
  AmrLevel& level = hierarchy_.level(lev);
  const double d = dx(lev);
  // Each box reads only its own fab (ghosts were filled beforehand) and
  // writes its own updated copy, so boxes advance independently.
  const std::size_t nboxes = level.layout.num_boxes();
  std::vector<Fab> updated(nboxes);
  parallel_for(ThreadPool::global(), 0, nboxes,
               [&](std::size_t blo, std::size_t bhi) {
    for (std::size_t i = blo; i < bhi; ++i) {
      Fab out(level.data[i].box(), physics_->ncomp());
      out.copy_from(level.data[i], level.data[i].box());
      godunov_update(*physics_, level.data[i], level.layout.box(i), d, dt, out);
      updated[i] = std::move(out);
    }
  });
  for (std::size_t i = 0; i < updated.size(); ++i) {
    level.data[i] = std::move(updated[i]);
  }
}

StepStats AmrSimulation::advance() {
  // xl-lint: allow(wallclock): StepStats.wall_seconds is a diagnostic of real
  // solver cost (calibration input); it never feeds the simulated timeline.
  const auto wall_start = std::chrono::steady_clock::now();
  const double dt = stable_dt();

  if (config_.subcycle) {
    advance_recursive(0, dt);
  } else {
    for (std::size_t lev = 0; lev < hierarchy_.num_levels(); ++lev) {
      fill_ghosts(lev);
    }
    for (std::size_t lev = 0; lev < hierarchy_.num_levels(); ++lev) {
      advance_level(lev, dt);
    }
    for (std::size_t lev = hierarchy_.num_levels(); lev-- > 1;) {
      restrict_average(hierarchy_.level(lev), hierarchy_.level(lev - 1),
                       config_.ref_ratio);
    }
  }

  ++step_;
  time_ += dt;

  StepStats stats;
  stats.step = step_;
  stats.time = time_;
  stats.dt = dt;
  if (step_ % regrid_interval_ == 0 && config_.max_levels > 1) {
    regrid_all();
    stats.regridded = true;
  }
  for (std::size_t lev = 0; lev < hierarchy_.num_levels(); ++lev) {
    stats.cells_per_level.push_back(hierarchy_.level(lev).layout.total_cells());
  }
  stats.total_cells = hierarchy_.total_cells();
  stats.bytes = hierarchy_.bytes();
  // xl-lint: allow(wallclock): measurement-only (see wall_start above).
  const auto wall_end = std::chrono::steady_clock::now();
  stats.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  return stats;
}

std::vector<Box> AmrSimulation::boxes_from_tags(std::size_t lev) {
  AmrLevel& level = hierarchy_.level(lev);
  fill_ghosts(lev);
  std::vector<IntVect> tags = tag_cells(level, criterion_);
  if (tags.empty()) return {};
  tags = buffer_tags(tags, config_.tag_buffer, level.domain);
  BrConfig br;
  br.fill_ratio = config_.fill_ratio;
  br.max_box_size = std::max(1, config_.max_box_size / config_.ref_ratio);
  br.min_box_size = std::max(1, config_.blocking_factor / config_.ref_ratio);
  std::vector<Box> coarse_boxes = berger_rigoutsos(tags, level.domain, br);
  std::vector<Box> fine_boxes;
  fine_boxes.reserve(coarse_boxes.size());
  for (const Box& b : coarse_boxes) fine_boxes.push_back(b.refine(config_.ref_ratio));
  return fine_boxes;
}

void AmrSimulation::regrid_all() {
  // Rebuild every fine level from tags on the level below, clipping for
  // proper nesting: level l+1 boxes must lie inside the union of level l.
  std::vector<BoxLayout> layouts;
  std::vector<Box> parent_union;  // union of the previous new level's boxes
  const std::size_t old_levels = hierarchy_.num_levels();
  for (std::size_t lev = 0; lev + 1 < static_cast<std::size_t>(config_.max_levels); ++lev) {
    if (lev >= old_levels) break;  // no data to tag from
    std::vector<Box> boxes = boxes_from_tags(lev);
    if (lev > 0) {
      // Clip against the refinement of the newly-chosen parent level.
      std::vector<Box> clipped;
      for (const Box& b : boxes) {
        for (const Box& p : parent_union) {
          const Box inter = b & p.refine(config_.ref_ratio);
          if (!inter.empty()) clipped.push_back(inter);
        }
      }
      boxes = std::move(clipped);
    }
    if (boxes.empty()) break;
    parent_union = boxes;
    layouts.push_back(mesh::balance(std::move(boxes), config_.nranks, config_.balance));
  }
  hierarchy_.regrid(layouts);
  for (std::size_t lev = 1; lev < hierarchy_.num_levels(); ++lev) fill_ghosts(lev);
}

}  // namespace xl::amr
