#include "amr/memory_model.hpp"

#include "common/contract.hpp"
#include "common/error.hpp"

namespace xl::amr {

std::vector<std::size_t> per_rank_peak_bytes(const std::vector<mesh::BoxLayout>& levels,
                                             const MemoryModelConfig& config) {
  XL_REQUIRE(!levels.empty(), "memory model needs at least one level");
  const int nranks = levels.front().num_ranks();
  std::vector<double> bytes(static_cast<std::size_t>(nranks),
                            to_double(config.base_runtime_bytes, "base runtime bytes"));
  const double per_cell =
      to_double(config.ncomp, "ncomp") * sizeof(double) * (1.0 + config.solver_overhead) +
      config.analysis_bytes_per_cell;
  XL_REQUIRE(per_cell >= 0.0, "negative per-cell footprint");
  for (const mesh::BoxLayout& layout : levels) {
    XL_REQUIRE(layout.num_ranks() == nranks, "levels balanced over different rank counts");
    for (std::size_t i = 0; i < layout.num_boxes(); ++i) {
      const double ghosted_cells =
          to_double(layout.box(i).grow(config.nghost).num_cells(), "ghosted cells");
      bytes[static_cast<std::size_t>(layout.rank_of(i))] += ghosted_cells * per_cell;
    }
  }
  std::vector<std::size_t> out(bytes.size());
  for (std::size_t r = 0; r < bytes.size(); ++r) {
    out[r] = f2s(bytes[r], "per-rank peak bytes");
  }
  return out;
}

std::vector<std::size_t> per_rank_available_bytes(
    const std::vector<mesh::BoxLayout>& levels, const MemoryModelConfig& config,
    std::size_t capacity_per_rank) {
  std::vector<std::size_t> used = per_rank_peak_bytes(levels, config);
  for (std::size_t& u : used) {
    u = u >= capacity_per_rank ? 0 : capacity_per_rank - u;
  }
  return used;
}

}  // namespace xl::amr
