#include "amr/memory_model.hpp"

#include "common/error.hpp"

namespace xl::amr {

std::vector<std::size_t> per_rank_peak_bytes(const std::vector<mesh::BoxLayout>& levels,
                                             const MemoryModelConfig& config) {
  XL_REQUIRE(!levels.empty(), "memory model needs at least one level");
  const int nranks = levels.front().num_ranks();
  std::vector<double> bytes(static_cast<std::size_t>(nranks),
                            static_cast<double>(config.base_runtime_bytes));
  const double per_cell =
      static_cast<double>(config.ncomp) * sizeof(double) * (1.0 + config.solver_overhead) +
      config.analysis_bytes_per_cell;
  for (const mesh::BoxLayout& layout : levels) {
    XL_REQUIRE(layout.num_ranks() == nranks, "levels balanced over different rank counts");
    for (std::size_t i = 0; i < layout.num_boxes(); ++i) {
      const auto ghosted_cells =
          static_cast<double>(layout.box(i).grow(config.nghost).num_cells());
      bytes[static_cast<std::size_t>(layout.rank_of(i))] += ghosted_cells * per_cell;
    }
  }
  std::vector<std::size_t> out(bytes.size());
  for (std::size_t r = 0; r < bytes.size(); ++r) out[r] = static_cast<std::size_t>(bytes[r]);
  return out;
}

std::vector<std::size_t> per_rank_available_bytes(
    const std::vector<mesh::BoxLayout>& levels, const MemoryModelConfig& config,
    std::size_t capacity_per_rank) {
  std::vector<std::size_t> used = per_rank_peak_bytes(levels, config);
  for (std::size_t& u : used) {
    u = u >= capacity_per_rank ? 0 : capacity_per_rank - u;
  }
  return used;
}

}  // namespace xl::amr
