#include "amr/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"
#include "common/error.hpp"

namespace xl::amr {

namespace {

/// Reflecting ("triangle wave") coordinate so blobs bounce off the walls.
double reflect01(double x) {
  x = std::fmod(std::fabs(x), 2.0);
  return x <= 1.0 ? x : 2.0 - x;
}

}  // namespace

SyntheticAmrEvolution::SyntheticAmrEvolution(const SyntheticAmrConfig& config)
    : config_(config) {
  XL_REQUIRE(!config.base_domain.empty(), "base domain must be non-empty");
  XL_REQUIRE(config.tile_size >= 1, "tile size must be positive");
  XL_REQUIRE(config.max_levels >= 1, "need at least one level");
  XL_REQUIRE(config.ref_ratio >= 2, "refinement ratio must be >= 2");
  XL_REQUIRE(config.base_domain.lo() == IntVect::zero(),
             "synthetic evolution assumes a zero-origin domain");
  const IntVect size = config.base_domain.size();
  shortest_edge_ = static_cast<double>(std::min({size[0], size[1], size[2]}));

  Rng rng(config.seed);
  for (int b = 0; b < config.num_blobs; ++b) {
    blob_centers_.push_back({rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8),
                             rng.uniform(0.2, 0.8)});
    blob_velocity_.push_back({rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02),
                              rng.uniform(-0.02, 0.02)});
  }

  // Level 0 never changes; build its layout once.
  base_layout_ = mesh::balance(
      mesh::decompose(config_.base_domain, config_.max_box_size), config_.nranks,
      config_.balance);
}

// Tags live in "base-tile space": the level-0 domain coarsened by tile_size.
// One tile is a fixed physical region regardless of level, so the tag domain
// (and hence the tagging cost) is scale-independent. Tagging enumerates, for
// every (y,z) tile column, the x-intervals intersecting the spherical band —
// O(surface tiles), never O(volume).
std::vector<IntVect> SyntheticAmrEvolution::tile_tags(int step, int lev) const {
  const Box tile_domain = config_.base_domain.coarsen(config_.tile_size);
  const double edge_tiles = shortest_edge_ / config_.tile_size;  // shortest edge in tiles
  const IntVect tsize = tile_domain.size();

  const double radius = config_.front_radius0 + config_.front_speed * step;
  // Finer levels refine a narrower band around the front; past the decay
  // onset the band thins step by step (the shock weakens and cells coarsen).
  double thickness = config_.front_thickness;
  if (config_.front_decay < 1.0 && step > config_.front_decay_onset) {
    thickness *= std::pow(config_.front_decay, step - config_.front_decay_onset);
  }
  const double band = thickness / static_cast<double>(1 << lev);

  std::vector<IntVect> tags;
  // Centers in tile units. fx etc. are fractions of the shortest edge.
  auto tag_sphere_band = [&](double fx, double fy, double fz, double r_lo, double r_hi) {
    const double cx = fx * edge_tiles, cy = fy * edge_tiles, cz = fz * edge_tiles;
    const double tr_lo = r_lo * edge_tiles, tr_hi = r_hi * edge_tiles;
    const int ty_lo = std::max(tile_domain.lo()[1],
                               f2i<int>(std::floor(cy - tr_hi)) - 1);
    const int ty_hi = std::min(tile_domain.hi()[1],
                               f2i<int>(std::ceil(cy + tr_hi)) + 1);
    const int tz_lo = std::max(tile_domain.lo()[2],
                               f2i<int>(std::floor(cz - tr_hi)) - 1);
    const int tz_hi = std::min(tile_domain.hi()[2],
                               f2i<int>(std::ceil(cz + tr_hi)) + 1);
    for (int tz = tz_lo; tz <= tz_hi; ++tz) {
      for (int ty = ty_lo; ty <= ty_hi; ++ty) {
        const double dy = (ty + 0.5) - cy;
        const double dz = (tz + 0.5) - cz;
        const double d2 = dy * dy + dz * dz;
        if (d2 > tr_hi * tr_hi) continue;
        const double half_out = std::sqrt(tr_hi * tr_hi - d2);
        const double half_in =
            d2 < tr_lo * tr_lo ? std::sqrt(tr_lo * tr_lo - d2) : 0.0;
        // Two x-intervals: [cx-half_out, cx-half_in] and [cx+half_in, cx+half_out]
        // (they merge when half_in == 0).
        auto emit = [&](double x_lo, double x_hi) {
          int i_lo = std::max(tsize[0] > 0 ? tile_domain.lo()[0] : 0,
                              f2i<int>(std::floor(x_lo - 0.5)));
          int i_hi = std::min(tile_domain.hi()[0],
                              f2i<int>(std::ceil(x_hi - 0.5)));
          for (int tx = i_lo; tx <= i_hi; ++tx) {
            const double dx = (tx + 0.5) - cx;
            const double dist2 = dx * dx + d2;
            if (dist2 >= tr_lo * tr_lo && dist2 <= tr_hi * tr_hi) {
              tags.push_back({tx, ty, tz});
            }
          }
        };
        if (half_in > 0.0) {
          emit(cx - half_out, cx - half_in);
          emit(cx + half_in, cx + half_out);
        } else {
          emit(cx - half_out, cx + half_out);
        }
      }
    }
  };

  // Front center sits at the domain center (fractions of the shortest edge).
  const IntVect dsize = config_.base_domain.size();
  tag_sphere_band(0.5 * dsize[0] / shortest_edge_, 0.5 * dsize[1] / shortest_edge_,
                  0.5 * dsize[2] / shortest_edge_, std::max(0.0, radius - band),
                  radius + band);

  if (step >= config_.blob_onset_step) {
    const double blob_r = config_.blob_radius / static_cast<double>(1 << lev);
    for (std::size_t b = 0; b < blob_centers_.size(); ++b) {
      const double fx = reflect01(blob_centers_[b][0] + blob_velocity_[b][0] * step) *
                        dsize[0] / shortest_edge_;
      const double fy = reflect01(blob_centers_[b][1] + blob_velocity_[b][1] * step) *
                        dsize[1] / shortest_edge_;
      const double fz = reflect01(blob_centers_[b][2] + blob_velocity_[b][2] * step) *
                        dsize[2] / shortest_edge_;
      tag_sphere_band(fx, fy, fz, 0.0, blob_r);
    }
  }
  return tags;
}

SyntheticStep SyntheticAmrEvolution::at(int step) const {
  XL_REQUIRE(step >= 0, "step must be non-negative");
  SyntheticStep out;
  out.levels.push_back(base_layout_);

  int level_ratio = config_.ref_ratio;  // base-cells -> level-(lev+1) cells factor
  for (int lev = 0; lev + 1 < config_.max_levels; ++lev) {
    std::vector<IntVect> tags = tile_tags(step, lev);
    if (tags.empty()) break;

    // Cluster in tile space. One tile refines into
    // tile_size * ratio^(lev+1) cells per side at the new level, so the BR
    // box cap in tiles is max_box_size over that span (at least 1).
    const int cells_per_tile = config_.tile_size * level_ratio;
    BrConfig br;
    br.fill_ratio = config_.fill_ratio;
    br.max_box_size = std::max(1, config_.max_box_size / cells_per_tile);
    br.min_box_size = 1;
    const Box tile_domain = config_.base_domain.coarsen(config_.tile_size);
    std::vector<Box> tile_boxes = berger_rigoutsos(tags, tile_domain, br);

    std::vector<Box> boxes;
    boxes.reserve(tile_boxes.size());
    const Box fine_domain = config_.base_domain.refine(IntVect::uniform(level_ratio));
    for (const Box& tb : tile_boxes) {
      const Box fine =
          tb.refine(IntVect::uniform(cells_per_tile)) & fine_domain;
      if (fine.empty()) continue;
      // Nesting holds by construction: each level's band is a concentric
      // subset of the coarser band (half the thickness, same center), and the
      // geometry-only pipeline consumes cell counts and layouts, never
      // coarse-fine stencils, so tile-rounding slack at the band edge is
      // harmless. An explicit clip would cost O(boxes^2) at 16K-core scale.
      boxes.push_back(fine);
    }
    if (boxes.empty()) break;
    out.levels.push_back(mesh::balance(std::move(boxes), config_.nranks, config_.balance));
    level_ratio *= config_.ref_ratio;
  }

  for (const BoxLayout& layout : out.levels) {
    out.cells_per_level.push_back(layout.total_cells());
    out.total_cells += layout.total_cells();
  }
  return out;
}

}  // namespace xl::amr
