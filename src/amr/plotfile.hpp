// Plotfile I/O: serialize an AMR hierarchy snapshot to a self-describing
// binary file and read it back — the role Chombo's HDF5 plotfiles play in
// the paper's workflow (the traditional post-processing path the in-situ /
// in-transit pipeline replaces, and the fallback output the visualization
// service can consume offline).
//
// Format (host-endian, version 1):
//   magic "XLPF" | u32 version | i32 step | f64 time | i32 ncomp
//   i32 ref_ratio | u32 num_levels
//   per level: Box domain | u32 nboxes
//     per box: Box | i32 rank | payload (valid cells, Fortran order, ncomp)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "amr/hierarchy.hpp"

namespace xl::amr {

struct PlotLevel {
  Box domain;
  std::vector<Box> boxes;
  std::vector<int> ranks;
  std::vector<mesh::Fab> data;  ///< one fab per box, valid region only.
};

struct PlotFileData {
  int step = 0;
  double time = 0.0;
  int ncomp = 1;
  int ref_ratio = 2;
  std::vector<PlotLevel> levels;

  std::int64_t total_cells() const noexcept;
};

/// Write the hierarchy's valid data to `os` / `path`.
void write_plotfile(std::ostream& os, const AmrHierarchy& hierarchy, int step,
                    double time);
void write_plotfile(const std::string& path, const AmrHierarchy& hierarchy, int step,
                    double time);

/// Read a plotfile back. Throws ContractError on malformed input.
PlotFileData read_plotfile(std::istream& is);
PlotFileData read_plotfile(const std::string& path);

/// Restore a hierarchy from plotfile data (layouts rebalanced over the
/// recorded ranks; ghost cells left zero — call exchange() before use).
AmrHierarchy hierarchy_from_plotfile(const PlotFileData& data, const AmrConfig& config);

}  // namespace xl::amr
