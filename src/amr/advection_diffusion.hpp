// AMR Advection-Diffusion: an adaptive conservative transport solver for a
// passive scalar, matching the lighter-weight Chombo workload of the paper's
// Figs. 7, 8, 10, 11 experiments. Upwind advective flux plus central
// diffusive flux, explicit in time.
#pragma once

#include "amr/physics.hpp"

namespace xl::amr {

struct AdvectionDiffusionConfig {
  double velocity[3] = {1.0, 0.5, 0.25};  ///< constant advection velocity.
  double diffusivity = 0.001;
  /// Gaussian blob initial condition.
  double center[3] = {0.35, 0.35, 0.35};
  double width = 0.08;    ///< Gaussian sigma (fraction of extent).
  double amplitude = 1.0;
  double background = 0.01;
  double extent = 1.0;
};

class AdvectionDiffusion final : public Physics {
 public:
  explicit AdvectionDiffusion(const AdvectionDiffusionConfig& config = {});

  std::string name() const override { return "AdvectionDiffusion"; }
  int ncomp() const override { return 1; }
  int nghost() const override { return 2; }

  void initial_value(const IntVect& p, double dx, double* out) const override;
  double max_wave_speed(const Fab& u, const Box& valid, double dx) const override;
  void face_flux(const Fab& u, const Box& faces, int dim, double dx,
                 Fab& flux) const override;

  const AdvectionDiffusionConfig& config() const noexcept { return config_; }

 private:
  AdvectionDiffusionConfig config_;
};

}  // namespace xl::amr
