// The AMR mesh hierarchy: a stack of properly-nested levels, each a disjoint
// box layout refined from the one below. Mirrors the part of Chombo's
// AMR/AMRLevel machinery the paper's workloads exercise.
//
// This library uses non-subcycled time stepping (all levels advance with the
// shared stable dt); Chombo subcycles, but the data-management behaviour the
// paper studies — dynamic per-step data volumes and imbalanced layouts — is
// identical, and non-subcycling keeps the driver simple (documented in
// DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/lookup.hpp"
#include "mesh/layout.hpp"
#include "mesh/level_data.hpp"

namespace xl::amr {

using mesh::Box;
using mesh::BoxLayout;
using mesh::IntVect;
using mesh::LevelData;

/// Static description of the hierarchy shape.
struct AmrConfig {
  Box base_domain;              ///< level-0 problem domain.
  int max_levels = 3;           ///< including the base level.
  int ref_ratio = 2;            ///< uniform per-level refinement ratio.
  int max_box_size = 32;        ///< decomposition limit per side.
  int nghost = 2;               ///< ghost width for solver stencils.
  int blocking_factor = 4;      ///< grid coarsenability requirement.
  int tag_buffer = 1;           ///< cells to grow tags before clustering.
  double fill_ratio = 0.7;      ///< Berger-Rigoutsos efficiency target.
  int nranks = 4;               ///< ranks to balance each level over.
  bool periodic = true;
  /// Subcycled time stepping (Chombo's scheme): each finer level takes
  /// ref_ratio substeps per coarse step, with coarse-fine ghosts held at the
  /// coarse time (piecewise-constant in time; Chombo interpolates linearly).
  /// false = non-subcycled: all levels advance with the shared stable dt.
  bool subcycle = false;
  mesh::BalanceMethod balance = mesh::BalanceMethod::MortonRoundRobin;
};

/// One level: its layout, domain (in its own index space), and field data.
struct AmrLevel {
  Box domain;
  BoxLayout layout;
  LevelData data;
};

class AmrHierarchy {
 public:
  explicit AmrHierarchy(const AmrConfig& config, int ncomp);

  const AmrConfig& config() const noexcept { return config_; }
  int ncomp() const noexcept { return ncomp_; }
  std::size_t num_levels() const noexcept { return levels_.size(); }

  AmrLevel& level(std::size_t l) { return at_index(levels_, l, "AmrHierarchy level"); }
  const AmrLevel& level(std::size_t l) const {
    return at_index(levels_, l, "AmrHierarchy level");
  }

  /// Domain of level l (level-0 domain refined l times).
  Box domain_of(std::size_t l) const;

  /// Replace the layouts of levels [1, new_layouts.size()] and re-allocate
  /// their data, prolonging from the next-coarser level and copying from the
  /// previous data where it overlaps. Level 0 never changes.
  void regrid(const std::vector<BoxLayout>& fine_layouts);

  /// Total valid (non-ghost) cells over all levels.
  std::int64_t total_cells() const noexcept;

  /// Payload bytes of all level data (ghosts included).
  std::size_t bytes() const noexcept;

  /// Valid-region mask: true where level l's cell is NOT covered by level l+1.
  /// Needed by analysis/visualization to avoid double-counting.
  bool is_finest_at(std::size_t l, const IntVect& cell) const;

 private:
  AmrConfig config_;
  int ncomp_;
  std::vector<AmrLevel> levels_;
};

}  // namespace xl::amr
