#include "amr/tagging.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/thread_pool.hpp"

namespace xl::amr {

using mesh::BoxIterator;
using mesh::IntVectHash;

std::vector<IntVect> tag_cells(const AmrLevel& level, const TagCriterion& criterion) {
  std::vector<IntVect> tags;
  ThreadPool& pool = ThreadPool::global();
  for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
    const mesh::Fab& fab = level.data[i];
    const Box valid = level.layout.box(i);
    // Each z-slab collects its tags into a private vector; appending the
    // per-slab vectors in slab order reproduces the serial tag order exactly.
    const auto nz = static_cast<std::size_t>(valid.size()[2]);
    const std::size_t nchunks = parallel_chunk_count(pool, nz);
    std::vector<std::vector<IntVect>> parts(nchunks);
    parallel_for_chunks(pool, 0, nz,
                        [&](std::size_t c, std::size_t zb, std::size_t ze) {
      std::vector<IntVect>& out = parts[c];
      const Box slab = mesh::z_slab(valid, zb, ze);
      const int x0 = slab.lo()[0];
      const auto nx = static_cast<std::size_t>(slab.size()[0]);
      const auto xoff = static_cast<std::size_t>(x0 - fab.box().lo()[0]);
      // The six-point gradient stencil is five flat rows: the x neighbours are
      // the centre row shifted one cell, the y/z neighbours the rows at j±1 /
      // k±1. Fab includes ghosts, so all five are readable; the predicate and
      // push_back stay scalar (the gradient math runs in the seed's d=0,1,2
      // order) so the tag list is byte-identical.
      mesh::for_each_row(slab, [&](int j, int k) {
        const double* rc = fab.row(criterion.comp, j, k) + xoff;
        const double* ry_lo = fab.row(criterion.comp, j - 1, k) + xoff;
        const double* ry_hi = fab.row(criterion.comp, j + 1, k) + xoff;
        const double* rz_lo = fab.row(criterion.comp, j, k - 1) + xoff;
        const double* rz_hi = fab.row(criterion.comp, j, k + 1) + xoff;
        for (std::size_t i = 0; i < nx; ++i) {
          const double center = rc[i];
          double grad = 0.0;
          double diff = 0.5 * (rc[i + 1] - rc[i - 1]);
          grad += diff * diff;
          diff = 0.5 * (ry_hi[i] - ry_lo[i]);
          grad += diff * diff;
          diff = 0.5 * (rz_hi[i] - rz_lo[i]);
          grad += diff * diff;
          grad = std::sqrt(grad);
          const double scale = std::max(std::fabs(center), criterion.abs_floor);
          if (grad / scale > criterion.rel_threshold) {
            out.push_back(IntVect{x0 + static_cast<int>(i), j, k});
          }
        }
      });
    });
    for (std::vector<IntVect>& part : parts) {
      tags.insert(tags.end(), part.begin(), part.end());
    }
  }
  return tags;
}

std::vector<IntVect> buffer_tags(const std::vector<IntVect>& tags, int buffer,
                                 const Box& domain) {
  XL_REQUIRE(buffer >= 0, "tag buffer must be non-negative");
  std::unordered_set<IntVect, IntVectHash> grown;
  grown.reserve(tags.size() * 4);
  for (const IntVect& t : tags) {
    const Box b = Box(t, t).grow(buffer) & domain;
    for (BoxIterator it(b); it.ok(); ++it) grown.insert(*it);
  }
  // The set's iteration order is hash-order and may differ across standard
  // libraries; sort lexicographically (z, y, x major — matches BoxIterator)
  // so the returned tag list is deterministic everywhere it escapes to.
  std::vector<IntVect> out(grown.begin(), grown.end());
  std::sort(out.begin(), out.end(), [](const IntVect& a, const IntVect& b) {
    for (int d = mesh::kDim - 1; d >= 0; --d) {
      if (a[d] != b[d]) return a[d] < b[d];
    }
    return false;
  });
  return out;
}

}  // namespace xl::amr
