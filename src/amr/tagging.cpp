#include "amr/tagging.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/thread_pool.hpp"

namespace xl::amr {

using mesh::BoxIterator;
using mesh::IntVectHash;

std::vector<IntVect> tag_cells(const AmrLevel& level, const TagCriterion& criterion) {
  std::vector<IntVect> tags;
  ThreadPool& pool = ThreadPool::global();
  for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
    const mesh::Fab& fab = level.data[i];
    const Box valid = level.layout.box(i);
    // Each z-slab collects its tags into a private vector; appending the
    // per-slab vectors in slab order reproduces the serial tag order exactly.
    const auto nz = static_cast<std::size_t>(valid.size()[2]);
    const std::size_t nchunks = parallel_chunk_count(pool, nz);
    std::vector<std::vector<IntVect>> parts(nchunks);
    parallel_for_chunks(pool, 0, nz,
                        [&](std::size_t c, std::size_t zb, std::size_t ze) {
      std::vector<IntVect>& out = parts[c];
      for (BoxIterator it(mesh::z_slab(valid, zb, ze)); it.ok(); ++it) {
        const IntVect& p = *it;
        const double center = fab(p, criterion.comp);
        double grad = 0.0;
        for (int d = 0; d < mesh::kDim; ++d) {
          IntVect lo = p, hi = p;
          lo[d] -= 1;
          hi[d] += 1;
          // Fab includes ghosts, so neighbours are always readable.
          const double diff = 0.5 * (fab(hi, criterion.comp) - fab(lo, criterion.comp));
          grad += diff * diff;
        }
        grad = std::sqrt(grad);
        const double scale = std::max(std::fabs(center), criterion.abs_floor);
        if (grad / scale > criterion.rel_threshold) out.push_back(p);
      }
    });
    for (std::vector<IntVect>& part : parts) {
      tags.insert(tags.end(), part.begin(), part.end());
    }
  }
  return tags;
}

std::vector<IntVect> buffer_tags(const std::vector<IntVect>& tags, int buffer,
                                 const Box& domain) {
  XL_REQUIRE(buffer >= 0, "tag buffer must be non-negative");
  std::unordered_set<IntVect, IntVectHash> grown;
  grown.reserve(tags.size() * 4);
  for (const IntVect& t : tags) {
    const Box b = Box(t, t).grow(buffer) & domain;
    for (BoxIterator it(b); it.ok(); ++it) grown.insert(*it);
  }
  // The set's iteration order is hash-order and may differ across standard
  // libraries; sort lexicographically (z, y, x major — matches BoxIterator)
  // so the returned tag list is deterministic everywhere it escapes to.
  std::vector<IntVect> out(grown.begin(), grown.end());
  std::sort(out.begin(), out.end(), [](const IntVect& a, const IntVect& b) {
    for (int d = mesh::kDim - 1; d >= 0; --d) {
      if (a[d] != b[d]) return a[d] < b[d];
    }
    return false;
  });
  return out;
}

}  // namespace xl::amr
