// Physics interface for the unsplit finite-volume update. A Physics supplies
// initial conditions, the per-dimension numerical face flux, and the CFL
// signal speed; the AmrSimulation driver owns time stepping and AMR.
#pragma once

#include <memory>
#include <string>

#include "mesh/fab.hpp"

namespace xl::amr {

using mesh::Box;
using mesh::Fab;
using mesh::IntVect;

class Physics {
 public:
  virtual ~Physics() = default;

  virtual std::string name() const = 0;
  virtual int ncomp() const = 0;

  /// Ghost cells the flux stencil needs (2 for the MUSCL schemes here).
  virtual int nghost() const = 0;

  /// Point value of the initial condition at cell `p` of the level-`level`
  /// index space with mesh spacing `dx` (level 0 spacing / ref^level).
  virtual void initial_value(const IntVect& p, double dx, double* out) const = 0;

  /// Largest |wave speed| over `valid` cells of `u` — bound for the CFL dt.
  virtual double max_wave_speed(const Fab& u, const Box& valid, double dx) const = 0;

  /// Numerical flux through the low face of each cell in `faces` along
  /// dimension `dim`: flux(p, c) approximates F_c at the face between p-e_dim
  /// and p. `u` must have nghost() filled ghost layers around `faces`.
  virtual void face_flux(const Fab& u, const Box& faces, int dim, double dx,
                         Fab& flux) const = 0;
};

/// Conservative unsplit update: u_new = u - dt/dx * sum_d (F_d(p+e_d) - F_d(p))
/// over `valid`, reading fluxes computed by physics.face_flux per dimension.
void godunov_update(const Physics& physics, const Fab& u, const Box& valid, double dx,
                    double dt, Fab& u_new);

}  // namespace xl::amr
