#include "amr/advection_diffusion.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace xl::amr {

using mesh::BoxIterator;

AdvectionDiffusion::AdvectionDiffusion(const AdvectionDiffusionConfig& config)
    : config_(config) {
  XL_REQUIRE(config.diffusivity >= 0.0, "diffusivity must be non-negative");
  XL_REQUIRE(config.width > 0.0, "blob width must be positive");
}

void AdvectionDiffusion::initial_value(const IntVect& p, double dx, double* out) const {
  const double x = (p[0] + 0.5) * dx - config_.center[0] * config_.extent;
  const double y = (p[1] + 0.5) * dx - config_.center[1] * config_.extent;
  const double z = (p[2] + 0.5) * dx - config_.center[2] * config_.extent;
  const double s2 = config_.width * config_.extent;
  const double r2 = (x * x + y * y + z * z) / (2.0 * s2 * s2);
  out[0] = config_.background + config_.amplitude * std::exp(-r2);
}

double AdvectionDiffusion::max_wave_speed(const Fab& /*u*/, const Box& /*valid*/,
                                          double dx) const {
  double adv = 0.0;
  for (double v : config_.velocity) adv = std::max(adv, std::fabs(v));
  // Fold the explicit-diffusion stability limit into an effective speed so the
  // shared CFL machinery covers both terms: dt <= dx^2 / (6 D) becomes
  // speed >= 6 D / dx.
  const double diff_speed = config_.diffusivity > 0.0 ? 6.0 * config_.diffusivity / dx : 0.0;
  return std::max(adv, diff_speed);
}

void AdvectionDiffusion::face_flux(const Fab& u, const Box& faces, int dim, double dx,
                                   Fab& flux) const {
  XL_REQUIRE(flux.box().contains(faces), "flux fab does not cover faces");
  const double vel = config_.velocity[dim];
  const double d_over_dx = config_.diffusivity / dx;
  // Each face is computed from the two neighbouring cells and written in
  // place: slab partitioning cannot change the result. Row form: the left
  // neighbour of a whole row is the same row shifted one cell in `dim`, so
  // the stencil is three flat streams — and the upwind branch is on the
  // loop-invariant sign of `vel`, so each lane runs the scalar operation
  // sequence exactly (lane-per-face SIMD, bit-identical).
  const auto nz = static_cast<std::size_t>(faces.size()[2]);
  parallel_for(ThreadPool::global(), 0, nz,
               [&](std::size_t zb, std::size_t ze) {
    using simd::dpack;
    const Box slab = mesh::z_slab(faces, zb, ze);
    const int x0 = slab.lo()[0];
    const auto nx = static_cast<std::size_t>(slab.size()[0]);
    const std::size_t uxoff = static_cast<std::size_t>(x0 - u.box().lo()[0]);
    const std::size_t fxoff = static_cast<std::size_t>(x0 - flux.box().lo()[0]);
    const dpack vvel = dpack::broadcast(vel);
    const dpack vnd = dpack::broadcast(-d_over_dx);
    mesh::for_each_row(slab, [&](int j, int k) {
      const double* ur_row = u.row(0, j, k) + uxoff;
      const double* ul_row = dim == 0   ? ur_row - 1
                             : dim == 1 ? u.row(0, j - 1, k) + uxoff
                                        : u.row(0, j, k - 1) + uxoff;
      const double* adv_row = vel >= 0.0 ? ul_row : ur_row;
      double* f = flux.row(0, j, k) + fxoff;
      std::size_t i = 0;
      for (; i + dpack::lanes <= nx; i += dpack::lanes) {
        const dpack advective = vvel * dpack::load(adv_row + i);
        const dpack diffusive =
            vnd * (dpack::load(ur_row + i) - dpack::load(ul_row + i));
        (advective + diffusive).store(f + i);
      }
      for (; i < nx; ++i) {
        const double advective = vel * adv_row[i];
        const double diffusive = -d_over_dx * (ur_row[i] - ul_row[i]);
        f[i] = advective + diffusive;
      }
    });
  });
}

}  // namespace xl::amr
