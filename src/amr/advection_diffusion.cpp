#include "amr/advection_diffusion.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace xl::amr {

using mesh::BoxIterator;

AdvectionDiffusion::AdvectionDiffusion(const AdvectionDiffusionConfig& config)
    : config_(config) {
  XL_REQUIRE(config.diffusivity >= 0.0, "diffusivity must be non-negative");
  XL_REQUIRE(config.width > 0.0, "blob width must be positive");
}

void AdvectionDiffusion::initial_value(const IntVect& p, double dx, double* out) const {
  const double x = (p[0] + 0.5) * dx - config_.center[0] * config_.extent;
  const double y = (p[1] + 0.5) * dx - config_.center[1] * config_.extent;
  const double z = (p[2] + 0.5) * dx - config_.center[2] * config_.extent;
  const double s2 = config_.width * config_.extent;
  const double r2 = (x * x + y * y + z * z) / (2.0 * s2 * s2);
  out[0] = config_.background + config_.amplitude * std::exp(-r2);
}

double AdvectionDiffusion::max_wave_speed(const Fab& /*u*/, const Box& /*valid*/,
                                          double dx) const {
  double adv = 0.0;
  for (double v : config_.velocity) adv = std::max(adv, std::fabs(v));
  // Fold the explicit-diffusion stability limit into an effective speed so the
  // shared CFL machinery covers both terms: dt <= dx^2 / (6 D) becomes
  // speed >= 6 D / dx.
  const double diff_speed = config_.diffusivity > 0.0 ? 6.0 * config_.diffusivity / dx : 0.0;
  return std::max(adv, diff_speed);
}

void AdvectionDiffusion::face_flux(const Fab& u, const Box& faces, int dim, double dx,
                                   Fab& flux) const {
  XL_REQUIRE(flux.box().contains(faces), "flux fab does not cover faces");
  const double vel = config_.velocity[dim];
  const double d_over_dx = config_.diffusivity / dx;
  // Each face is computed from the two neighbouring cells and written in
  // place: slab partitioning cannot change the result.
  const auto nz = static_cast<std::size_t>(faces.size()[2]);
  parallel_for(ThreadPool::global(), 0, nz,
               [&](std::size_t zb, std::size_t ze) {
    for (BoxIterator it(mesh::z_slab(faces, zb, ze)); it.ok(); ++it) {
      IntVect lo = *it;
      lo[dim] -= 1;
      const double ul = u(lo, 0);
      const double ur = u(*it, 0);
      const double advective = vel >= 0.0 ? vel * ul : vel * ur;
      const double diffusive = -d_over_dx * (ur - ul);
      flux(*it, 0) = advective + diffusive;
    }
  });
}

}  // namespace xl::amr
