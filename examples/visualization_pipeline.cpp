// End-to-end visualization pipeline on real data — the paper's Fig. 6
// regenerated as actual images:
//
//   Polytropic Gas AMR run
//     -> plotfile written to disk and read back (the offline path)
//     -> full-resolution isosurface         -> isosurface_full.ppm
//     -> entropy-adaptive down-sampled data -> isosurface_adaptive.ppm
//     -> compressed (fixed-rate) data       -> isosurface_compressed.ppm
//
// and a table comparing bytes, triangles, image coverage and reconstruction
// quality across the three reduction strategies the application layer can
// choose between.
//
//   ./visualization_pipeline [steps]    (default 10)
#include <cstdlib>
#include <iostream>
#include <memory>

#include "amr/amr_simulation.hpp"
#include "amr/plotfile.hpp"
#include "amr/polytropic_gas.hpp"
#include "analysis/compress.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "analysis/statistics.hpp"
#include "common/table.hpp"
#include "viz/marching_cubes.hpp"
#include "viz/render.hpp"

using namespace xl;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 10;

  // --- Simulate and persist. --------------------------------------------------
  amr::AmrConfig cfg;
  cfg.base_domain = mesh::Box::domain({32, 32, 32});
  cfg.max_levels = 1;
  cfg.max_box_size = 32;
  cfg.nghost = 2;
  cfg.nranks = 1;
  auto physics = std::make_shared<amr::PolytropicGas>();
  amr::AmrSimulation sim(cfg, physics, {}, 0.3);
  sim.initialize();
  for (int i = 0; i < steps; ++i) sim.advance();

  amr::write_plotfile("blast.xlpf", sim.hierarchy(), sim.step(), sim.time());
  const amr::PlotFileData plot = amr::read_plotfile("blast.xlpf");
  std::cout << "plotfile round trip: step " << plot.step << ", t=" << plot.time
            << ", " << plot.total_cells() << " cells -> blast.xlpf\n";

  const mesh::Fab& full = plot.levels[0].data[0];
  const auto stats =
      analysis::descriptive_stats(full, full.box(), amr::PolytropicGas::kRho);
  const double isovalue = 0.5 * (stats.min() + stats.max());
  const mesh::Box cells(full.box().lo(), full.box().hi() - 1);

  // --- Three reduction strategies. --------------------------------------------
  // 1. Full resolution.
  const viz::TriangleMesh mesh_full =
      viz::extract_isosurface(full, cells, isovalue, amr::PolytropicGas::kRho);

  // 2. Entropy-adaptive downsampling (paper Fig. 6): reconstruct a field where
  //    low-entropy blocks were reduced 4x.
  analysis::EntropyConfig ecfg;
  ecfg.comp = amr::PolytropicGas::kRho;
  ecfg.range_lo = stats.min();
  ecfg.range_hi = stats.max();
  mesh::Fab adaptive(full.box(), full.ncomp());
  adaptive.copy_from(full, full.box());
  std::size_t adaptive_bytes = 0;
  for (const auto& d :
       analysis::entropy_downsample_plan(full, 8, {1.0}, {1, 4}, ecfg)) {
    const mesh::Fab sub = analysis::subset(full, d.block);
    adaptive_bytes += sub.bytes() /
                      (static_cast<std::size_t>(d.factor) * d.factor * d.factor);
    if (d.factor == 1) continue;
    const mesh::Fab rec = analysis::upsample_constant(
        analysis::downsample(sub, d.factor), sub.box(), d.factor);
    adaptive.copy_from(rec, d.block);
  }
  const viz::TriangleMesh mesh_adaptive =
      viz::extract_isosurface(adaptive, cells, isovalue, amr::PolytropicGas::kRho);

  // 3. Fixed-rate compression (the alternative reduction knob of sec. 3).
  analysis::CompressConfig ccfg;
  ccfg.residual_bits = 6;
  const analysis::CompressedField compressed = analysis::compress(full, ccfg);
  const mesh::Fab restored = analysis::decompress(compressed);
  const viz::TriangleMesh mesh_compressed =
      viz::extract_isosurface(restored, cells, isovalue, amr::PolytropicGas::kRho);

  // --- Render all three. -------------------------------------------------------
  viz::RenderConfig rcfg;
  rcfg.width = 384;
  rcfg.height = 384;
  const viz::Image img_full = viz::render_mesh(mesh_full, rcfg);
  const viz::Image img_adaptive = viz::render_mesh(mesh_adaptive, rcfg);
  const viz::Image img_compressed = viz::render_mesh(mesh_compressed, rcfg);
  img_full.write_ppm_file("isosurface_full.ppm");
  img_adaptive.write_ppm_file("isosurface_adaptive.ppm");
  img_compressed.write_ppm_file("isosurface_compressed.ppm");

  Table t({"variant", "bytes", "triangles", "image coverage", "RMSE vs full",
           "PSNR (dB)"});
  t.row()
      .cell("full resolution")
      .cell(format_bytes(static_cast<double>(full.bytes())))
      .cell(mesh_full.triangle_count())
      .cell(format_percent(img_full.coverage(rcfg.background_rgb)))
      .cell("0")
      .cell("inf");
  t.row()
      .cell("entropy-adaptive 4x")
      .cell(format_bytes(static_cast<double>(adaptive_bytes)))
      .cell(mesh_adaptive.triangle_count())
      .cell(format_percent(img_adaptive.coverage(rcfg.background_rgb)))
      .cell(analysis::rmse(full, adaptive, 0), 4)
      .cell(analysis::psnr(full, adaptive, 0), 1);
  t.row()
      .cell("compressed (6-bit)")
      .cell(format_bytes(static_cast<double>(compressed.bytes())))
      .cell(mesh_compressed.triangle_count())
      .cell(format_percent(img_compressed.coverage(rcfg.background_rgb)))
      .cell(analysis::rmse(full, restored, 0), 4)
      .cell(analysis::psnr(full, restored, 0), 1);
  std::cout << "\n" << t.to_string()
            << "\nImages: isosurface_full.ppm / isosurface_adaptive.ppm /"
               " isosurface_compressed.ppm\n"
               "(the paper's Fig. 6 side-by-side comparison, regenerated)\n";
  return 0;
}
