// Machine-scale experiment driver: reproduce one of the paper's §5 runs from
// the command line. Wraps the experiment factories so a user can rerun any
// figure's configuration and inspect the per-step trace.
//
//   ./machine_scale_experiment middleware <scale 0-3> <insitu|intransit|adaptive> [--substrate analytic|des]
//   ./machine_scale_experiment global     <scale 0-3> <local|global> [--substrate analytic|des]
//   ./machine_scale_experiment resource   <static|adaptive> [--substrate analytic|des]
//
// The run executes the shared step pipeline on the discrete-event substrate
// by default (the machine-scale path); --substrate analytic selects the
// closed-form clocks. Both produce identical timelines.
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/experiment.hpp"
#include "workflow/observer.hpp"

using namespace xl;
using namespace xl::workflow;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  machine_scale_experiment middleware <0-3> <insitu|intransit|adaptive>"
               " [--substrate analytic|des]\n"
            << "  machine_scale_experiment global <0-3> <local|global>"
               " [--substrate analytic|des]\n"
            << "  machine_scale_experiment resource <static|adaptive>"
               " [--substrate analytic|des]\n";
  return 2;
}

void print_result(const WorkflowConfig& config, const WorkflowResult& r,
                  const ExecutionSubstrate& substrate, const EventLog& log) {
  std::cout << "mode " << mode_name(config.mode) << " on " << config.machine.name
            << ": N=" << config.sim_cores << " M=" << config.staging_cores
            << " steps=" << config.steps << " substrate=" << substrate.name()
            << "\n\n";
  Table per_step({"step", "cells", "X", "placement", "M", "sim", "wait", "moved"});
  for (const StepRecord& s : r.steps) {
    per_step.row()
        .cell(s.step)
        .cell(s.total_cells)
        .cell(s.factor)
        .cell(runtime::placement_name(s.placement))
        .cell(s.intransit_cores)
        .cell(format_seconds(s.sim_seconds))
        .cell(format_seconds(s.wait_seconds))
        .cell(format_bytes(static_cast<double>(s.moved_bytes)));
  }
  std::cout << per_step.to_string() << "\n";
  std::cout << "time-to-solution: " << format_seconds(r.end_to_end_seconds)
            << "  (sim " << format_seconds(r.pure_sim_seconds) << " + overhead "
            << format_seconds(r.overhead_seconds) << ")\n"
            << "data moved:       " << format_bytes(static_cast<double>(r.bytes_moved))
            << "\nplacements:       " << r.insitu_count << " in-situ / "
            << r.intransit_count << " in-transit\n"
            << "staging util:     " << format_percent(r.utilization_efficiency)
            << " (eq. 12)\n"
            << "events:           " << log.events().size() << " total, "
            << log.count(EventKind::Decision) << " decisions, "
            << log.count(EventKind::Transfer) << " transfers\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool use_des = true;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--substrate") == 0) {
      const std::string which = argv[i + 1];
      if (which == "analytic") use_des = false;
      else if (which == "des") use_des = true;
      else return usage();
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  if (argc < 3) return usage();
  const std::string experiment = argv[1];

  WorkflowConfig config;
  if (experiment == "middleware" || experiment == "global") {
    if (argc < 4) return usage();
    const int scale = std::atoi(argv[2]);
    if (scale < 0 || scale > 3) return usage();
    const std::string variant = argv[3];
    if (experiment == "middleware") {
      Mode mode;
      if (variant == "insitu") mode = Mode::StaticInSitu;
      else if (variant == "intransit") mode = Mode::StaticInTransit;
      else if (variant == "adaptive") mode = Mode::AdaptiveMiddleware;
      else return usage();
      config = titan_middleware_experiment(scale, mode);
    } else {
      if (variant == "local") {
        config = titan_global_experiment(scale, Mode::AdaptiveMiddleware);
      } else if (variant == "global") {
        config = titan_global_experiment(scale, Mode::Global);
      } else {
        return usage();
      }
    }
  } else if (experiment == "resource") {
    const std::string variant = argv[2];
    if (variant == "static") config = intrepid_resource_experiment(Mode::StaticInTransit);
    else if (variant == "adaptive") config = intrepid_resource_experiment(Mode::AdaptiveResource);
    else return usage();
  } else {
    return usage();
  }

  CoupledWorkflow workflow(config);
  EventLog log;
  workflow.set_observer(&log);
  AnalyticSubstrate analytic;
  EventQueueSubstrate des;
  ExecutionSubstrate& substrate =
      use_des ? static_cast<ExecutionSubstrate&>(des) : analytic;
  const WorkflowResult r = workflow.run_on(substrate);
  print_result(config, r, substrate, log);
  return 0;
}
