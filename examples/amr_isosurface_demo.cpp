// Real-kernel demo: run the 3-D Polytropic Gas AMR simulation (the paper's
// memory-intensive workload) at laptop scale, extract density isosurfaces
// with the marching-cubes visualization service, and apply entropy-based
// adaptive downsampling (paper §5.2.1 / Fig. 6) — reporting, per block, the
// entropy, the factor chosen, and the reconstruction quality.
//
//   ./amr_isosurface_demo [steps]     (default 8; writes isosurface.obj)
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>

#include "amr/amr_simulation.hpp"
#include "amr/polytropic_gas.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "analysis/statistics.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "viz/amr_isosurface.hpp"
#include "viz/mesh_io.hpp"

using namespace xl;

int main(int argc, char** argv) {
  log::set_threshold(log::Level::Info);
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;

  // --- 1. Simulate: spherical blast, 2 AMR levels, gradient-tag regridding.
  amr::AmrConfig cfg;
  cfg.base_domain = mesh::Box::domain({32, 32, 32});
  cfg.max_levels = 2;
  cfg.ref_ratio = 2;
  cfg.max_box_size = 16;
  cfg.nghost = 2;
  cfg.nranks = 4;
  auto physics = std::make_shared<amr::PolytropicGas>();
  amr::TagCriterion criterion;
  criterion.comp = amr::PolytropicGas::kRho;
  criterion.rel_threshold = 0.05;
  amr::AmrSimulation sim(cfg, physics, criterion, 0.3, /*regrid_interval=*/4);
  sim.initialize();

  std::cout << "Polytropic Gas blast on " << cfg.base_domain << ", "
            << sim.hierarchy().num_levels() << " levels\n\n";
  Table run({"step", "dt", "cells L0", "cells L1", "hierarchy bytes", "wall"});
  for (int i = 0; i < steps; ++i) {
    const amr::StepStats s = sim.advance();
    run.row()
        .cell(s.step)
        .cell(s.dt, 5)
        .cell(static_cast<std::size_t>(s.cells_per_level[0]))
        .cell(s.cells_per_level.size() > 1
                  ? static_cast<std::size_t>(s.cells_per_level[1])
                  : std::size_t{0})
        .cell(format_bytes(static_cast<double>(s.bytes)))
        .cell(format_seconds(s.wall_seconds));
  }
  std::cout << run.to_string() << "\n";

  // --- 2. Visualize: AMR-masked marching cubes on the density field.
  const auto [rho_min, rho_max] = sim.hierarchy().level(0).data.min_max(0);
  const double isovalue = 0.5 * (rho_min + rho_max);
  viz::IsosurfaceStats stats;
  const viz::TriangleMesh mesh = viz::extract_amr_isosurface(
      sim.hierarchy(), isovalue, amr::PolytropicGas::kRho, 1.0 / 32.0, &stats);
  viz::write_obj_file("isosurface.obj", mesh, "polytropic_density");
  std::cout << "isosurface rho=" << isovalue << ": " << stats.triangles
            << " triangles from " << stats.cells_scanned << " cells ("
            << stats.active_cells << " active) -> isosurface.obj\n\n";

  // --- 3. Entropy-based adaptive downsampling of the level-0 density field
  //        (paper eq. 11 / Fig. 6): low-entropy blocks reduce 4x, high-entropy
  //        blocks keep full resolution.
  // Restrict to the valid (un-ghosted) region of the first level-0 box.
  const mesh::Fab field = analysis::subset(sim.hierarchy().level(0).data[0],
                                           sim.hierarchy().level(0).layout.box(0));
  analysis::EntropyConfig ecfg;
  ecfg.comp = amr::PolytropicGas::kRho;
  ecfg.range_lo = rho_min;
  ecfg.range_hi = rho_max;
  const auto plan = analysis::entropy_downsample_plan(
      field, 8, /*thresholds=*/{2.0}, /*factors=*/{1, 4}, ecfg);

  Table blocks({"block", "entropy (bits)", "factor", "RMSE vs full"});
  std::size_t full_bytes = 0, reduced_bytes = 0;
  for (const auto& d : plan) {
    const mesh::Fab sub = analysis::subset(field, d.block);
    const mesh::Fab rec = analysis::upsample_constant(
        analysis::downsample(sub, d.factor), sub.box(), d.factor);
    std::ostringstream name;
    name << d.block;
    blocks.row()
        .cell(name.str())
        .cell(d.entropy, 2)
        .cell(d.factor)
        .cell(analysis::rmse(sub, rec), 4);
    full_bytes += sub.bytes();
    reduced_bytes += sub.bytes() / (static_cast<std::size_t>(d.factor) * d.factor * d.factor);
  }
  std::cout << blocks.to_string() << "\nadaptive reduction keeps "
            << format_percent(static_cast<double>(reduced_bytes) /
                              static_cast<double>(full_bytes))
            << " of the raw bytes while preserving high-entropy structure\n";
  return 0;
}
