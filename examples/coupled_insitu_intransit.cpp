// The full in-process coupled workflow with REAL data, REAL kernels, and a
// REAL (threaded) staging service:
//
//   Chombo-style AMR Polytropic Gas simulation (client thread)
//     -> Monitor samples memory/timing/backlog state each step
//     -> AdaptationEngine picks a down-sampling factor (application layer)
//        and a placement (middleware layer)
//     -> in-situ:    marching cubes directly on the hierarchy, blocking the
//                    simulation — exactly the trade-off of eq. 4
//        in-transit: fabs pushed into the DataSpaces-like StagingService;
//                    triangulation runs asynchronously on the service's
//                    worker threads while the simulation continues (eq. 5)
//
// All execution times fed to the Monitor are wall-clock measurements, so the
// eq. 7 estimates driving the placement are the same closed loop the paper's
// runtime runs on Titan/Intrepid, scaled to one process.
//
//   ./coupled_insitu_intransit [steps]    (default 10)
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>

#include "amr/amr_simulation.hpp"
#include "amr/polytropic_gas.hpp"
#include "analysis/downsample.hpp"
#include "analysis/statistics.hpp"
#include "common/table.hpp"
#include "runtime/adaptation_engine.hpp"
#include "staging/service.hpp"
#include "viz/amr_isosurface.hpp"

using namespace xl;
// xl-lint: allow(wallclock): demo prints real elapsed time for the reader; the
// workflow results themselves come from the deterministic substrate clock.
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 10;

  // --- Simulation (the coupled workflow's producer). -------------------------
  amr::AmrConfig cfg;
  cfg.base_domain = mesh::Box::domain({32, 32, 32});
  cfg.max_levels = 2;
  cfg.max_box_size = 16;
  cfg.nghost = 2;
  cfg.nranks = 4;
  auto physics = std::make_shared<amr::PolytropicGas>();
  amr::TagCriterion criterion;
  criterion.comp = amr::PolytropicGas::kRho;
  criterion.rel_threshold = 0.05;
  amr::AmrSimulation sim(cfg, physics, criterion, 0.3, 4);
  sim.initialize();

  // --- Live staging service (the in-transit consumer). -----------------------
  staging::ServiceConfig service_cfg;
  service_cfg.num_servers = 2;
  service_cfg.memory_per_server = std::size_t{8} << 20;
  staging::StagingService service(service_cfg);

  // --- Adaptive runtime. ------------------------------------------------------
  runtime::Monitor monitor;
  runtime::EngineConfig engine_cfg;
  engine_cfg.hints.factor_phases = {{0, {1, 2, 4}}};
  engine_cfg.enable_resource = false;  // fixed worker pool in-process
  runtime::EngineHooks hooks;
  hooks.analysis_seconds = [&](runtime::Placement p, std::size_t cells, int cores) {
    return monitor.estimate_analysis_seconds(p, cells, cores);
  };
  hooks.send_seconds = [](std::size_t bytes) { return bytes / 8.0e9; };
  hooks.recv_seconds = [](std::size_t bytes, int) { return bytes / 8.0e9; };
  hooks.next_sim_seconds = [&](std::size_t cells) {
    return monitor.estimate_sim_seconds(cells);
  };
  hooks.insitu_analysis_mem = [](std::size_t bytes) { return bytes; };
  const runtime::AdaptationEngine engine(engine_cfg, hooks);

  // A tight memory budget on the "simulation partition" gives the
  // application layer something to trade off as the hierarchy grows.
  const std::size_t sim_mem_capacity = std::size_t{24} << 20;

  Table table({"step", "factor", "placement", "reason", "sim", "analysis",
               "backlog", "staged", "triangles"});
  std::vector<std::future<staging::AnalysisResult>> inflight;
  std::size_t intransit_triangles = 0;
  double intransit_seconds = 0.0;

  for (int step = 0; step < steps; ++step) {
    auto t0 = Clock::now();
    const amr::StepStats stats = sim.advance();
    const double sim_wall = seconds_since(t0);
    monitor.record_sim_step(step, sim_wall, static_cast<std::size_t>(stats.total_cells));

    // Harvest any completed in-transit analyses (non-blocking) so their
    // measured times feed the estimator.
    for (auto& f : inflight) {
      if (f.valid() && f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        const staging::AnalysisResult r = f.get();
        intransit_triangles += r.triangles;
        intransit_seconds += r.service_seconds;
        if (r.objects > 0) {
          monitor.record_analysis({step, runtime::Placement::InTransit,
                                   r.objects * 4096, service.num_servers(),
                                   r.service_seconds});
        }
      }
    }
    std::erase_if(inflight, [](const auto& f) { return !f.valid(); });

    // Operational state from live observables.
    runtime::OperationalState state;
    state.step = step;
    state.sim_cells = static_cast<std::size_t>(stats.total_cells);
    state.raw_cells = static_cast<std::size_t>(stats.total_cells);
    state.raw_bytes = stats.bytes;
    state.ncomp = amr::PolytropicGas::kNcomp;
    state.sim_cores = cfg.nranks;
    state.insitu_mem_available =
        stats.bytes < sim_mem_capacity ? sim_mem_capacity - stats.bytes : 0;
    state.intransit_cores = service.num_servers();
    state.intransit_mem_free = service.free_bytes();
    state.intransit_mem_per_core = service_cfg.memory_per_server;
    // Live backlog: queued requests priced at the estimator's current rate.
    state.intransit_backlog_seconds =
        static_cast<double>(service.pending_requests()) *
        monitor.estimate_analysis_seconds(runtime::Placement::InTransit, 4096,
                                          service.num_servers());
    state.last_sim_step_seconds = sim_wall;

    const runtime::EngineDecisions dec = engine.adapt(state);
    const int factor = dec.app ? dec.app->factor : 1;
    const auto placement =
        dec.middleware ? dec.middleware->placement : runtime::Placement::InSitu;

    const auto [lo, hi] = sim.hierarchy().level(0).data.min_max(0);
    const double isovalue = 0.5 * (lo + hi);
    std::size_t staged_bytes = 0;
    std::size_t step_triangles = 0;

    t0 = Clock::now();
    if (placement == runtime::Placement::InSitu) {
      viz::IsosurfaceStats istats;
      viz::extract_amr_isosurface(sim.hierarchy(), isovalue,
                                  amr::PolytropicGas::kRho, 1.0 / 32.0, &istats);
      step_triangles = istats.triangles;
      const double wall = seconds_since(t0);
      monitor.record_analysis({step, runtime::Placement::InSitu,
                               static_cast<std::size_t>(stats.total_cells),
                               cfg.nranks, wall});
    } else {
      // Ship (optionally reduced) level-0 fabs and fire an asynchronous
      // in-transit analysis; the next simulation step overlaps with it.
      const amr::AmrLevel& level = sim.hierarchy().level(0);
      for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
        // Stage valid regions only (ghost overlap would double-count the
        // seams in the in-transit triangulation).
        mesh::Fab reduced = analysis::downsample(
            analysis::subset(level.data[i], level.layout.box(i)), factor);
        staged_bytes += reduced.bytes();
        service.put_async(step, reduced.box(), std::move(reduced));
      }
      inflight.push_back(service.analyze_async(
          step, level.domain.coarsen(factor).grow(2), isovalue,
          amr::PolytropicGas::kRho));
    }
    const double analysis_wall = seconds_since(t0);

    table.row()
        .cell(step)
        .cell(factor)
        .cell(runtime::placement_name(placement))
        .cell(dec.middleware ? runtime::reason_name(dec.middleware->reason) : "-")
        .cell(format_seconds(sim_wall))
        .cell(format_seconds(analysis_wall))
        .cell(format_seconds(state.intransit_backlog_seconds))
        .cell(format_bytes(static_cast<double>(staged_bytes)))
        .cell(step_triangles);
  }

  // Drain the service and collect the stragglers.
  service.drain();
  for (auto& f : inflight) {
    if (!f.valid()) continue;
    const staging::AnalysisResult r = f.get();
    intransit_triangles += r.triangles;
    intransit_seconds += r.service_seconds;
  }

  std::cout << "In-process coupled workflow (real kernels, threaded staging):\n\n"
            << table.to_string()
            << "\nin-transit totals: " << intransit_triangles << " triangles in "
            << format_seconds(intransit_seconds)
            << " of service-thread time (overlapped with the simulation);\n"
            << "service busy " << format_seconds(service.busy_seconds())
            << " total. In-situ steps show their triangles inline: those\n"
            << "analyses blocked the simulation, which is exactly the eq. 4/5\n"
            << "trade-off the middleware policy navigates.\n";
  return 0;
}
