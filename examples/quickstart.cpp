// Quickstart: run the coupled AMR-simulation + visualization workflow on the
// simulated cluster under the three placement strategies of the paper's
// Fig. 7 (static in-situ, static in-transit, adaptive middleware placement)
// and print the end-to-end comparison.
//
//   ./quickstart
//
// This exercises the top of the public API: WorkflowConfig -> CoupledWorkflow
// -> WorkflowResult. See coupled_insitu_intransit.cpp for the in-process
// (real data, real kernels) variant.
#include <iostream>

#include "common/log.hpp"
#include "common/table.hpp"
#include "workflow/coupled_workflow.hpp"

using namespace xl;
using workflow::CoupledWorkflow;
using workflow::Mode;
using workflow::WorkflowConfig;
using workflow::WorkflowResult;

namespace {

WorkflowConfig make_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 512;        // simulation partition N
  c.staging_cores = 32;     // staging partition M (16:1, like the paper)
  c.steps = 30;
  c.mode = mode;
  c.euler = false;          // AMR Advection-Diffusion workload
  c.ncomp = 1;

  // Problem geometry: a 512x256x256 base grid, 3 AMR levels, an expanding
  // refinement front plus drifting blobs.
  c.geometry.base_domain = mesh::Box::domain({512, 256, 256});
  c.geometry.max_levels = 3;
  c.geometry.nranks = c.sim_cores;
  c.geometry.front_radius0 = 0.12;
  c.geometry.front_speed = 0.008;
  c.geometry.front_decay = 0.8;
  c.geometry.front_decay_onset = 24;
  c.memory_model.ncomp = c.ncomp;

  // Staging memory is the scarce resource that makes placement interesting.
  c.staging_usable_fraction = 0.004;
  return c;
}

}  // namespace

int main() {
  log::set_threshold(log::Level::Info);
  std::cout << "Cross-layer adaptive data management - quickstart\n"
            << "Workload: AMR Advection-Diffusion + marching-cubes visualization\n"
            << "Machine:  simulated Titan XK7, 512 simulation / 32 staging cores\n\n";

  Table table({"placement", "time-to-solution", "sim time", "overhead",
               "data moved", "in-situ/in-transit"});
  for (Mode mode : {Mode::StaticInSitu, Mode::StaticInTransit,
                    Mode::StaticHybrid, Mode::AdaptiveMiddleware}) {
    const WorkflowResult r = CoupledWorkflow(make_config(mode)).run();
    table.row()
        .cell(workflow::mode_name(mode))
        .cell(format_seconds(r.end_to_end_seconds))
        .cell(format_seconds(r.pure_sim_seconds))
        .cell(format_seconds(r.overhead_seconds))
        .cell(format_bytes(static_cast<double>(r.bytes_moved)))
        .cell(std::to_string(r.insitu_count) + "/" + std::to_string(r.intransit_count));
  }
  std::cout << table.to_string() << "\n"
            << "The adaptive run places each step's analysis where the\n"
            << "middleware policy (paper eq. 4-8) predicts the smaller\n"
            << "time-to-solution: in-transit while staging keeps up, in-situ\n"
            << "when the staging backlog exceeds the in-situ estimate.\n";
  return 0;
}
