#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "model.hpp"
#include "report.hpp"
#include "semantic.hpp"

namespace xl::lint {

namespace {

// --- scrubbing ---------------------------------------------------------------

// Blank out comments, string literals, char literals, and raw strings so the
// rule patterns only ever see code. Newlines are preserved (line numbers stay
// valid); every other scrubbed character becomes a space. With
// `keep_comments`, comment text survives (string/char literals are still
// blanked) -- that view is what suppression parsing reads, so an
// `xl-lint: allow(...)` inside a string literal (e.g. a lint test snippet)
// is not mistaken for a marker of the enclosing file.
std::string scrub(const std::string& text, bool keep_comments = false) {
  std::string out = text;
  enum class State { Normal, LineComment, BlockComment, String, Char, RawString };
  State state = State::Normal;
  std::string raw_close;  // )delim" terminator of the active raw string.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::Normal:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          if (!keep_comments) out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          if (!keep_comments) out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(out[i - 1])) &&
                               out[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = i + 2;
          std::string delim;
          while (open < out.size() && out[open] != '(') delim += out[open++];
          raw_close = ")" + delim + "\"";
          state = State::RawString;
          for (std::size_t j = i; j <= open && j < out.size(); ++j) {
            if (out[j] != '\n') out[j] = ' ';
          }
          i = open;
        } else if (c == '"') {
          state = State::String;
          out[i] = ' ';
        } else if (c == '\'') {
          // Skip digit separators (1'000'000).
          const bool separator =
              i > 0 && std::isdigit(static_cast<unsigned char>(out[i - 1])) &&
              std::isdigit(static_cast<unsigned char>(next));
          if (!separator) state = State::Char;
          out[i] = ' ';
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Normal;
        } else if (!keep_comments) {
          out[i] = ' ';
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          if (!keep_comments) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          state = State::Normal;
        } else if (c != '\n' && !keep_comments) {
          out[i] = ' ';
        }
        break;
      case State::String:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::Normal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Char:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::Normal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::RawString:
        if (out.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t j = 0; j < raw_close.size(); ++j) out[i + j] = ' ';
          i += raw_close.size() - 1;
          state = State::Normal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

int line_of_offset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<std::ptrdiff_t>(offset), '\n'));
}

// --- suppressions ------------------------------------------------------------

/// One rule id from one `xl-lint: allow(...)` comment. Usage is tracked so
/// markers that stop matching anything are reported (stale-suppression).
struct Marker {
  int marker_line = 0;  // line holding the comment (1-based).
  int target_line = 0;  // code line guarded (unused for file-wide markers).
  bool file_wide = false;
  std::string rule;
  bool used = false;
};

struct Suppressions {
  std::vector<Marker> markers;

  /// Does any marker cover (rule, at_line)? Marks every covering marker used.
  bool allows(const std::string& rule, int at_line) {
    bool covered = false;
    for (Marker& m : markers) {
      if (m.rule != rule && m.rule != "all") continue;
      // Suppressions guard exactly one code line: parse_suppressions resolves
      // a comment-only marker to the code line below it, so no fuzzy reach.
      if (m.file_wide || m.target_line == at_line) {
        m.used = true;
        covered = true;
      }
    }
    return covered;
  }
};

bool is_comment_only_line(const std::string& raw) {
  const std::size_t first = raw.find_first_not_of(" \t");
  return first != std::string::npos && raw.compare(first, 2, "//") == 0;
}

Suppressions parse_suppressions(const std::vector<std::string>& raw_lines) {
  static const std::regex kAllow(
      R"(xl-lint:\s*allow(-file)?\(\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\s*\))");
  Suppressions sup;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    std::string::const_iterator begin = raw_lines[i].begin();
    while (std::regex_search(begin, raw_lines[i].cend(), m, kAllow)) {
      const bool file_wide = m[1].matched;
      // A suppression on a comment-only line guards the next code line, even
      // when the explanatory comment wraps over several lines. A trailing
      // suppression on a code line guards that line itself.
      std::size_t target = i;
      if (is_comment_only_line(raw_lines[i])) {
        target = i + 1;
        while (target < raw_lines.size() && is_comment_only_line(raw_lines[target])) {
          ++target;
        }
      }
      std::string ids = m[2].str();
      std::string id;
      std::istringstream is(ids);
      while (std::getline(is, id, ',')) {
        id.erase(std::remove_if(id.begin(), id.end(),
                                [](unsigned char c) { return std::isspace(c); }),
                 id.end());
        if (id.empty()) continue;
        Marker marker;
        marker.marker_line = static_cast<int>(i) + 1;
        marker.target_line = static_cast<int>(target) + 1;
        marker.file_wide = file_wide;
        marker.rule = id;
        sup.markers.push_back(std::move(marker));
      }
      begin = m.suffix().first;
    }
  }
  return sup;
}

// --- small helpers -----------------------------------------------------------

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Find `needle` as a whole identifier (not a substring of a longer one).
std::size_t find_ident(const std::string& text, const std::string& needle,
                       std::size_t from) {
  std::size_t pos = text.find(needle, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = text.find(needle, pos + 1);
  }
  return std::string::npos;
}

/// Starting at the '(' (or '<') at `open`, return the offset one past the
/// matching close, or npos when unbalanced.
std::size_t match_pair(const std::string& text, std::size_t open, char oc, char cc) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == oc) ++depth;
    if (text[i] == cc) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return i;
}

// --- rules -------------------------------------------------------------------

struct Ctx {
  const std::string& path;
  const std::string& scrubbed;                 // whole file, strings/comments blanked.
  const std::vector<std::string>& lines;       // scrubbed, split.
  std::vector<Finding>& findings;

  void add(int line, const char* rule, std::string message) const {
    findings.push_back(Finding{path, line, rule, std::move(message)});
  }
};

// Rule: wallclock. Any wall-clock read makes a timeline depend on the host;
// simulated time must come from the substrate clock.
void rule_wallclock(const Ctx& ctx) {
  if (path_ends_with(ctx.path, "common/rng.hpp")) return;
  static const char* kSources[] = {
      "std::chrono::system_clock", "std::chrono::steady_clock",
      "std::chrono::high_resolution_clock", "gettimeofday", "clock_gettime",
  };
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    for (const char* source : kSources) {
      if (ctx.lines[i].find(source) != std::string::npos) {
        ctx.add(static_cast<int>(i) + 1, "wallclock",
                std::string("wall-clock source '") + source +
                    "' breaks the determinism contract; use the substrate clock, or "
                    "suppress with a reason if this is measurement-only output");
        break;
      }
    }
  }
}

// Rule: raw-random. All randomness must flow from a seeded xl::Rng.
void rule_raw_random(const Ctx& ctx) {
  if (path_ends_with(ctx.path, "common/rng.hpp")) return;
  static const char* kSources[] = {
      "std::random_device", "std::mt19937",        "std::default_random_engine",
      "std::minstd_rand",   "drand48",             "lrand48",
  };
  static const std::regex kCRand(R"((^|[^\w:.>])s?rand\s*\()");
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& line = ctx.lines[i];
    bool hit = false;
    for (const char* source : kSources) {
      if (find_ident(line, source, 0) != std::string::npos) {
        ctx.add(static_cast<int>(i) + 1, "raw-random",
                std::string("nondeterministic randomness source '") + source +
                    "'; derive a seeded xl::Rng (common/rng.hpp) via split() instead");
        hit = true;
        break;
      }
    }
    if (!hit && std::regex_search(line, kCRand)) {
      ctx.add(static_cast<int>(i) + 1, "raw-random",
              "C rand()/srand() is global, unseeded state; use a seeded xl::Rng "
              "(common/rng.hpp)");
    }
  }
}

// Rule: unordered-iter. In the layers whose accumulation order reaches the
// timeline (runtime, cluster, workflow), iterating an unordered container is
// an order-of-evaluation bug waiting for a rehash.
void rule_unordered_iter(const Ctx& ctx) {
  const bool scoped = path_contains(ctx.path, "src/runtime") ||
                      path_contains(ctx.path, "src/cluster") ||
                      path_contains(ctx.path, "src/workflow");
  if (!scoped) return;

  // Pass 1: names declared as unordered containers in this file.
  std::set<std::string> names;
  for (const std::string& line : ctx.lines) {
    for (const char* kind : {"unordered_map", "unordered_set"}) {
      std::size_t pos = find_ident(line, kind, 0);
      while (pos != std::string::npos) {
        const std::size_t open = line.find('<', pos);
        if (open != std::string::npos) {
          const std::size_t close = match_pair(line, open, '<', '>');
          if (close != std::string::npos) {
            std::size_t id = skip_spaces(line, close);
            if (id < line.size() && (line[id] == '&' || line[id] == '*')) {
              id = skip_spaces(line, id + 1);
            }
            std::string name;
            while (id < line.size() && ident_char(line[id])) name += line[id++];
            if (!name.empty()) names.insert(name);
          }
        }
        pos = find_ident(line, kind, pos + 1);
      }
    }
  }
  if (names.empty()) return;

  // Pass 2: range-for or .begin() iteration over one of those names.
  static const std::regex kRangeFor(R"(for\s*\([^;()]*:\s*([A-Za-z_]\w*)\s*\))");
  static const std::regex kBegin(R"(([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    for (const auto* re : {&kRangeFor, &kBegin}) {
      std::smatch m;
      std::string::const_iterator begin = ctx.lines[i].begin();
      while (std::regex_search(begin, ctx.lines[i].cend(), m, *re)) {
        if (names.count(m[1].str())) {
          ctx.add(static_cast<int>(i) + 1, "unordered-iter",
                  "iteration over unordered container '" + m[1].str() +
                      "' is hash-order dependent; iterate sorted keys or use an "
                      "ordered container on this path");
        }
        begin = m.suffix().first;
      }
    }
  }
}

// Rule: float-cast. Raw static_cast from floating point to integer is UB on
// NaN and out-of-range values (the Histogram bug class); conversions must go
// through the guarded helpers in common/contract.hpp.
void rule_float_cast(const Ctx& ctx) {
  if (path_ends_with(ctx.path, "common/contract.hpp")) return;
  static const std::regex kFloatish(
      R"(double|float|[0-9]\.[0-9]|std::(floor|ceil|round|pow|sqrt|log|exp|lround))");
  std::size_t pos = ctx.scrubbed.find("static_cast", 0);
  while (pos != std::string::npos) {
    const std::size_t open_angle = skip_spaces(ctx.scrubbed, pos + 11);
    if (open_angle >= ctx.scrubbed.size() || ctx.scrubbed[open_angle] != '<') {
      pos = ctx.scrubbed.find("static_cast", pos + 1);
      continue;
    }
    const std::size_t close_angle = match_pair(ctx.scrubbed, open_angle, '<', '>');
    if (close_angle == std::string::npos) break;
    std::string type = ctx.scrubbed.substr(open_angle + 1, close_angle - open_angle - 2);
    type.erase(std::remove_if(type.begin(), type.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               type.end());
    if (type.rfind("std::", 0) == 0) type = type.substr(5);
    static const std::set<std::string> kIntegral = {
        "int",      "long",     "longlong", "short",    "char",     "unsigned",
        "unsignedint", "unsignedlong", "unsignedlonglong", "size_t", "ptrdiff_t",
        "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
        "uint32_t", "uint64_t",
    };
    if (kIntegral.count(type)) {
      const std::size_t open_paren = skip_spaces(ctx.scrubbed, close_angle);
      if (open_paren < ctx.scrubbed.size() && ctx.scrubbed[open_paren] == '(') {
        const std::size_t close_paren =
            match_pair(ctx.scrubbed, open_paren, '(', ')');
        if (close_paren != std::string::npos) {
          const std::string expr =
              ctx.scrubbed.substr(open_paren + 1, close_paren - open_paren - 2);
          if (std::regex_search(expr, kFloatish)) {
            ctx.add(line_of_offset(ctx.scrubbed, pos), "float-cast",
                    "raw static_cast<" + type +
                        "> from a floating-point expression; use xl::f2i/xl::f2s "
                        "(common/contract.hpp) or clamp first and suppress");
          }
        }
      }
    }
    pos = ctx.scrubbed.find("static_cast", close_angle);
  }
}

// Rule: parallel-merge. A parallel_for body mutating a shared container is a
// race and -- even with locking -- an ordering leak; per-chunk results must be
// merged in chunk order (parallel_for_chunks).
void rule_parallel_merge(const Ctx& ctx) {
  static const std::regex kMutation(
      R"(([A-Za-z_]\w*)\s*\.\s*(push_back|emplace_back|insert|emplace)\s*\()");
  std::size_t pos = find_ident(ctx.scrubbed, "parallel_for", 0);
  while (pos != std::string::npos) {
    // Skip declarations/definitions ("void parallel_for(...)").
    std::size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(ctx.scrubbed[before - 1]))) {
      --before;
    }
    std::size_t word_start = before;
    while (word_start > 0 && ident_char(ctx.scrubbed[word_start - 1])) --word_start;
    const std::string prev = ctx.scrubbed.substr(word_start, before - word_start);
    const std::size_t open = skip_spaces(ctx.scrubbed, pos + 12);
    if (prev == "void" || open >= ctx.scrubbed.size() || ctx.scrubbed[open] != '(') {
      pos = find_ident(ctx.scrubbed, "parallel_for", pos + 1);
      continue;
    }
    const std::size_t close = match_pair(ctx.scrubbed, open, '(', ')');
    if (close == std::string::npos) break;
    const std::string body = ctx.scrubbed.substr(open + 1, close - open - 2);
    std::smatch m;
    std::string::const_iterator begin = body.begin();
    while (std::regex_search(begin, body.cend(), m, kMutation)) {
      const std::string name = m[1].str();
      // A container declared inside the body is thread-local: fine.
      const std::regex local_decl("(^|[^.\\w>])(auto|[A-Za-z_][\\w:]*(<[^<>;]*>)?)[ \t&]+" +
                                  name + "\\s*[;={(]");
      if (!std::regex_search(body, local_decl)) {
        ctx.add(line_of_offset(ctx.scrubbed, pos), "parallel-merge",
                "parallel_for body mutates shared container '" + name +
                    "' (." + m[2].str() +
                    "); merge per-chunk results in chunk order via "
                    "parallel_for_chunks instead");
      }
      begin = m.suffix().first;
    }
    pos = find_ident(ctx.scrubbed, "parallel_for", close);
  }
}

// Rule: missing-include. The curated symbol -> header pairs that have bitten
// this repo before (the threading PR shipped a missing <limits> twice).
void rule_missing_include(const Ctx& ctx, const std::string& raw_text) {
  struct Pair {
    const char* header;
    const char* pattern;
    const char* example;
  };
  static const Pair kPairs[] = {
      {"limits", R"(std::numeric_limits)", "std::numeric_limits"},
      {"cmath",
       R"(std::(sqrt|pow|floor|ceil|isnan|isfinite|log2?|exp|lround|hypot|cbrt|sin|cos|fabs|atan2?)\s*\()",
       "std::sqrt"},
      {"cstdint", R"(std::u?int(8|16|32|64)_t)", "std::uint64_t"},
      {"algorithm",
       R"(std::(sort|stable_sort|min|max|clamp|transform|fill|copy|lower_bound|upper_bound|min_element|max_element|nth_element|all_of|any_of|none_of|find_if|remove_if|partial_sort|rotate|unique|reverse)\s*[(<])",
       "std::sort"},
      {"numeric", R"(std::(accumulate|iota|reduce|inner_product|partial_sum)\s*[(<])",
       "std::accumulate"},
      {"sstream", R"(std::[io]?stringstream)", "std::ostringstream"},
  };
  for (const Pair& pair : kPairs) {
    const std::regex sym(pair.pattern);
    std::smatch m;
    if (!std::regex_search(ctx.scrubbed, m, sym)) continue;
    const std::string include = std::string("#include <") + pair.header + ">";
    if (raw_text.find(include) != std::string::npos) continue;
    const auto offset = static_cast<std::size_t>(m.position(0));
    ctx.add(line_of_offset(ctx.scrubbed, offset), "missing-include",
            std::string("uses ") + m[0].str() + " but does not include <" +
                pair.header + "> (transitive includes are not a contract)");
  }
}

// Rule: banned-symbol. Environment and process escapes make behaviour depend
// on the host; configuration must flow through the config file / CLI layer.
void rule_banned_symbol(const Ctx& ctx) {
  static const std::regex kGetenv(R"((^|[^\w:.>])(std::)?getenv\s*\()");
  static const std::regex kSystem(R"((^|[^\w:.>])(std::)?system\s*\()");
  static const char* kSleeps[] = {"sleep_for", "sleep_until", "usleep", "setenv"};
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& line = ctx.lines[i];
    if (std::regex_search(line, kGetenv)) {
      ctx.add(static_cast<int>(i) + 1, "banned-symbol",
              "getenv makes behaviour depend on the host environment; plumb the "
              "value through the config/CLI layer (or suppress at the single "
              "sanctioned read site)");
    }
    if (std::regex_search(line, kSystem)) {
      ctx.add(static_cast<int>(i) + 1, "banned-symbol",
              "system() shells out; spawn nothing from library code");
    }
    for (const char* sleep : kSleeps) {
      if (find_ident(line, sleep, 0) != std::string::npos) {
        ctx.add(static_cast<int>(i) + 1, "banned-symbol",
                std::string("'") + sleep +
                    "' introduces host-timing dependence; coordinate via "
                    "condition variables or the substrate clock");
        break;
      }
    }
  }
}

// Rule: fab-by-value. Fab and StagedObject own whole-field payload buffers;
// a pass-by-value parameter deep-copies megabytes per call. Payloads move
// (Fab&&), borrow (const Fab&), or share (std::shared_ptr<const Fab>).
void rule_fab_by_value(const Ctx& ctx) {
  static const std::string kTypes[] = {"Fab", "StagedObject"};
  for (const std::string& type : kTypes) {
    std::size_t pos = find_ident(ctx.scrubbed, type, 0);
    while (pos != std::string::npos) {
      const std::size_t next_pos = pos + type.size();
      // Parameter position: the token before the type (skipping a NS::
      // qualifier) must be '(' or ','. This also skips statement declarations
      // and template arguments.
      std::size_t before = pos;
      for (;;) {
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(ctx.scrubbed[before - 1]))) {
          --before;
        }
        if (before >= 2 && ctx.scrubbed[before - 1] == ':' &&
            ctx.scrubbed[before - 2] == ':') {
          before -= 2;
          while (before > 0 && ident_char(ctx.scrubbed[before - 1])) --before;
          continue;
        }
        break;
      }
      const char opener = before > 0 ? ctx.scrubbed[before - 1] : '\0';
      if (opener == '(' || opener == ',') {
        // By-value shape: type, a parameter name, then ',' or ')'. References,
        // pointers, and template uses (&, *, <, >) never match this.
        std::size_t name = skip_spaces(ctx.scrubbed, next_pos);
        if (name < ctx.scrubbed.size() && ident_char(ctx.scrubbed[name]) &&
            !std::isdigit(static_cast<unsigned char>(ctx.scrubbed[name]))) {
          std::size_t name_end = name;
          while (name_end < ctx.scrubbed.size() && ident_char(ctx.scrubbed[name_end])) {
            ++name_end;
          }
          const std::size_t delim = skip_spaces(ctx.scrubbed, name_end);
          if (delim < ctx.scrubbed.size() &&
              (ctx.scrubbed[delim] == ',' || ctx.scrubbed[delim] == ')')) {
            ctx.add(line_of_offset(ctx.scrubbed, pos), "fab-by-value",
                    "parameter '" + ctx.scrubbed.substr(name, name_end - name) +
                        "' takes " + type +
                        " by value, deep-copying the whole payload; pass const " +
                        type + "&, " + type +
                        "&&, or share via std::shared_ptr<const " + type + ">");
          }
        }
      }
      pos = find_ident(ctx.scrubbed, type, next_pos);
    }
  }
}

// Rule: row-loop. A BoxIterator loop whose body feeds the dereferenced
// iterator straight into a Fab-style accessor (`fab(*it, c)`) re-derives and
// bounds-checks the flat index for every cell; in the analysis/viz hot paths
// that arithmetic dominates the loop. Hoist row pointers (Fab::row +
// mesh::for_each_row) instead. Advisory: deliberately scalar loops bound by
// the determinism contract carry an allow(row-loop) marker with the reason.
void rule_row_loop(const Ctx& ctx) {
  const bool scoped = path_contains(ctx.path, "src/analysis") ||
                      path_contains(ctx.path, "src/viz");
  if (!scoped) return;
  std::size_t pos = find_ident(ctx.scrubbed, "BoxIterator", 0);
  while (pos != std::string::npos) {
    const std::size_t next_from = pos + 11;
    // Only loop declarations: "for (BoxIterator it(...); ...)".
    std::size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(ctx.scrubbed[before - 1]))) {
      --before;
    }
    if (before == 0 || ctx.scrubbed[before - 1] != '(') {
      pos = find_ident(ctx.scrubbed, "BoxIterator", next_from);
      continue;
    }
    const std::size_t for_open = before - 1;
    std::size_t name = skip_spaces(ctx.scrubbed, next_from);
    std::size_t name_end = name;
    while (name_end < ctx.scrubbed.size() && ident_char(ctx.scrubbed[name_end])) {
      ++name_end;
    }
    if (name_end == name) {
      pos = find_ident(ctx.scrubbed, "BoxIterator", next_from);
      continue;
    }
    const std::string it_name = ctx.scrubbed.substr(name, name_end - name);
    const std::size_t for_close = match_pair(ctx.scrubbed, for_open, '(', ')');
    if (for_close == std::string::npos) break;
    // Loop body: a braced block, or a single statement up to ';'.
    std::size_t body_begin = skip_spaces(ctx.scrubbed, for_close);
    std::size_t body_end;
    if (body_begin < ctx.scrubbed.size() && ctx.scrubbed[body_begin] == '{') {
      body_end = match_pair(ctx.scrubbed, body_begin, '{', '}');
    } else {
      body_end = ctx.scrubbed.find(';', body_begin);
      if (body_end != std::string::npos) ++body_end;
    }
    if (body_end == std::string::npos) break;
    const std::string body =
        ctx.scrubbed.substr(body_begin, body_end - body_begin);
    // Accessor shape: `name(*it` where `name` is NOT preceded by another
    // identifier (that shape is a declaration like `Box cell(*it, *it)`).
    const std::regex access("([A-Za-z_]\\w*)\\s*\\(\\s*\\*\\s*" + it_name +
                            "\\b");
    std::smatch m;
    std::string::const_iterator begin = body.begin();
    while (std::regex_search(begin, body.cend(), m, access)) {
      const auto at =
          body_begin + static_cast<std::size_t>(m.position(0)) +
          static_cast<std::size_t>(begin - body.begin());
      std::size_t decl_check = at;
      while (decl_check > 0 && std::isspace(static_cast<unsigned char>(
                                   ctx.scrubbed[decl_check - 1]))) {
        --decl_check;
      }
      if (decl_check == 0 || !ident_char(ctx.scrubbed[decl_check - 1])) {
        ctx.add(line_of_offset(ctx.scrubbed, at), "row-loop",
                "per-cell accessor '" + m[1].str() + "(*" + it_name +
                    ", ...)' in a BoxIterator loop re-derives the flat index "
                    "every cell; hoist Fab::row pointers with "
                    "mesh::for_each_row (or suppress with the reason the loop "
                    "must stay scalar)");
        break;  // one finding per loop is enough to point at the rewrite
      }
      begin = m.suffix().first;
    }
    pos = find_ident(ctx.scrubbed, "BoxIterator", body_end);
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      // Lexical layer.
      {"wallclock", "wall-clock/time sources outside the substrate clock"},
      {"raw-random", "unseeded or global randomness outside common/rng.hpp"},
      {"unordered-iter",
       "iteration over unordered containers in src/runtime, src/cluster, src/workflow"},
      {"float-cast", "raw static_cast from floating point to integer without a guard"},
      {"parallel-merge", "parallel_for body mutating a shared container"},
      {"missing-include", "use of a std symbol without its owning header"},
      {"banned-symbol", "environment/process escapes (getenv, system, sleeps)"},
      {"fab-by-value", "pass-by-value Fab/StagedObject parameters (payload deep-copy)"},
      {"row-loop",
       "per-cell fab(*it, c) accessors in analysis/viz hot loops (hoist Fab::row)"},
      // Semantic layer (declaration/scope model + cross-TU symbol table).
      {"unordered-escape",
       "hash-order iteration results escaping unsorted (returns, sinks, float sums)"},
      {"unguarded-field",
       "mutex-owning class field lacking XL_GUARDED_BY or XL_UNGUARDED(reason)"},
      {"lock-order", "cycle in the cross-TU lock acquisition order graph"},
      {"parallel-float-merge",
       "float accumulation in a parallel_for body bypassing the ordered merge"},
      {"scratch-escape",
       "pooled Scratch/ArenaVec storage escaping its RAII scope"},
      // Meta layer.
      {"stale-suppression", "an allow() marker that no longer suppresses anything"},
      {"stale-baseline", "a baseline entry larger than the current tree needs"},
  };
  return kRules;
}

std::string scrub_source(const std::string& text) { return scrub(text); }

std::vector<Finding> lint_texts(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  struct PerFile {
    const std::string* path = nullptr;
    std::string scrubbed;
    std::vector<std::string> raw_lines;
    std::vector<std::string> lines;
    Suppressions sup;
    std::vector<Finding> findings;  // pre-suppression.
  };
  std::vector<PerFile> files(sources.size());
  std::vector<FileModel> models;
  models.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    PerFile& pf = files[i];
    pf.path = &sources[i].first;
    pf.scrubbed = scrub(sources[i].second);
    pf.raw_lines = split_lines(scrub(sources[i].second, /*keep_comments=*/true));
    pf.lines = split_lines(pf.scrubbed);
    pf.sup = parse_suppressions(pf.raw_lines);
    models.push_back(build_file_model(sources[i].first, pf.scrubbed));
  }
  const SymbolTable table = build_symbol_table(models);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    PerFile& pf = files[i];
    const Ctx ctx{*pf.path, pf.scrubbed, pf.lines, pf.findings};
    rule_wallclock(ctx);
    rule_raw_random(ctx);
    rule_unordered_iter(ctx);
    rule_float_cast(ctx);
    rule_parallel_merge(ctx);
    rule_missing_include(ctx, sources[i].second);
    rule_banned_symbol(ctx);
    rule_fab_by_value(ctx);
    rule_row_loop(ctx);
    run_file_semantic_rules(models[i], table, pf.findings);
  }

  // Lock-order runs once over the whole table; its findings are attributed to
  // the file holding the representative acquisition so that file's
  // suppressions govern them.
  std::vector<Finding> global;
  run_lock_order_rule(models, table, global);
  for (Finding& f : global) {
    for (PerFile& pf : files) {
      if (*pf.path == f.file) {
        pf.findings.push_back(std::move(f));
        break;
      }
    }
  }

  std::set<std::string> known_rules;
  for (const RuleInfo& rule : rules()) known_rules.insert(rule.id);

  std::vector<Finding> out;
  for (PerFile& pf : files) {
    std::vector<Finding> kept;
    for (Finding& f : pf.findings) {
      if (!pf.sup.allows(f.rule, f.line)) kept.push_back(std::move(f));
    }
    // Stale / mistyped markers: an allow() that suppressed nothing is debt.
    for (const Marker& m : pf.sup.markers) {
      if (!known_rules.count(m.rule) && m.rule != "all") {
        kept.push_back(Finding{
            *pf.path, m.marker_line, "stale-suppression",
            "suppression references unknown rule '" + m.rule +
                "' (see --list-rules); fix the id or remove the marker"});
      } else if (!m.used) {
        kept.push_back(Finding{
            *pf.path, m.marker_line, "stale-suppression",
            "suppression for rule '" + m.rule +
                "' no longer matches any finding; remove the marker"});
      }
    }
    std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
      return a.line != b.line ? a.line < b.line : a.rule < b.rule;
    });
    out.insert(out.end(), std::make_move_iterator(kept.begin()),
               std::make_move_iterator(kept.end()));
  }
  return out;
}

std::vector<Finding> lint_text(const std::string& path, const std::string& text) {
  return lint_texts({{path, text}});
}

std::vector<Finding> lint_file(const std::string& disk_path,
                               const std::string& display_path) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) {
    return {Finding{display_path, 0, "io", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_text(display_path, buffer.str());
}

std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  const auto wanted = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
  };
  const auto skipped_dir = [](const std::string& name) {
    return name == ".git" || name == "fixtures" || name.rfind("build", 0) == 0;
  };
  for (const std::string& rel : paths) {
    const fs::path base = fs::path(root) / rel;
    if (fs::is_regular_file(base)) {
      out.push_back(rel);
      continue;
    }
    if (!fs::is_directory(base)) continue;
    fs::recursive_directory_iterator it(base), end;
    while (it != end) {
      if (it->is_directory() && skipped_dir(it->path().filename().string())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && wanted(it->path())) {
        out.push_back(fs::relative(it->path(), root).generic_string());
      }
      ++it;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int run_cli(int argc, const char* const* argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  std::string baseline_path, write_baseline_path, sarif_path;
  bool quiet = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : rules()) {
        std::cout << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: xl_lint [--root DIR] [--quiet] [--json] [--sarif FILE]\n"
             "               [--baseline FILE] [--write-baseline FILE]\n"
             "               [--list-rules] PATH...\n"
             "Lints .cpp/.hpp/.h/.cc files under each PATH (relative to --root)\n"
             "against the determinism-contract rules (lexical + semantic).\n"
             "  --json            print findings as JSON instead of text\n"
             "  --sarif FILE      additionally write a SARIF 2.1.0 report\n"
             "  --baseline FILE   absorb grandfathered findings; new findings\n"
             "                    and stale baseline entries still fail\n"
             "  --write-baseline FILE  regenerate the baseline and exit 0\n"
             "Exit 0 = clean, 1 = findings, 2 = error.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "xl_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "xl_lint: no paths given (try --help)\n";
    return 2;
  }
  const std::vector<std::string> files = collect_sources(root, paths);
  if (files.empty()) {
    std::cerr << "xl_lint: no source files found under the given paths\n";
    return 2;
  }

  // Read every file up front: the semantic rules want one symbol table
  // spanning all translation units.
  std::vector<std::pair<std::string, std::string>> sources;
  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    const std::string disk = (std::filesystem::path(root) / rel).string();
    std::ifstream in(disk, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{rel, 0, "io", "cannot open file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.emplace_back(rel, buffer.str());
  }
  {
    std::vector<Finding> linted = lint_texts(sources);
    findings.insert(findings.end(), std::make_move_iterator(linted.begin()),
                    std::make_move_iterator(linted.end()));
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "xl_lint: cannot write baseline " << write_baseline_path << "\n";
      return 2;
    }
    out << baseline_from_findings(findings);
    if (!quiet) {
      std::cerr << "xl_lint: wrote baseline for " << findings.size()
                << " finding(s) to " << write_baseline_path << "\n";
    }
    return 0;
  }

  std::size_t baselined = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "xl_lint: cannot open baseline " << baseline_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::optional<Baseline> baseline = parse_baseline(buffer.str());
    if (!baseline) {
      std::cerr << "xl_lint: malformed baseline " << baseline_path << "\n";
      return 2;
    }
    BaselineResult result = apply_baseline(findings, *baseline, baseline_path);
    baselined = result.suppressed;
    findings = std::move(result.kept);
    findings.insert(findings.end(), std::make_move_iterator(result.stale.begin()),
                    std::make_move_iterator(result.stale.end()));
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "xl_lint: cannot write SARIF report " << sarif_path << "\n";
      return 2;
    }
    out << sarif_report(findings);
  }

  if (json) {
    std::cout << json_report(findings);
  } else {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
                << "\n";
    }
  }
  if (!quiet && !json) {
    std::set<std::string> files_with_findings;
    for (const Finding& f : findings) files_with_findings.insert(f.file);
    std::cerr << "xl_lint: " << files.size() << " files, " << findings.size()
              << " finding" << (findings.size() == 1 ? "" : "s");
    if (!findings.empty()) {
      std::cerr << " in " << files_with_findings.size() << " files";
    }
    if (baselined != 0) std::cerr << " (" << baselined << " baselined)";
    std::cerr << "\n";
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace xl::lint
