#include "report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace xl::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- minimal JSON reader (objects, arrays, strings, integers) ---------------
//
// Just enough to round-trip the documents this tool writes; rejects anything
// it does not understand rather than guessing.

struct JsonReader {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  explicit JsonReader(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  std::string string() {
    skip_ws();
    std::string out;
    if (i >= s.size() || s[i] != '"') {
      ok = false;
      return out;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          default: ok = false; return out;
        }
        ++i;
      } else {
        out += s[i++];
      }
    }
    if (i >= s.size()) {
      ok = false;
      return out;
    }
    ++i;  // closing quote.
    return out;
  }
  long integer() {
    skip_ws();
    bool neg = false;
    if (i < s.size() && s[i] == '-') {
      neg = true;
      ++i;
    }
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      ok = false;
      return 0;
    }
    long v = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      v = v * 10 + (s[i++] - '0');
    }
    return neg ? -v : v;
  }
};

}  // namespace

std::string json_report(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << ",\n  \"count\": "
      << findings.size() << "\n}\n";
  return out.str();
}

std::string sarif_report(const std::vector<Finding>& findings) {
  // Distinct rule ids, in first-seen order, for the driver's rules array.
  std::vector<std::string> rule_ids;
  for (const Finding& f : findings) {
    if (std::find(rule_ids.begin(), rule_ids.end(), f.rule) == rule_ids.end()) {
      rule_ids.push_back(f.rule);
    }
  }
  std::ostringstream out;
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"xl_lint\", \"rules\": [";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    out << (i ? ", " : "") << "{\"id\": \"" << json_escape(rule_ids[i]) << "\"}";
  }
  out << "]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": " << std::max(f.line, 1)
        << "}}}]}";
  }
  out << (findings.empty() ? "]" : "\n    ]") << "\n  }]\n}\n";
  return out.str();
}

std::optional<Baseline> parse_baseline(const std::string& json) {
  JsonReader r(json);
  Baseline baseline;
  if (!r.consume('{')) return std::nullopt;
  if (r.peek('}')) {
    r.consume('}');
    return baseline;  // empty document: an empty baseline.
  }
  for (;;) {
    const std::string key = r.string();
    if (!r.ok || !r.consume(':')) return std::nullopt;
    if (key == "version") {
      r.integer();
      if (!r.ok) return std::nullopt;
    } else if (key == "entries") {
      if (!r.consume('[')) return std::nullopt;
      if (!r.peek(']')) {
        for (;;) {
          if (!r.consume('{')) return std::nullopt;
          std::string file, rule;
          long count = -1;
          for (;;) {
            const std::string ekey = r.string();
            if (!r.ok || !r.consume(':')) return std::nullopt;
            if (ekey == "file") file = r.string();
            else if (ekey == "rule") rule = r.string();
            else if (ekey == "count") count = r.integer();
            else return std::nullopt;
            if (!r.ok) return std::nullopt;
            if (r.peek(',')) {
              r.consume(',');
              continue;
            }
            break;
          }
          if (!r.consume('}')) return std::nullopt;
          if (file.empty() || rule.empty() || count < 0) return std::nullopt;
          baseline.entries[{file, rule}] = static_cast<int>(count);
          if (r.peek(',')) {
            r.consume(',');
            continue;
          }
          break;
        }
      }
      if (!r.consume(']')) return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (r.peek(',')) {
      r.consume(',');
      continue;
    }
    break;
  }
  if (!r.consume('}')) return std::nullopt;
  return baseline;
}

std::string baseline_from_findings(const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, int> groups;
  for (const Finding& f : findings) ++groups[{f.file, f.rule}];
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"entries\": [";
  std::size_t i = 0;
  for (const auto& [key, count] : groups) {
    out << (i++ == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(key.first) << "\", \"rule\": \""
        << json_escape(key.second) << "\", \"count\": " << count << "}";
  }
  out << (groups.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const Baseline& baseline,
                              const std::string& baseline_path) {
  BaselineResult result;
  std::map<std::pair<std::string, std::string>, int> current;
  for (const Finding& f : findings) ++current[{f.file, f.rule}];

  // A group with count <= budget is fully absorbed; a group over budget keeps
  // ALL its findings -- partial absorption would hide which ones are new.
  std::map<std::pair<std::string, std::string>, bool> absorbed;
  for (const auto& [key, count] : current) {
    const auto it = baseline.entries.find(key);
    const int budget = it == baseline.entries.end() ? 0 : it->second;
    absorbed[key] = count <= budget;
  }
  for (const Finding& f : findings) {
    if (absorbed[{f.file, f.rule}]) {
      ++result.suppressed;
    } else {
      result.kept.push_back(f);
    }
  }
  for (const auto& [key, budget] : baseline.entries) {
    const auto it = current.find(key);
    const int now = it == current.end() ? 0 : it->second;
    if (now < budget) {
      result.stale.push_back(Finding{
          baseline_path, 0, "stale-baseline",
          "baseline entry {" + key.first + ", " + key.second + "} allows " +
              std::to_string(budget) + " finding(s) but the tree has " +
              std::to_string(now) +
              "; regenerate with --write-baseline to retire the fixed debt"});
    }
  }
  return result;
}

}  // namespace xl::lint
