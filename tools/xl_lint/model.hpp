// Semantic model for xl_lint: a lightweight tokenizer and declaration/scope
// parser over scrubbed C++ sources. It is not a compiler front end -- it
// recovers exactly the structure the semantic rules need:
//
//   - classes/structs with their data members, mutex members, and the
//     XL_GUARDED_BY / XL_UNGUARDED annotations attached to each member;
//   - function and method bodies (offset spans into the scrubbed text);
//   - lock acquisitions inside each body (MutexLock / lock_guard /
//     unique_lock / scoped_lock), with their nesting structure;
//   - call sites made while holding a lock (for one level of cross-TU
//     lock-order propagation).
//
// Models from every translation unit are merged into a SymbolTable so rules
// can resolve `pool_.mutex_` to `ThreadPool::mutex_` even when the class is
// declared in a header and locked from a .cpp file.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace xl::lint {

struct Token {
  enum class Kind { Ident, Number, Punct };
  Kind kind = Kind::Punct;
  std::string text;
  std::size_t offset = 0;  ///< into the scrubbed text.
  int line = 1;            ///< 1-based.
};

/// Tokenize scrubbed source. Preprocessor lines (and their backslash
/// continuations) are skipped entirely; `<` and `>` are always single-char
/// tokens so template argument lists can be depth-matched.
std::vector<Token> tokenize(const std::string& scrubbed);

struct Member {
  std::string name;
  std::string type;   ///< declaration text before the name, macros stripped.
  std::string guard;  ///< XL_GUARDED_BY argument ("" when absent).
  int line = 0;
  bool is_mutex = false;    ///< Mutex / std::mutex family.
  bool is_exempt = false;   ///< const/static/atomic/CondVar/thread/reference.
  bool is_guarded = false;  ///< XL_GUARDED_BY / XL_PT_GUARDED_BY present.
  bool is_marked_unguarded = false;  ///< XL_UNGUARDED(reason) present.
};

struct ClassModel {
  std::string name;
  int line = 0;
  std::size_t body_begin = 0;  ///< offset just past the opening '{'.
  std::size_t body_end = 0;    ///< offset of the closing '}'.
  std::vector<Member> members;

  bool has_mutex() const {
    for (const Member& m : members) {
      if (m.is_mutex) return true;
    }
    return false;
  }
  const Member* find_member(const std::string& n) const {
    for (const Member& m : members) {
      if (m.name == n) return &m;
    }
    return nullptr;
  }
};

/// One scoped lock acquisition inside a function body.
struct Acquisition {
  std::string expr;  ///< raw lock expression, whitespace stripped.
  int line = 0;
  std::size_t offset = 0;
  bool top_level = false;  ///< acquired while holding no other lock.
  /// Raw exprs of locks already held at this acquisition (innermost last).
  std::vector<std::string> held;
};

/// A call made while holding at least one lock.
struct CallSite {
  std::string name;      ///< callee identifier.
  std::string receiver;  ///< `recv.name(...)` receiver ident ("" for free calls).
  int line = 0;
  std::vector<std::string> held;  ///< raw exprs of locks held at the call.
};

struct FunctionModel {
  std::string name;
  std::string class_name;  ///< qualifier or enclosing class ("" for free).
  int line = 0;
  std::size_t body_begin = 0;  ///< offset just past the opening '{'.
  std::size_t body_end = 0;    ///< offset of the closing '}'.
  std::size_t body_open = 0;    ///< token index of the opening '{'.
  std::size_t body_close = 0;   ///< token index of the closing '}'.
  std::size_t params_open = 0;  ///< token index of the parameter-list '('.
  std::size_t params_close = 0; ///< token index of the parameter-list ')'.
  std::vector<Acquisition> acquisitions;
  std::vector<CallSite> locked_calls;
};

struct FileModel {
  std::string path;
  std::string scrubbed;
  std::vector<Token> tokens;
  std::vector<ClassModel> classes;
  std::vector<FunctionModel> functions;

  /// Innermost class whose body span contains `offset` (nullptr if none).
  const ClassModel* enclosing_class(std::size_t offset) const;
};

/// Cross-translation-unit view over every parsed file.
struct SymbolTable {
  std::map<std::string, std::vector<const ClassModel*>> classes;
  std::map<std::string, std::vector<const FunctionModel*>> functions;

  /// First definition of `name` that has members (headers win over stubs).
  const ClassModel* find_class(const std::string& name) const;
  const Member* find_member(const std::string& cls, const std::string& member) const;
};

FileModel build_file_model(const std::string& path, const std::string& scrubbed);
SymbolTable build_symbol_table(const std::vector<FileModel>& models);

}  // namespace xl::lint
