// Machine-readable output and the reviewed-baseline mechanism for xl_lint.
//
// Baseline policy: the baseline file records, per (file, rule), how many
// findings are grandfathered. A run with `--baseline FILE`:
//   - drops findings up to the recorded count for their (file, rule) group;
//   - keeps (fails on) every finding beyond the count -- the baseline can
//     never grow silently;
//   - emits a `stale-baseline` finding for entries whose count exceeds the
//     current findings, so fixed debt is retired from the file promptly.
// Only `--write-baseline FILE` regenerates the file; it is reviewed like any
// other source change.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace xl::lint {

/// Findings as a JSON array (stable field order, sorted input preserved).
std::string json_report(const std::vector<Finding>& findings);

/// Findings as a minimal SARIF 2.1.0 log (one run, one result per finding).
std::string sarif_report(const std::vector<Finding>& findings);

struct Baseline {
  /// (file, rule) -> grandfathered finding count.
  std::map<std::pair<std::string, std::string>, int> entries;
};

/// Parse a baseline JSON document. Returns nullopt on malformed input.
std::optional<Baseline> parse_baseline(const std::string& json);

/// Serialize findings into a baseline document (grouped + counted).
std::string baseline_from_findings(const std::vector<Finding>& findings);

struct BaselineResult {
  std::vector<Finding> kept;   ///< findings not covered by the baseline.
  std::vector<Finding> stale;  ///< `stale-baseline` findings for dead entries.
  std::size_t suppressed = 0;  ///< findings absorbed by the baseline.
};

/// Apply `baseline` to `findings` (which must be the full run's output).
/// `baseline_path` labels the stale-baseline findings.
BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const Baseline& baseline,
                              const std::string& baseline_path);

}  // namespace xl::lint
