// Seeded-bad fixture: every rule fires at least once. Never compiled; the
// xl_lint.bad_fixture_fails test (and the CI lint job) run the linter over it
// and require a non-zero exit, proving the gate bites. The directory name
// "fixtures" is excluded from normal tree walks.
//
// This file intentionally lives at a path matching none of the per-directory
// scopes except via the synthetic paths used in tests; the unordered-iter rule
// is exercised from test_xl_lint.cpp instead.
#include <chrono>
#include <cstdlib>
#include <random>
#include <vector>

double wallclock_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();  // wallclock
}

int unseeded_draw() {
  std::random_device dev;  // raw-random
  return static_cast<int>(dev() % 7u + rand() % 3u);
}

std::size_t truncate(double seconds) {
  return static_cast<std::size_t>(seconds * 1.5);  // float-cast
}

void merge_race(std::vector<int>& shared) {
  void parallel_for(std::size_t, std::size_t, int);  // decoy declaration
  extern void parallel_for(std::size_t begin, std::size_t end, void (*)(std::size_t));
  parallel_for(0, 8, [&shared](std::size_t i) {
    shared.push_back(static_cast<int>(i));  // parallel-merge
  });
}

double no_limits_include() {
  return std::numeric_limits<double>::max();  // missing-include
}

const char* host_escape() {
  return std::getenv("XL_THREADS");  // banned-symbol
}

struct Fab {};

std::size_t payload_copy(Fab payload) {  // fab-by-value
  (void)payload;
  return 0;
}
