// Seeded-bad fixture for the row-loop rule: a per-cell BoxIterator loop in an
// analysis-scoped path feeding the dereferenced iterator into a Fab-style
// accessor. Never compiled; the xl_lint.row_loop_fixture_fires test runs the
// linter over it and requires the rule to fire.
#include <cstddef>

namespace fake {

struct IntVect {
  int v[3];
};

struct Box {
  IntVect lo, hi;
};

struct BoxIterator {
  explicit BoxIterator(const Box&) {}
  bool ok() const { return false; }
  BoxIterator& operator++() { return *this; }
  IntVect operator*() const { return {}; }
};

struct Fab {
  double operator()(const IntVect&, int) const { return 0.0; }
};

double hot_sum(const Fab& fab, const Box& region) {
  double sum = 0.0;
  for (BoxIterator it(region); it.ok(); ++it) {
    sum += fab(*it, 0);  // row-loop: per-cell accessor in a hot path
  }
  return sum;
}

// Declaration shapes must NOT fire: the type name precedes the identifier.
Box cell_of(const Box& region) {
  for (BoxIterator it(region); it.ok(); ++it) {
    Box cell(*it, *it);
    return cell;
  }
  return region;
}

}  // namespace fake
