// Seeded-bad fixture for the unordered-iter rule. Never compiled; its display
// path (src/runtime/...) puts it inside the layers where accumulation order
// reaches the timeline, so iterating an unordered container must be flagged.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double accumulate_costs(const std::unordered_map<std::string, double>& costs) {
  double total = 0.0;
  for (const auto& entry : costs) {  // order-dependent accumulation: flagged
    total = total * 1.0000001 + entry.second;
  }
  return total;
}

int count_explicit_begin(const std::unordered_set<int>& pending) {
  int n = 0;
  for (auto it = pending.begin(); it != pending.end(); ++it) {  // flagged
    n += *it;
  }
  return n;
}

}  // namespace fixture
