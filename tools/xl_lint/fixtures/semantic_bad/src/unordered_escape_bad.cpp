// Seeded-bad fixture for the unordered-escape rule: hash-ordered contents of
// an unordered container escape the function unsorted.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

// Shape 1: .begin()/.end() feeding a return value directly.
std::vector<int> snapshot(const std::unordered_set<int>& seen) {
  return std::vector<int>(seen.begin(), seen.end());
}

// Shape 2: range-for appending to a vector that is never sorted.
std::vector<std::string> active_names(
    const std::unordered_map<std::string, int>& live) {
  std::vector<std::string> out;
  for (const auto& entry : live) {
    out.push_back(entry.first);
  }
  return out;
}

}  // namespace fixture
