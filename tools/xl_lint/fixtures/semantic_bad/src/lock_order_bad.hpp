// Seeded-bad fixture for the lock-order rule: the class declaration lives in
// this header; the two methods in lock_order_bad.cpp take its mutexes in
// opposite orders, which only a cross-translation-unit pass can see.
#pragma once

#include <mutex>

namespace fixture {

class Transfer {
 public:
  void credit();
  void debit();

 private:
  std::mutex ledger_;
  std::mutex journal_;
};

}  // namespace fixture
