// Seeded-bad fixture for the unguarded-field rule: a mutex-owning class with
// data members carrying neither XL_GUARDED_BY nor XL_UNGUARDED(reason).
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace fixture {

class Counter {
 public:
  void add(std::size_t n);

 private:
  std::mutex mu_;
  std::size_t total_ = 0;
  std::vector<std::string> names_;
};

}  // namespace fixture
