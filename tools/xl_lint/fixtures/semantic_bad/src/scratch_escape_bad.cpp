// Seeded-bad fixture for the scratch-escape rule: raw storage of a pooled
// Scratch buffer is returned past the RAII scope that recycles it.
#include <cstddef>

namespace fixture {

const double* leak_scratch(std::size_t n) {
  Scratch<double> tmp(n);
  for (std::size_t i = 0; i < n; ++i) {
    tmp.data()[i] = 0.0;
  }
  return tmp.data();
}

}  // namespace fixture
