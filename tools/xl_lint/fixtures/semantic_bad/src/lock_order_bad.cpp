// Seeded-bad fixture for the lock-order rule (see lock_order_bad.hpp).
#include "lock_order_bad.hpp"

namespace fixture {

void Transfer::credit() {
  std::lock_guard<std::mutex> hold_ledger(ledger_);
  std::lock_guard<std::mutex> hold_journal(journal_);
}

void Transfer::debit() {
  std::lock_guard<std::mutex> hold_journal(journal_);
  std::lock_guard<std::mutex> hold_ledger(ledger_);
}

}  // namespace fixture
