// Seeded-bad fixture for the parallel-float-merge rule: a parallel_for body
// accumulating into a float declared outside the lambda, so the sum depends
// on nondeterministic chunk interleaving.
#include <cstddef>
#include <vector>

namespace fixture {

double unstable_sum(const std::vector<double>& xs) {
  double sum = 0.0;
  parallel_for(xs.size(), [&](std::size_t i) {
    sum += xs[i];
  });
  return sum;
}

}  // namespace fixture
