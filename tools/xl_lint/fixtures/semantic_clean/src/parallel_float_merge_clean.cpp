// Clean twin of parallel_float_merge_bad.cpp: each chunk accumulates into
// its own parts[c] slot and the partials are merged in chunk order after the
// parallel region, so the sum is bit-identical across thread interleavings.
#include <cstddef>
#include <vector>

namespace fixture {

double stable_sum(const std::vector<double>& xs, std::size_t chunks) {
  std::vector<double> parts(chunks, 0.0);
  parallel_for_chunks(xs.size(), chunks,
                      [&](std::size_t c, std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          parts[c] += xs[i];
                        }
                      });
  double sum = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    sum += parts[c];
  }
  return sum;
}

}  // namespace fixture
