// Clean twin of lock_order_bad.cpp: ledger_ before journal_ everywhere.
#include "lock_order_clean.hpp"

namespace fixture {

void Transfer::credit() {
  std::lock_guard<std::mutex> hold_ledger(ledger_);
  std::lock_guard<std::mutex> hold_journal(journal_);
}

void Transfer::debit() {
  std::lock_guard<std::mutex> hold_ledger(ledger_);
  std::lock_guard<std::mutex> hold_journal(journal_);
}

}  // namespace fixture
