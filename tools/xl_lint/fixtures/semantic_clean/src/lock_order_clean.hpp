// Clean twin of lock_order_bad.hpp: both methods in lock_order_clean.cpp
// take the mutexes in the same order, so the acquisition graph is acyclic.
#pragma once

#include <mutex>

namespace fixture {

class Transfer {
 public:
  void credit();
  void debit();

 private:
  std::mutex ledger_;
  std::mutex journal_;
};

}  // namespace fixture
