// Clean twin of unguarded_field_bad.cpp: every field of the mutex-owning
// class either carries XL_GUARDED_BY or is explicitly XL_UNGUARDED with a
// reason (the fixture defines no-op stand-ins for the real annotation macros
// in src/common/annotations.hpp).
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#define XL_GUARDED_BY(x)
#define XL_UNGUARDED(reason)

namespace fixture {

class Counter {
 public:
  void add(std::size_t n);

 private:
  std::mutex mu_;
  std::size_t total_ XL_GUARDED_BY(mu_) = 0;
  std::vector<std::string> names_ XL_GUARDED_BY(mu_);
  XL_UNGUARDED("written once in the constructor, read-only afterwards")
  std::string label_;
};

}  // namespace fixture
