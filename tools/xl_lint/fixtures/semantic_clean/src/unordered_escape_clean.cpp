// Clean twin of unordered_escape_bad.cpp: the hash-ordered contents are
// sorted before they leave the function, so iteration order cannot reach the
// timeline.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::vector<int> snapshot(const std::unordered_set<int>& seen) {
  std::vector<int> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> active_names(
    const std::unordered_map<std::string, int>& live) {
  std::vector<std::string> out;
  for (const auto& entry : live) {
    out.push_back(entry.first);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fixture
