// Clean twin of scratch_escape_bad.cpp: the pooled buffer is used strictly
// inside its RAII scope and only a scalar copy of the data leaves.
#include <cstddef>

namespace fixture {

double checksum(const double* xs, std::size_t n) {
  Scratch<double> tmp(n);
  for (std::size_t i = 0; i < n; ++i) {
    tmp.data()[i] = xs[i] + 1.0;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += tmp.data()[i];
  }
  return acc;
}

}  // namespace fixture
