#include "semantic.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string>

namespace xl::lint {

namespace {

using Tokens = std::vector<Token>;

bool in_src_or_tools(const std::string& path) {
  return path.find("src/") != std::string::npos ||
         path.find("tools/") != std::string::npos;
}

bool in_lexical_unordered_scope(const std::string& path) {
  return path.find("src/runtime") != std::string::npos ||
         path.find("src/cluster") != std::string::npos ||
         path.find("src/workflow") != std::string::npos;
}

std::size_t match_group_tok(const Tokens& t, std::size_t open, std::size_t end,
                            const char* oc, const char* cc) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    if (t[i].text == oc) ++depth;
    else if (t[i].text == cc) {
      if (--depth == 0) return i + 1;
    }
  }
  return end;
}

std::size_t match_angles_tok(const Tokens& t, std::size_t open, std::size_t end) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    const std::string& x = t[i].text;
    if (x == "<") ++depth;
    else if (x == ">") {
      if (--depth == 0) return i + 1;
    } else if (x == ";" || x == "{" || x == "}") {
      return open;
    }
  }
  return open;
}

bool tok_is(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

/// The class-ish identifier a member/local type string resolves to: the last
/// identifier in `type` that names a class in the symbol table.
std::string resolve_type_class(const std::string& type, const SymbolTable& table) {
  std::string best, cur;
  for (std::size_t i = 0; i <= type.size(); ++i) {
    const char c = i < type.size() ? type[i] : '\0';
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      cur += c;
    } else {
      if (!cur.empty() && table.classes.count(cur)) best = cur;
      cur.clear();
    }
  }
  return best;
}

// --- rule: unguarded-field ---------------------------------------------------

void rule_unguarded_field(const FileModel& model, std::vector<Finding>& findings) {
  if (!in_src_or_tools(model.path)) return;
  for (const ClassModel& cls : model.classes) {
    if (!cls.has_mutex()) continue;
    for (const Member& m : cls.members) {
      if (m.is_mutex || m.is_exempt || m.is_guarded || m.is_marked_unguarded) {
        continue;
      }
      findings.push_back(Finding{
          model.path, m.line, "unguarded-field",
          "class '" + cls.name + "' owns a mutex but field '" + m.name +
              "' is neither XL_GUARDED_BY a capability nor XL_UNGUARDED(reason)"});
    }
  }
}

// --- rule: unordered-escape --------------------------------------------------

struct LocalDecl {
  std::string name;
  std::string type;  // joined type tokens.
};

/// Scan `[b, e)` for simple local declarations `Type name` where Type's last
/// identifier is `type_word` (e.g. unordered_set, double). Appends names.
void collect_typed_locals(const Tokens& t, std::size_t b, std::size_t e,
                          const std::set<std::string>& type_words,
                          std::map<std::string, std::string>& out) {
  for (std::size_t i = b; i + 1 < e; ++i) {
    if (t[i].kind != Token::Kind::Ident || !type_words.count(t[i].text)) continue;
    std::size_t j = i + 1;
    if (tok_is(t, j, "<")) {
      const std::size_t past = match_angles_tok(t, j, e);
      if (past == j) continue;
      j = past;
    }
    while (j < e && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j < e && t[j].kind == Token::Kind::Ident) {
      const std::string next = j + 1 < e ? t[j + 1].text : "";
      if (next == ";" || next == "=" || next == "{" || next == "(" ||
          next == "," || next == ")") {  // ')' / ',' cover parameter lists.
        out[t[j].text] = t[i].text;
      }
    }
  }
}

/// Locals declared in the body plus the function's parameters.
void collect_typed_locals_and_params(const Tokens& t, const FunctionModel& fn,
                                     const std::set<std::string>& type_words,
                                     std::map<std::string, std::string>& out) {
  collect_typed_locals(t, fn.body_open + 1, fn.body_close, type_words, out);
  if (fn.params_open < fn.params_close) {
    collect_typed_locals(t, fn.params_open + 1, fn.params_close + 1, type_words,
                         out);
  }
}

/// Statement boundaries: the token range around `at` delimited by ';' '{' '}'.
std::pair<std::size_t, std::size_t> statement_around(const Tokens& t,
                                                     std::size_t at,
                                                     std::size_t lo,
                                                     std::size_t hi) {
  std::size_t b = at;
  while (b > lo) {
    const std::string& x = t[b - 1].text;
    if (x == ";" || x == "{" || x == "}") break;
    --b;
  }
  std::size_t e = at;
  while (e < hi && t[e].text != ";" && t[e].text != "{" && t[e].text != "}") ++e;
  return {b, e};
}

bool range_contains_ident(const Tokens& t, std::size_t b, std::size_t e,
                          const std::string& name) {
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind == Token::Kind::Ident && t[i].text == name) return true;
  }
  return false;
}

/// Is `dest` sorted anywhere in [b, e)? Looks for sort/stable_sort with dest
/// among its arguments.
bool sorted_later(const Tokens& t, std::size_t b, std::size_t e,
                  const std::string& dest) {
  for (std::size_t i = b; i + 1 < e; ++i) {
    if (t[i].kind != Token::Kind::Ident ||
        (t[i].text != "sort" && t[i].text != "stable_sort")) {
      continue;
    }
    if (!tok_is(t, i + 1, "(")) continue;
    const std::size_t past = match_group_tok(t, i + 1, e, "(", ")");
    if (range_contains_ident(t, i + 2, past, dest)) return true;
  }
  return false;
}

bool is_sink_call_name(const std::string& name) {
  return name.rfind("write", 0) == 0 || name == "on_event" ||
         name == "observer" || name == "record" || name == "append" ||
         name == "emit";
}

void rule_unordered_escape(const FileModel& model, const SymbolTable& table,
                           std::vector<Finding>& findings) {
  if (!in_src_or_tools(model.path)) return;
  if (in_lexical_unordered_scope(model.path)) return;  // unordered-iter owns these.
  const Tokens& t = model.tokens;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  static const std::set<std::string> kFloatTypes = {"double", "float"};

  for (const FunctionModel& fn : model.functions) {
    const std::size_t b = fn.body_open + 1, e = fn.body_close;
    std::map<std::string, std::string> unordered;
    collect_typed_locals_and_params(t, fn, kUnordered, unordered);
    if (const ClassModel* cls = model.enclosing_class(fn.body_begin)) {
      for (const Member& m : cls->members) {
        if (m.type.find("unordered_") != std::string::npos) {
          unordered[m.name] = "unordered_member";
        }
      }
    }
    if (unordered.empty()) continue;
    std::map<std::string, std::string> float_locals;
    collect_typed_locals_and_params(t, fn, kFloatTypes, float_locals);
    std::map<std::string, std::string> ordered_locals;
    static const std::set<std::string> kOrdered = {"set", "map", "multiset",
                                                   "multimap"};
    collect_typed_locals(t, b, e, kOrdered, ordered_locals);

    // Escape shape 1: name.begin()/cbegin() feeding a return or an unsorted
    // ordered-sequence construction.
    for (std::size_t i = b; i + 2 < e; ++i) {
      if (t[i].kind != Token::Kind::Ident || !unordered.count(t[i].text)) continue;
      if (t[i + 1].text != "." && t[i + 1].text != "->") continue;
      if (t[i + 2].text != "begin" && t[i + 2].text != "cbegin") continue;
      const std::string& name = t[i].text;
      const auto [sb, se] = statement_around(t, i, b, e);
      bool is_return = false;
      for (std::size_t k = sb; k < se; ++k) {
        if (t[k].text == "return") is_return = true;
      }
      if (is_return) {
        findings.push_back(Finding{
            model.path, t[i].line, "unordered-escape",
            "hash-ordered contents of '" + name +
                "' escape through a return value; copy into a vector and sort "
                "(or use an ordered container) before returning"});
        continue;
      }
      // Construction/assignment destination: ident before '=' or before the
      // '(' / '{' group holding the .begin().
      std::string dest;
      for (std::size_t k = sb; k < se; ++k) {
        if (t[k].text == "=" && k > sb && t[k - 1].kind == Token::Kind::Ident) {
          dest = t[k - 1].text;
          break;
        }
        if ((t[k].text == "(" || t[k].text == "{") && k > sb &&
            t[k - 1].kind == Token::Kind::Ident && k < i) {
          dest = t[k - 1].text;
        }
      }
      if (dest.empty()) continue;
      if (ordered_locals.count(dest)) continue;  // feeding a std::set/map: fine.
      if (unordered.count(dest)) continue;       // unordered-to-unordered: no escape.
      if (sorted_later(t, se, e, dest)) continue;
      findings.push_back(Finding{
          model.path, t[i].line, "unordered-escape",
          "hash-ordered contents of '" + name + "' copied into '" + dest +
              "' which is never sorted in this function; sort it before it "
              "escapes"});
    }

    // Escape shape 2: range-for over the container with an order-sensitive
    // body (stream <<, observer/CSV sink call, float accumulation, or an
    // unsorted collection append).
    for (std::size_t i = b; i < e; ++i) {
      if (t[i].kind != Token::Kind::Ident || t[i].text != "for") continue;
      if (!tok_is(t, i + 1, "(")) continue;
      const std::size_t head_end = match_group_tok(t, i + 1, e, "(", ")");
      std::string name;
      for (std::size_t k = i + 2; k + 1 < head_end; ++k) {
        if (t[k].text == ":" && t[k + 1].kind == Token::Kind::Ident &&
            unordered.count(t[k + 1].text) && k + 2 + 1 >= head_end) {
          name = t[k + 1].text;
        }
      }
      if (name.empty()) continue;
      std::size_t body_b = head_end, body_e;
      if (tok_is(t, head_end, "{")) {
        body_e = match_group_tok(t, head_end, e, "{", "}");
        body_b = head_end + 1;
      } else {
        const auto stmt = statement_around(t, head_end, b, e);
        body_e = stmt.second;
      }
      const int line = t[i].line;
      for (std::size_t k = body_b; k < body_e; ++k) {
        const Token& tok = t[k];
        if (tok.text == "<" && k + 1 < body_e && t[k + 1].text == "<" &&
            t[k + 1].offset == tok.offset + 1) {
          findings.push_back(Finding{
              model.path, line, "unordered-escape",
              "iteration over '" + name +
                  "' streams (<<) in hash order; iterate a sorted copy so the "
                  "output is deterministic"});
          break;
        }
        if (tok.kind == Token::Kind::Ident && is_sink_call_name(tok.text) &&
            tok_is(t, k + 1, "(")) {
          findings.push_back(Finding{
              model.path, line, "unordered-escape",
              "iteration over '" + name + "' reaches sink '" + tok.text +
                  "' in hash order; iterate a sorted copy so delivery order is "
                  "deterministic"});
          break;
        }
        if ((tok.text == "+=" || tok.text == "-=") && k > body_b &&
            t[k - 1].kind == Token::Kind::Ident &&
            float_locals.count(t[k - 1].text)) {
          findings.push_back(Finding{
              model.path, line, "unordered-escape",
              "iteration over '" + name + "' accumulates into float '" +
                  t[k - 1].text +
                  "' in hash order; sum over a sorted copy (float addition is "
                  "not associative)"});
          break;
        }
        if (tok.kind == Token::Kind::Ident &&
            (tok.text == "push_back" || tok.text == "emplace_back") &&
            k >= body_b + 2 && t[k - 1].text == "." &&
            t[k - 2].kind == Token::Kind::Ident) {
          const std::string& dest = t[k - 2].text;
          if (!ordered_locals.count(dest) && !unordered.count(dest) &&
              !sorted_later(t, body_e, e, dest)) {
            findings.push_back(Finding{
                model.path, line, "unordered-escape",
                "iteration over '" + name + "' appends to '" + dest +
                    "' in hash order and '" + dest +
                    "' is never sorted in this function; sort it before it "
                    "escapes"});
            break;
          }
        }
      }
    }
  }
  (void)table;
}

// --- rule: parallel-float-merge ----------------------------------------------

void rule_parallel_float_merge(const FileModel& model,
                               std::vector<Finding>& findings) {
  const Tokens& t = model.tokens;
  static const std::set<std::string> kFloatTypes = {"double", "float"};

  for (const FunctionModel& fn : model.functions) {
    const std::size_t b = fn.body_open + 1, e = fn.body_close;
    for (std::size_t i = b; i < e; ++i) {
      if (t[i].kind != Token::Kind::Ident ||
          (t[i].text != "parallel_for" && t[i].text != "parallel_for_chunks")) {
        continue;
      }
      if (!tok_is(t, i + 1, "(")) continue;
      const std::size_t call_end = match_group_tok(t, i + 1, e, "(", ")");
      // First lambda in the argument list.
      std::size_t lam = i + 2;
      while (lam < call_end && t[lam].text != "[") ++lam;
      if (lam >= call_end) continue;
      std::size_t j = match_group_tok(t, lam, call_end, "[", "]");
      if (tok_is(t, j, "(")) j = match_group_tok(t, j, call_end, "(", ")");
      while (j < call_end && t[j].text != "{") ++j;
      if (j >= call_end) continue;
      const std::size_t body_b = j + 1;
      const std::size_t body_e = match_group_tok(t, j, call_end, "{", "}") - 1;

      std::map<std::string, std::string> lambda_floats;
      collect_typed_locals(t, body_b, body_e, kFloatTypes, lambda_floats);
      std::map<std::string, std::string> outer_floats;
      collect_typed_locals(t, b, lam, kFloatTypes, outer_floats);
      if (fn.params_open < fn.params_close) {
        collect_typed_locals(t, fn.params_open + 1, fn.params_close + 1,
                             kFloatTypes, outer_floats);
      }
      if (const ClassModel* cls = model.enclosing_class(fn.body_begin)) {
        for (const Member& m : cls->members) {
          if (m.type.find("double") != std::string::npos ||
              m.type.find("float") != std::string::npos) {
            outer_floats[m.name] = m.type;
          }
        }
      }

      const auto flag = [&](const std::string& var, int line) {
        findings.push_back(Finding{
            model.path, line, "parallel-float-merge",
            "floating-point accumulation into '" + var +
                "' inside a parallel_for body runs in nondeterministic chunk "
                "order; accumulate per-chunk partials (parts[c]) and merge in "
                "chunk order after the loop"});
      };
      for (std::size_t k = body_b; k < body_e; ++k) {
        if (t[k].text == "+=" || t[k].text == "-=") {
          if (k == body_b) continue;
          const Token& lhs = t[k - 1];
          if (lhs.text == "]") continue;  // parts[c] += ...: per-chunk slot.
          if (lhs.kind != Token::Kind::Ident) continue;
          if (lambda_floats.count(lhs.text)) continue;  // lambda-local: fine.
          if (outer_floats.count(lhs.text)) flag(lhs.text, lhs.line);
          continue;
        }
        // x = x + ... on an outer float.
        if (t[k].text == "=" && k > body_b && k + 2 < body_e &&
            t[k - 1].kind == Token::Kind::Ident &&
            t[k + 1].kind == Token::Kind::Ident &&
            t[k + 1].text == t[k - 1].text && t[k + 2].text == "+" &&
            !lambda_floats.count(t[k - 1].text) &&
            outer_floats.count(t[k - 1].text)) {
          flag(t[k - 1].text, t[k - 1].line);
        }
      }
      i = call_end - 1;
    }
  }
}

// --- rule: scratch-escape ----------------------------------------------------

void rule_scratch_escape(const FileModel& model, std::vector<Finding>& findings) {
  const Tokens& t = model.tokens;
  for (const FunctionModel& fn : model.functions) {
    const std::size_t b = fn.body_open + 1, e = fn.body_close;
    // Pooled RAII locals: Scratch<T> name(...) / ArenaVec<T> name(...).
    std::set<std::string> pooled;
    for (std::size_t i = b; i + 1 < e; ++i) {
      if (t[i].kind != Token::Kind::Ident ||
          (t[i].text != "Scratch" && t[i].text != "ArenaVec")) {
        continue;
      }
      std::size_t j = i + 1;
      if (tok_is(t, j, "<")) {
        const std::size_t past = match_angles_tok(t, j, e);
        if (past == j) continue;
        j = past;
      }
      if (j < e && t[j].kind == Token::Kind::Ident) {
        const std::string next = j + 1 < e ? t[j + 1].text : "";
        if (next == "(" || next == "{" || next == ";" || next == "=") {
          pooled.insert(t[j].text);
        }
      }
    }
    if (pooled.empty()) continue;

    for (std::size_t i = b; i < e; ++i) {
      const Token& tok = t[i];
      if (tok.kind != Token::Kind::Ident) continue;

      // Escape 1: return of the buffer or its raw storage.
      if (tok.text == "return") {
        const auto [sb, se] = statement_around(t, i, b, e);
        for (std::size_t k = sb; k < se; ++k) {
          if (t[k].kind != Token::Kind::Ident || !pooled.count(t[k].text)) continue;
          const bool raw = k + 2 < se && (t[k + 1].text == "." || t[k + 1].text == "->") &&
                           (t[k + 2].text == "data" || t[k + 2].text == "vec");
          const bool addr = k > sb && t[k - 1].text == "&";
          const bool moved = k >= sb + 2 && t[k - 1].text == "(" &&
                             t[k - 2].text == "move";
          const bool bare = k + 1 == se;  // `return name;` -- name is last.
          if (raw || addr || moved || bare) {
            findings.push_back(Finding{
                model.path, t[k].line, "scratch-escape",
                "pooled buffer '" + t[k].text +
                    "' is returned past its RAII scope; the storage is recycled "
                    "when the Scratch destructor runs -- copy the data out or "
                    "hand ownership through the pool instead"});
            break;
          }
        }
        i = se;
        continue;
      }

      // Escape 2: raw storage stored to a member/static.
      if (pooled.count(tok.text) && i + 2 < e &&
          (t[i + 1].text == "." || t[i + 1].text == "->") &&
          (t[i + 2].text == "data" || t[i + 2].text == "vec")) {
        const auto [sb, se] = statement_around(t, i, b, e);
        for (std::size_t k = sb; k < se && k < i; ++k) {
          if (t[k].text != "=") continue;
          if (k == sb || t[k - 1].kind != Token::Kind::Ident) break;
          const std::string& lhs = t[k - 1].text;
          const bool member_store =
              (!lhs.empty() && lhs.back() == '_') ||
              (k >= sb + 2 && (t[k - 2].text == "." || t[k - 2].text == "->"));
          if (member_store) {
            findings.push_back(Finding{
                model.path, tok.line, "scratch-escape",
                "raw pointer from pooled buffer '" + tok.text +
                    "' stored in '" + lhs +
                    "' outlives the RAII scope; the pool recycles the storage "
                    "at scope exit"});
          }
          break;
        }
        continue;
      }

      // Escape 3: captured by deferred work (task queues, async submission).
      const bool deferred_call =
          (tok.text == "submit" || tok.text == "enqueue" || tok.text == "post" ||
           tok.text == "spawn" || tok.text == "detach" ||
           (tok.text.size() > 6 &&
            tok.text.compare(tok.text.size() - 6, 6, "_async") == 0)) &&
          tok_is(t, i + 1, "(");
      if (deferred_call) {
        const std::size_t past = match_group_tok(t, i + 1, e, "(", ")");
        for (std::size_t k = i + 2; k < past; ++k) {
          if (t[k].kind == Token::Kind::Ident && pooled.count(t[k].text)) {
            findings.push_back(Finding{
                model.path, t[k].line, "scratch-escape",
                "pooled buffer '" + t[k].text + "' captured by deferred work ('" +
                    tok.text +
                    "') may outlive its RAII scope; copy the data or keep the "
                    "task synchronous"});
            break;
          }
        }
        i = past - 1;
      }
    }
  }
}

// --- rule: lock-order --------------------------------------------------------

/// Split a whitespace-free lock expression on '.' / '->'.
std::vector<std::string> split_expr(const std::string& expr) {
  std::vector<std::string> parts;
  std::string cur;
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (expr[i] == '.') {
      parts.push_back(cur);
      cur.clear();
    } else if (expr[i] == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
      parts.push_back(cur);
      cur.clear();
      ++i;
    } else {
      cur += expr[i];
    }
  }
  parts.push_back(cur);
  return parts;
}

/// Type (class name) of `name` as a local in `fn`, via `Type name` decls whose
/// Type is a known class.
std::string local_class_type(const Tokens& t, const FunctionModel& fn,
                             const std::string& name, const SymbolTable& table) {
  for (std::size_t i = fn.body_open + 1; i + 1 < fn.body_close; ++i) {
    if (t[i].kind != Token::Kind::Ident || !table.classes.count(t[i].text)) continue;
    std::size_t j = i + 1;
    while (j < fn.body_close && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j < fn.body_close && t[j].kind == Token::Kind::Ident && t[j].text == name) {
      return t[i].text;
    }
  }
  return "";
}

std::string canonical_lock(const std::string& raw_expr, const FunctionModel& fn,
                           const FileModel& model, const SymbolTable& table) {
  std::string expr = raw_expr;
  if (expr.rfind("this->", 0) == 0) expr = expr.substr(6);
  if (!expr.empty() && expr[0] == '&') expr = expr.substr(1);
  if (!expr.empty() && expr[0] == '*') expr = expr.substr(1);
  const std::vector<std::string> parts = split_expr(expr);
  if (parts.size() == 1) {
    const std::string& p = parts[0];
    if (!fn.class_name.empty() && table.find_member(fn.class_name, p)) {
      return fn.class_name + "::" + p;
    }
    return model.path + "::" + p;
  }
  const std::string& recv = parts[parts.size() - 2];
  const std::string& mem = parts[parts.size() - 1];
  std::string recv_class;
  if (!fn.class_name.empty()) {
    if (const Member* m = table.find_member(fn.class_name, recv)) {
      recv_class = resolve_type_class(m->type, table);
    }
  }
  if (recv_class.empty()) {
    recv_class = local_class_type(model.tokens, fn, recv, table);
  }
  if (!recv_class.empty()) return recv_class + "::" + mem;
  return model.path + "::" + expr;
}

struct Edge {
  std::string file;
  int line = 0;
  std::string via;  ///< human description of how the edge arises.
};

void rule_lock_order(const std::vector<FileModel>& models, const SymbolTable& table,
                     std::vector<Finding>& findings) {
  std::map<std::string, std::map<std::string, Edge>> graph;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            const std::string& file, int line,
                            const std::string& via) {
    if (from == to) {
      // Self-edge: immediate double acquisition; report directly.
      findings.push_back(Finding{
          file, line, "lock-order",
          "lock '" + from + "' acquired while already held (" + via + ")"});
      return;
    }
    graph[from].emplace(to, Edge{file, line, via});
    (void)graph[to];  // ensure every node exists.
  };

  // Pass 1: canonicalize and add intra-function nesting edges.
  std::map<const Acquisition*, std::string> canon;
  for (const FileModel& model : models) {
    for (const FunctionModel& fn : model.functions) {
      for (const Acquisition& acq : fn.acquisitions) {
        canon[&acq] = canonical_lock(acq.expr, fn, model, table);
      }
    }
  }
  const auto held_canonical = [&](const FunctionModel& fn,
                                  const std::string& held_expr) -> std::string {
    for (const Acquisition& h : fn.acquisitions) {
      if (h.expr == held_expr) return canon[&h];
    }
    return "";
  };
  for (const FileModel& model : models) {
    for (const FunctionModel& fn : model.functions) {
      for (const Acquisition& acq : fn.acquisitions) {
        for (const std::string& held_expr : acq.held) {
          const std::string held = held_canonical(fn, held_expr);
          if (held.empty()) continue;
          add_edge(held, canon[&acq], model.path, acq.line,
                   "'" + acq.expr + "' acquired under '" + held_expr + "' in " +
                       (fn.class_name.empty() ? fn.name
                                              : fn.class_name + "::" + fn.name));
        }
      }
    }
  }

  // Pass 2: one level of call propagation -- a call made under a lock inherits
  // the callee's top-level acquisitions.
  for (const FileModel& model : models) {
    for (const FunctionModel& fn : model.functions) {
      for (const CallSite& call : fn.locked_calls) {
        // Resolve the callee: by receiver type, else own class, else a
        // globally unique free function of that name.
        std::vector<const FunctionModel*> callees;
        const auto it = table.functions.find(call.name);
        if (it == table.functions.end()) continue;
        if (!call.receiver.empty()) {
          std::string recv_class;
          if (!fn.class_name.empty()) {
            if (const Member* m = table.find_member(fn.class_name, call.receiver)) {
              recv_class = resolve_type_class(m->type, table);
            }
          }
          if (recv_class.empty()) {
            recv_class = local_class_type(model.tokens, fn, call.receiver, table);
          }
          if (recv_class.empty()) continue;
          for (const FunctionModel* cand : it->second) {
            if (cand->class_name == recv_class) callees.push_back(cand);
          }
        } else {
          for (const FunctionModel* cand : it->second) {
            if (!fn.class_name.empty() && cand->class_name == fn.class_name) {
              callees.push_back(cand);
            }
          }
          if (callees.empty() && it->second.size() == 1 &&
              it->second.front()->class_name.empty()) {
            callees.push_back(it->second.front());
          }
        }
        for (const FunctionModel* callee : callees) {
          if (callee == &fn) continue;
          for (const Acquisition& acq : callee->acquisitions) {
            if (!acq.top_level || canon[&acq].empty()) continue;
            for (const std::string& held_expr : call.held) {
              const std::string held = held_canonical(fn, held_expr);
              if (held.empty()) continue;
              add_edge(held, canon[&acq], model.path, call.line,
                       "call to '" + call.name + "' (which locks '" + acq.expr +
                           "') while holding '" + held_expr + "' in " +
                           (fn.class_name.empty()
                                ? fn.name
                                : fn.class_name + "::" + fn.name));
            }
          }
        }
      }
    }
  }

  // Cycle detection: DFS with colors; each distinct cycle reported once in
  // canonical rotation (lexicographically smallest node first).
  std::set<std::vector<std::string>> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black.
  std::vector<std::string> path_stack;

  const std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    path_stack.push_back(node);
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const auto& [next, edge] : it->second) {
        if (color[next] == 1) {
          // Back edge: extract the cycle from the stack.
          std::vector<std::string> cycle;
          bool in_cycle = false;
          for (const std::string& n : path_stack) {
            if (n == next) in_cycle = true;
            if (in_cycle) cycle.push_back(n);
          }
          if (cycle.empty()) continue;
          const auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          if (!reported.insert(cycle).second) continue;
          std::string desc;
          for (const std::string& n : cycle) desc += n + " -> ";
          desc += cycle.front();
          findings.push_back(Finding{
              edge.file, edge.line, "lock-order",
              "lock acquisition order cycle: " + desc + " (" + edge.via + ")"});
        } else if (color[next] == 0) {
          dfs(next);
        }
      }
    }
    path_stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, _] : graph) {
    if (color[node] == 0) dfs(node);
  }
}

}  // namespace

void run_file_semantic_rules(const FileModel& model, const SymbolTable& table,
                             std::vector<Finding>& findings) {
  rule_unguarded_field(model, findings);
  rule_unordered_escape(model, table, findings);
  rule_parallel_float_merge(model, findings);
  rule_scratch_escape(model, findings);
}

void run_lock_order_rule(const std::vector<FileModel>& models,
                         const SymbolTable& table,
                         std::vector<Finding>& findings) {
  rule_lock_order(models, table, findings);
}

}  // namespace xl::lint
