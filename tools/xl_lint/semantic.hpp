// Semantic rules for xl_lint: checks that need the parsed declaration/scope
// model (tools/xl_lint/model.hpp) rather than line-local patterns.
//
//   unordered-escape     hash-order iteration results reaching a return value,
//                        an observer/CSV sink, or a float accumulation
//   unguarded-field      mutex-owning class with a field that is neither
//                        XL_GUARDED_BY a capability nor XL_UNGUARDED(reason)
//   lock-order           cycle in the "acquired while holding" graph, built
//                        across translation units
//   parallel-float-merge float accumulation inside a parallel_for body that
//                        bypasses the ordered per-chunk merge idiom
//   scratch-escape       pooled Scratch/ArenaVec storage escaping its RAII
//                        scope (returned, stored to a member, or captured by
//                        deferred work)
#pragma once

#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace xl::lint {

/// Per-file semantic rules (everything except lock-order). `table` supplies
/// cross-TU member/type resolution.
void run_file_semantic_rules(const FileModel& model, const SymbolTable& table,
                             std::vector<Finding>& findings);

/// Global lock-order rule over every parsed file: builds the acquired-under
/// graph (with one level of cross-TU call propagation) and reports each
/// distinct cycle once, attributed to a representative acquisition site.
void run_lock_order_rule(const std::vector<FileModel>& models,
                         const SymbolTable& table,
                         std::vector<Finding>& findings);

}  // namespace xl::lint
