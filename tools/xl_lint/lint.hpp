// xl_lint: the project's determinism-contract checker.
//
// A small, dependency-free static analyzer that enforces the repo's hard
// invariants (bit-identical timelines, seeded-only randomness, ordered
// parallel merges, guarded numeric conversions) at commit time instead of
// test time. It runs in two layers over scrubbed sources (comments, strings,
// and raw strings blanked):
//
//   - lexical rules: per-line/per-pattern checks over the scrubbed text;
//   - semantic rules: checks over a parsed declaration/scope model with a
//     cross-translation-unit symbol table (tools/xl_lint/model.hpp), so a
//     mutex declared in a header is resolved when locked from a .cpp file.
//
// Both layers are heuristics, not a compiler: every rule supports explicit
// suppression, and a suppression that stops matching anything is itself
// flagged (stale-suppression) so the allow-list never rots.
//
// Suppression syntax. A trailing suppression guards its own line; one on a
// comment-only line guards the next code line, however many comment lines the
// explanation spans:
//   // xl-lint: allow(<rule>)                 -- bare
//   // xl-lint: allow(<rule>): <reason>       -- with the reason string
//   // xl-lint: allow(<rule>, <rule2>): ...   -- several rules at once
//   // xl-lint: allow-file(<rule>): <reason>  -- whole file
//
// Lexical rules (see rules() for the authoritative list):
//   wallclock        wall-clock/time sources outside the substrate clock
//   raw-random       unseeded or global randomness outside common/rng.hpp
//   unordered-iter   iteration over unordered containers in the layers where
//                    accumulation order reaches the timeline
//   float-cast       raw static_cast from floating point to integer
//   parallel-merge   shared-container mutation inside a parallel_for body
//   missing-include  use of a std symbol without its owning header
//   banned-symbol    environment/process escapes (getenv, system, sleeps)
//   fab-by-value     pass-by-value Fab/StagedObject parameters
//
// Semantic rules (tools/xl_lint/semantic.hpp):
//   unordered-escape     hash-order iteration results escaping unsorted
//   unguarded-field      mutex-owning class with an unannotated field
//   lock-order           cross-TU lock acquisition order cycles
//   parallel-float-merge unordered float accumulation in parallel_for bodies
//   scratch-escape       pooled Scratch/ArenaVec storage escaping RAII scope
//
// Meta rules:
//   stale-suppression    an allow() marker that no longer suppresses anything
//   stale-baseline       a baseline entry larger than the current tree needs
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace xl::lint {

struct Finding {
  std::string file;     ///< path as given (repo-relative in CI).
  int line = 0;         ///< 1-based.
  std::string rule;     ///< rule id, e.g. "wallclock".
  std::string message;  ///< human-readable explanation.
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The authoritative rule list (stable ids; suppressions reference these).
const std::vector<RuleInfo>& rules();

/// Blank out comments, strings, char literals, and raw strings, preserving
/// newlines (line numbers stay valid). Exposed for the semantic model/tests.
std::string scrub_source(const std::string& text);

/// Lint a set of translation units together: the semantic rules share one
/// symbol table across every file, so cross-TU facts (a mutex declared in a
/// header, locked from a .cpp) resolve. Findings come back grouped per file
/// in input order, sorted by (line, rule) within each file.
std::vector<Finding> lint_texts(
    const std::vector<std::pair<std::string, std::string>>& sources);

/// Lint one translation unit. `path` classifies the file (rules scope
/// themselves by directory) and labels findings; `text` is the file content.
std::vector<Finding> lint_text(const std::string& path, const std::string& text);

/// Lint a file on disk; findings are labeled with `display_path`.
std::vector<Finding> lint_file(const std::string& disk_path,
                               const std::string& display_path);

/// Recursively collect the .cpp/.hpp/.h/.cc files under `paths` (relative to
/// `root`), skipping build trees, .git, and lint fixtures, in sorted order.
std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths);

/// Full CLI: returns the process exit code (0 clean, 1 findings, 2 error).
int run_cli(int argc, const char* const* argv);

}  // namespace xl::lint
