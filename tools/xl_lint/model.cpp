#include "model.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace xl::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while", "switch", "catch",  "return",
      "sizeof", "alignof", "new",  "delete", "else",   "do",
      "throw",  "case",    "goto", "static_assert", "decltype", "alignas",
  };
  return kw;
}

bool is_mutex_type_word(const std::string& w) {
  return w == "Mutex" || w == "mutex" || w == "shared_mutex" ||
         w == "recursive_mutex" || w == "timed_mutex" ||
         w == "recursive_timed_mutex";
}

bool is_exempt_type_word(const std::string& w) {
  return w == "atomic" || w == "atomic_bool" || w == "atomic_int" ||
         w == "atomic_flag" || w == "CondVar" || w == "condition_variable" ||
         w == "condition_variable_any" || w == "thread" || w == "jthread";
}

}  // namespace

std::vector<Token> tokenize(const std::string& s) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  bool at_line_start = true;  // only whitespace seen since the last newline.
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: skip to end of line, honoring continuations.
      while (i < n) {
        if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (s[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    Token t;
    t.offset = i;
    t.line = line;
    if (ident_start(c)) {
      t.kind = Token::Kind::Ident;
      while (i < n && ident_char(s[i])) t.text += s[i++];
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      t.kind = Token::Kind::Number;
      while (i < n && (ident_char(s[i]) || s[i] == '.' ||
                       ((s[i] == '+' || s[i] == '-') && i > 0 &&
                        (s[i - 1] == 'e' || s[i - 1] == 'E')))) {
        t.text += s[i++];
      }
    } else {
      t.kind = Token::Kind::Punct;
      // Multi-char puncts we care about. `<` `>` stay single so template
      // argument lists can be matched by depth.
      static const char* kTwo[] = {"::", "->", "+=", "-=", "*=", "/=",
                                   "==", "!=", "&&", "||", "++", "--"};
      t.text = std::string(1, c);
      if (i + 1 < n) {
        const std::string two = s.substr(i, 2);
        for (const char* p : kTwo) {
          if (two == p) {
            t.text = two;
            break;
          }
        }
      }
      i += t.text.size();
    }
    out.push_back(std::move(t));
  }
  return out;
}

namespace {

using Tokens = std::vector<Token>;

/// Index one past the group closing `open` (tokens[open] is `(` `{` or `[`).
/// Returns `end` when unbalanced.
std::size_t match_group(const Tokens& t, std::size_t open, std::size_t end,
                        const char* oc, const char* cc) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    if (t[i].text == oc) ++depth;
    else if (t[i].text == cc) {
      if (--depth == 0) return i + 1;
    }
  }
  return end;
}

/// Match a template argument list starting at `open` (tokens[open] == "<").
/// Bails out (returns open) when no balanced close is found before `end` --
/// the `<` was a comparison, not an angle bracket.
std::size_t try_match_angles(const Tokens& t, std::size_t open, std::size_t end) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    const std::string& x = t[i].text;
    if (x == "<") ++depth;
    else if (x == ">") {
      if (--depth == 0) return i + 1;
    } else if (x == ";" || x == "{" || x == "}") {
      return open;  // statement boundary: not a template list.
    }
  }
  return open;
}

/// True for macro-style idents whose paren group should be skipped when
/// classifying declarations (annotation macros, attribute macros).
bool is_annotation_macro(const std::string& w) {
  return w.rfind("XL_", 0) == 0;
}

// --- class & member parsing --------------------------------------------------

struct ClassSpan {
  std::string name;
  int line = 0;
  std::size_t header_tok = 0;  // index of the class/struct keyword.
  std::size_t body_open = 0;   // index of '{'.
  std::size_t body_close = 0;  // index of '}'.
};

std::vector<ClassSpan> find_class_spans(const Tokens& t) {
  std::vector<ClassSpan> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::Ident ||
        (t[i].text != "class" && t[i].text != "struct")) {
      continue;
    }
    if (i > 0 && t[i - 1].text == "enum") continue;
    if (i > 0 && t[i - 1].text == "friend") continue;
    // Scan the header: skip annotation-macro groups, remember the last plain
    // identifier before '{' / ':' / ';'.
    std::size_t j = i + 1;
    std::string name;
    int line = t[i].line;
    bool ok = false;
    while (j < t.size()) {
      const Token& tok = t[j];
      if (tok.kind == Token::Kind::Ident) {
        if (is_annotation_macro(tok.text) && j + 1 < t.size() &&
            t[j + 1].text == "(") {
          j = match_group(t, j + 1, t.size(), "(", ")");
          continue;
        }
        if (tok.text != "final" && tok.text != "alignas") name = tok.text;
        ++j;
        continue;
      }
      if (tok.text == "::") {  // qualified out-of-line definition.
        ++j;
        continue;
      }
      if (tok.text == "<") {  // template specialization args.
        const std::size_t after = try_match_angles(t, j, t.size());
        if (after == j) break;
        j = after;
        continue;
      }
      if (tok.text == ":") {  // base clause: skip to the body.
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") {
          if (t[j].text == "<") {
            const std::size_t after = try_match_angles(t, j, t.size());
            j = after == j ? j + 1 : after;
          } else {
            ++j;
          }
        }
        continue;
      }
      if (tok.text == "{") {
        ok = !name.empty();
        break;
      }
      break;  // ';' (forward decl), '(' (function returning class), etc.
    }
    if (!ok) continue;
    ClassSpan span;
    span.name = name;
    span.line = line;
    span.header_tok = i;
    span.body_open = j;
    const std::size_t past = match_group(t, j, t.size(), "{", "}");
    if (past == t.size() && (past == 0 || t[past - 1].text != "}")) continue;
    span.body_close = past - 1;
    out.push_back(std::move(span));
  }
  return out;
}

/// Analyze one depth-0 member statement (token index range [b, e)).
void classify_member_statement(const Tokens& t, std::size_t b, std::size_t e,
                               ClassModel& cls) {
  if (b >= e) return;
  const std::string& first = t[b].text;
  if (first == "using" || first == "typedef" || first == "friend" ||
      first == "template" || first == "static_assert" || first == "enum" ||
      first == "class" || first == "struct" || first == "explicit" ||
      first == "operator" || first == "virtual" || first == "~") {
    return;
  }

  // Build a filtered view: drop annotation-macro groups and template argument
  // lists; remember the annotations seen.
  Member m;
  std::vector<std::size_t> kept;  // token indices surviving the filter.
  for (std::size_t i = b; i < e;) {
    const Token& tok = t[i];
    if (tok.kind == Token::Kind::Ident && is_annotation_macro(tok.text) &&
        i + 1 < e && t[i + 1].text == "(") {
      const std::size_t past = match_group(t, i + 1, e, "(", ")");
      if (tok.text == "XL_GUARDED_BY" || tok.text == "XL_PT_GUARDED_BY") {
        m.is_guarded = true;
        for (std::size_t k = i + 2; k + 1 < past; ++k) m.guard += t[k].text;
      } else if (tok.text == "XL_UNGUARDED") {
        m.is_marked_unguarded = true;
      }
      i = past;
      continue;
    }
    if (tok.text == "<") {
      const std::size_t past = try_match_angles(t, i, e);
      if (past != i) {
        // Template args vanish from the view, but exemption-relevant words
        // inside them still count (e.g. std::atomic<bool> via outer ident).
        i = past;
        continue;
      }
    }
    kept.push_back(i);
    ++i;
  }
  if (kept.empty()) return;

  // Any surviving '(' means this is a function declaration, not a member.
  for (std::size_t idx : kept) {
    if (t[idx].text == "(") return;
  }

  // Member name: the identifier directly followed (in the filtered view) by
  // end-of-statement, '=', '{', '[', or nothing (we trimmed the ';').
  std::size_t name_at = kept.size();
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const Token& tok = t[kept[k]];
    if (tok.kind != Token::Kind::Ident) continue;
    const bool last = k + 1 == kept.size();
    const std::string next = last ? "" : t[kept[k + 1]].text;
    if (last || next == "=" || next == "{" || next == "[") {
      name_at = k;
      break;
    }
  }
  if (name_at == kept.size()) return;
  m.name = t[kept[name_at]].text;
  m.line = t[kept[name_at]].line;

  // Type text and qualifiers from everything before the name.
  bool is_static = false, is_const = false, is_ref = false;
  for (std::size_t k = 0; k < name_at; ++k) {
    const Token& tok = t[kept[k]];
    if (tok.text == "static" || tok.text == "constexpr" || tok.text == "inline") {
      is_static = true;
      continue;
    }
    if (tok.text == "mutable") continue;
    if (tok.text == "const") is_const = true;
    if (tok.text == "&") is_ref = true;
    if (tok.kind == Token::Kind::Ident) {
      if (is_mutex_type_word(tok.text)) m.is_mutex = true;
      if (is_exempt_type_word(tok.text)) m.is_exempt = true;
    }
    if (!m.type.empty() && tok.kind == Token::Kind::Ident &&
        t[kept[k - 1]].kind == Token::Kind::Ident) {
      m.type += ' ';
    }
    m.type += tok.text;
  }
  if (m.name.empty() || m.type.empty()) return;
  if (is_static || is_const || is_ref) m.is_exempt = true;
  cls.members.push_back(std::move(m));
}

void parse_members(const Tokens& t, const ClassSpan& span, ClassModel& cls) {
  std::size_t i = span.body_open + 1;
  std::size_t stmt_begin = i;
  while (i < span.body_close) {
    const Token& tok = t[i];
    if (tok.kind == Token::Kind::Ident &&
        (tok.text == "public" || tok.text == "private" || tok.text == "protected") &&
        i + 1 < span.body_close && t[i + 1].text == ":") {
      i += 2;
      stmt_begin = i;
      continue;
    }
    if (tok.text == ";") {
      classify_member_statement(t, stmt_begin, i, cls);
      ++i;
      stmt_begin = i;
      continue;
    }
    if (tok.text == "{") {
      // Braced group at member depth: either an in-class-initializer (then a
      // ';' follows and the statement is a member) or a function/nested-class
      // body (then the statement is done and is not a member).
      const std::size_t past = match_group(t, i, span.body_close + 1, "{", "}");
      if (past < span.body_close && t[past].text == ";") {
        classify_member_statement(t, stmt_begin, i, cls);
        i = past + 1;
      } else {
        i = past;
      }
      stmt_begin = i;
      continue;
    }
    if (tok.text == "(") {  // skip argument lists wholesale.
      i = match_group(t, i, span.body_close + 1, "(", ")");
      continue;
    }
    if (tok.text == "<") {
      const std::size_t past = try_match_angles(t, i, span.body_close + 1);
      i = past == i ? i + 1 : past;
      continue;
    }
    ++i;
  }
}

// --- function body discovery -------------------------------------------------

struct FunctionSpan {
  std::string name;
  std::string class_name;
  int line = 0;
  std::size_t body_open = 0;     // token index of '{'.
  std::size_t body_close = 0;    // token index of '}'.
  std::size_t params_open = 0;   // token index of the parameter-list '('.
  std::size_t params_close = 0;  // token index of the parameter-list ')'.
};

std::vector<FunctionSpan> find_function_spans(const Tokens& t,
                                              const std::vector<ClassSpan>& classes) {
  std::vector<FunctionSpan> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::Ident) continue;
    if (control_keywords().count(t[i].text)) continue;
    if (is_annotation_macro(t[i].text)) continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;

    const std::size_t after_params = match_group(t, i + 1, t.size(), "(", ")");
    if (after_params >= t.size()) continue;

    // Walk specifiers / trailing return / ctor-init-list up to '{' or a
    // disqualifier.
    std::size_t j = after_params;
    bool body = false;
    bool fail = false;
    while (j < t.size() && !body && !fail) {
      const Token& tok = t[j];
      if (tok.text == "{") {
        body = true;
        break;
      }
      if (tok.text == ";" || tok.text == "=" || tok.text == ",") {
        fail = true;  // declaration, `= default`, or a call in a list.
        break;
      }
      if (tok.kind == Token::Kind::Ident) {
        if (is_annotation_macro(tok.text) && j + 1 < t.size() &&
            t[j + 1].text == "(") {
          j = match_group(t, j + 1, t.size(), "(", ")");
          continue;
        }
        if (tok.text == "const" || tok.text == "noexcept" ||
            tok.text == "override" || tok.text == "final" || tok.text == "try") {
          ++j;
          if (tok.text == "noexcept" && j < t.size() && t[j].text == "(") {
            j = match_group(t, j, t.size(), "(", ")");
          }
          continue;
        }
        fail = true;  // some other identifier: this was a call or a decl.
        break;
      }
      if (tok.text == "->") {  // trailing return type.
        ++j;
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") {
          if (t[j].text == "<") {
            const std::size_t past = try_match_angles(t, j, t.size());
            j = past == j ? j + 1 : past;
          } else {
            ++j;
          }
        }
        continue;
      }
      if (tok.text == ":") {  // constructor initializer list.
        ++j;
        while (j < t.size()) {
          if (t[j].kind == Token::Kind::Ident || t[j].text == "::") {
            ++j;
            if (j < t.size() && t[j].text == "<") {
              const std::size_t past = try_match_angles(t, j, t.size());
              j = past == j ? j + 1 : past;
            }
            continue;
          }
          if (t[j].text == "(") {
            j = match_group(t, j, t.size(), "(", ")");
            continue;
          }
          if (t[j].text == "{") {
            // Brace-init of a member... or the body. A body brace follows a
            // ')' / '}' of the previous initializer or an identifier with no
            // pending initializer; disambiguate by what comes after the group.
            const std::size_t past = match_group(t, j, t.size(), "{", "}");
            if (past < t.size() && t[past].text == ",") {
              j = past;  // member{...}, -- keep walking the init list.
              continue;
            }
            // Heuristic: if the previous token closes an initializer, this
            // brace is the body.
            const std::string& prev = t[j - 1].text;
            if (prev == ")" || prev == "}") {
              body = true;
              break;
            }
            j = past;  // member{...} as the last initializer; body follows.
            continue;
          }
          if (t[j].text == ",") {
            ++j;
            continue;
          }
          break;
        }
        continue;
      }
      fail = true;
    }
    if (!body || j >= t.size()) continue;

    FunctionSpan fn;
    fn.name = t[i].text;
    fn.line = t[i].line;
    fn.params_open = i + 1;
    fn.params_close = after_params - 1;
    fn.body_open = j;
    const std::size_t past = match_group(t, j, t.size(), "{", "}");
    fn.body_close = past - 1;
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == Token::Kind::Ident) {
      fn.class_name = t[i - 2].text;
    } else {
      for (const ClassSpan& c : classes) {
        if (i > c.body_open && i < c.body_close) fn.class_name = c.name;
      }
    }
    out.push_back(std::move(fn));
    // Do not skip the body: nested lambdas/local classes are rare and inner
    // spans are filtered below (an inner "function" inside another body would
    // be a control construct already excluded by keyword).
  }
  return out;
}

// --- lock acquisition & call scan -------------------------------------------

std::string join_tokens(const Tokens& t, std::size_t b, std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e; ++i) out += t[i].text;
  return out;
}

void scan_body(const Tokens& t, FunctionModel& fn) {
  struct Active {
    std::size_t acq_index;
    int depth;
  };
  std::vector<Active> stack;
  int depth = 0;
  for (std::size_t i = fn.body_open + 1; i < fn.body_close; ++i) {
    const Token& tok = t[i];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      --depth;
      while (!stack.empty() && stack.back().depth > depth) stack.pop_back();
      continue;
    }
    if (tok.kind != Token::Kind::Ident) continue;

    const bool is_guard_decl =
        tok.text == "MutexLock" || tok.text == "lock_guard" ||
        tok.text == "unique_lock" || tok.text == "scoped_lock" ||
        tok.text == "shared_lock";
    if (is_guard_decl) {
      std::size_t j = i + 1;
      if (j < fn.body_close && t[j].text == "<") {
        const std::size_t past = try_match_angles(t, j, fn.body_close);
        if (past == j) continue;
        j = past;
      }
      if (j >= fn.body_close || t[j].kind != Token::Kind::Ident) continue;
      ++j;  // the guard variable name.
      if (j >= fn.body_close || t[j].text != "(") continue;
      const std::size_t past = match_group(t, j, fn.body_close, "(", ")");
      // Split the argument list on top-level commas (scoped_lock takes
      // several mutexes; unique_lock may take a tag second).
      std::vector<std::pair<std::size_t, std::size_t>> parts;
      std::size_t part_begin = j + 1;
      int pd = 0;
      for (std::size_t k = j + 1; k + 1 < past; ++k) {
        const std::string& x = t[k].text;
        if (x == "(" || x == "[") ++pd;
        else if (x == ")" || x == "]") --pd;
        else if (x == "," && pd == 0) {
          parts.emplace_back(part_begin, k);
          part_begin = k + 1;
        }
      }
      parts.emplace_back(part_begin, past - 1);
      for (const auto& [pb, pe] : parts) {
        if (pb >= pe) continue;
        const std::string expr = join_tokens(t, pb, pe);
        if (expr == "std::defer_lock" || expr == "std::adopt_lock" ||
            expr == "std::try_to_lock") {
          continue;
        }
        Acquisition acq;
        acq.expr = expr;
        acq.line = tok.line;
        acq.offset = tok.offset;
        acq.top_level = stack.empty();
        for (const Active& a : stack) acq.held.push_back(fn.acquisitions[a.acq_index].expr);
        fn.acquisitions.push_back(std::move(acq));
        stack.push_back(Active{fn.acquisitions.size() - 1, depth});
      }
      i = past - 1;
      continue;
    }

    // Call site while holding a lock.
    if (!stack.empty() && i + 1 < fn.body_close && t[i + 1].text == "(" &&
        !control_keywords().count(tok.text) && !is_annotation_macro(tok.text)) {
      CallSite call;
      call.name = tok.text;
      call.line = tok.line;
      if (i >= 2 && (t[i - 1].text == "." || t[i - 1].text == "->") &&
          t[i - 2].kind == Token::Kind::Ident) {
        call.receiver = t[i - 2].text;
      }
      for (const Active& a : stack) {
        call.held.push_back(fn.acquisitions[a.acq_index].expr);
      }
      fn.locked_calls.push_back(std::move(call));
    }
  }
}

}  // namespace

const ClassModel* FileModel::enclosing_class(std::size_t offset) const {
  const ClassModel* best = nullptr;
  for (const ClassModel& c : classes) {
    if (offset > c.body_begin && offset < c.body_end) {
      if (!best || c.body_begin > best->body_begin) best = &c;
    }
  }
  return best;
}

FileModel build_file_model(const std::string& path, const std::string& scrubbed) {
  FileModel model;
  model.path = path;
  model.scrubbed = scrubbed;
  model.tokens = tokenize(scrubbed);
  const Tokens& t = model.tokens;

  const std::vector<ClassSpan> spans = find_class_spans(t);
  for (const ClassSpan& span : spans) {
    ClassModel cls;
    cls.name = span.name;
    cls.line = span.line;
    cls.body_begin = t[span.body_open].offset + 1;
    cls.body_end = t[span.body_close].offset;
    parse_members(t, span, cls);
    model.classes.push_back(std::move(cls));
  }
  for (const FunctionSpan& span : find_function_spans(t, spans)) {
    FunctionModel fn;
    fn.name = span.name;
    fn.class_name = span.class_name;
    fn.line = span.line;
    fn.body_open = span.body_open;
    fn.body_close = span.body_close;
    fn.params_open = span.params_open;
    fn.params_close = span.params_close;
    fn.body_begin = t[span.body_open].offset + 1;
    fn.body_end = t[span.body_close].offset;
    scan_body(t, fn);
    model.functions.push_back(std::move(fn));
  }
  return model;
}

const ClassModel* SymbolTable::find_class(const std::string& name) const {
  const auto it = classes.find(name);
  if (it == classes.end()) return nullptr;
  for (const ClassModel* c : it->second) {
    if (!c->members.empty()) return c;
  }
  return it->second.empty() ? nullptr : it->second.front();
}

const Member* SymbolTable::find_member(const std::string& cls,
                                       const std::string& member) const {
  const auto it = classes.find(cls);
  if (it == classes.end()) return nullptr;
  for (const ClassModel* c : it->second) {
    if (const Member* m = c->find_member(member)) return m;
  }
  return nullptr;
}

SymbolTable build_symbol_table(const std::vector<FileModel>& models) {
  SymbolTable table;
  for (const FileModel& model : models) {
    for (const ClassModel& c : model.classes) {
      table.classes[c.name].push_back(&c);
    }
    for (const FunctionModel& f : model.functions) {
      table.functions[f.name].push_back(&f);
    }
  }
  return table;
}

}  // namespace xl::lint
