// xl_lint CLI: see lint.hpp for the rule list and suppression syntax.
#include "lint.hpp"

int main(int argc, char** argv) { return xl::lint::run_cli(argc, argv); }
