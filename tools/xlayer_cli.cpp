// xlayer CLI: run any coupled-workflow configuration from a plain-text
// config file and emit the per-step trace as CSV — the entry point a
// downstream user sweeps parameters with, no recompilation needed.
//
//   xlayer_cli run <config-file> [--csv <out.csv>] [--events <out.csv>]
//              [--faults <spec>] [--threads <N>] [--quiet]
//   xlayer_cli print-config                 # dump the default keys
//
// Example config:
//   machine = titan
//   mode = global
//   sim_cores = 2048
//   staging_cores = 128
//   domain = 1024 1024 512
//   steps = 50
//   factors = 2 4
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "runtime/trigger.hpp"
#include "workflow/config_file.hpp"
#include "workflow/energy.hpp"
#include "workflow/trace_io.hpp"

using namespace xl;
using namespace xl::workflow;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  xlayer_cli run <config-file> [--csv <out.csv>]"
               " [--events <out.csv>] [--faults <spec>] [--threads <N>]"
               " [--replication <K>] [--trigger <policy>] [--quiet]\n"
            << "  xlayer_cli print-config\n"
            << "--threads N: per-rank analysis worker threads (0 = serial;"
               " overrides the config's `threads` key and sizes the process"
               " thread pool)\n"
            << "--replication K: staged-object copies (1 = unreplicated;"
               " overrides the config's `replication` key)\n"
            << "--trigger P: sampling-step policy, fixed | percentile | hybrid"
               " (overrides the config's `trigger` key)\n"
            << "fault spec clauses (';'-separated):\n"
            << "  seed=N drop=RATE corrupt=RATE retries=N backoff=SECONDS\n"
            << "  backoff_mult=X timeout=SECONDS lease=STEPS\n"
            << "  crash=STEP[:SERVERS[:DURATION]] straggler=STEP[:SLOW[:DURATION]]\n";
  return 2;
}

void print_default_config() {
  std::cout << "# xlayer workflow configuration (defaults shown)\n"
               "machine = titan            # titan | intrepid | test\n"
               "mode = adaptive            # insitu | intransit | hybrid | adaptive | resource | global\n"
               "analysis = isosurface      # isosurface | statistics | subsetting\n"
               "objective = time           # time | movement | utilization\n"
               "sim_cores = 2048\n"
               "staging_cores = 128\n"
               "threads = 0                # per-rank analysis worker threads (0 = serial)\n"
               "steps = 50\n"
               "ncomp = 1\n"
               "domain = 1024 1024 512\n"
               "max_levels = 3\n"
               "ref_ratio = 2\n"
               "front_radius0 = 0.10\n"
               "front_speed = 0.004\n"
               "front_thickness = 0.015\n"
               "front_decay = 0.85\n"
               "front_decay_onset = 35\n"
               "active_cell_fraction = 0.03\n"
               "staging_usable_fraction = 0.06\n"
               "factors = 2 4\n"
               "sampling_period = 1\n"
               "trigger = fixed            # fixed | percentile | hybrid (data-driven sampling steps)\n"
               "trigger_quantile = 0.9     # trailing quantile the indicator must exceed to fire\n"
               "trigger_window = 16        # trailing window of sampled indicators\n"
               "trigger_sample_rate = 1.0  # probability a step's indicator enters the window\n"
               "trigger_max_interval = 8   # hybrid only: force a fire after this many quiet steps\n"
               "trigger_seed = 1914161381  # seed of the percentile-sampling draws\n"
               "replication = 1            # staged-object copies (k-way durability)\n"
               "# faults = drop=0.05;retries=3;crash=10:64:5;lease=2   # fault injection (off by default)\n"
               "# lease_steps = 2          # heartbeat lease window (0 = oracle-instant detection)\n";
}

int run(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string config_path = argv[2];
  std::string csv_path;
  std::string events_path;
  std::string fault_spec;
  std::string trigger_policy;
  int threads = -1;      // -1 = not given on the command line
  int replication = -1;  // -1 = not given on the command line
  bool quiet = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events_path = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 0) return usage();
    } else if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      replication = std::atoi(argv[++i]);
      if (replication < 1) return usage();
    } else if (std::strcmp(argv[i], "--trigger") == 0 && i + 1 < argc) {
      trigger_policy = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return usage();
    }
  }

  WorkflowConfig config = parse_workflow_config_file(config_path);
  if (!fault_spec.empty()) config.faults = runtime::parse_fault_spec(fault_spec);
  if (threads >= 0) config.threads = threads;
  if (replication >= 1) config.replication = replication;
  if (!trigger_policy.empty()) {
    if (trigger_policy == "fixed")
      config.monitor.trigger.policy = runtime::TriggerPolicy::FixedPeriod;
    else if (trigger_policy == "percentile")
      config.monitor.trigger.policy = runtime::TriggerPolicy::Percentile;
    else if (trigger_policy == "hybrid")
      config.monitor.trigger.policy = runtime::TriggerPolicy::Hybrid;
    else
      return usage();
  }
  // Size the process-wide pool to match, so any real kernels invoked in this
  // process (calibration, validation paths) use the same thread count the
  // cost model assumes.
  ThreadPool::set_global_workers(static_cast<std::size_t>(std::max(0, config.threads)));
  CoupledWorkflow workflow(config);
  EventLog log;
  if (!events_path.empty()) workflow.set_observer(&log);
  const WorkflowResult result = workflow.run();

  if (!csv_path.empty()) write_steps_csv(csv_path, result);
  if (!events_path.empty()) write_events_csv(events_path, log);

  if (!quiet) {
    Table t({"metric", "value"});
    t.row().cell("machine").cell(config.machine.name);
    t.row().cell("mode").cell(mode_name(config.mode));
    t.row().cell("analysis").cell(analysis_kind_name(config.analysis_kind));
    if (config.threads > 1) {
      t.row().cell("analysis threads").cell(std::to_string(config.threads));
    }
    t.row().cell("time-to-solution").cell(format_seconds(result.end_to_end_seconds));
    t.row().cell("simulation time").cell(format_seconds(result.pure_sim_seconds));
    t.row().cell("overhead").cell(format_seconds(result.overhead_seconds));
    t.row().cell("data moved").cell(format_bytes(static_cast<double>(result.bytes_moved)));
    t.row().cell("in-situ / in-transit / skipped")
        .cell(std::to_string(result.insitu_count) + " / " +
              std::to_string(result.intransit_count) + " / " +
              std::to_string(result.skipped_count));
    t.row().cell("staging utilization (eq. 12)")
        .cell(format_percent(result.utilization_efficiency));
    if (config.monitor.trigger.policy != runtime::TriggerPolicy::FixedPeriod) {
      t.row().cell("trigger policy")
          .cell(runtime::trigger_policy_name(config.monitor.trigger.policy));
      t.row().cell("triggers fired / suppressed")
          .cell(std::to_string(result.triggers_fired) + " / " +
                std::to_string(result.steps_suppressed));
    }
    if (config.faults.enabled()) {
      t.row().cell("faults / recoveries")
          .cell(std::to_string(result.faults_injected) + " / " +
                std::to_string(result.recoveries));
      t.row().cell("transfer retries / failures")
          .cell(std::to_string(result.transfer_retries) + " / " +
                std::to_string(result.transfer_failures));
      t.row().cell("degraded in-situ steps")
          .cell(std::to_string(result.degraded_insitu_count));
      t.row().cell("staged bytes dropped")
          .cell(format_bytes(static_cast<double>(result.dropped_bytes)));
      if (config.replication > 1 || config.faults.lease_steps > 0) {
        t.row().cell("suspicions / repairs / read-repairs")
            .cell(std::to_string(result.server_suspicions) + " / " +
                  std::to_string(result.repairs_scheduled) + " / " +
                  std::to_string(result.read_repairs));
        t.row().cell("replica copy traffic")
            .cell(format_bytes(static_cast<double>(result.replicated_bytes +
                                                   result.repair_bytes)));
      }
    }
    const EnergyReport energy = estimate_energy(result, config.sim_cores);
    t.row().cell("energy (MJ)").cell(energy.total_joules() / 1e6, 3);
    std::cout << t.to_string();
    if (!csv_path.empty()) std::cout << "per-step trace -> " << csv_path << "\n";
    if (!events_path.empty()) std::cout << "event stream -> " << events_path << "\n";
  } else {
    std::cout << summarize(result) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "run") return run(argc, argv);
    if (command == "print-config") {
      print_default_config();
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
