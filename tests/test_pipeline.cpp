// Regression tests for the step-pipeline refactor: (a) golden end-to-end
// values captured from the pre-refactor monolithic CoupledWorkflow::run()
// must stay byte-identical for every Mode; (b) the analytic and
// discrete-event execution substrates must agree exactly; (c) the observer
// event stream must be consistent with the returned WorkflowResult.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "workflow/coupled_workflow.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/observer.hpp"
#include "workflow/step_pipeline.hpp"
#include "workflow/trace_io.hpp"

using namespace xl;
using namespace xl::workflow;

namespace {

// Same configuration as test_workflow_modes.cpp's mode_config.
WorkflowConfig golden_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 15;
  c.mode = mode;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.geometry.front_speed = 0.01;
  c.memory_model.ncomp = 1;
  c.hints.factor_phases = {{0, {2, 4}}};
  return c;
}

struct Golden {
  Mode mode;
  double end_to_end_seconds;
  double pure_sim_seconds;
  std::size_t bytes_moved;
  int insitu_count;
  int intransit_count;
  int application_adaptations;
  int resource_adaptations;
  int middleware_adaptations;
};

// Captured from the pre-refactor monolithic run() (commit e05e4ec) with
// printf("%.17g"): full double precision, byte-identical by EXPECT_EQ.
const Golden kGoldens[] = {
    {Mode::StaticInSitu, 0.25408763961540892, 0.22344169410258713, 0, 15, 0, 0, 0, 0},
    {Mode::StaticInTransit, 0.22366879679378548, 0.22344169410258713, 48496640, 0, 15,
     0, 0, 0},
    {Mode::StaticHybrid, 0.22366879679378548, 0.22344169410258713, 48496640, 0, 15, 0,
     0, 0},
    {Mode::AdaptiveMiddleware, 0.2251687967937854, 0.22344169410258713, 48496640, 0,
     15, 0, 0, 15},
    {Mode::AdaptiveResource, 0.22653515180663042, 0.22344169410258713, 48496640, 0, 15,
     0, 15, 0},
    {Mode::Global, 0.22649757331523107, 0.22344169410258713, 6062080, 0, 15, 15, 15,
     15},
};

class PipelineGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(PipelineGolden, MatchesPreRefactorRun) {
  const Golden& g = GetParam();
  const WorkflowResult r = CoupledWorkflow(golden_config(g.mode)).run();
  // Bit-exact, not approximate: the refactor must not change a single
  // floating-point operation's order.
  EXPECT_EQ(r.end_to_end_seconds, g.end_to_end_seconds) << mode_name(g.mode);
  EXPECT_EQ(r.pure_sim_seconds, g.pure_sim_seconds) << mode_name(g.mode);
  EXPECT_EQ(r.bytes_moved, g.bytes_moved) << mode_name(g.mode);
  EXPECT_EQ(r.insitu_count, g.insitu_count) << mode_name(g.mode);
  EXPECT_EQ(r.intransit_count, g.intransit_count) << mode_name(g.mode);
  EXPECT_EQ(r.application_adaptations, g.application_adaptations) << mode_name(g.mode);
  EXPECT_EQ(r.resource_adaptations, g.resource_adaptations) << mode_name(g.mode);
  EXPECT_EQ(r.middleware_adaptations, g.middleware_adaptations) << mode_name(g.mode);
}

TEST_P(PipelineGolden, AnalyticAndDiscreteEventSubstratesAgree) {
  const Golden& g = GetParam();
  CoupledWorkflow analytic_wf(golden_config(g.mode));
  AnalyticSubstrate analytic;
  const WorkflowResult a = analytic_wf.run_on(analytic);

  CoupledWorkflow des_wf(golden_config(g.mode));
  EventQueueSubstrate des;
  const WorkflowResult d = des_wf.run_on(des);

  EXPECT_EQ(a.end_to_end_seconds, d.end_to_end_seconds) << mode_name(g.mode);
  EXPECT_EQ(a.pure_sim_seconds, d.pure_sim_seconds) << mode_name(g.mode);
  EXPECT_EQ(a.overhead_seconds, d.overhead_seconds) << mode_name(g.mode);
  EXPECT_EQ(a.bytes_moved, d.bytes_moved) << mode_name(g.mode);
  EXPECT_EQ(a.insitu_count, d.insitu_count) << mode_name(g.mode);
  EXPECT_EQ(a.intransit_count, d.intransit_count) << mode_name(g.mode);
  EXPECT_EQ(a.utilization_efficiency, d.utilization_efficiency) << mode_name(g.mode);
  ASSERT_EQ(a.steps.size(), d.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].wait_seconds, d.steps[i].wait_seconds) << "step " << i;
    EXPECT_EQ(a.steps[i].window_seconds, d.steps[i].window_seconds) << "step " << i;
    EXPECT_EQ(a.steps[i].moved_bytes, d.steps[i].moved_bytes) << "step " << i;
    EXPECT_EQ(a.steps[i].placement, d.steps[i].placement) << "step " << i;
  }
}

TEST_P(PipelineGolden, EventStreamIsConsistentWithResult) {
  const Golden& g = GetParam();
  CoupledWorkflow wf(golden_config(g.mode));
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult r = wf.run();

  EXPECT_EQ(log.count(EventKind::RunBegin), 1u);
  EXPECT_EQ(log.count(EventKind::RunEnd), 1u);
  EXPECT_EQ(log.count(EventKind::StepBegin), r.steps.size());
  EXPECT_EQ(log.count(EventKind::StepEnd), r.steps.size());

  // Transfer events must account for every byte the result reports moved.
  std::size_t transferred = 0;
  for (const WorkflowEvent& e : log.events()) {
    if (e.kind == EventKind::Transfer) transferred += e.bytes;
  }
  EXPECT_EQ(transferred, r.bytes_moved) << mode_name(g.mode);

  // Adaptive modes emit one Decision per engine sample; static modes none.
  const bool adaptive = g.mode == Mode::AdaptiveMiddleware ||
                        g.mode == Mode::AdaptiveResource || g.mode == Mode::Global;
  if (adaptive) {
    EXPECT_EQ(log.count(EventKind::Decision), static_cast<std::size_t>(r.steps.size()));
  } else {
    EXPECT_EQ(log.count(EventKind::Decision), 0u);
  }

  // The final event carries the end-to-end time, and clocks never run
  // backwards within the simulation partition.
  ASSERT_FALSE(log.events().empty());
  const WorkflowEvent& last = log.events().back();
  EXPECT_EQ(last.kind, EventKind::RunEnd);
  EXPECT_EQ(last.seconds, r.end_to_end_seconds);
  double prev_clock = 0.0;
  for (const WorkflowEvent& e : log.events()) {
    EXPECT_GE(e.sim_clock, prev_clock);
    prev_clock = e.sim_clock;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, PipelineGolden, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = mode_name(info.param.mode);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(StepPipeline, PhaseNamesInExecutionOrder) {
  const WorkflowConfig config = golden_config(Mode::Global);
  AnalyticSubstrate substrate;
  StepPipeline pipeline(config, substrate, nullptr);
  const auto names = pipeline.phase_names();
  ASSERT_EQ(names.size(), 8u);
  const char* expected[] = {"simulate", "monitor",   "adapt",    "reduce",
                            "placement", "transfer", "analyze",  "drain"};
  for (std::size_t i = 0; i < names.size(); ++i) EXPECT_STREQ(names[i], expected[i]);
}

TEST(StepPipeline, RunMatchesRunOnAnalytic) {
  const WorkflowConfig config = golden_config(Mode::Global);
  const WorkflowResult a = CoupledWorkflow(config).run();
  AnalyticSubstrate substrate;
  const WorkflowResult b = CoupledWorkflow(config).run_on(substrate);
  EXPECT_EQ(a.end_to_end_seconds, b.end_to_end_seconds);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
}

TEST(EventsCsv, WritesOneRowPerEvent) {
  CoupledWorkflow wf(golden_config(Mode::Global));
  EventLog log;
  wf.set_observer(&log);
  (void)wf.run();

  std::ostringstream os;
  write_events_csv(os, log);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, log.events().size() + 1);  // header + one row per event
  EXPECT_NE(csv.find("event,step,sim_clock"), std::string::npos);
  EXPECT_NE(csv.find("run-end"), std::string::npos);
  EXPECT_NE(csv.find("decision"), std::string::npos);
}

TEST(EventKindNames, AreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::RunBegin), "run-begin");
  EXPECT_STREQ(event_kind_name(EventKind::StepBegin), "step-begin");
  EXPECT_STREQ(event_kind_name(EventKind::Decision), "decision");
  EXPECT_STREQ(event_kind_name(EventKind::Transfer), "transfer");
  EXPECT_STREQ(event_kind_name(EventKind::Analysis), "analysis");
  EXPECT_STREQ(event_kind_name(EventKind::StepEnd), "step-end");
  EXPECT_STREQ(event_kind_name(EventKind::RunEnd), "run-end");
}

// --- staged-byte ledger ------------------------------------------------------

TEST(StagedLedger, AppendsMonotonicIdsAndFindsLiveBytes) {
  StagedLedger ledger;
  EXPECT_EQ(ledger.append(100), 0u);
  EXPECT_EQ(ledger.append(200), 1u);
  EXPECT_EQ(ledger.append(300), 2u);
  ASSERT_NE(ledger.find(1), nullptr);
  EXPECT_EQ(*ledger.find(1), 200u);
  EXPECT_EQ(ledger.find(99), nullptr);  // never issued
  EXPECT_EQ(ledger.live_span(), 3u);
}

TEST(StagedLedger, ZeroBytesIsLiveUntilReleased) {
  // A fully shed buffer keeps a 0-byte LIVE entry until its release event
  // fires — 0 is a value, not a tombstone.
  StagedLedger ledger;
  const std::uint64_t id = ledger.append(512);
  *ledger.find(id) = 0;  // what a full shed does
  ASSERT_NE(ledger.find(id), nullptr);
  EXPECT_EQ(*ledger.find(id), 0u);
  ledger.release(id);
  EXPECT_EQ(ledger.find(id), nullptr);
  ledger.release(id);  // double release is a no-op
  EXPECT_EQ(ledger.find(id), nullptr);
}

TEST(StagedLedger, ForEachLiveVisitsAscendingIdsSkippingReleased) {
  StagedLedger ledger;
  for (std::size_t i = 0; i < 6; ++i) ledger.append(10 * (i + 1));
  ledger.release(1);
  ledger.release(4);
  std::vector<std::uint64_t> ids;
  std::vector<std::size_t> bytes;
  ledger.for_each_live([&](std::uint64_t id, std::size_t& b) {
    ids.push_back(id);
    bytes.push_back(b);
  });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 2, 3, 5}));
  EXPECT_EQ(bytes, (std::vector<std::size_t>{10, 30, 40, 60}));
}

TEST(StagedLedger, CompactionPreservesIdsAndFifoOrder) {
  StagedLedger ledger;
  constexpr std::size_t kN = 150;
  for (std::size_t i = 0; i < kN; ++i) ledger.append(i + 1);
  // Release a long prefix in FIFO order: the dead window dominates and the
  // ledger compacts. Ids and bytes of the survivors must be untouched.
  for (std::size_t i = 0; i < 100; ++i) ledger.release(i);
  EXPECT_EQ(ledger.live_span(), kN - 100);
  for (std::uint64_t id = 100; id < kN; ++id) {
    ASSERT_NE(ledger.find(id), nullptr) << "id " << id;
    EXPECT_EQ(*ledger.find(id), id + 1) << "id " << id;
  }
  EXPECT_EQ(ledger.find(99), nullptr);
  // Ids keep counting monotonically across compaction.
  EXPECT_EQ(ledger.append(9999), kN);
}

TEST(StagedLedger, FullDrainResetsWindowButNeverReissuesIds) {
  StagedLedger ledger;
  const std::uint64_t a = ledger.append(1);
  const std::uint64_t b = ledger.append(2);
  ledger.release(a);
  ledger.release(b);
  EXPECT_EQ(ledger.live_span(), 0u);
  const std::uint64_t c = ledger.append(3);
  EXPECT_EQ(c, 2u);  // monotonic: ids never repeat after a drain
  EXPECT_EQ(ledger.find(a), nullptr);
  EXPECT_EQ(*ledger.find(c), 3u);
}

// --- observer batching -------------------------------------------------------

namespace batching {

/// Sees only the per-event callback (never overrides on_events): the default
/// unbatching must hand it the classic one-at-a-time sequence.
struct PerEventLog final : WorkflowObserver {
  std::vector<WorkflowEvent> events;
  void on_event(const WorkflowEvent& e) override { events.push_back(e); }
};

/// Consumes whole batches and records their boundaries.
struct BatchLog final : WorkflowObserver {
  std::vector<WorkflowEvent> events;
  std::vector<std::size_t> batch_sizes;
  void on_event(const WorkflowEvent& e) override { events.push_back(e); }
  void on_events(std::span<const WorkflowEvent> es) override {
    batch_sizes.push_back(es.size());
    events.insert(events.end(), es.begin(), es.end());
  }
};

void expect_same_events(const std::vector<WorkflowEvent>& a,
                        const std::vector<WorkflowEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].step, b[i].step) << "event " << i;
    EXPECT_EQ(a[i].sim_clock, b[i].sim_clock) << "event " << i;
    EXPECT_EQ(a[i].staging_clock, b[i].staging_clock) << "event " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "event " << i;
    EXPECT_EQ(a[i].seconds, b[i].seconds) << "event " << i;
    EXPECT_EQ(a[i].pool_hits, b[i].pool_hits) << "event " << i;
    EXPECT_EQ(a[i].pool_misses, b[i].pool_misses) << "event " << i;
  }
}

}  // namespace batching

TEST(ObserverBatching, BatchedAndPerEventDeliveryCarryIdenticalSequences) {
  // Batch delivery is a granularity change, never a content or order change:
  // an observer that only implements on_event sees the same records, in the
  // same order, with the same clock stamps as a batch consumer.
  const WorkflowConfig config = golden_config(Mode::Global);
  batching::PerEventLog per_event;
  {
    CoupledWorkflow wf(config);
    wf.set_observer(&per_event);
    (void)wf.run();
  }
  batching::BatchLog batched;
  {
    CoupledWorkflow wf(config);
    wf.set_observer(&batched);
    (void)wf.run();
  }
  batching::expect_same_events(per_event.events, batched.events);
  // The pipeline flushes once per step (plus the run-begin and run-end
  // flushes), not once per event: batches genuinely batch.
  EXPECT_GE(batched.batch_sizes.size(), 2u);
  std::size_t total = 0;
  bool any_multi = false;
  for (std::size_t n : batched.batch_sizes) {
    total += n;
    any_multi = any_multi || n > 1;
  }
  EXPECT_EQ(total, batched.events.size());
  EXPECT_TRUE(any_multi) << "every batch was a single event - batching is off";
  EXPECT_LT(batched.batch_sizes.size(), batched.events.size());
}

TEST(ObserverBatching, EventLogMatchesPerEventObserver) {
  // EventLog consumes batches wholesale; its contents must equal the
  // per-event view and serialize to the identical CSV.
  const WorkflowConfig config = golden_config(Mode::AdaptiveMiddleware);
  batching::PerEventLog per_event;
  {
    CoupledWorkflow wf(config);
    wf.set_observer(&per_event);
    (void)wf.run();
  }
  EventLog log;
  {
    CoupledWorkflow wf(config);
    wf.set_observer(&log);
    (void)wf.run();
  }
  batching::expect_same_events(per_event.events, log.events());
}

// --- substrate agreement at scale -------------------------------------------

TEST(SubstrateAgreement, HoldsAtLargeStepCounts) {
  // 200 steps pushes the DES substrate through hundreds of schedule/release
  // cycles and multiple ledger compactions; the analytic and event-queue
  // timelines must still serialize byte-identically.
  for (Mode mode : {Mode::StaticInTransit, Mode::Global}) {
    WorkflowConfig config = golden_config(mode);
    config.steps = 200;
    auto csv_of = [&](ExecutionSubstrate& substrate) {
      CoupledWorkflow wf(config);
      EventLog log;
      wf.set_observer(&log);
      (void)wf.run_on(substrate);
      std::ostringstream os;
      write_events_csv(os, log);
      return os.str();
    };
    AnalyticSubstrate analytic;
    EventQueueSubstrate des;
    const std::string a = csv_of(analytic);
    const std::string d = csv_of(des);
    EXPECT_EQ(a, d) << mode_name(mode);
  }
}

}  // namespace
