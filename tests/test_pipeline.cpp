// Regression tests for the step-pipeline refactor: (a) golden end-to-end
// values captured from the pre-refactor monolithic CoupledWorkflow::run()
// must stay byte-identical for every Mode; (b) the analytic and
// discrete-event execution substrates must agree exactly; (c) the observer
// event stream must be consistent with the returned WorkflowResult.
#include <gtest/gtest.h>

#include <sstream>

#include "workflow/coupled_workflow.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/observer.hpp"
#include "workflow/step_pipeline.hpp"
#include "workflow/trace_io.hpp"

using namespace xl;
using namespace xl::workflow;

namespace {

// Same configuration as test_workflow_modes.cpp's mode_config.
WorkflowConfig golden_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 15;
  c.mode = mode;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.geometry.front_speed = 0.01;
  c.memory_model.ncomp = 1;
  c.hints.factor_phases = {{0, {2, 4}}};
  return c;
}

struct Golden {
  Mode mode;
  double end_to_end_seconds;
  double pure_sim_seconds;
  std::size_t bytes_moved;
  int insitu_count;
  int intransit_count;
  int application_adaptations;
  int resource_adaptations;
  int middleware_adaptations;
};

// Captured from the pre-refactor monolithic run() (commit e05e4ec) with
// printf("%.17g"): full double precision, byte-identical by EXPECT_EQ.
const Golden kGoldens[] = {
    {Mode::StaticInSitu, 0.25408763961540892, 0.22344169410258713, 0, 15, 0, 0, 0, 0},
    {Mode::StaticInTransit, 0.22366879679378548, 0.22344169410258713, 48496640, 0, 15,
     0, 0, 0},
    {Mode::StaticHybrid, 0.22366879679378548, 0.22344169410258713, 48496640, 0, 15, 0,
     0, 0},
    {Mode::AdaptiveMiddleware, 0.2251687967937854, 0.22344169410258713, 48496640, 0,
     15, 0, 0, 15},
    {Mode::AdaptiveResource, 0.22653515180663042, 0.22344169410258713, 48496640, 0, 15,
     0, 15, 0},
    {Mode::Global, 0.22649757331523107, 0.22344169410258713, 6062080, 0, 15, 15, 15,
     15},
};

class PipelineGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(PipelineGolden, MatchesPreRefactorRun) {
  const Golden& g = GetParam();
  const WorkflowResult r = CoupledWorkflow(golden_config(g.mode)).run();
  // Bit-exact, not approximate: the refactor must not change a single
  // floating-point operation's order.
  EXPECT_EQ(r.end_to_end_seconds, g.end_to_end_seconds) << mode_name(g.mode);
  EXPECT_EQ(r.pure_sim_seconds, g.pure_sim_seconds) << mode_name(g.mode);
  EXPECT_EQ(r.bytes_moved, g.bytes_moved) << mode_name(g.mode);
  EXPECT_EQ(r.insitu_count, g.insitu_count) << mode_name(g.mode);
  EXPECT_EQ(r.intransit_count, g.intransit_count) << mode_name(g.mode);
  EXPECT_EQ(r.application_adaptations, g.application_adaptations) << mode_name(g.mode);
  EXPECT_EQ(r.resource_adaptations, g.resource_adaptations) << mode_name(g.mode);
  EXPECT_EQ(r.middleware_adaptations, g.middleware_adaptations) << mode_name(g.mode);
}

TEST_P(PipelineGolden, AnalyticAndDiscreteEventSubstratesAgree) {
  const Golden& g = GetParam();
  CoupledWorkflow analytic_wf(golden_config(g.mode));
  AnalyticSubstrate analytic;
  const WorkflowResult a = analytic_wf.run_on(analytic);

  CoupledWorkflow des_wf(golden_config(g.mode));
  EventQueueSubstrate des;
  const WorkflowResult d = des_wf.run_on(des);

  EXPECT_EQ(a.end_to_end_seconds, d.end_to_end_seconds) << mode_name(g.mode);
  EXPECT_EQ(a.pure_sim_seconds, d.pure_sim_seconds) << mode_name(g.mode);
  EXPECT_EQ(a.overhead_seconds, d.overhead_seconds) << mode_name(g.mode);
  EXPECT_EQ(a.bytes_moved, d.bytes_moved) << mode_name(g.mode);
  EXPECT_EQ(a.insitu_count, d.insitu_count) << mode_name(g.mode);
  EXPECT_EQ(a.intransit_count, d.intransit_count) << mode_name(g.mode);
  EXPECT_EQ(a.utilization_efficiency, d.utilization_efficiency) << mode_name(g.mode);
  ASSERT_EQ(a.steps.size(), d.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].wait_seconds, d.steps[i].wait_seconds) << "step " << i;
    EXPECT_EQ(a.steps[i].window_seconds, d.steps[i].window_seconds) << "step " << i;
    EXPECT_EQ(a.steps[i].moved_bytes, d.steps[i].moved_bytes) << "step " << i;
    EXPECT_EQ(a.steps[i].placement, d.steps[i].placement) << "step " << i;
  }
}

TEST_P(PipelineGolden, EventStreamIsConsistentWithResult) {
  const Golden& g = GetParam();
  CoupledWorkflow wf(golden_config(g.mode));
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult r = wf.run();

  EXPECT_EQ(log.count(EventKind::RunBegin), 1u);
  EXPECT_EQ(log.count(EventKind::RunEnd), 1u);
  EXPECT_EQ(log.count(EventKind::StepBegin), r.steps.size());
  EXPECT_EQ(log.count(EventKind::StepEnd), r.steps.size());

  // Transfer events must account for every byte the result reports moved.
  std::size_t transferred = 0;
  for (const WorkflowEvent& e : log.events()) {
    if (e.kind == EventKind::Transfer) transferred += e.bytes;
  }
  EXPECT_EQ(transferred, r.bytes_moved) << mode_name(g.mode);

  // Adaptive modes emit one Decision per engine sample; static modes none.
  const bool adaptive = g.mode == Mode::AdaptiveMiddleware ||
                        g.mode == Mode::AdaptiveResource || g.mode == Mode::Global;
  if (adaptive) {
    EXPECT_EQ(log.count(EventKind::Decision), static_cast<std::size_t>(r.steps.size()));
  } else {
    EXPECT_EQ(log.count(EventKind::Decision), 0u);
  }

  // The final event carries the end-to-end time, and clocks never run
  // backwards within the simulation partition.
  ASSERT_FALSE(log.events().empty());
  const WorkflowEvent& last = log.events().back();
  EXPECT_EQ(last.kind, EventKind::RunEnd);
  EXPECT_EQ(last.seconds, r.end_to_end_seconds);
  double prev_clock = 0.0;
  for (const WorkflowEvent& e : log.events()) {
    EXPECT_GE(e.sim_clock, prev_clock);
    prev_clock = e.sim_clock;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, PipelineGolden, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = mode_name(info.param.mode);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(StepPipeline, PhaseNamesInExecutionOrder) {
  const WorkflowConfig config = golden_config(Mode::Global);
  AnalyticSubstrate substrate;
  StepPipeline pipeline(config, substrate, nullptr);
  const auto names = pipeline.phase_names();
  ASSERT_EQ(names.size(), 8u);
  const char* expected[] = {"simulate", "monitor",   "adapt",    "reduce",
                            "placement", "transfer", "analyze",  "drain"};
  for (std::size_t i = 0; i < names.size(); ++i) EXPECT_STREQ(names[i], expected[i]);
}

TEST(StepPipeline, RunMatchesRunOnAnalytic) {
  const WorkflowConfig config = golden_config(Mode::Global);
  const WorkflowResult a = CoupledWorkflow(config).run();
  AnalyticSubstrate substrate;
  const WorkflowResult b = CoupledWorkflow(config).run_on(substrate);
  EXPECT_EQ(a.end_to_end_seconds, b.end_to_end_seconds);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
}

TEST(EventsCsv, WritesOneRowPerEvent) {
  CoupledWorkflow wf(golden_config(Mode::Global));
  EventLog log;
  wf.set_observer(&log);
  (void)wf.run();

  std::ostringstream os;
  write_events_csv(os, log);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, log.events().size() + 1);  // header + one row per event
  EXPECT_NE(csv.find("event,step,sim_clock"), std::string::npos);
  EXPECT_NE(csv.find("run-end"), std::string::npos);
  EXPECT_NE(csv.find("decision"), std::string::npos);
}

TEST(EventKindNames, AreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::RunBegin), "run-begin");
  EXPECT_STREQ(event_kind_name(EventKind::StepBegin), "step-begin");
  EXPECT_STREQ(event_kind_name(EventKind::Decision), "decision");
  EXPECT_STREQ(event_kind_name(EventKind::Transfer), "transfer");
  EXPECT_STREQ(event_kind_name(EventKind::Analysis), "analysis");
  EXPECT_STREQ(event_kind_name(EventKind::StepEnd), "step-end");
  EXPECT_STREQ(event_kind_name(EventKind::RunEnd), "run-end");
}

}  // namespace
