// Tests for the root-leaf cross-layer planner (§4.4): the paper's two worked
// examples, plan-order ablation variants, and generic mechanism graphs.
#include <gtest/gtest.h>

#include "runtime/crosslayer.hpp"

namespace xl::runtime {
namespace {

TEST(CrossLayerPlanner, TimeToSolutionMatchesPaperWalkthrough) {
  // §4.4: middleware is the root; application and resource are leaves;
  // application runs first because its output S_data feeds the resource
  // layer; middleware runs last.
  const CrossLayerPlanner planner = CrossLayerPlanner::standard();
  const auto plan = planner.plan(Objective::MinimizeTimeToSolution);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], Layer::Application);
  EXPECT_EQ(plan[1], Layer::Resource);
  EXPECT_EQ(plan[2], Layer::Middleware);
}

TEST(CrossLayerPlanner, UtilizationObjectiveExcludesMiddleware) {
  // §4.4: "the middleware adaptation will not be included since it has no
  // data dependency with the root mechanism."
  const CrossLayerPlanner planner = CrossLayerPlanner::standard();
  const auto plan = planner.plan(Objective::MaximizeResourceUtilization);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], Layer::Application);
  EXPECT_EQ(plan[1], Layer::Resource);
}

TEST(CrossLayerPlanner, DataMovementObjectiveIsApplicationOnly) {
  const CrossLayerPlanner planner = CrossLayerPlanner::standard();
  const auto plan = planner.plan(Objective::MinimizeDataMovement);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], Layer::Application);
}

TEST(CrossLayerPlanner, RootsThenLeavesReversesOrder) {
  const CrossLayerPlanner planner = CrossLayerPlanner::standard();
  const auto plan =
      planner.plan(Objective::MinimizeTimeToSolution, PlanOrder::RootsThenLeaves);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], Layer::Middleware);
  EXPECT_EQ(plan[2], Layer::Application);
}

TEST(CrossLayerPlanner, UnorderedUsesRegistryOrder) {
  const CrossLayerPlanner planner = CrossLayerPlanner::standard();
  const auto plan =
      planner.plan(Objective::MinimizeTimeToSolution, PlanOrder::Unordered);
  ASSERT_EQ(plan.size(), 3u);
  // Registry order: Application, Middleware, Resource.
  EXPECT_EQ(plan[0], Layer::Application);
  EXPECT_EQ(plan[1], Layer::Middleware);
  EXPECT_EQ(plan[2], Layer::Resource);
}

TEST(CrossLayerPlanner, CustomMechanismGraphChainsDependencies) {
  // A -> produces DataSize; B consumes DataSize, produces IntransitCores;
  // C (root) consumes IntransitCores only. Plan: A, B, C.
  std::vector<MechanismInfo> mechanisms;
  mechanisms.push_back({Layer::Resource, "C",
                        {Objective::MinimizeTimeToSolution},
                        {Quantity::IntransitCores},
                        {}});
  mechanisms.push_back({Layer::Middleware, "B",
                        {},
                        {Quantity::DataSize},
                        {Quantity::IntransitCores}});
  mechanisms.push_back({Layer::Application, "A", {}, {}, {Quantity::DataSize}});
  const CrossLayerPlanner planner{std::move(mechanisms)};
  const auto plan = planner.plan(Objective::MinimizeTimeToSolution);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], Layer::Application);
  EXPECT_EQ(plan[1], Layer::Middleware);
  EXPECT_EQ(plan[2], Layer::Resource);
}

TEST(CrossLayerPlanner, UnreachableMechanismsExcluded) {
  std::vector<MechanismInfo> mechanisms;
  mechanisms.push_back({Layer::Middleware, "root",
                        {Objective::MinimizeTimeToSolution},
                        {},
                        {}});
  mechanisms.push_back({Layer::Application, "island", {}, {}, {Quantity::DataSize}});
  const CrossLayerPlanner planner{std::move(mechanisms)};
  const auto plan = planner.plan(Objective::MinimizeTimeToSolution);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], Layer::Middleware);
}

TEST(CrossLayerPlanner, NoRootMeansEmptyPlan) {
  std::vector<MechanismInfo> mechanisms;
  mechanisms.push_back({Layer::Application, "A", {}, {}, {Quantity::DataSize}});
  const CrossLayerPlanner planner{std::move(mechanisms)};
  EXPECT_TRUE(planner.plan(Objective::MinimizeTimeToSolution).empty());
}

TEST(CrossLayerPlanner, CycleDetected) {
  std::vector<MechanismInfo> mechanisms;
  mechanisms.push_back({Layer::Application, "A",
                        {Objective::MinimizeTimeToSolution},
                        {Quantity::IntransitCores},
                        {Quantity::DataSize}});
  mechanisms.push_back({Layer::Resource, "B",
                        {Objective::MinimizeTimeToSolution},
                        {Quantity::DataSize},
                        {Quantity::IntransitCores}});
  const CrossLayerPlanner planner{std::move(mechanisms)};
  EXPECT_THROW(planner.plan(Objective::MinimizeTimeToSolution), InternalError);
}

TEST(CrossLayerPlanner, RejectsEmptyRegistry) {
  EXPECT_THROW(CrossLayerPlanner({}), ContractError);
}

TEST(CrossLayerPlanner, Names) {
  EXPECT_STREQ(layer_name(Layer::Application), "application");
  EXPECT_STREQ(layer_name(Layer::Middleware), "middleware");
  EXPECT_STREQ(layer_name(Layer::Resource), "resource");
  EXPECT_STREQ(objective_name(Objective::MinimizeTimeToSolution),
               "minimize-time-to-solution");
  EXPECT_STREQ(placement_name(Placement::InTransit), "in-transit");
}

}  // namespace
}  // namespace xl::runtime
