// Determinism contract of the threaded kernels (see common/thread_pool.hpp):
// every kernel that runs on the shared pool must produce BIT-IDENTICAL output
// for any worker count, because the adaptation experiments compare traces and
// goldens across machines and thread settings. Each test runs a kernel
// serially and at several awkward worker counts (2, 3, 5 — never dividing the
// range evenly) and compares raw bytes.
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "amr/advection_diffusion.hpp"
#include "amr/amr_simulation.hpp"
#include "amr/polytropic_gas.hpp"
#include "amr/tagging.hpp"
#include "analysis/compress.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "common/thread_pool.hpp"
#include "viz/amr_isosurface.hpp"
#include "viz/marching_cubes.hpp"

namespace xl {
namespace {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

/// Restores the global pool to serial even when a test fails mid-way.
struct GlobalWorkersGuard {
  ~GlobalWorkersGuard() { ThreadPool::set_global_workers(0); }
};

const std::vector<std::size_t> kWorkerCounts = {0, 2, 3, 5};

/// Runs `make` once per worker count and checks every result's bytes against
/// the serial run via `as_bytes`.
template <typename T>
void expect_invariant_under_threading(
    const std::function<T()>& make,
    const std::function<std::vector<std::uint8_t>(const T&)>& as_bytes) {
  GlobalWorkersGuard guard;
  ThreadPool::set_global_workers(kWorkerCounts[0]);
  const T serial = make();
  const std::vector<std::uint8_t> want = as_bytes(serial);
  for (std::size_t i = 1; i < kWorkerCounts.size(); ++i) {
    ThreadPool::set_global_workers(kWorkerCounts[i]);
    const T threaded = make();
    EXPECT_EQ(as_bytes(threaded), want)
        << "output changed with " << kWorkerCounts[i] << " workers";
  }
}

std::vector<std::uint8_t> fab_bytes(const Fab& fab) {
  const std::span<const double> flat = fab.flat();
  std::vector<std::uint8_t> bytes(flat.size_bytes());
  std::memcpy(bytes.data(), flat.data(), flat.size_bytes());
  return bytes;
}

Fab wavy_field(int n, int ncomp = 1) {
  Fab fab(Box::domain({n, n, n}), ncomp);
  for (int c = 0; c < ncomp; ++c) {
    for (BoxIterator it(fab.box()); it.ok(); ++it) {
      const auto& p = *it;
      fab(p, c) = std::sin(0.3 * p[0] + c) * std::cos(0.2 * p[1]) +
                  0.05 * p[2] + 1e-3 * c;
    }
  }
  return fab;
}

TEST(ParallelKernels, BlockEntropyIsThreadCountInvariant) {
  const Fab field = wavy_field(19);  // odd size: uneven slabs
  expect_invariant_under_threading<double>(
      [&] { return analysis::block_entropy(field, field.box()); },
      [](const double& e) {
        std::vector<std::uint8_t> bytes(sizeof(double));
        std::memcpy(bytes.data(), &e, sizeof(double));
        return bytes;
      });
}

TEST(ParallelKernels, EntropyPlanIsThreadCountInvariant) {
  const Fab field = wavy_field(24);
  expect_invariant_under_threading<std::vector<analysis::BlockDecision>>(
      [&] {
        return analysis::entropy_downsample_plan(field, 8, {2.0, 4.0}, {4, 2, 1});
      },
      [](const std::vector<analysis::BlockDecision>& plan) {
        std::vector<std::uint8_t> bytes;
        for (const analysis::BlockDecision& d : plan) {
          const auto* p = reinterpret_cast<const std::uint8_t*>(&d.entropy);
          bytes.insert(bytes.end(), p, p + sizeof(double));
          bytes.push_back(static_cast<std::uint8_t>(d.factor));
          for (int dim = 0; dim < mesh::kDim; ++dim) {
            bytes.push_back(static_cast<std::uint8_t>(d.block.lo()[dim] & 0xff));
            bytes.push_back(static_cast<std::uint8_t>(d.block.hi()[dim] & 0xff));
          }
        }
        return bytes;
      });
}

TEST(ParallelKernels, DownsampleIsThreadCountInvariant) {
  const Fab field = wavy_field(21, 2);
  for (const auto method :
       {analysis::DownsampleMethod::Stride, analysis::DownsampleMethod::Average}) {
    expect_invariant_under_threading<Fab>(
        [&] { return analysis::downsample(field, 2, method); }, fab_bytes);
  }
}

TEST(ParallelKernels, CompressedStreamIsThreadCountInvariant) {
  const Fab field = wavy_field(17);
  analysis::CompressConfig cfg;
  expect_invariant_under_threading<analysis::CompressedField>(
      [&] { return analysis::compress(field, cfg); },
      [](const analysis::CompressedField& c) { return c.payload; });
  // Round trip decodes identically at any worker count, too.
  const analysis::CompressedField stream = analysis::compress(field, cfg);
  expect_invariant_under_threading<Fab>(
      [&] { return analysis::decompress(stream); }, fab_bytes);
}

TEST(ParallelKernels, MarchingCubesIsThreadCountInvariant) {
  const Fab field = wavy_field(23);
  const Box cells(field.box().lo(), field.box().hi() - 1);
  expect_invariant_under_threading<viz::TriangleMesh>(
      [&] { return viz::extract_isosurface(field, cells, 0.5); },
      [](const viz::TriangleMesh& mesh) {
        std::vector<std::uint8_t> bytes(mesh.vertices.size() * sizeof(viz::Vec3));
        std::memcpy(bytes.data(), mesh.vertices.data(), bytes.size());
        return bytes;
      });
  GlobalWorkersGuard guard;
  ThreadPool::set_global_workers(0);
  const std::size_t serial_active = viz::count_active_cells(field, cells, 0.5);
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool::set_global_workers(workers);
    EXPECT_EQ(viz::count_active_cells(field, cells, 0.5), serial_active);
  }
}

amr::AmrConfig shock_config() {
  amr::AmrConfig cfg;
  cfg.base_domain = Box::domain({16, 16, 16});
  cfg.max_levels = 2;
  cfg.ref_ratio = 2;
  cfg.max_box_size = 8;
  cfg.blocking_factor = 4;
  cfg.nghost = 2;
  cfg.nranks = 2;
  cfg.fill_ratio = 0.7;
  return cfg;
}

std::vector<std::uint8_t> hierarchy_bytes(const amr::AmrHierarchy& h) {
  std::vector<std::uint8_t> bytes;
  for (std::size_t lev = 0; lev < h.num_levels(); ++lev) {
    const amr::AmrLevel& level = h.level(lev);
    for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
      const std::vector<std::uint8_t> fb = fab_bytes(level.data[i]);
      bytes.insert(bytes.end(), fb.begin(), fb.end());
    }
  }
  return bytes;
}

TEST(ParallelKernels, AmrAdvanceIsThreadCountInvariant) {
  amr::TagCriterion crit;
  crit.comp = amr::PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  expect_invariant_under_threading<std::vector<std::uint8_t>>(
      [&]() -> std::vector<std::uint8_t> {
        amr::AmrSimulation sim(shock_config(),
                               std::make_shared<amr::PolytropicGas>(), crit, 0.3,
                               /*regrid_interval=*/2);
        sim.initialize();
        for (int s = 0; s < 3; ++s) sim.advance();
        return hierarchy_bytes(sim.hierarchy());
      },
      [](const std::vector<std::uint8_t>& b) { return b; });
}

TEST(ParallelKernels, TaggingIsThreadCountInvariant) {
  amr::AmrSimulation sim(shock_config(), std::make_shared<amr::PolytropicGas>(),
                         {}, 0.3);
  sim.initialize();
  amr::TagCriterion crit;
  crit.comp = amr::PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  expect_invariant_under_threading<std::vector<mesh::IntVect>>(
      [&] { return amr::tag_cells(sim.hierarchy().level(0), crit); },
      [](const std::vector<mesh::IntVect>& tags) {
        // Tag ORDER matters: Berger-Rigoutsos consumes the list as-is.
        std::vector<std::uint8_t> bytes(tags.size() * sizeof(mesh::IntVect));
        std::memcpy(bytes.data(), tags.data(), bytes.size());
        return bytes;
      });
}

TEST(ParallelKernels, AmrIsosurfaceIsThreadCountInvariant) {
  amr::TagCriterion crit;
  crit.comp = amr::PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  amr::AmrSimulation sim(shock_config(), std::make_shared<amr::PolytropicGas>(),
                         crit, 0.3);
  sim.initialize();
  const double dx0 = 1.0 / 16.0;
  expect_invariant_under_threading<viz::TriangleMesh>(
      [&] {
        return viz::extract_amr_isosurface(sim.hierarchy(), 0.6,
                                           amr::PolytropicGas::kRho, dx0);
      },
      [](const viz::TriangleMesh& mesh) {
        std::vector<std::uint8_t> bytes(mesh.vertices.size() * sizeof(viz::Vec3));
        std::memcpy(bytes.data(), mesh.vertices.data(), bytes.size());
        return bytes;
      });
  // The per-level statistics are integer sums: also invariant.
  GlobalWorkersGuard guard;
  ThreadPool::set_global_workers(0);
  viz::IsosurfaceStats serial_stats;
  viz::extract_amr_isosurface(sim.hierarchy(), 0.6, amr::PolytropicGas::kRho, dx0,
                              &serial_stats);
  ThreadPool::set_global_workers(3);
  viz::IsosurfaceStats threaded_stats;
  viz::extract_amr_isosurface(sim.hierarchy(), 0.6, amr::PolytropicGas::kRho, dx0,
                              &threaded_stats);
  EXPECT_EQ(threaded_stats.cells_scanned, serial_stats.cells_scanned);
  EXPECT_EQ(threaded_stats.active_cells, serial_stats.active_cells);
  EXPECT_EQ(threaded_stats.triangles, serial_stats.triangles);
}

TEST(ParallelKernels, EntropyIgnoresNaNCells) {
  Fab field = wavy_field(8);
  field({1, 1, 1}, 0) = std::nan("");
  const double with_nan = analysis::block_entropy(field, field.box());
  EXPECT_TRUE(std::isfinite(with_nan));
  // An all-NaN block histograms nothing and reports zero entropy.
  Fab poisoned(Box::domain({4, 4, 4}), 1);
  for (BoxIterator it(poisoned.box()); it.ok(); ++it) poisoned(*it) = std::nan("");
  EXPECT_EQ(analysis::block_entropy(poisoned, poisoned.box()), 0.0);
}

}  // namespace
}  // namespace xl
