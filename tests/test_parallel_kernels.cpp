// Determinism contract of the threaded kernels (see common/thread_pool.hpp):
// every kernel that runs on the shared pool must produce BIT-IDENTICAL output
// for any worker count, because the adaptation experiments compare traces and
// goldens across machines and thread settings. Each test runs a kernel
// serially and at several awkward worker counts (2, 3, 5 — never dividing the
// range evenly) and compares raw bytes.
#include <cstdint>
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "amr/advection_diffusion.hpp"
#include "amr/amr_simulation.hpp"
#include "amr/polytropic_gas.hpp"
#include "amr/tagging.hpp"
#include "analysis/compress.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "common/thread_pool.hpp"
#include "viz/amr_isosurface.hpp"
#include "viz/marching_cubes.hpp"

namespace xl {
namespace {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

/// Restores the global pool to serial even when a test fails mid-way.
struct GlobalWorkersGuard {
  ~GlobalWorkersGuard() { ThreadPool::set_global_workers(0); }
};

const std::vector<std::size_t> kWorkerCounts = {0, 2, 3, 5};

/// Runs `make` once per worker count and checks every result's bytes against
/// the serial run via `as_bytes`.
template <typename T>
void expect_invariant_under_threading(
    const std::function<T()>& make,
    const std::function<std::vector<std::uint8_t>(const T&)>& as_bytes) {
  GlobalWorkersGuard guard;
  ThreadPool::set_global_workers(kWorkerCounts[0]);
  const T serial = make();
  const std::vector<std::uint8_t> want = as_bytes(serial);
  for (std::size_t i = 1; i < kWorkerCounts.size(); ++i) {
    ThreadPool::set_global_workers(kWorkerCounts[i]);
    const T threaded = make();
    EXPECT_EQ(as_bytes(threaded), want)
        << "output changed with " << kWorkerCounts[i] << " workers";
  }
}

std::vector<std::uint8_t> fab_bytes(const Fab& fab) {
  const std::span<const double> flat = fab.flat();
  std::vector<std::uint8_t> bytes(flat.size_bytes());
  std::memcpy(bytes.data(), flat.data(), flat.size_bytes());
  return bytes;
}

Fab wavy_field(int n, int ncomp = 1) {
  Fab fab(Box::domain({n, n, n}), ncomp);
  for (int c = 0; c < ncomp; ++c) {
    for (BoxIterator it(fab.box()); it.ok(); ++it) {
      const auto& p = *it;
      fab(p, c) = std::sin(0.3 * p[0] + c) * std::cos(0.2 * p[1]) +
                  0.05 * p[2] + 1e-3 * c;
    }
  }
  return fab;
}

TEST(ParallelKernels, BlockEntropyIsThreadCountInvariant) {
  const Fab field = wavy_field(19);  // odd size: uneven slabs
  expect_invariant_under_threading<double>(
      [&] { return analysis::block_entropy(field, field.box()); },
      [](const double& e) {
        std::vector<std::uint8_t> bytes(sizeof(double));
        std::memcpy(bytes.data(), &e, sizeof(double));
        return bytes;
      });
}

TEST(ParallelKernels, EntropyPlanIsThreadCountInvariant) {
  const Fab field = wavy_field(24);
  expect_invariant_under_threading<std::vector<analysis::BlockDecision>>(
      [&] {
        return analysis::entropy_downsample_plan(field, 8, {2.0, 4.0}, {4, 2, 1});
      },
      [](const std::vector<analysis::BlockDecision>& plan) {
        std::vector<std::uint8_t> bytes;
        for (const analysis::BlockDecision& d : plan) {
          const auto* p = reinterpret_cast<const std::uint8_t*>(&d.entropy);
          bytes.insert(bytes.end(), p, p + sizeof(double));
          bytes.push_back(static_cast<std::uint8_t>(d.factor));
          for (int dim = 0; dim < mesh::kDim; ++dim) {
            bytes.push_back(static_cast<std::uint8_t>(d.block.lo()[dim] & 0xff));
            bytes.push_back(static_cast<std::uint8_t>(d.block.hi()[dim] & 0xff));
          }
        }
        return bytes;
      });
}

TEST(ParallelKernels, DownsampleIsThreadCountInvariant) {
  const Fab field = wavy_field(21, 2);
  for (const auto method :
       {analysis::DownsampleMethod::Stride, analysis::DownsampleMethod::Average}) {
    expect_invariant_under_threading<Fab>(
        [&] { return analysis::downsample(field, 2, method); }, fab_bytes);
  }
}

TEST(ParallelKernels, CompressedStreamIsThreadCountInvariant) {
  const Fab field = wavy_field(17);
  analysis::CompressConfig cfg;
  expect_invariant_under_threading<analysis::CompressedField>(
      [&] { return analysis::compress(field, cfg); },
      [](const analysis::CompressedField& c) { return c.payload; });
  // Round trip decodes identically at any worker count, too.
  const analysis::CompressedField stream = analysis::compress(field, cfg);
  expect_invariant_under_threading<Fab>(
      [&] { return analysis::decompress(stream); }, fab_bytes);
}

TEST(ParallelKernels, MarchingCubesIsThreadCountInvariant) {
  const Fab field = wavy_field(23);
  const Box cells(field.box().lo(), field.box().hi() - 1);
  expect_invariant_under_threading<viz::TriangleMesh>(
      [&] { return viz::extract_isosurface(field, cells, 0.5); },
      [](const viz::TriangleMesh& mesh) {
        std::vector<std::uint8_t> bytes(mesh.vertices.size() * sizeof(viz::Vec3));
        std::memcpy(bytes.data(), mesh.vertices.data(), bytes.size());
        return bytes;
      });
  GlobalWorkersGuard guard;
  ThreadPool::set_global_workers(0);
  const std::size_t serial_active = viz::count_active_cells(field, cells, 0.5);
  for (std::size_t workers : kWorkerCounts) {
    ThreadPool::set_global_workers(workers);
    EXPECT_EQ(viz::count_active_cells(field, cells, 0.5), serial_active);
  }
}

amr::AmrConfig shock_config() {
  amr::AmrConfig cfg;
  cfg.base_domain = Box::domain({16, 16, 16});
  cfg.max_levels = 2;
  cfg.ref_ratio = 2;
  cfg.max_box_size = 8;
  cfg.blocking_factor = 4;
  cfg.nghost = 2;
  cfg.nranks = 2;
  cfg.fill_ratio = 0.7;
  return cfg;
}

std::vector<std::uint8_t> hierarchy_bytes(const amr::AmrHierarchy& h) {
  std::vector<std::uint8_t> bytes;
  for (std::size_t lev = 0; lev < h.num_levels(); ++lev) {
    const amr::AmrLevel& level = h.level(lev);
    for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
      const std::vector<std::uint8_t> fb = fab_bytes(level.data[i]);
      bytes.insert(bytes.end(), fb.begin(), fb.end());
    }
  }
  return bytes;
}

TEST(ParallelKernels, AmrAdvanceIsThreadCountInvariant) {
  amr::TagCriterion crit;
  crit.comp = amr::PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  expect_invariant_under_threading<std::vector<std::uint8_t>>(
      [&]() -> std::vector<std::uint8_t> {
        amr::AmrSimulation sim(shock_config(),
                               std::make_shared<amr::PolytropicGas>(), crit, 0.3,
                               /*regrid_interval=*/2);
        sim.initialize();
        for (int s = 0; s < 3; ++s) sim.advance();
        return hierarchy_bytes(sim.hierarchy());
      },
      [](const std::vector<std::uint8_t>& b) { return b; });
}

TEST(ParallelKernels, TaggingIsThreadCountInvariant) {
  amr::AmrSimulation sim(shock_config(), std::make_shared<amr::PolytropicGas>(),
                         {}, 0.3);
  sim.initialize();
  amr::TagCriterion crit;
  crit.comp = amr::PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  expect_invariant_under_threading<std::vector<mesh::IntVect>>(
      [&] { return amr::tag_cells(sim.hierarchy().level(0), crit); },
      [](const std::vector<mesh::IntVect>& tags) {
        // Tag ORDER matters: Berger-Rigoutsos consumes the list as-is.
        std::vector<std::uint8_t> bytes(tags.size() * sizeof(mesh::IntVect));
        std::memcpy(bytes.data(), tags.data(), bytes.size());
        return bytes;
      });
}

TEST(ParallelKernels, AmrIsosurfaceIsThreadCountInvariant) {
  amr::TagCriterion crit;
  crit.comp = amr::PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  amr::AmrSimulation sim(shock_config(), std::make_shared<amr::PolytropicGas>(),
                         crit, 0.3);
  sim.initialize();
  const double dx0 = 1.0 / 16.0;
  expect_invariant_under_threading<viz::TriangleMesh>(
      [&] {
        return viz::extract_amr_isosurface(sim.hierarchy(), 0.6,
                                           amr::PolytropicGas::kRho, dx0);
      },
      [](const viz::TriangleMesh& mesh) {
        std::vector<std::uint8_t> bytes(mesh.vertices.size() * sizeof(viz::Vec3));
        std::memcpy(bytes.data(), mesh.vertices.data(), bytes.size());
        return bytes;
      });
  // The per-level statistics are integer sums: also invariant.
  GlobalWorkersGuard guard;
  ThreadPool::set_global_workers(0);
  viz::IsosurfaceStats serial_stats;
  viz::extract_amr_isosurface(sim.hierarchy(), 0.6, amr::PolytropicGas::kRho, dx0,
                              &serial_stats);
  ThreadPool::set_global_workers(3);
  viz::IsosurfaceStats threaded_stats;
  viz::extract_amr_isosurface(sim.hierarchy(), 0.6, amr::PolytropicGas::kRho, dx0,
                              &threaded_stats);
  EXPECT_EQ(threaded_stats.cells_scanned, serial_stats.cells_scanned);
  EXPECT_EQ(threaded_stats.active_cells, serial_stats.active_cells);
  EXPECT_EQ(threaded_stats.triangles, serial_stats.triangles);
}

// --- seed-reference bit-identity suite ---------------------------------------
// DESIGN.md §3.10: the flat-row / SIMD kernel rewrites must be
// indistinguishable from the seed per-cell formulations — not merely
// thread-invariant, but bit-identical to the original bounds-checked
// fab(p, c) code. The replicas below freeze the seed semantics (every access
// through operator(), streams packed one bit at a time); each test compares
// the library kernel against its replica at 0, 2, and 5 workers.
// bench_kernel_scaling keeps its own timed copies; these are the suite's
// oracles.

const std::vector<std::size_t> kSeedWorkerCounts = {0, 2, 5};

template <typename T>
void expect_matches_seed(
    const std::vector<std::uint8_t>& want, const std::function<T()>& make,
    const std::function<std::vector<std::uint8_t>(const T&)>& as_bytes) {
  GlobalWorkersGuard guard;
  for (std::size_t workers : kSeedWorkerCounts) {
    ThreadPool::set_global_workers(workers);
    EXPECT_EQ(as_bytes(make()), want)
        << "row kernel diverged from the seed per-cell path at " << workers
        << " workers";
  }
}

std::vector<std::uint8_t> double_bytes(const double& v) {
  std::vector<std::uint8_t> bytes(sizeof(double));
  std::memcpy(bytes.data(), &v, sizeof(double));
  return bytes;
}

double seed_block_entropy(const Fab& fab, const Box& region,
                          const analysis::EntropyConfig& config = {}) {
  const Box scan = fab.box() & region;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (BoxIterator it(scan); it.ok(); ++it) {
    const double v = fab(*it, config.comp);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;
  const auto bins = static_cast<std::size_t>(config.bins);
  const double scale = static_cast<double>(config.bins) / (hi - lo);
  const double last_bin = static_cast<double>(config.bins - 1);
  std::vector<std::size_t> counts(bins, 0);
  std::size_t total = 0;
  for (BoxIterator it(scan); it.ok(); ++it) {
    const double idx = (fab(*it, config.comp) - lo) * scale;
    if (std::isnan(idx)) continue;
    // xl-lint: allow(float-cast): NaN dropped and range clamped above.
    ++counts[static_cast<std::size_t>(std::clamp(idx, 0.0, last_bin))];
    ++total;
  }
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    const double p = static_cast<double>(counts[b]) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

Fab seed_downsample(const Fab& src, int factor, analysis::DownsampleMethod method) {
  const mesh::IntVect rvec = mesh::IntVect::uniform(factor);
  Fab out(src.box().coarsen(rvec), src.ncomp());
  const double inv_vol = 1.0 / static_cast<double>(factor) / factor / factor;
  const std::size_t full = static_cast<std::size_t>(factor) * factor * factor;
  const mesh::IntVect slo = src.box().lo(), shi = src.box().hi();
  for (int c = 0; c < src.ncomp(); ++c) {
    for (BoxIterator it(out.box()); it.ok(); ++it) {
      if (method == analysis::DownsampleMethod::Stride) {
        mesh::IntVect p;
        for (int d = 0; d < mesh::kDim; ++d) {
          p[d] = std::clamp(factor * (*it)[d], slo[d], shi[d]);
        }
        out(*it, c) = src(p, c);
        continue;
      }
      const mesh::IntVect base = (*it).refine(rvec);
      const Box children = Box(base, base + (factor - 1)) & src.box();
      double sum = 0.0;
      for (BoxIterator fit(children); fit.ok(); ++fit) sum += src(*fit, c);
      out(*it, c) = static_cast<std::size_t>(children.num_cells()) == full
                        ? sum * inv_vol
                        : sum / static_cast<double>(children.num_cells());
    }
  }
  return out;
}

void seed_linear_fit(const double* v, std::size_t n, double& a, double& b) {
  if (n == 1) {
    a = v[0];
    b = 0.0;
    return;
  }
  double sum_v = 0.0, sum_iv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_v += v[i];
    sum_iv += static_cast<double>(i) * v[i];
  }
  const double nn = static_cast<double>(n);
  const double sum_i = nn * (nn - 1.0) / 2.0;
  const double sum_ii = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
  const double denom = nn * sum_ii - sum_i * sum_i;
  b = denom != 0.0 ? (nn * sum_iv - sum_i * sum_v) / denom : 0.0;
  a = (sum_v - b * sum_i) / nn;
}

/// Seed encoder: scalar quantize straight off the residual expression, the
/// packed stream set one bit at a time.
std::vector<std::uint8_t> seed_compress_payload(
    const Fab& fab, const analysis::CompressConfig& config) {
  const std::span<const double> data = fab.flat();
  const auto levels = (1u << config.residual_bits) - 1u;
  const auto block = static_cast<std::size_t>(config.block);
  const int bits = config.residual_bits;
  const std::size_t header = 4 * sizeof(double);
  const auto payload_bytes = [&](std::size_t n) {
    return (n * static_cast<std::size_t>(bits) + 7) / 8;
  };
  const std::size_t nblocks = (data.size() + block - 1) / block;
  const std::size_t full_bytes = header + payload_bytes(block);
  const std::size_t tail_n = data.size() - (nblocks - 1) * block;
  std::vector<std::uint8_t> payload(
      (nblocks - 1) * full_bytes + header + payload_bytes(tail_n), 0);
  std::vector<std::uint32_t> q(block);
  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    const std::size_t n = bi + 1 == nblocks ? tail_n : block;
    const double* v = data.data() + bi * block;
    std::uint8_t* dst = payload.data() + bi * full_bytes;
    double a, b;
    seed_linear_fit(v, n, a, b);
    double rmin = 0.0, rmax = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = v[i] - (a + b * static_cast<double>(i));
      rmin = i == 0 ? r : std::min(rmin, r);
      rmax = i == 0 ? r : std::max(rmax, r);
    }
    const double step = rmax > rmin ? (rmax - rmin) / levels : 0.0;
    std::memcpy(dst + 0 * sizeof(double), &a, sizeof(double));
    std::memcpy(dst + 1 * sizeof(double), &b, sizeof(double));
    std::memcpy(dst + 2 * sizeof(double), &rmin, sizeof(double));
    std::memcpy(dst + 3 * sizeof(double), &step, sizeof(double));
    for (std::size_t i = 0; i < n; ++i) {
      if (step > 0.0) {
        const double r = v[i] - (a + b * static_cast<double>(i));
        // xl-lint: allow(float-cast): lround of a value in [0, levels].
        q[i] = static_cast<std::uint32_t>(std::lround((r - rmin) / step));
        if (q[i] > levels) q[i] = levels;
      } else {
        q[i] = 0;
      }
    }
    std::uint8_t* packed = dst + header;
    for (std::size_t i = 0; i < n; ++i) {
      for (int bit = 0; bit < bits; ++bit) {
        if ((q[i] >> bit) & 1u) {
          const std::size_t bitpos =
              i * static_cast<std::size_t>(bits) + static_cast<std::size_t>(bit);
          packed[bitpos >> 3] |= static_cast<std::uint8_t>(1u << (bitpos & 7));
        }
      }
    }
  }
  return payload;
}

void seed_face_flux(const Fab& u, const Box& faces, int dim, double vel,
                    double d_over_dx, Fab& flux) {
  for (BoxIterator it(faces); it.ok(); ++it) {
    mesh::IntVect lo = *it;
    lo[dim] -= 1;
    const double ul = u(lo, 0);
    const double ur = u(*it, 0);
    const double advective = vel * (vel >= 0.0 ? ul : ur);
    const double diffusive = -d_over_dx * (ur - ul);
    flux(*it, 0) = advective + diffusive;
  }
}

/// Seed conservative update: seed fluxes plus the per-cell difference loop.
Fab seed_godunov(const amr::AdvectionDiffusion& model, const Fab& u,
                 const Box& valid, double dx, double dt) {
  Fab u_new(u.box(), u.ncomp());
  u_new.copy_from(u, valid);
  const double lambda = dt / dx;
  for (int d = 0; d < mesh::kDim; ++d) {
    mesh::IntVect fhi = valid.hi();
    fhi[d] += 1;
    const Box faces(valid.lo(), fhi);
    Fab flux(faces, 1);
    seed_face_flux(u, faces, d, model.config().velocity[d],
                   model.config().diffusivity / dx, flux);
    for (BoxIterator it(valid); it.ok(); ++it) {
      mesh::IntVect hi = *it;
      hi[d] += 1;
      u_new(*it, 0) -= lambda * (flux(hi, 0) - flux(*it, 0));
    }
  }
  return u_new;
}

std::vector<mesh::IntVect> seed_tag_cells(const amr::AmrLevel& level,
                                          const amr::TagCriterion& criterion) {
  std::vector<mesh::IntVect> tags;
  for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
    const Fab& fab = level.data[i];
    for (BoxIterator it(level.layout.box(i)); it.ok(); ++it) {
      double grad = 0.0;
      for (int d = 0; d < mesh::kDim; ++d) {
        mesh::IntVect lo = *it, hi = *it;
        lo[d] -= 1;
        hi[d] += 1;
        const double diff = 0.5 * (fab(hi, criterion.comp) - fab(lo, criterion.comp));
        grad += diff * diff;
      }
      grad = std::sqrt(grad);
      const double scale =
          std::max(std::fabs(fab(*it, criterion.comp)), criterion.abs_floor);
      if (grad / scale > criterion.rel_threshold) tags.push_back(*it);
    }
  }
  return tags;
}

TEST(SeedIdentity, BlockEntropyMatchesSeedPerCellPath) {
  Fab field = wavy_field(19);
  field({3, 4, 5}, 0) = std::nan("");  // NaN cells drop out of the histogram
  // Full box and an offset sub-region (exercises the row x-offset path).
  const Box sub({2, 1, 3}, {14, 17, 11});
  for (const Box& region : {field.box(), sub}) {
    expect_matches_seed<double>(
        double_bytes(seed_block_entropy(field, region)),
        [&] { return analysis::block_entropy(field, region); }, double_bytes);
  }
}

TEST(SeedIdentity, DownsampleMatchesSeedPerCellPath) {
  const Fab field = wavy_field(21, 2);
  // factor 2: clipped children at the high edge (21 odd); factor 3: exact.
  for (int factor : {2, 3}) {
    for (const auto method : {analysis::DownsampleMethod::Stride,
                              analysis::DownsampleMethod::Average}) {
      expect_matches_seed<Fab>(
          fab_bytes(seed_downsample(field, factor, method)),
          [&] { return analysis::downsample(field, factor, method); },
          fab_bytes);
    }
  }
}

TEST(SeedIdentity, CompressedPayloadMatchesSeedBitPacker) {
  const Fab field = wavy_field(17);
  analysis::CompressConfig cfg;
  expect_matches_seed<analysis::CompressedField>(
      seed_compress_payload(field, cfg),
      [&] { return analysis::compress(field, cfg); },
      [](const analysis::CompressedField& c) { return c.payload; });
}

TEST(SeedIdentity, FaceFluxAndGodunovMatchSeedPerCellPath) {
  const amr::AdvectionDiffusion model;
  const Box valid = Box::domain({12, 12, 12});
  const double dx = 1.0 / 12.0;
  Fab u(valid.grow(model.nghost()), 1);
  for (BoxIterator it(u.box()); it.ok(); ++it) {
    const auto& p = *it;
    u(p) = std::sin(0.4 * p[0]) * std::cos(0.3 * p[1]) + 0.07 * p[2];
  }
  for (int d = 0; d < mesh::kDim; ++d) {
    mesh::IntVect fhi = valid.hi();
    fhi[d] += 1;
    const Box faces(valid.lo(), fhi);
    Fab want(faces, 1);
    seed_face_flux(u, faces, d, model.config().velocity[d],
                   model.config().diffusivity * 12.0, want);
    expect_matches_seed<Fab>(
        fab_bytes(want),
        [&] {
          Fab flux(faces, 1);
          model.face_flux(u, faces, d, dx, flux);
          return flux;
        },
        fab_bytes);
  }
  const double dt = 0.4 * dx / model.max_wave_speed(u, valid, dx);
  expect_matches_seed<Fab>(
      fab_bytes(seed_godunov(model, u, valid, dx, dt)),
      [&] {
        Fab u_new(u.box(), 1);
        amr::godunov_update(model, u, valid, dx, dt, u_new);
        return u_new;
      },
      fab_bytes);
}

TEST(SeedIdentity, TagCellsMatchSeedPerCellPath) {
  amr::AmrSimulation sim(shock_config(), std::make_shared<amr::PolytropicGas>(),
                         {}, 0.3);
  sim.initialize();
  amr::TagCriterion crit;
  crit.comp = amr::PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  const std::vector<mesh::IntVect> want_tags =
      seed_tag_cells(sim.hierarchy().level(0), crit);
  std::vector<std::uint8_t> want(want_tags.size() * sizeof(mesh::IntVect));
  std::memcpy(want.data(), want_tags.data(), want.size());
  expect_matches_seed<std::vector<mesh::IntVect>>(
      want, [&] { return amr::tag_cells(sim.hierarchy().level(0), crit); },
      [](const std::vector<mesh::IntVect>& tags) {
        std::vector<std::uint8_t> bytes(tags.size() * sizeof(mesh::IntVect));
        std::memcpy(bytes.data(), tags.data(), bytes.size());
        return bytes;
      });
}

TEST(ParallelKernels, EntropyIgnoresNaNCells) {
  Fab field = wavy_field(8);
  field({1, 1, 1}, 0) = std::nan("");
  const double with_nan = analysis::block_entropy(field, field.box());
  EXPECT_TRUE(std::isfinite(with_nan));
  // An all-NaN block histograms nothing and reports zero entropy.
  Fab poisoned(Box::domain({4, 4, 4}), 1);
  for (BoxIterator it(poisoned.box()); it.ok(); ++it) poisoned(*it) = std::nan("");
  EXPECT_EQ(analysis::block_entropy(poisoned, poisoned.box()), 0.0);
}

}  // namespace
}  // namespace xl
