// Tests for the asynchronous transport fabric and the DataSpaces-like
// staging space (spatial index, versioned objects, memory accounting).
#include <gtest/gtest.h>

#include "cluster/machine.hpp"
#include "staging/space.hpp"
#include "transport/fabric.hpp"

namespace xl {
namespace {

using cluster::CostModel;
using cluster::EventQueue;
using mesh::Box;
using mesh::Fab;
using staging::StagingSpace;
using transport::Fabric;

TEST(Fabric, CompletionFiresAfterWireTime) {
  EventQueue q;
  const CostModel cost(cluster::test_machine());
  Fabric fabric(q, cost);
  double completed_at = -1.0;
  fabric.put(std::size_t{1} << 30, 8, 8, [&](double t) { completed_at = t; });
  EXPECT_DOUBLE_EQ(completed_at, -1.0);  // asynchronous: not yet
  q.run_until_empty();
  EXPECT_NEAR(completed_at, cost.transfer_seconds(std::size_t{1} << 30, 8, 8), 1e-12);
  EXPECT_EQ(fabric.total_bytes_moved(), std::size_t{1} << 30);
}

TEST(Fabric, ConcurrentTransfersCompleteInSizeOrder) {
  EventQueue q;
  const CostModel cost(cluster::test_machine());
  Fabric fabric(q, cost);
  std::vector<int> done;
  fabric.put(std::size_t{64} << 20, 4, 4, [&](double) { done.push_back(0); });
  fabric.put(std::size_t{1} << 20, 4, 4, [&](double) { done.push_back(1); });
  q.run_until_empty();
  EXPECT_EQ(done, (std::vector<int>{1, 0}));  // small one lands first
  EXPECT_EQ(fabric.completed_count(), 2u);
  EXPECT_EQ(fabric.history().size(), 2u);
}

TEST(Fabric, EstimateMatchesCostModel) {
  EventQueue q;
  const CostModel cost(cluster::test_machine());
  Fabric fabric(q, cost);
  EXPECT_DOUBLE_EQ(fabric.estimate_seconds(1 << 20, 2, 8),
                   cost.transfer_seconds(1 << 20, 2, 8));
}

TEST(ServerForBox, DeterministicAndInRange) {
  const Box b = Box::cube({10, 20, 30}, 8);
  const int s = staging::server_for_box(b, 16);
  EXPECT_EQ(s, staging::server_for_box(b, 16));
  EXPECT_GE(s, 0);
  EXPECT_LT(s, 16);
  EXPECT_EQ(staging::server_for_box(b, 1), 0);
}

TEST(ServerForBox, SpreadsAcrossServers) {
  // Many distinct boxes should hit many servers.
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 64; ++i) {
    ++hits[static_cast<std::size_t>(
        staging::server_for_box(Box::cube({i * 8, (i % 5) * 16, (i % 3) * 32}, 4), 8))];
  }
  int used = 0;
  for (int h : hits) used += h > 0;
  EXPECT_GE(used, 5);
}

TEST(StagingSpace, PutQueryEraseLifecycle) {
  StagingSpace space(4, std::size_t{1} << 20);
  const Box box = Box::cube({0, 0, 0}, 8);
  const auto id = space.put(7, box, 1, 4096);
  EXPECT_EQ(space.object_count(), 1u);
  EXPECT_EQ(space.used_bytes(), 4096u);

  const auto hits = space.query(7, box.grow(2));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->id, id);
  EXPECT_EQ(hits[0]->version, 7);
  EXPECT_TRUE(space.query(8, box).empty());              // wrong version
  EXPECT_TRUE(space.query(7, Box::cube({100, 0, 0}, 2)).empty());  // disjoint

  space.erase(id);
  EXPECT_EQ(space.used_bytes(), 0u);
  EXPECT_THROW(space.erase(id), ContractError);
}

TEST(StagingSpace, PayloadRoundTrip) {
  StagingSpace space(2, std::size_t{1} << 20);
  const Box box = Box::cube({4, 4, 4}, 4);
  Fab payload(box, 2, 1.5);
  const std::size_t bytes = payload.bytes();
  space.put(0, box, 2, bytes, std::make_shared<const Fab>(std::move(payload)));
  const auto hits = space.query(0, box);
  ASSERT_EQ(hits.size(), 1u);
  ASSERT_TRUE(hits[0]->payload != nullptr);
  EXPECT_DOUBLE_EQ((*hits[0]->payload)(mesh::IntVect{5, 5, 5}, 1), 1.5);
}

TEST(StagingSpace, MemoryAccountingPerServer) {
  StagingSpace space(2, 1000);
  const Box box = Box::cube({0, 0, 0}, 4);
  const int server = staging::server_for_box(box, 2);
  EXPECT_TRUE(space.can_accept(box, 800));
  space.put(0, box, 1, 800);
  EXPECT_EQ(space.server_used_bytes(server), 800u);
  EXPECT_FALSE(space.can_accept(box, 300));  // same server full
  EXPECT_THROW(space.put(1, box, 1, 300), ContractError);
  EXPECT_EQ(space.free_bytes(), 2000u - 800u);
}

TEST(StagingSpace, EraseVersionFreesEverything) {
  StagingSpace space(4, std::size_t{1} << 20);
  for (int i = 0; i < 6; ++i) {
    space.put(i % 2, Box::cube({i * 8, 0, 0}, 4), 1, 100);
  }
  const std::size_t freed = space.erase_version(0);
  EXPECT_EQ(freed, 300u);
  EXPECT_EQ(space.object_count(), 3u);
  EXPECT_EQ(space.used_bytes(), 300u);
}

TEST(StagingSpace, ResizeGrowAndShrinkRules) {
  StagingSpace space(2, 1000);
  space.resize(6);
  EXPECT_EQ(space.num_servers(), 6);
  EXPECT_EQ(space.capacity_bytes(), 6000u);
  // Put something on a known server, then try to shrink past it.
  const Box box = Box::cube({0, 0, 0}, 4);
  const int server = staging::server_for_box(box, 6);
  space.put(0, box, 1, 10);
  if (server >= 1) {
    EXPECT_THROW(space.resize(server), ContractError);
  }
  space.erase_version(0);
  space.resize(1);
  EXPECT_EQ(space.num_servers(), 1);
}

TEST(StagingSpace, ValidatesConstruction) {
  EXPECT_THROW(StagingSpace(0, 1024), ContractError);
  EXPECT_THROW(StagingSpace(4, 0), ContractError);
}

}  // namespace
}  // namespace xl
