// Tests for the AMR machinery: tagging, Berger-Rigoutsos clustering,
// inter-level interpolation, hierarchy regridding, the memory model and the
// synthetic geometry evolution.
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

#include <unordered_set>

#include "amr/berger_rigoutsos.hpp"
#include "amr/hierarchy.hpp"
#include "amr/interp.hpp"
#include "amr/memory_model.hpp"
#include "amr/synthetic.hpp"
#include "amr/tagging.hpp"
#include "common/error.hpp"

namespace xl::amr {
namespace {

using mesh::BoxIterator;
using mesh::IntVectHash;

// --- Berger-Rigoutsos ------------------------------------------------------

std::vector<IntVect> sphere_shell_tags(const Box& domain, double r_lo, double r_hi) {
  std::vector<IntVect> tags;
  const IntVect c{domain.size()[0] / 2, domain.size()[1] / 2, domain.size()[2] / 2};
  for (BoxIterator it(domain); it.ok(); ++it) {
    const IntVect d = *it - c;
    const double r = std::sqrt(double(d[0]) * d[0] + double(d[1]) * d[1] +
                               double(d[2]) * d[2]);
    if (r >= r_lo && r <= r_hi) tags.push_back(*it);
  }
  return tags;
}

TEST(BergerRigoutsos, CoversEveryTag) {
  const Box domain = Box::domain({32, 32, 32});
  const auto tags = sphere_shell_tags(domain, 8.0, 11.0);
  ASSERT_FALSE(tags.empty());
  BrConfig cfg;
  cfg.fill_ratio = 0.7;
  cfg.max_box_size = 16;
  cfg.min_box_size = 2;
  const auto boxes = berger_rigoutsos(tags, domain, cfg);
  for (const IntVect& t : tags) {
    bool covered = false;
    for (const Box& b : boxes) covered = covered || b.contains(t);
    EXPECT_TRUE(covered) << "tag " << t << " uncovered";
  }
}

TEST(BergerRigoutsos, BoxesDisjointWithinDomainAndSized) {
  const Box domain = Box::domain({32, 32, 32});
  const auto tags = sphere_shell_tags(domain, 8.0, 11.0);
  BrConfig cfg;
  cfg.max_box_size = 8;
  cfg.min_box_size = 2;
  const auto boxes = berger_rigoutsos(tags, domain, cfg);
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_TRUE(domain.contains(boxes[i]));
    EXPECT_LE(boxes[i].size()[boxes[i].longest_dim()], 8);
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      EXPECT_FALSE(boxes[i].intersects(boxes[j]));
    }
  }
}

TEST(BergerRigoutsos, AchievesFillRatioOnClusteredTags) {
  // Two well-separated dense clusters must produce tight boxes, not one hull.
  const Box domain = Box::domain({64, 16, 16});
  std::vector<IntVect> tags;
  for (BoxIterator it(Box::cube({2, 2, 2}, 6)); it.ok(); ++it) tags.push_back(*it);
  for (BoxIterator it(Box::cube({50, 8, 8}, 6)); it.ok(); ++it) tags.push_back(*it);
  BrConfig cfg;
  cfg.fill_ratio = 0.8;
  cfg.max_box_size = 32;
  cfg.min_box_size = 2;
  const auto boxes = berger_rigoutsos(tags, domain, cfg);
  std::int64_t box_cells = 0;
  for (const Box& b : boxes) box_cells += b.num_cells();
  const double fill = static_cast<double>(tags.size()) / static_cast<double>(box_cells);
  EXPECT_GE(fill, 0.8);
  EXPECT_GE(boxes.size(), 2u);
}

TEST(BergerRigoutsos, SingleTagGivesSingleCellBox) {
  const Box domain = Box::domain({16, 16, 16});
  const auto boxes = berger_rigoutsos({{5, 6, 7}}, domain, {});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], Box({5, 6, 7}, {5, 6, 7}));
}

TEST(BergerRigoutsos, IgnoresTagsOutsideDomain) {
  const Box domain = Box::domain({8, 8, 8});
  const auto boxes = berger_rigoutsos({{100, 100, 100}}, domain, {});
  EXPECT_TRUE(boxes.empty());
}

// --- Tagging ---------------------------------------------------------------

TEST(Tagging, TagsSteepGradientOnly) {
  const Box domain = Box::domain({16, 16, 16});
  const mesh::BoxLayout layout = mesh::balance(mesh::decompose(domain, 16), 1);
  AmrLevel level;
  level.domain = domain;
  level.layout = layout;
  level.data = mesh::LevelData(layout, 1, 2);
  // Step function at x == 8 (fill ghosts consistently).
  for (BoxIterator it(level.data[0].box()); it.ok(); ++it) {
    level.data[0](*it) = (*it)[0] < 8 ? 1.0 : 2.0;
  }
  TagCriterion crit;
  crit.rel_threshold = 0.1;
  const auto tags = tag_cells(level, crit);
  ASSERT_FALSE(tags.empty());
  for (const IntVect& t : tags) {
    EXPECT_TRUE(t[0] == 7 || t[0] == 8) << "tag at " << t;
  }
}

TEST(Tagging, ConstantFieldProducesNoTags) {
  const Box domain = Box::domain({8, 8, 8});
  const mesh::BoxLayout layout = mesh::balance(mesh::decompose(domain, 8), 1);
  AmrLevel level{domain, layout, mesh::LevelData(layout, 1, 2)};
  level.data.set_all(3.0);
  EXPECT_TRUE(tag_cells(level, {}).empty());
}

TEST(Tagging, BufferGrowsAndClipsToDomain) {
  const Box domain = Box::domain({8, 8, 8});
  const auto grown = buffer_tags({{0, 0, 0}}, 1, domain);
  // Corner cell + buffer 1 clipped to domain: 2x2x2 = 8 cells.
  EXPECT_EQ(grown.size(), 8u);
  std::unordered_set<IntVect, IntVectHash> set(grown.begin(), grown.end());
  EXPECT_TRUE(set.count({1, 1, 1}));
  EXPECT_FALSE(set.count({2, 0, 0}));
}

// --- Interpolation ---------------------------------------------------------

AmrLevel make_level(const Box& domain, int max_box, int ncomp, int nghost) {
  AmrLevel lev;
  lev.domain = domain;
  lev.layout = mesh::balance(mesh::decompose(domain, max_box), 1);
  lev.data = mesh::LevelData(lev.layout, ncomp, nghost);
  return lev;
}

TEST(Interp, ProlongConstantCopiesParentValue) {
  AmrLevel coarse = make_level(Box::domain({8, 8, 8}), 8, 1, 1);
  for (BoxIterator it(coarse.data[0].box()); it.ok(); ++it) {
    coarse.data[0](*it) = (*it)[0];
  }
  AmrLevel fine = make_level(Box::domain({16, 16, 16}), 16, 1, 1);
  prolong_constant(coarse, fine, 2);
  for (BoxIterator it(fine.layout.box(0)); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(fine.data[0](*it), (*it)[0] / 2);
  }
}

TEST(Interp, RestrictAverageIsExactForLinear) {
  // Restriction of a (cell-centered) linear function reproduces the coarse
  // cell-centered values exactly.
  AmrLevel fine = make_level(Box::domain({16, 16, 16}), 16, 1, 0);
  for (BoxIterator it(fine.layout.box(0)); it.ok(); ++it) {
    fine.data[0](*it) = (*it)[0] + 0.5;  // linear in fine index
  }
  AmrLevel coarse = make_level(Box::domain({8, 8, 8}), 8, 1, 0);
  restrict_average(fine, coarse, 2);
  for (BoxIterator it(coarse.layout.box(0)); it.ok(); ++it) {
    // Average of fine values 2i+0.5 and 2i+1.5 is 2i+1.
    EXPECT_DOUBLE_EQ(coarse.data[0](*it), 2.0 * (*it)[0] + 1.0);
  }
}

TEST(Interp, RestrictThenProlongPreservesConstant) {
  AmrLevel fine = make_level(Box::domain({8, 8, 8}), 8, 1, 0);
  fine.data.set_all(7.0);
  AmrLevel coarse = make_level(Box::domain({4, 4, 4}), 4, 1, 0);
  restrict_average(fine, coarse, 2);
  AmrLevel fine2 = make_level(Box::domain({8, 8, 8}), 8, 1, 0);
  prolong_constant(coarse, fine2, 2);
  for (BoxIterator it(fine2.layout.box(0)); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(fine2.data[0](*it), 7.0);
  }
}

TEST(Interp, CfGhostsFilledFromCoarse) {
  AmrLevel coarse = make_level(Box::domain({8, 8, 8}), 8, 1, 2);
  for (BoxIterator it(coarse.data[0].box()); it.ok(); ++it) {
    coarse.data[0](*it) = 100.0 + (*it)[2];
  }
  // Fine level covers only the middle of the domain.
  AmrLevel fine;
  fine.domain = Box::domain({16, 16, 16});
  std::vector<Box> fboxes{Box({4, 4, 4}, {11, 11, 11})};
  fine.layout = mesh::BoxLayout(fboxes, {0}, 1);
  fine.data = mesh::LevelData(fine.layout, 1, 2);
  fine.data.set_all(-1.0);
  fill_cf_ghosts(coarse, fine, 2, 2);
  // A ghost just outside the fine box maps to coarse cell (ghost>>1).
  const IntVect ghost{3, 8, 8};
  EXPECT_DOUBLE_EQ(fine.data[0](ghost), 100.0 + 4.0);
  // Valid cells untouched.
  EXPECT_DOUBLE_EQ(fine.data[0](IntVect{5, 5, 5}), -1.0);
}

// --- Hierarchy -------------------------------------------------------------

AmrConfig small_config() {
  AmrConfig cfg;
  cfg.base_domain = Box::domain({16, 16, 16});
  cfg.max_levels = 3;
  cfg.ref_ratio = 2;
  cfg.max_box_size = 8;
  cfg.nghost = 2;
  cfg.nranks = 2;
  return cfg;
}

TEST(Hierarchy, ConstructionBuildsBaseLevel) {
  AmrHierarchy h(small_config(), 1);
  EXPECT_EQ(h.num_levels(), 1u);
  EXPECT_EQ(h.level(0).layout.total_cells(), 16 * 16 * 16);
  EXPECT_EQ(h.domain_of(2), Box::domain({64, 64, 64}));
}

TEST(Hierarchy, RegridAddsLevelAndProlongsData) {
  AmrHierarchy h(small_config(), 1);
  h.level(0).data.set_all(4.0);
  std::vector<Box> fboxes{Box({8, 8, 8}, {15, 15, 15})};
  h.regrid({mesh::BoxLayout(fboxes, {0}, 2)});
  ASSERT_EQ(h.num_levels(), 2u);
  for (BoxIterator it(h.level(1).layout.box(0)); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(h.level(1).data[0](*it), 4.0);
  }
  EXPECT_EQ(h.total_cells(), 16 * 16 * 16 + 8 * 8 * 8);
}

TEST(Hierarchy, RegridPreservesOldFineDataWhereOverlapping) {
  AmrHierarchy h(small_config(), 1);
  h.level(0).data.set_all(1.0);
  std::vector<Box> fboxes{Box({8, 8, 8}, {15, 15, 15})};
  h.regrid({mesh::BoxLayout(fboxes, {0}, 2)});
  h.level(1).data.set_all(9.0);
  // Shift the fine level; overlap keeps the old value, fresh cells prolong.
  std::vector<Box> moved{Box({12, 8, 8}, {19, 15, 15})};
  h.regrid({mesh::BoxLayout(moved, {0}, 2)});
  EXPECT_DOUBLE_EQ(h.level(1).data[0](IntVect{12, 8, 8}), 9.0);   // kept
  EXPECT_DOUBLE_EQ(h.level(1).data[0](IntVect{19, 15, 15}), 1.0);  // prolonged
}

TEST(Hierarchy, IsFinestAtRespectsFinerCoverage) {
  AmrHierarchy h(small_config(), 1);
  std::vector<Box> fboxes{Box({8, 8, 8}, {15, 15, 15})};
  h.regrid({mesh::BoxLayout(fboxes, {0}, 2)});
  EXPECT_FALSE(h.is_finest_at(0, {4, 4, 4}));  // covered: fine box 8..15 = coarse 4..7
  EXPECT_TRUE(h.is_finest_at(0, {0, 0, 0}));
  EXPECT_TRUE(h.is_finest_at(1, {8, 8, 8}));  // finest level
}

// --- Memory model ----------------------------------------------------------

TEST(MemoryModel, MoreCellsMoreMemoryAndImbalanceShows) {
  const Box domain = Box::domain({32, 32, 32});
  const mesh::BoxLayout balanced = mesh::balance(mesh::decompose(domain, 8), 4);
  MemoryModelConfig cfg;
  cfg.ncomp = 5;
  cfg.nghost = 2;
  const auto bytes = per_rank_peak_bytes({balanced}, cfg);
  ASSERT_EQ(bytes.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_GT(bytes[r], cfg.base_runtime_bytes);

  // All boxes on rank 0 -> rank 0 holds everything.
  std::vector<int> ranks(balanced.num_boxes(), 0);
  const mesh::BoxLayout skewed(balanced.boxes(), ranks, 4);
  const auto skewed_bytes = per_rank_peak_bytes({skewed}, cfg);
  EXPECT_GT(skewed_bytes[0], bytes[0]);
  EXPECT_EQ(skewed_bytes[1], cfg.base_runtime_bytes);
}

TEST(MemoryModel, AvailableClampsAtZero) {
  const mesh::BoxLayout layout =
      mesh::balance(mesh::decompose(Box::domain({32, 32, 32}), 8), 1);
  MemoryModelConfig cfg;
  const auto avail = per_rank_available_bytes({layout}, cfg, 1);  // 1 byte capacity
  EXPECT_EQ(avail[0], 0u);
}

// --- Synthetic geometry evolution ------------------------------------------

TEST(Synthetic, DeterministicAndGrowing) {
  SyntheticAmrConfig cfg;
  cfg.base_domain = Box::domain({128, 64, 64});
  cfg.max_levels = 3;
  cfg.nranks = 16;
  cfg.tile_size = 4;
  cfg.max_box_size = 16;
  SyntheticAmrEvolution evo(cfg), evo2(cfg);
  const SyntheticStep s0 = evo.at(0);
  const SyntheticStep s0b = evo2.at(0);
  EXPECT_EQ(s0.total_cells, s0b.total_cells);
  ASSERT_GE(s0.levels.size(), 2u);  // front refines from step 0

  const SyntheticStep s20 = evo.at(20);
  EXPECT_GT(s20.total_cells, s0.total_cells);  // front grew + blobs appeared
  EXPECT_EQ(s0.cells_per_level[0], s20.cells_per_level[0]);  // base static
}

TEST(Synthetic, LevelsBalancedOverConfiguredRanks) {
  SyntheticAmrConfig cfg;
  cfg.base_domain = Box::domain({64, 64, 64});
  cfg.nranks = 8;
  cfg.tile_size = 4;
  SyntheticAmrEvolution evo(cfg);
  const SyntheticStep s = evo.at(5);
  for (const auto& layout : s.levels) {
    EXPECT_EQ(layout.num_ranks(), 8);
    EXPECT_GT(layout.total_cells(), 0);
  }
}

TEST(Synthetic, RefinedBoxesInsideRefinedDomain) {
  SyntheticAmrConfig cfg;
  cfg.base_domain = Box::domain({64, 32, 32});
  cfg.nranks = 4;
  cfg.tile_size = 4;
  cfg.max_levels = 3;
  SyntheticAmrEvolution evo(cfg);
  const SyntheticStep s = evo.at(12);
  for (std::size_t lev = 1; lev < s.levels.size(); ++lev) {
    Box domain = cfg.base_domain;
    for (std::size_t l = 0; l < lev; ++l) domain = domain.refine(cfg.ref_ratio);
    for (const Box& b : s.levels[lev].boxes()) {
      EXPECT_TRUE(domain.contains(b)) << "level " << lev << " box " << b;
    }
  }
}

}  // namespace
}  // namespace xl::amr
