// Depth-coverage tests for paths the module-level suites exercise only
// indirectly: the raw Godunov update, physics flux consistency, copier plan
// details, network contention, fabric history, and planner odds and ends.
#include <gtest/gtest.h>

#include <cmath>

#include "amr/advection_diffusion.hpp"
#include "amr/polytropic_gas.hpp"
#include "cluster/network.hpp"
#include "mesh/level_data.hpp"
#include "transport/fabric.hpp"

namespace xl {
namespace {

using amr::AdvectionDiffusion;
using amr::AdvectionDiffusionConfig;
using amr::PolytropicGas;
using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;
using mesh::IntVect;

// --- godunov_update directly --------------------------------------------------

TEST(GodunovUpdate, ConstantStateIsFixedPoint) {
  PolytropicGas gas;
  const Box valid = Box::cube({0, 0, 0}, 4);
  Fab u(valid.grow(2), gas.ncomp());
  double state[5];
  gas.initial_value({0, 0, 0}, 1.0, state);  // a constant (center far away)
  for (int c = 0; c < gas.ncomp(); ++c) {
    for (BoxIterator it(u.box()); it.ok(); ++it) u(*it, c) = state[c];
  }
  Fab out(u.box(), gas.ncomp());
  out.copy_from(u, u.box());
  amr::godunov_update(gas, u, valid, 0.1, 0.01, out);
  for (int c = 0; c < gas.ncomp(); ++c) {
    for (BoxIterator it(valid); it.ok(); ++it) {
      EXPECT_NEAR(out(*it, c), state[c], 1e-12) << "comp " << c;
    }
  }
}

TEST(GodunovUpdate, FluxDifferenceIsConservative) {
  // Sum over the valid box changes only by boundary fluxes; with equal
  // boundary states the total is exactly preserved.
  AdvectionDiffusion adv;
  const Box valid = Box::cube({0, 0, 0}, 6);
  Fab u(valid.grow(2), 1, 1.0);
  // Interior bump; boundary ring stays constant.
  u(IntVect{3, 3, 3}) = 2.0;
  Fab out(u.box(), 1);
  out.copy_from(u, u.box());
  amr::godunov_update(adv, u, valid, 1.0 / 6.0, 1e-3, out);
  double before = 0.0, after = 0.0;
  for (BoxIterator it(valid); it.ok(); ++it) {
    before += u(*it);
    after += out(*it);
  }
  // Boundary fluxes: inflow == outflow for the constant far field.
  EXPECT_NEAR(after, before, 1e-9);
}

TEST(GodunovUpdate, RejectsMismatchedFabs) {
  PolytropicGas gas;
  const Box valid = Box::cube({0, 0, 0}, 4);
  Fab u(valid.grow(2), gas.ncomp());
  Fab wrong_comp(valid.grow(2), 1);
  EXPECT_THROW(amr::godunov_update(gas, u, valid, 0.1, 0.01, wrong_comp),
               ContractError);
  Fab too_small(valid.grow(-1).grow(0), gas.ncomp());
  EXPECT_THROW(amr::godunov_update(gas, u, valid, 0.1, 0.01, too_small),
               ContractError);
}

// --- physics internals ---------------------------------------------------------

TEST(PolytropicGasInternals, PressureAndSoundSpeed) {
  PolytropicGas gas;
  double cons[5] = {1.0, 0.0, 0.0, 0.0, 2.5};  // rho=1, E=2.5 -> p=1 (gamma=1.4)
  EXPECT_NEAR(gas.pressure(cons), 1.0, 1e-12);
  EXPECT_NEAR(gas.sound_speed(cons), std::sqrt(1.4), 1e-12);
  // Kinetic energy is subtracted before the EOS.
  double moving[5] = {1.0, 1.0, 0.0, 0.0, 3.0};  // ke = 0.5
  EXPECT_NEAR(gas.pressure(moving), 0.4 * 2.5, 1e-12);
}

TEST(PolytropicGasInternals, WaveSpeedDominatedByFlow) {
  PolytropicGas gas;
  Fab u(Box::cube({0, 0, 0}, 2), 5);
  for (BoxIterator it(u.box()); it.ok(); ++it) {
    u(*it, PolytropicGas::kRho) = 1.0;
    u(*it, PolytropicGas::kMomX) = 10.0;  // fast flow in x
    u(*it, PolytropicGas::kEnergy) = 60.0;
  }
  const double speed = gas.max_wave_speed(u, u.box(), 0.1);
  EXPECT_GT(speed, 10.0);  // |u| + c > |u|
}

TEST(AdvectionInternals, UpwindingSelectsCorrectSide) {
  AdvectionDiffusionConfig cfg;
  cfg.velocity[0] = 1.0;
  cfg.velocity[1] = -1.0;
  cfg.velocity[2] = 0.0;
  cfg.diffusivity = 0.0;
  AdvectionDiffusion adv(cfg);
  Fab u(Box({-1, -1, -1}, {2, 2, 2}), 1);
  for (BoxIterator it(u.box()); it.ok(); ++it) {
    u(*it) = (*it)[0] * 100.0 + (*it)[1];  // distinguishable values
  }
  const Box faces(IntVect{1, 1, 1}, IntVect{1, 1, 1});
  Fab fx(faces, 1), fy(faces, 1);
  adv.face_flux(u, faces, 0, 1.0, fx);
  adv.face_flux(u, faces, 1, 1.0, fy);
  // +x velocity: upwind is the LEFT cell (0,1,1) -> value 1.
  EXPECT_DOUBLE_EQ(fx(IntVect{1, 1, 1}), 1.0 * u(IntVect{0, 1, 1}));
  // -y velocity: upwind is the RIGHT cell (1,1,1) -> flux = -u(1,1,1).
  EXPECT_DOUBLE_EQ(fy(IntVect{1, 1, 1}), -1.0 * u(IntVect{1, 1, 1}));
}

// --- copier plan details --------------------------------------------------------

TEST(CopierDetails, PlanNeverWritesOwnValidCells) {
  const Box domain = Box::domain({8, 8, 8});
  const mesh::BoxLayout layout = mesh::balance(mesh::decompose(domain, 4), 2);
  const mesh::Copier copier(layout, 2, domain, true);
  for (const mesh::CopyOp& op : copier.ops()) {
    if (op.shift == IntVect::zero()) {
      // The written region must not be fully inside the destination's valid
      // box (that data is already authoritative).
      EXPECT_NE(op.region & layout.box(op.dst), op.region);
    }
    EXPECT_FALSE(op.region.empty());
    EXPECT_LT(op.src, layout.num_boxes());
    EXPECT_LT(op.dst, layout.num_boxes());
  }
}

TEST(CopierDetails, PeriodicPlanHasShiftedOps) {
  const Box domain = Box::domain({8, 8, 8});
  const mesh::BoxLayout layout = mesh::balance(mesh::decompose(domain, 4), 1);
  const mesh::Copier periodic(layout, 1, domain, true);
  const mesh::Copier plain(layout, 1, domain, false);
  int shifted = 0;
  for (const auto& op : periodic.ops()) shifted += !(op.shift == IntVect::zero());
  EXPECT_GT(shifted, 0);
  for (const auto& op : plain.ops()) {
    EXPECT_EQ(op.shift, IntVect::zero());
  }
  EXPECT_GT(periodic.ops().size(), plain.ops().size());
}

// --- network contention -----------------------------------------------------------

TEST(ContendedNetwork, SingleFlowMatchesCostModel) {
  const cluster::CostModel cost(cluster::test_machine());
  cluster::ContendedNetwork net(cost);
  const std::size_t bytes = std::size_t{1} << 28;
  const double finish = net.start_transfer(0.0, bytes, 4, 4);
  EXPECT_NEAR(finish, cost.transfer_seconds(bytes, 4, 4), 1e-12);
  EXPECT_EQ(net.active_flows(finish / 2), 1);
  EXPECT_EQ(net.active_flows(finish + 1e-9), 0);
}

TEST(ContendedNetwork, ConcurrentFlowsShareBandwidth) {
  const cluster::CostModel cost(cluster::test_machine());
  cluster::ContendedNetwork net(cost);
  const std::size_t bytes = std::size_t{1} << 28;
  const double t1 = net.start_transfer(0.0, bytes, 4, 4);
  const double t2 = net.start_transfer(0.0, bytes, 4, 4);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);  // second flow sees 2-way sharing
  EXPECT_EQ(net.active_flows(0.0), 2);
  EXPECT_EQ(net.total_bytes(), 2 * bytes);
  EXPECT_EQ(net.flow_count(), 2u);
}

TEST(ContendedNetwork, SequentialFlowsDoNotContend) {
  const cluster::CostModel cost(cluster::test_machine());
  cluster::ContendedNetwork net(cost);
  const std::size_t bytes = std::size_t{1} << 26;
  const double t1 = net.start_transfer(0.0, bytes, 4, 4);
  const double isolated = cost.transfer_seconds(bytes, 4, 4);
  const double t2 = net.start_transfer(t1 + 1.0, bytes, 4, 4);
  EXPECT_NEAR(t2 - (t1 + 1.0), isolated, 1e-12);
}

// --- fabric history -----------------------------------------------------------------

TEST(FabricDetails, HistoryRecordsStartAndFinish) {
  cluster::EventQueue queue;
  const cluster::CostModel cost(cluster::test_machine());
  transport::Fabric fabric(queue, cost);
  queue.schedule_at(2.0, [&] {
    fabric.put(1 << 20, 2, 2, [](double) {});
  });
  queue.run_until_empty();
  ASSERT_EQ(fabric.history().size(), 1u);
  const transport::TransferRecord& rec = fabric.history().front();
  EXPECT_DOUBLE_EQ(rec.start, 2.0);
  EXPECT_NEAR(rec.finish - rec.start, cost.transfer_seconds(1 << 20, 2, 2), 1e-12);
  EXPECT_EQ(rec.bytes, std::size_t{1} << 20);
}

}  // namespace
}  // namespace xl
