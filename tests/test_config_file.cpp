// Tests for the CLI configuration parser.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "runtime/trigger.hpp"
#include "workflow/config_file.hpp"

namespace xl::workflow {
namespace {

WorkflowConfig parse(const std::string& text) {
  std::istringstream is(text);
  return parse_workflow_config(is);
}

TEST(ConfigFile, ParsesFullConfig) {
  const WorkflowConfig c = parse(R"(
    # a comment line
    machine = intrepid
    mode = global
    analysis = statistics
    objective = utilization
    sim_cores = 4096     # trailing comment
    staging_cores = 256
    steps = 40
    ncomp = 5
    analysis_ncomp = 1
    domain = 1024 512 512
    max_levels = 3
    front_speed = 0.0095
    factors = 2 4 8 16
    euler = 1
    sampling_period = 2
  )");
  EXPECT_EQ(c.machine.name, "Intrepid-BGP");
  EXPECT_EQ(c.mode, Mode::Global);
  EXPECT_EQ(c.analysis_kind, AnalysisKind::Statistics);
  EXPECT_EQ(c.objective, runtime::Objective::MaximizeResourceUtilization);
  EXPECT_EQ(c.sim_cores, 4096);
  EXPECT_EQ(c.geometry.nranks, 4096);
  EXPECT_EQ(c.staging_cores, 256);
  EXPECT_EQ(c.steps, 40);
  EXPECT_EQ(c.ncomp, 5);
  EXPECT_EQ(c.memory_model.ncomp, 5);
  EXPECT_EQ(c.analysis_ncomp, 1);
  EXPECT_EQ(c.geometry.base_domain, mesh::Box::domain({1024, 512, 512}));
  EXPECT_DOUBLE_EQ(c.geometry.front_speed, 0.0095);
  ASSERT_EQ(c.hints.factor_phases.size(), 1u);
  EXPECT_EQ(c.hints.factor_phases[0].factors, (std::vector<int>{2, 4, 8, 16}));
  EXPECT_TRUE(c.euler);
  EXPECT_EQ(c.monitor.sampling_period, 2);
}

TEST(ConfigFile, DefaultsWhenEmpty) {
  const WorkflowConfig c = parse("");
  EXPECT_EQ(c.machine.name, "Titan-XK7");
  EXPECT_EQ(c.mode, Mode::AdaptiveMiddleware);
  EXPECT_EQ(c.analysis_kind, AnalysisKind::Isosurface);
}

TEST(ConfigFile, RejectsUnknownKey) {
  EXPECT_THROW(parse("definitely_not_a_key = 3"), ContractError);
}

TEST(ConfigFile, ParsesThreadsKnob) {
  EXPECT_EQ(parse("").threads, 0);  // serial default: goldens stay byte-identical
  const WorkflowConfig c = parse("threads = 4\nthread_efficiency = 0.8");
  EXPECT_EQ(c.threads, 4);
  EXPECT_DOUBLE_EQ(c.costs.thread_efficiency, 0.8);
  EXPECT_THROW(parse("threads = -2"), ContractError);
}

TEST(ConfigFile, RejectsBadValues) {
  EXPECT_THROW(parse("machine = cray-1"), ContractError);
  EXPECT_THROW(parse("mode = teleport"), ContractError);
  EXPECT_THROW(parse("steps = many"), ContractError);
  EXPECT_THROW(parse("domain = 16 16"), ContractError);
  EXPECT_THROW(parse("steps ="), ContractError);
  EXPECT_THROW(parse("just a line without equals"), ContractError);
}

TEST(ConfigFile, ParsesTriggerKeys) {
  const WorkflowConfig c = parse(R"(
    trigger = hybrid
    trigger_quantile = 0.8
    trigger_window = 12
    trigger_sample_rate = 0.5
    trigger_max_interval = 6
    trigger_seed = 777
  )");
  EXPECT_EQ(c.monitor.trigger.policy, runtime::TriggerPolicy::Hybrid);
  EXPECT_DOUBLE_EQ(c.monitor.trigger.quantile, 0.8);
  EXPECT_EQ(c.monitor.trigger.window, 12);
  EXPECT_DOUBLE_EQ(c.monitor.trigger.sample_rate, 0.5);
  EXPECT_EQ(c.monitor.trigger.max_interval, 6);
  EXPECT_EQ(c.monitor.trigger.seed, 777u);
}

TEST(ConfigFile, TriggerDefaultsToFixedPeriod) {
  EXPECT_EQ(parse("").monitor.trigger.policy, runtime::TriggerPolicy::FixedPeriod);
}

TEST(ConfigFile, RejectsBadTriggerAndSamplingValues) {
  // Each error names the offending key so a sweep script's failure is
  // attributable without bisecting the file.
  EXPECT_THROW(parse("sampling_period = 0"), ContractError);
  try {
    parse("sampling_period = 0");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("sampling_period"), std::string::npos);
  }
  EXPECT_THROW(parse("trigger = sometimes"), ContractError);
  EXPECT_THROW(parse("trigger_quantile = 0"), ContractError);
  EXPECT_THROW(parse("trigger_quantile = 1"), ContractError);
  EXPECT_THROW(parse("trigger_window = 1"), ContractError);
  EXPECT_THROW(parse("trigger_sample_rate = 0"), ContractError);
  EXPECT_THROW(parse("trigger_sample_rate = 1.5"), ContractError);
  EXPECT_THROW(parse("trigger_max_interval = 0"), ContractError);
  EXPECT_THROW(parse("trigger_quantile = high"), ContractError);
  try {
    parse("trigger_window = 1");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("trigger_window"), std::string::npos);
  }
}

TEST(ConfigFile, ParsedConfigActuallyRuns) {
  const WorkflowConfig c = parse(R"(
    machine = test
    mode = hybrid
    sim_cores = 64
    staging_cores = 4
    domain = 64 64 64
    steps = 5
  )");
  const WorkflowResult r = CoupledWorkflow(c).run();
  EXPECT_EQ(r.steps.size(), 5u);
  EXPECT_GT(r.end_to_end_seconds, 0.0);
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW(parse_workflow_config_file("no/such/config.cfg"), ContractError);
}

}  // namespace
}  // namespace xl::workflow
