// Tests for the threaded staging service: asynchronous completion, memory
// admission, in-transit analysis correctness (matches direct extraction),
// concurrency safety, and backlog/accounting signals.
#include <gtest/gtest.h>

#include <cmath>

#include "staging/service.hpp"

namespace xl::staging {
namespace {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

Fab sphere_fab(const Box& box, double radius, double cx, double cy, double cz) {
  Fab f(box, 1);
  for (BoxIterator it(box); it.ok(); ++it) {
    const double dx = (*it)[0] + 0.5 - cx;
    const double dy = (*it)[1] + 0.5 - cy;
    const double dz = (*it)[2] + 0.5 - cz;
    f(*it) = std::sqrt(dx * dx + dy * dy + dz * dz) - radius;
  }
  return f;
}

ServiceConfig small_service(int servers = 2) {
  ServiceConfig cfg;
  cfg.num_servers = servers;
  cfg.memory_per_server = std::size_t{4} << 20;
  return cfg;
}

TEST(StagingService, PutThenGetRoundTrip) {
  StagingService service(small_service());
  const Box box = Box::domain({8, 8, 8});
  Fab payload(box, 1, 3.25);
  auto ack = service.put_async(0, box, std::move(payload)).get();
  EXPECT_TRUE(ack.accepted);

  auto fabs = service.get_async(0, box).get();
  ASSERT_EQ(fabs.size(), 1u);
  EXPECT_DOUBLE_EQ((*fabs[0])(mesh::IntVect{4, 4, 4}), 3.25);
  EXPECT_GT(service.used_bytes(), 0u);
}

TEST(StagingService, VersionsAreIsolated) {
  StagingService service(small_service());
  const Box box = Box::domain({4, 4, 4});
  service.put_async(1, box, Fab(box, 1, 1.0)).get();
  service.put_async(2, box.shift({8, 0, 0}), Fab(box.shift({8, 0, 0}), 1, 2.0)).get();
  EXPECT_EQ(service.get_async(1, Box::domain({64, 64, 64})).get().size(), 1u);
  EXPECT_EQ(service.get_async(3, Box::domain({64, 64, 64})).get().size(), 0u);
}

TEST(StagingService, ObserverSeesEveryRequest) {
  ServiceEventLog log;
  ServiceConfig cfg = small_service();
  cfg.observer = log.observer();
  StagingService service(cfg);
  const Box box = Box::domain({8, 8, 8});
  auto ack = service.put_async(3, box, Fab(box, 1, 1.5)).get();
  EXPECT_TRUE(ack.accepted);
  (void)service.get_async(3, box).get();
  (void)service.analyze_async(3, box, 0.0, 0).get();
  service.drain();

  const std::vector<ServiceEvent> seen = log.snapshot();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].kind, ServiceEvent::Kind::Put);
  EXPECT_EQ(seen[0].version, 3);
  EXPECT_TRUE(seen[0].accepted);
  EXPECT_GT(seen[0].bytes, 0u);
  EXPECT_EQ(seen[1].kind, ServiceEvent::Kind::Get);
  EXPECT_EQ(seen[1].objects, 1u);
  EXPECT_EQ(seen[2].kind, ServiceEvent::Kind::Analysis);
  EXPECT_EQ(seen[2].objects, 1u);
  EXPECT_EQ(seen[3].kind, ServiceEvent::Kind::Drain);
  EXPECT_STREQ(service_event_kind_name(seen[0].kind), "put");
  EXPECT_STREQ(service_event_kind_name(seen[3].kind), "drain");
}

TEST(StagingService, RejectsWhenServerFull) {
  ServiceConfig cfg = small_service(1);
  cfg.memory_per_server = 1000;  // tiny
  StagingService service(cfg);
  const Box box = Box::domain({8, 8, 8});  // 4 KiB payload
  auto ack = service.put_async(0, box, Fab(box, 1)).get();
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(service.used_bytes(), 0u);
}

TEST(StagingService, InTransitAnalysisMatchesDirectExtraction) {
  StagingService service(small_service());
  const Box box = Box::domain({16, 16, 16});
  const Fab field = sphere_fab(box, 5.0, 8, 8, 8);
  const mesh::Box cells(box.lo(), box.hi() - 1);
  const std::size_t direct =
      viz::extract_isosurface(field, cells, 0.0).triangle_count();
  ASSERT_GT(direct, 0u);

  Fab copy(box, 1);
  copy.copy_from(field, box);
  service.put_async(5, box, std::move(copy)).get();
  const AnalysisResult result = service.analyze_async(5, box, 0.0, 0).get();
  EXPECT_EQ(result.objects, 1u);
  EXPECT_EQ(result.triangles, direct);
  EXPECT_GT(result.service_seconds, 0.0);
  // Analysis consumed the object: memory freed, nothing left to get.
  service.drain();
  EXPECT_EQ(service.used_bytes(), 0u);
  EXPECT_TRUE(service.get_async(5, box).get().empty());
}

TEST(StagingService, AnalysisAggregatesMultipleObjects) {
  StagingService service(small_service());
  // Two half-domain fabs of the same sphere: together they triangulate the
  // same surface as the full field minus the seam cells.
  const Box full = Box::domain({16, 16, 16});
  const Fab field = sphere_fab(full, 5.0, 8, 8, 8);
  const Box left({0, 0, 0}, {7, 15, 15});
  const Box right({8, 0, 0}, {15, 15, 15});
  for (const Box& part : {left, right}) {
    Fab f(part, 1);
    f.copy_from(field, part);
    EXPECT_TRUE(service.put_async(9, part, std::move(f)).get().accepted);
  }
  const AnalysisResult result =
      service.analyze_async(9, full, 0.0, 0).get();
  EXPECT_EQ(result.objects, 2u);
  EXPECT_GT(result.triangles, 0u);
}

TEST(StagingService, OverlapsWithClientWork) {
  // Fire a batch of analyses and verify the futures all complete while the
  // client thread keeps doing its own accumulation (the overlap the paper's
  // in-transit path exists for).
  StagingService service(small_service(2));
  const Box box = Box::domain({16, 16, 16});
  std::vector<std::future<AnalysisResult>> futures;
  for (int v = 0; v < 8; ++v) {
    Fab f = sphere_fab(box, 4.0 + 0.2 * v, 8, 8, 8);
    service.put_async(v, box, std::move(f)).get();
    futures.push_back(service.analyze_async(v, box, 0.0, 0));
  }
  // Client-side "simulation" proceeds while the service churns.
  double client_work = 0.0;
  for (int i = 1; i < 200000; ++i) client_work += 1.0 / i;
  EXPECT_GT(client_work, 0.0);
  std::size_t total = 0;
  for (auto& f : futures) total += f.get().triangles;
  EXPECT_GT(total, 0u);
  EXPECT_GT(service.busy_seconds(), 0.0);
}

TEST(StagingService, DrainWaitsForQueue) {
  StagingService service(small_service(1));
  const Box box = Box::domain({12, 12, 12});
  for (int v = 0; v < 5; ++v) {
    service.put_async(v, box, sphere_fab(box, 4.0, 6, 6, 6));
    service.analyze_async(v, box, 0.0, 0);
  }
  service.drain();
  EXPECT_EQ(service.pending_requests(), 0u);
  EXPECT_EQ(service.used_bytes(), 0u);
}

TEST(StagingService, FailServerEmitsServerLostAndShrinksCapacity) {
  ServiceEventLog log;
  ServiceConfig cfg = small_service(2);
  cfg.observer = log.observer();
  StagingService service(cfg);
  const Box box = Box::domain({8, 8, 8});
  ASSERT_TRUE(service.put_async(0, box, Fab(box, 1, 1.0)).get().accepted);
  const std::size_t staged = service.used_bytes();
  ASSERT_GT(staged, 0u);

  // Kill both servers: the first loss relocates onto the survivor, the
  // second drops whatever is left.
  const ServerLossReport first = service.fail_server(0);
  EXPECT_EQ(service.alive_servers(), 1);
  EXPECT_EQ(first.dropped_bytes, 0u);  // the survivor has room to relocate
  const ServerLossReport second = service.fail_server(1);
  EXPECT_EQ(service.alive_servers(), 0);
  EXPECT_EQ(second.dropped_bytes, staged);  // nowhere left to relocate
  EXPECT_EQ(service.used_bytes(), 0u);
  EXPECT_EQ(service.free_bytes(), 0u);

  service.recover_server(0);
  EXPECT_EQ(service.alive_servers(), 1);
  EXPECT_TRUE(service.put_async(1, box, Fab(box, 1, 2.0)).get().accepted);
  service.drain();

  EXPECT_EQ(log.count(ServiceEvent::Kind::ServerLost), 2u);
  EXPECT_EQ(log.count(ServiceEvent::Kind::ServerRecovered), 1u);
  EXPECT_STREQ(service_event_kind_name(ServiceEvent::Kind::ServerLost),
               "server-lost");
  EXPECT_STREQ(service_event_kind_name(ServiceEvent::Kind::ServerRecovered),
               "server-recovered");
}

TEST(StagingService, FailServerIsSafeUnderConcurrentTraffic) {
  // Kill and revive a server while puts/analyses are in flight: nothing may
  // crash or deadlock, and accounting must stay exact after drain.
  StagingService service(small_service(4));
  const Box box = Box::domain({12, 12, 12});
  std::vector<std::future<AnalysisResult>> futures;
  for (int v = 0; v < 12; ++v) {
    ASSERT_TRUE(service.put_async(v, box, sphere_fab(box, 4.0, 6, 6, 6)).get().accepted);
    futures.push_back(service.analyze_async(v, box, 0.0, 0));
    if (v == 4) service.fail_server(1);
    if (v == 8) service.recover_server(1);
  }
  for (auto& f : futures) (void)f.get();
  service.drain();
  EXPECT_EQ(service.pending_requests(), 0u);
  EXPECT_EQ(service.used_bytes(), 0u);
  EXPECT_EQ(service.alive_servers(), 4);
}

TEST(StagingService, ManyConcurrentPutsAccountExactly) {
  StagingService service(small_service(4));
  const int n = 32;
  std::vector<std::future<PutAck>> acks;
  std::size_t expected = 0;
  for (int i = 0; i < n; ++i) {
    const Box box = Box::cube({8 * i, 0, 0}, 4);
    Fab f(box, 1, static_cast<double>(i));
    expected += f.bytes();
    acks.push_back(service.put_async(0, box, std::move(f)));
  }
  std::size_t accepted_bytes = 0;
  for (int i = 0; i < n; ++i) {
    if (acks[static_cast<std::size_t>(i)].get().accepted) {
      accepted_bytes += 4 * 4 * 4 * sizeof(double);
    }
  }
  service.drain();
  EXPECT_EQ(service.used_bytes(), accepted_bytes);
  EXPECT_LE(accepted_bytes, expected);
}

}  // namespace
}  // namespace xl::staging
