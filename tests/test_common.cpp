// Unit tests for src/common: statistics, histograms, EWMA, RNG determinism,
// table formatting, thread pool, and the contract-check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace xl {
namespace {

TEST(Error, RequireThrowsContractError) {
  EXPECT_THROW(XL_REQUIRE(false, "boom"), ContractError);
  EXPECT_NO_THROW(XL_REQUIRE(true, "fine"));
}

TEST(Error, CheckThrowsInternalError) {
  EXPECT_THROW(XL_CHECK(false, "bug"), InternalError);
}

TEST(Error, MessagesCarryContext) {
  try {
    XL_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, QuantileContractChecks) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), ContractError);
  s.add(1.0);
  EXPECT_THROW(s.quantile(1.5), ContractError);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.99);
  h.add(42.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
  EXPECT_THROW(h.bin_count(10), ContractError);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractError);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  for (int i = 0; i < 50; ++i) e.add(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-12);
}

TEST(Ewma, FirstValueSeedsDirectly) {
  Ewma e(0.1);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 9.0);  // 0.1*0 + 0.9*10
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), ContractError);
  EXPECT_THROW(Ewma(1.5), ContractError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
    const auto k = rng.uniform_int(-3, 3);
    EXPECT_GE(k, -3);
    EXPECT_LE(k, 3);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(1.0, 2.0));
  EXPECT_NEAR(s.mean(), 1.0, 0.06);
  EXPECT_NEAR(s.stddev(), 2.0, 0.06);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(42), parent2(42);
  Rng child1 = parent1.split(7);
  Rng child2 = parent2.split(7);
  EXPECT_EQ(child1.next_u64(), child2.next_u64());
  Rng other = parent1.split(8);
  EXPECT_NE(child1.next_u64(), other.next_u64());
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(std::size_t{42});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 42    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), ContractError);
  Table u({"a"});
  EXPECT_THROW(u.cell("no-row-yet"), ContractError);
}

TEST(Formatters, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024 * 1024), "3.00 GiB");
}

TEST(Formatters, Seconds) {
  EXPECT_EQ(format_seconds(1.25), "1.25 s");
  EXPECT_EQ(format_seconds(0.000834), "834.0 us");
  EXPECT_EQ(format_seconds(12 * 60 + 34), "12m34s");
}

TEST(Formatters, Percent) {
  EXPECT_EQ(format_percent(0.8711), "87.11%");
  EXPECT_EQ(format_percent(0.5, 0), "50%");
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int calls = 0;
  pool.submit([&] { ++calls; });
  pool.wait();
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> ok{0};
  pool.submit([&] { ok = 1; });
  pool.wait();
  EXPECT_EQ(ok.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesThroughParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [&](std::size_t lo, std::size_t) {
                              if (lo == 0) throw std::runtime_error("chunk failed");
                            }),
               std::runtime_error);
  // The pool survives the failed loop.
  std::atomic<int> count{0};
  parallel_for(pool, 0, 10, [&](std::size_t lo, std::size_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<bool> nested_was_inline{true};
  parallel_for(pool, 0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A nested loop on the same pool must degrade to inline execution
      // (one chunk, no cross-worker wait) instead of deadlocking in wait().
      if (parallel_chunk_count(pool, 100) != 1) nested_was_inline = false;
      parallel_for(pool, 0, 100, [&](std::size_t ilo, std::size_t ihi) {
        inner_total += static_cast<int>(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 100);
  EXPECT_TRUE(nested_was_inline.load());
}

TEST(ThreadPool, ConcurrentParallelForsWaitOnlyOnTheirOwnTasks) {
  // Two threads drive independent parallel_fors on the SAME pool; each wait()
  // is scoped to its own TaskGroup, so both complete with correct results.
  ThreadPool pool(3);
  std::atomic<int> total_a{0};
  std::atomic<int> total_b{0};
  std::thread other([&] {
    for (int rep = 0; rep < 50; ++rep) {
      parallel_for(pool, 0, 64, [&](std::size_t lo, std::size_t hi) {
        total_b += static_cast<int>(hi - lo);
      });
    }
  });
  for (int rep = 0; rep < 50; ++rep) {
    parallel_for(pool, 0, 64, [&](std::size_t lo, std::size_t hi) {
      total_a += static_cast<int>(hi - lo);
    });
  }
  other.join();
  EXPECT_EQ(total_a.load(), 50 * 64);
  EXPECT_EQ(total_b.load(), 50 * 64);
}

TEST(ThreadPool, ParallelForChunksCoversRangeInChunkOrder) {
  ThreadPool pool(3);
  const std::size_t n = 100;
  const std::size_t nchunks = parallel_chunk_count(pool, n);
  ASSERT_GT(nchunks, 1u);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(nchunks);
  parallel_for_chunks(pool, 0, n,
                      [&](std::size_t c, std::size_t lo, std::size_t hi) {
    ranges[c] = {lo, hi};
  });
  // Chunks tile [0, n) in increasing chunk index order.
  std::size_t expect_lo = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LT(lo, hi);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, n);
}

TEST(ThreadPool, ParallelForChunksInvokesEveryAdvertisedChunk) {
  // Call sites pre-size per-chunk scratch with parallel_chunk_count and merge
  // over every slot, so every advertised chunk index must be invoked exactly
  // once — including awkward n where a ceil-sized partition would tile the
  // range in fewer chunks (4 workers, n=100: 16 advertised, 15 ceil-sized).
  for (const std::size_t workers : {2u, 3u, 4u, 7u}) {
    ThreadPool pool(workers);
    for (const std::size_t n : {2u, 15u, 16u, 17u, 100u, 101u, 1000u}) {
      const std::size_t nchunks = parallel_chunk_count(pool, n);
      std::vector<std::atomic<int>> invoked(nchunks);
      std::atomic<std::size_t> covered{0};
      parallel_for_chunks(pool, 0, n,
                          [&](std::size_t c, std::size_t lo, std::size_t hi) {
        ASSERT_LT(c, nchunks);
        ASSERT_LT(lo, hi);
        invoked[c].fetch_add(1);
        covered += hi - lo;
      });
      for (std::size_t c = 0; c < nchunks; ++c) {
        EXPECT_EQ(invoked[c].load(), 1)
            << "chunk " << c << " of " << nchunks << " (workers=" << workers
            << ", n=" << n << ")";
      }
      EXPECT_EQ(covered.load(), n);
    }
  }
}

TEST(ThreadPool, SetGlobalWorkersResizesTheSharedPool) {
  ThreadPool::set_global_workers(3);
  EXPECT_EQ(ThreadPool::global().worker_count(), 3u);
  std::atomic<int> count{0};
  parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::set_global_workers(0);
  EXPECT_EQ(ThreadPool::global().worker_count(), 0u);
}

TEST(SampleSet, ConcurrentQuantileReadsAreSafe) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(static_cast<double>(i));
  // quantile() is const but sorts lazily; concurrent readers must agree.
  std::vector<std::thread> readers;
  std::atomic<int> bad{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int rep = 0; rep < 100; ++rep) {
        if (s.quantile(0.5) != 499.5) ++bad;
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(Histogram, IgnoresNaNSamples) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 0u);
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
  // Infinities clamp to the edge bins instead of invoking UB.
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
}

TEST(Log, ThresholdFiltering) {
  const auto old = log::threshold();
  log::set_threshold(log::Level::Error);
  EXPECT_EQ(log::threshold(), log::Level::Error);
  XL_LOG_INFO("this must not crash even when filtered");
  log::set_threshold(old);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log::level_name(log::Level::Warn), "WARN");
  EXPECT_STREQ(log::level_name(log::Level::Trace), "TRACE");
}

}  // namespace
}  // namespace xl
