// Final-seam tests: synthetic-evolution decay and experiment factories,
// file-writing paths of the exporters/renderer, and monitor cadence — the
// few behaviours the earlier suites touch only in passing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "amr/synthetic.hpp"
#include "viz/render.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/experiment.hpp"
#include "workflow/trace_io.hpp"

namespace xl {
namespace {

TEST(SyntheticDecay, BandThinsAfterOnset) {
  amr::SyntheticAmrConfig cfg;
  cfg.base_domain = mesh::Box::domain({128, 64, 64});
  cfg.nranks = 8;
  cfg.tile_size = 4;
  cfg.front_thickness = 0.2;  // several tiles thick, so thinning is visible
  cfg.front_decay = 0.7;
  cfg.front_decay_onset = 10;
  cfg.num_blobs = 0;  // isolate the front
  amr::SyntheticAmrEvolution evo(cfg);

  // Refined cells grow before the onset (radius grows), shrink well after it
  // (band thins faster than the radius grows).
  auto refined = [&](int step) {
    const amr::SyntheticStep s = evo.at(step);
    return s.total_cells - s.cells_per_level[0];
  };
  EXPECT_GT(refined(9), refined(2));
  EXPECT_LT(refined(16), refined(10));
  // And the band eventually vanishes entirely once decay dominates.
  EXPECT_EQ(refined(60), 0);
}

TEST(SyntheticDecay, NoDecayKeepsGrowing) {
  amr::SyntheticAmrConfig cfg;
  cfg.base_domain = mesh::Box::domain({128, 64, 64});
  cfg.nranks = 8;
  cfg.tile_size = 4;
  cfg.front_decay = 1.0;  // default: never decays
  cfg.num_blobs = 0;
  amr::SyntheticAmrEvolution evo(cfg);
  const amr::SyntheticStep early = evo.at(5);
  const amr::SyntheticStep late = evo.at(25);
  EXPECT_GT(late.total_cells - late.cells_per_level[0],
            early.total_cells - early.cells_per_level[0]);
}

TEST(ExperimentFactories, TitanGeometryScalesShellWithAspect) {
  // The 16K domain (2048x2048x1024) has 4x the volume-per-shortest-edge^3 of
  // the 4K cube; its shell thickness scales accordingly so the refined
  // FRACTION of the volume matches across scales.
  const auto g4 = workflow::titan_middleware_experiment(1, workflow::Mode::StaticInSitu);
  const auto g16 = workflow::titan_middleware_experiment(3, workflow::Mode::StaticInSitu);
  EXPECT_NEAR(g16.geometry.front_thickness / g4.geometry.front_thickness, 4.0, 1e-9);
}

TEST(ExperimentFactories, IntrepidAnalysisShipsOneComponent) {
  const auto c = workflow::intrepid_resource_experiment(workflow::Mode::AdaptiveResource);
  EXPECT_EQ(c.ncomp, 5);
  EXPECT_EQ(c.analysis_ncomp, 1);
  EXPECT_EQ(c.objective, runtime::Objective::MaximizeResourceUtilization);
}

TEST(TraceIoFile, WritesCsvToDisk) {
  workflow::WorkflowConfig c;
  c.machine = cluster::test_machine();
  c.sim_cores = 32;
  c.staging_cores = 4;
  c.steps = 4;
  c.geometry.base_domain = mesh::Box::domain({64, 32, 32});
  c.geometry.nranks = 32;
  c.memory_model.ncomp = 1;
  const workflow::WorkflowResult r = workflow::CoupledWorkflow(c).run();
  const std::string path = "test_trace_io.csv";
  workflow::write_steps_csv(path, r);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.substr(0, 5), "step,");
  std::remove(path.c_str());
}

TEST(RenderFile, WritesPpmToDisk) {
  viz::TriangleMesh m;
  m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  viz::RenderConfig cfg;
  cfg.width = 16;
  cfg.height = 16;
  const viz::Image img = viz::render_mesh(m, cfg);
  const std::string path = "test_render.ppm";
  img.write_ppm_file(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  char magic[2];
  in.read(magic, 2);
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '6');
  std::remove(path.c_str());
}

TEST(MonitorCadence, SamplingGovernsAdaptationCount) {
  workflow::WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 12;
  c.mode = workflow::Mode::Global;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.memory_model.ncomp = 1;
  c.hints.factor_phases = {{0, {2, 4}}};
  c.monitor.sampling_period = 4;
  const workflow::WorkflowResult r = workflow::CoupledWorkflow(c).run();
  // Steps 0,4,8 sample -> exactly 3 engine invocations per layer.
  EXPECT_EQ(r.middleware_adaptations, 3);
  EXPECT_EQ(r.application_adaptations, 3);
  EXPECT_EQ(r.resource_adaptations, 3);
}

}  // namespace
}  // namespace xl
