// Integration tests for the coupled workflow: the end-to-end accounting
// identities, the qualitative behaviours the paper's figures report
// (adaptive beats static placements, cross-layer reduces movement, resource
// adaptation lifts utilization), and experiment-config sanity.
#include <gtest/gtest.h>

#include "workflow/coupled_workflow.hpp"
#include "workflow/experiment.hpp"

namespace xl::workflow {
namespace {

/// A scaled-down Titan-like run that finishes in well under a second.
WorkflowConfig small_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 256;
  c.staging_cores = 16;
  c.steps = 20;
  c.mode = mode;
  c.euler = false;
  c.ncomp = 1;
  c.geometry.base_domain = mesh::Box::domain({256, 128, 128});
  c.geometry.max_levels = 3;
  c.geometry.tile_size = 8;
  c.geometry.max_box_size = 32;
  c.geometry.nranks = 256;
  c.geometry.front_radius0 = 0.12;
  c.geometry.front_speed = 0.01;
  c.geometry.num_blobs = 2;
  c.geometry.blob_onset_step = 5;
  c.geometry.front_decay = 0.7;
  c.geometry.front_decay_onset = 16;
  c.memory_model.ncomp = 1;
  c.costs.sim_advect_flops_per_cell = 260.0;
  c.costs.mc_scan_flops_per_cell = 60.0;
  c.costs.mc_active_flops_per_cell = 900.0;
  c.active_cell_fraction = 0.05;
  c.staging_usable_fraction = 0.002;
  c.adaptation_overhead_seconds = 1.0e-5;
  return c;
}

TEST(CoupledWorkflow, AccountingIdentities) {
  WorkflowResult r = CoupledWorkflow(small_config(Mode::AdaptiveMiddleware)).run();
  ASSERT_EQ(r.steps.size(), 20u);
  EXPECT_GT(r.pure_sim_seconds, 0.0);
  EXPECT_GE(r.end_to_end_seconds, r.pure_sim_seconds);
  EXPECT_NEAR(r.overhead_seconds, r.end_to_end_seconds - r.pure_sim_seconds, 1e-9);
  EXPECT_EQ(r.insitu_count + r.intransit_count, 20);

  double sum_sim = 0.0;
  std::size_t moved = 0;
  for (const StepRecord& s : r.steps) {
    EXPECT_GT(s.sim_seconds, 0.0);
    EXPECT_GT(s.total_cells, 0u);
    EXPECT_GE(s.window_seconds, 0.0);
    sum_sim += s.sim_seconds;
    moved += s.moved_bytes;
    if (s.placement == runtime::Placement::InSitu) {
      EXPECT_EQ(s.moved_bytes, 0u);
      EXPECT_GT(s.insitu_analysis_seconds, 0.0);
    } else {
      EXPECT_GT(s.moved_bytes, 0u);
      EXPECT_GT(s.intransit_analysis_seconds, 0.0);
    }
  }
  EXPECT_NEAR(sum_sim, r.pure_sim_seconds, 1e-9);
  EXPECT_EQ(moved, r.bytes_moved);
}

TEST(CoupledWorkflow, StaticInSituMovesNothing) {
  WorkflowResult r = CoupledWorkflow(small_config(Mode::StaticInSitu)).run();
  EXPECT_EQ(r.bytes_moved, 0u);
  EXPECT_EQ(r.intransit_count, 0);
  EXPECT_EQ(r.insitu_count, 20);
  // In-situ analysis blocks the simulation: overhead equals the summed
  // analysis time.
  double analysis = 0.0;
  for (const auto& s : r.steps) analysis += s.insitu_analysis_seconds;
  EXPECT_NEAR(r.overhead_seconds, analysis, 1e-6 * analysis);
}

TEST(CoupledWorkflow, StaticInTransitMovesEveryStep) {
  WorkflowResult r = CoupledWorkflow(small_config(Mode::StaticInTransit)).run();
  EXPECT_EQ(r.intransit_count, 20);
  std::size_t expected = 0;
  for (const auto& s : r.steps) expected += s.raw_bytes;
  EXPECT_EQ(r.bytes_moved, expected);
}

TEST(CoupledWorkflow, Fig7AdaptiveBeatsBothStatics) {
  const double insitu =
      CoupledWorkflow(small_config(Mode::StaticInSitu)).run().overhead_seconds;
  const double intransit =
      CoupledWorkflow(small_config(Mode::StaticInTransit)).run().overhead_seconds;
  const double adaptive =
      CoupledWorkflow(small_config(Mode::AdaptiveMiddleware)).run().overhead_seconds;
  EXPECT_LT(adaptive, insitu);
  EXPECT_LT(adaptive, intransit);
}

TEST(CoupledWorkflow, Fig8AdaptiveMovesLessThanStaticInTransit) {
  const auto intransit = CoupledWorkflow(small_config(Mode::StaticInTransit)).run();
  const auto adaptive = CoupledWorkflow(small_config(Mode::AdaptiveMiddleware)).run();
  EXPECT_LT(adaptive.bytes_moved, intransit.bytes_moved);
  EXPECT_GT(adaptive.insitu_count, 0);    // it actually adapted...
  EXPECT_GT(adaptive.intransit_count, 0); // ...in both directions
}

TEST(CoupledWorkflow, Fig10GlobalCutsOverheadVsLocal) {
  WorkflowConfig local = small_config(Mode::AdaptiveMiddleware);
  WorkflowConfig global = small_config(Mode::Global);
  global.hints.factor_phases = {{0, {2, 4}}, {10, {2, 4, 8, 16}}};
  const auto r_local = CoupledWorkflow(local).run();
  const auto r_global = CoupledWorkflow(global).run();
  EXPECT_LT(r_global.overhead_seconds, r_local.overhead_seconds);
  // Fig. 11: reduction dominates even though more steps go in-transit.
  EXPECT_LT(r_global.bytes_moved, r_local.bytes_moved);
  // The application layer actually reduced (factor >= 2 on every step).
  for (const auto& s : r_global.steps) EXPECT_GE(s.factor, 2);
}

/// The Fig. 9 regime differs from Fig. 7's: a compute-heavy Euler workload
/// whose static staging pool is OVER-provisioned (idles ~half the time), so
/// the resource layer can shrink the allocation and lift utilization.
WorkflowConfig fig9_config(Mode mode) {
  WorkflowConfig c = small_config(mode);
  c.euler = true;
  c.ncomp = 5;
  c.memory_model.ncomp = 5;
  c.costs.sim_euler_flops_per_cell = 1800.0;
  c.costs.mc_scan_flops_per_cell = 100.0;
  c.costs.mc_active_flops_per_cell = 2500.0;
  c.active_cell_fraction = 0.04;
  c.staging_usable_fraction = 0.02;  // memory ample: no admission waits
  c.objective = runtime::Objective::MaximizeResourceUtilization;
  return c;
}

TEST(CoupledWorkflow, Fig9ResourceAdaptationLiftsUtilization) {
  WorkflowConfig adaptive = fig9_config(Mode::AdaptiveResource);
  WorkflowConfig fixed = fig9_config(Mode::StaticInTransit);
  const auto r_adaptive = CoupledWorkflow(adaptive).run();
  const auto r_fixed = CoupledWorkflow(fixed).run();
  EXPECT_GT(r_adaptive.utilization_efficiency, r_fixed.utilization_efficiency);
  // Adaptive allocation varies with the data; static stays at the pool size.
  int distinct = 0;
  int prev = -1;
  for (const auto& s : r_adaptive.steps) {
    if (s.intransit_cores != prev) ++distinct;
    prev = s.intransit_cores;
  }
  EXPECT_GT(distinct, 1);
  for (const auto& s : r_fixed.steps) EXPECT_EQ(s.intransit_cores, 16);
}

TEST(CoupledWorkflow, DeterministicAcrossRuns) {
  const auto a = CoupledWorkflow(small_config(Mode::Global)).run();
  const auto b = CoupledWorkflow(small_config(Mode::Global)).run();
  EXPECT_DOUBLE_EQ(a.end_to_end_seconds, b.end_to_end_seconds);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].placement, b.steps[i].placement);
    EXPECT_EQ(a.steps[i].intransit_cores, b.steps[i].intransit_cores);
  }
}

TEST(CoupledWorkflow, MonitorPeriodReducesAdaptationOverheadEvents) {
  WorkflowConfig every = small_config(Mode::AdaptiveMiddleware);
  every.monitor.sampling_period = 1;
  WorkflowConfig sparse = small_config(Mode::AdaptiveMiddleware);
  sparse.monitor.sampling_period = 5;
  // Both run; sparse adapts on 1/5 of the steps (same placements reused
  // in between) — behaviourally legal, accounting still consistent.
  const auto r = CoupledWorkflow(sparse).run();
  EXPECT_EQ(r.steps.size(), 20u);
  EXPECT_GE(r.end_to_end_seconds, r.pure_sim_seconds);
}

TEST(CoupledWorkflow, ValidatesConfig) {
  WorkflowConfig c = small_config(Mode::Global);
  c.sim_cores = 0;
  EXPECT_THROW(CoupledWorkflow{c}, ContractError);
  c = small_config(Mode::Global);
  c.staging_usable_fraction = 0.0;
  EXPECT_THROW(CoupledWorkflow{c}, ContractError);
}

// --- Experiment factories ----------------------------------------------------

TEST(Experiments, TitanScalesMatchPaper) {
  const auto scales = titan_scales();
  ASSERT_EQ(scales.size(), 4u);
  EXPECT_EQ(scales[0].sim_cores, 2048);
  EXPECT_EQ(scales[3].sim_cores, 16384);
  for (const auto& s : scales) {
    EXPECT_EQ(s.sim_cores / s.staging_cores, 16);  // the paper's 16:1 ratio
  }
  EXPECT_EQ(scales[0].domain, mesh::Box::domain({1024, 1024, 512}));
  EXPECT_EQ(scales[3].domain, mesh::Box::domain({2048, 2048, 1024}));
}

TEST(Experiments, FactoriesProduceValidConfigs) {
  for (int i = 0; i < 4; ++i) {
    const WorkflowConfig c = titan_middleware_experiment(i, Mode::AdaptiveMiddleware);
    EXPECT_EQ(c.machine.name, "Titan-XK7");
    EXPECT_FALSE(c.euler);
    EXPECT_EQ(c.geometry.nranks, c.sim_cores);
  }
  const WorkflowConfig g = titan_global_experiment(0, Mode::Global);
  EXPECT_EQ(g.hints.factor_phases.size(), 2u);
  EXPECT_EQ(g.hints.factor_phases[1].factors.size(), 4u);

  const WorkflowConfig r = intrepid_resource_experiment(Mode::AdaptiveResource);
  EXPECT_EQ(r.machine.name, "Intrepid-BGP");
  EXPECT_TRUE(r.euler);
  EXPECT_EQ(r.ncomp, 5);
  EXPECT_EQ(r.sim_cores, 4096);
  EXPECT_EQ(r.staging_cores, 256);
}

}  // namespace
}  // namespace xl::workflow
